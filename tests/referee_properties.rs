//! Property tests: every evaluator agrees with the product-graph referee
//! on randomly generated specifications, runs and queries.
//!
//! This is the load-bearing correctness argument of the whole
//! reproduction: the label decoder (Algorithm 1), the tree-merge
//! evaluator (Algorithm 2), the general-query planner (Section IV-B) and
//! the baselines G1/G2/G3 are all checked against the brute-force
//! product construction of Section III-B.

use proptest::prelude::*;
use rpq_automata::compile_minimal_dfa;
use rpq_baselines::{ifq_symbols, Referee, G1, G2, G3};
use rpq_core::{all_pairs_filtered, all_pairs_nested, Session};
use rpq_labeling::{NodeId, RunBuilder, UniformRandom};
use rpq_relalg::TagIndex;
use rpq_workloads::{synthetic, QueryGen, SynthParams};

/// Strategy: small synthetic spec parameters.
fn spec_params() -> impl Strategy<Value = SynthParams> {
    (
        2usize..=5,  // composites
        4usize..=10, // atomics
        0usize..=2,  // self cycles
        0usize..=1,  // two cycles
        3usize..=5,  // min body
        0u64..5000,  // seed
        0u32..=500,  // alt productions per mille
    )
        .prop_filter_map(
            "recursion block must leave a start module",
            |(nc, na, selfs, twos, minb, seed, alts)| {
                if selfs + 2 * twos >= nc {
                    return None;
                }
                Some(SynthParams {
                    n_atomic: na,
                    n_composite: nc,
                    n_self_cycles: selfs,
                    n_two_cycles: twos,
                    body_nodes: (minb, minb + 3),
                    extra_edge_prob: 0.3,
                    composite_ref_prob: 0.1,
                    n_tags: 8,
                    alt_production_per_mille: alts,
                    seed,
                })
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// The paper's approach (safe or decomposed) matches the referee.
    #[test]
    fn engine_matches_referee(
        params in spec_params(),
        run_seed in 0u64..1000,
        query_seed in 0u64..1000,
        target in 30usize..150,
    ) {
        let s = synthetic::generate(&params);
        let spec = &s.spec;
        let run = RunBuilder::new(spec)
            .policy(UniformRandom::new(run_seed))
            .target_edges(target)
            .build()
            .unwrap();
        let session = Session::from_spec(spec.clone());
        let all: Vec<NodeId> = run.node_ids().collect();

        let mut qg = QueryGen::new(spec, query_seed);
        for qsize in [1usize, 3, 6] {
            let q = qg.random_query(qsize);
            let dfa = compile_minimal_dfa(&q, spec.n_tags());
            if dfa.n_states() > 64 {
                continue;
            }
            let referee = Referee::new(&run, &dfa);
            let expected = referee.all_pairs(&all, &all);
            let plan = session.prepare_regex(&q).unwrap();
            let got = session.all_pairs(&plan, &run, &all, &all);
            prop_assert_eq!(&got, &expected, "query {:?} safe={}", q, plan.is_safe());
        }
    }

    /// Safe plans: pairwise decoding, nested loops (S1) and the tree
    /// merge (S2) all agree with the referee.
    #[test]
    fn safe_evaluators_match_referee(
        params in spec_params(),
        run_seed in 0u64..1000,
        query_seed in 0u64..1000,
    ) {
        let s = synthetic::generate(&params);
        let spec = &s.spec;
        let run = RunBuilder::new(spec)
            .policy(UniformRandom::new(run_seed))
            .target_edges(80)
            .build()
            .unwrap();
        let session = Session::from_spec(spec.clone());
        let all: Vec<NodeId> = run.node_ids().collect();

        let mut qg = QueryGen::new(spec, query_seed);
        let mut checked = 0;
        for _ in 0..12 {
            let q = qg.random_query(4);
            let Ok(plan) = session.plan_safe(&q) else { continue };
            checked += 1;
            let dfa = compile_minimal_dfa(&q, spec.n_tags());
            let referee = Referee::new(&run, &dfa);
            let expected = referee.all_pairs(&all, &all);
            prop_assert_eq!(&all_pairs_nested(&plan, &run, &all, &all), &expected,
                "S1 mismatch for {:?}", q);
            prop_assert_eq!(&all_pairs_filtered(&plan, spec, &run, &all, &all), &expected,
                "S2 mismatch for {:?}", q);
            // Spot-check raw pairwise decodes.
            for &u in all.iter().take(8) {
                for &v in all.iter().rev().take(8) {
                    prop_assert_eq!(plan.pairwise(&run, u, v), referee.pairwise(u, v));
                }
            }
        }
        // Reachability is always safe, so at least something ran when
        // the generator produced it; don't require it though.
        let _ = checked;
    }

    /// The baselines match the referee on random queries.
    #[test]
    fn baselines_match_referee(
        params in spec_params(),
        run_seed in 0u64..1000,
        query_seed in 0u64..1000,
    ) {
        let s = synthetic::generate(&params);
        let spec = &s.spec;
        let run = RunBuilder::new(spec)
            .policy(UniformRandom::new(run_seed))
            .target_edges(60)
            .build()
            .unwrap();
        let index = TagIndex::build(&run, spec.n_tags());
        let all: Vec<NodeId> = run.node_ids().collect();

        let mut qg = QueryGen::new(spec, query_seed);
        for qsize in [2usize, 5] {
            let q = qg.random_query(qsize);
            let dfa = compile_minimal_dfa(&q, spec.n_tags());
            if dfa.n_states() > 60 {
                continue;
            }
            let referee = Referee::new(&run, &dfa);
            let expected = referee.all_pairs(&all, &all);
            let g1 = G1::new(&index);
            prop_assert_eq!(&g1.all_pairs(&q, &all, &all), &expected, "G1 on {:?}", q);
            let g2 = G2::new(&run, &index);
            prop_assert_eq!(&g2.all_pairs(&dfa, &all, &all), &expected, "G2 on {:?}", q);
        }

        // G3 on IFQs.
        for k in [0usize, 1, 2] {
            let q = qg.ifq(k);
            let syms = ifq_symbols(&q).expect("IFQ shape");
            let dfa = compile_minimal_dfa(&q, spec.n_tags());
            let referee = Referee::new(&run, &dfa);
            let g3 = G3::new(spec, &run, &index);
            prop_assert_eq!(
                &g3.all_pairs(&syms, &all, &all),
                &referee.all_pairs(&all, &all),
                "G3 on {:?}", q
            );
        }
    }

    /// Labels encode/decode losslessly on generated runs.
    #[test]
    fn label_codec_round_trips(
        params in spec_params(),
        run_seed in 0u64..1000,
    ) {
        let s = synthetic::generate(&params);
        let run = RunBuilder::new(&s.spec)
            .policy(UniformRandom::new(run_seed))
            .target_edges(60)
            .build()
            .unwrap();
        for id in run.node_ids() {
            let label = run.label(id);
            let bytes = rpq_labeling::codec::encode(label);
            let back = rpq_labeling::codec::decode(&bytes).expect("decodable");
            prop_assert_eq!(&back, label);
        }
    }
}
