//! Safety-profile expectations on the realistic datasets: the paper
//! observes that "most of the queries are safe" on BioAID/QBLast; our
//! stand-ins must reproduce that, and the benchmark workloads rely on
//! specific query classes being safe.

use rpq_core::Session;
use rpq_workloads::{bioaid_like, qblast_like, QueryGen};

#[test]
fn pool_tag_ifqs_are_safe_on_realistic_specs() {
    for real in [bioaid_like(), qblast_like()] {
        let session = Session::from_spec(real.spec.clone());
        let mut qg = QueryGen::new(&real.spec, 17);
        for k in 0..=6usize {
            for i in 0..6 {
                // Pool tags live outside recursion bodies, so IFQs over
                // them are safe by construction.
                let q = qg.ifq_over(&real.pool_tags, k);
                assert!(
                    session.is_safe(&q),
                    "{}: pool IFQ k={k} #{i} unsafe",
                    real.name
                );
            }
        }
        // Unrestricted IFQs mix in cycle-local tags; a fair share stays
        // safe, but not all — the planner's decomposition path matters.
        let mut n_safe = 0;
        let total = 40;
        for _ in 0..total {
            if session.is_safe(&qg.ifq(3)) {
                n_safe += 1;
            }
        }
        assert!(
            n_safe > 0 && n_safe < total,
            "{}: {n_safe}/{total} unrestricted IFQs safe",
            real.name
        );
    }
}

#[test]
fn cycle_chain_star_is_safe() {
    // The Kleene-star workload a* (a = first cycle's chain tag) must be
    // safe so that RPL/optRPL evaluate it from labels (Fig. 13g/13h).
    for real in [bioaid_like(), qblast_like()] {
        let session = Session::from_spec(real.spec.clone());
        let qg = QueryGen::new(&real.spec, 0);
        let q = qg.kleene_star(&real.cycle_tags[0]).expect("tag exists");
        assert!(
            session.is_safe(&q),
            "{}: {}* should be safe",
            real.name,
            real.cycle_tags[0]
        );
    }
}

#[test]
fn most_random_queries_are_safe() {
    // Section V-E: "We observed that most of the queries are safe."
    for real in [bioaid_like(), qblast_like()] {
        let session = Session::from_spec(real.spec.clone());
        let mut qg = QueryGen::new(&real.spec, 23);
        let mut n_safe = 0;
        let total = 60;
        for _ in 0..total {
            let q = qg.random_query(5);
            if session.is_safe(&q) {
                n_safe += 1;
            }
        }
        assert!(
            n_safe * 2 >= total,
            "{}: only {n_safe}/{total} random queries safe",
            real.name
        );
        // But unsafe queries must exist too (Fig. 15 needs them).
        assert!(
            n_safe < total,
            "{}: every random query safe — Fig. 15 would be empty",
            real.name
        );
    }
}
