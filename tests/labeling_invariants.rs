//! Structural invariants of runs and labels — the properties the whole
//! decoding approach rests on.

use proptest::prelude::*;
use rpq_labeling::{Label, ListTree, NodeId, ParseTree, Run, RunBuilder, UniformRandom};
use rpq_workloads::{synthetic, SynthParams};
use std::collections::{HashMap, HashSet};

fn spec_params() -> impl Strategy<Value = SynthParams> {
    (
        2usize..=5,
        4usize..=10,
        0usize..=2,
        0usize..=1,
        3usize..=5,
        0u64..5000,
    )
        .prop_filter_map(
            "recursion block must leave a start module",
            |(nc, na, selfs, twos, minb, seed)| {
                if selfs + 2 * twos >= nc {
                    return None;
                }
                Some(SynthParams {
                    n_atomic: na,
                    n_composite: nc,
                    n_self_cycles: selfs,
                    n_two_cycles: twos,
                    body_nodes: (minb, minb + 3),
                    extra_edge_prob: 0.3,
                    composite_ref_prob: 0.1,
                    n_tags: 8,
                    alt_production_per_mille: 400,
                    seed,
                })
            },
        )
}

/// The interface property behind label decoding: the set of leaves below
/// any *production-position* prefix of the compressed parse tree forms a
/// sub-DAG with a unique entry and a unique exit.
///
/// Prefixes ending at a recursion child are deliberately excluded: child
/// `i`'s leaf set has a "hole" where children `i+1..` nest inside its
/// body, so it has a second boundary crossing (into and out of the
/// hole). The decoder models those crossings explicitly with the
/// descent/ascent chains rather than treating the child as opaque.
fn check_subrun_interfaces(run: &Run) {
    // Group nodes by each production-position prefix of their label.
    let mut groups: HashMap<Vec<rpq_labeling::LabelEntry>, Vec<NodeId>> = HashMap::new();
    for (id, node) in run.nodes() {
        let entries = node.label.entries();
        for depth in 0..entries.len() {
            let ends_at_rec =
                depth > 0 && matches!(entries[depth - 1], rpq_labeling::LabelEntry::Rec { .. });
            if ends_at_rec {
                continue;
            }
            groups
                .entry(entries[..depth].to_vec())
                .or_default()
                .push(id);
        }
    }
    for (prefix, members) in groups {
        let set: HashSet<NodeId> = members.iter().copied().collect();
        let mut entries = 0usize;
        let mut exits = 0usize;
        for &m in &members {
            let has_external_in = run.in_edges(m).iter().any(|(src, _)| !set.contains(src))
                || run.in_edges(m).is_empty();
            let has_internal_in = run.in_edges(m).iter().any(|(src, _)| set.contains(src));
            if has_external_in {
                assert!(
                    !has_internal_in,
                    "node {m:?} mixes internal and external inputs in sub-run {prefix:?}"
                );
                entries += 1;
            }
            let has_external_out = run.out_edges(m).iter().any(|(dst, _)| !set.contains(dst))
                || run.out_edges(m).is_empty();
            let has_internal_out = run.out_edges(m).iter().any(|(dst, _)| set.contains(dst));
            if has_external_out {
                assert!(
                    !has_internal_out,
                    "node {m:?} mixes internal and external outputs in sub-run {prefix:?}"
                );
                exits += 1;
            }
        }
        assert_eq!(entries, 1, "sub-run {prefix:?} must have a unique entry");
        assert_eq!(exits, 1, "sub-run {prefix:?} must have a unique exit");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Every sub-run has a unique entry and exit node — the property
    /// that lets paths be decomposed through interface ports.
    #[test]
    fn subruns_have_unique_interfaces(
        params in spec_params(),
        run_seed in 0u64..1000,
    ) {
        let s = synthetic::generate(&params);
        let run = RunBuilder::new(&s.spec)
            .policy(UniformRandom::new(run_seed))
            .target_edges(60)
            .build()
            .unwrap();
        check_subrun_interfaces(&run);
    }

    /// Runs are DAGs with unique global entry/exit; labels are unique
    /// and sorted order equals parse-tree document order.
    #[test]
    fn run_and_label_global_invariants(
        params in spec_params(),
        run_seed in 0u64..1000,
    ) {
        let s = synthetic::generate(&params);
        let run = RunBuilder::new(&s.spec)
            .policy(UniformRandom::new(run_seed))
            .target_edges(80)
            .build()
            .unwrap();
        prop_assert!(run.is_acyclic());

        let mut labels: Vec<&Label> = run.node_ids().map(|id| run.label(id)).collect();
        let n = labels.len();
        labels.sort();
        labels.dedup();
        prop_assert_eq!(labels.len(), n, "labels must be unique");

        let tree = ParseTree::from_run(&run);
        prop_assert_eq!(tree.leaves(), run.nodes_in_document_order());
        // Depth bound: production levels ≤ longest acyclic chain of
        // composites, plus one recursion level per cycle; 2·|G| is a
        // loose structural bound.
        prop_assert!(tree.depth() <= 2 * s.spec.size());
    }

    /// ListTree projections: leaves of a random subset come back in
    /// document order, with consistent leaf counts.
    #[test]
    fn list_tree_projection_invariants(
        params in spec_params(),
        run_seed in 0u64..1000,
        subset_seed in 0u64..1000,
    ) {
        let s = synthetic::generate(&params);
        let run = RunBuilder::new(&s.spec)
            .policy(UniformRandom::new(run_seed))
            .target_edges(60)
            .build()
            .unwrap();
        let subset = rpq_workloads::runs::sample_nodes(&run, run.n_nodes() / 2 + 1, subset_seed);
        let tree = ListTree::build(&run, &subset);
        prop_assert_eq!(tree.n_leaves(), {
            let mut s2 = subset.clone();
            s2.sort_unstable();
            s2.dedup();
            s2.len()
        });
        let leaves = tree.leaves_under(0);
        // Document order.
        for w in leaves.windows(2) {
            prop_assert!(run.label(w[0]) < run.label(w[1]));
        }
        // Exactly the subset.
        let got: HashSet<NodeId> = leaves.into_iter().collect();
        let want: HashSet<NodeId> = subset.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// Derivation respects the grammar: every run edge's tag appears on
    /// some production-body edge, and node modules are atomic.
    #[test]
    fn runs_respect_the_grammar(
        params in spec_params(),
        run_seed in 0u64..1000,
    ) {
        let s = synthetic::generate(&params);
        let spec = &s.spec;
        let run = RunBuilder::new(spec)
            .policy(UniformRandom::new(run_seed))
            .target_edges(60)
            .build()
            .unwrap();
        let body_tags: HashSet<u32> = spec
            .productions()
            .iter()
            .flat_map(|p| p.body.edges().iter().map(|e| e.tag.0))
            .collect();
        for e in run.edges() {
            prop_assert!(body_tags.contains(&e.tag.0), "unknown tag {:?}", e.tag);
        }
        for (_, node) in run.nodes() {
            prop_assert!(!spec.is_composite(node.module), "composite node in run");
        }
    }
}
