//! Coverage for the session-oriented prepared-query API: cache
//! behavior, cross-run reuse, the unified error enum, and the
//! star/reachable selection modes cross-checked against the
//! brute-force product-construction referee.

use rpq::prelude::*;
use rpq_automata::compile_minimal_dfa;
use rpq_baselines::Referee;
use rpq_core::{IndexCacheUse, QueryRequest, RpqError};
use rpq_labeling::RunBuilder;
use rpq_workloads::paper_examples;

#[test]
fn plan_cache_counts_hits_and_misses() {
    let session = Session::from_spec(paper_examples::fig2_spec());
    assert_eq!(session.stats(), SessionStats::default());

    let first = session.prepare("_* e _*").unwrap();
    assert_eq!(session.stats().plan_misses, 1);
    assert_eq!(session.stats().plan_hits, 0);

    // Same query, different whitespace: the normalized regex is the key.
    let second = session.prepare("_*   e   _*").unwrap();
    assert_eq!(session.stats().plan_misses, 1);
    assert_eq!(session.stats().plan_hits, 1);
    assert_eq!(first.source(), second.source());

    // A genuinely different query misses.
    session.prepare("_* a _*").unwrap();
    assert_eq!(session.stats().plan_misses, 2);

    // A different policy for the same text is a distinct plan.
    session
        .prepare_with("_* e _*", SubqueryPolicy::AlwaysLabels)
        .unwrap();
    assert_eq!(session.stats().plan_misses, 3);
    assert_eq!(session.stats().plan_hits, 1);
}

#[test]
fn prepared_query_reuses_across_runs_without_recompiling() {
    let session = Session::from_spec(paper_examples::fig2_spec());
    let query = session.prepare("_* e _*").unwrap();
    assert!(query.is_safe());

    for seed in [1u64, 2, 3] {
        let run = RunBuilder::new(session.spec())
            .seed(seed)
            .target_edges(120)
            .build()
            .unwrap();
        let outcome = session.evaluate(
            &query,
            &run,
            &QueryRequest::pairwise(run.entry(), run.exit()),
        );
        // Fig. 2 runs always cross an `e` edge on the entry→exit path
        // only when W3 fired on that path; just require a verdict and
        // cross-check it against the referee.
        let dfa = compile_minimal_dfa(query.regex(), session.spec().n_tags());
        let referee = Referee::new(&run, &dfa);
        assert_eq!(
            outcome.as_bool().unwrap(),
            referee.pairwise(run.entry(), run.exit()),
            "seed {seed}"
        );
    }
    // Three distinct runs, one compile.
    assert_eq!(session.stats().plan_misses, 1);
    assert_eq!(session.stats().plan_hits, 0);
}

#[test]
fn tag_index_is_built_once_per_run_across_queries() {
    let session = Session::from_spec(paper_examples::fig2_spec());
    let run = paper_examples::fig2_run(session.spec());
    let all: Vec<NodeId> = run.node_ids().collect();

    // This test pins the *materialized* pipeline's index-cache
    // plumbing, so it forces that strategy: the lazy product search
    // reads the CSR arena directly and touches the tag-index cache
    // only on a CSR miss, which is not the contract under test.
    let eval = |q: &_, run: &_, request: &_| {
        session.evaluate_with_strategy(q, run, request, EvalStrategy::Materialized)
    };

    // Two *different* composite queries on the same run: the first
    // evaluation builds the index, the second reuses it.
    let q1 = session.prepare("_* a _*").unwrap();
    let q2 = session.prepare("_* d _*").unwrap();
    assert!(!q1.is_safe() && !q2.is_safe());

    let o1 = eval(
        &q1,
        &run,
        &QueryRequest::all_pairs(all.clone(), all.clone()),
    );
    assert_eq!(o1.meta.index_cache, IndexCacheUse::Miss);
    let o2 = eval(
        &q2,
        &run,
        &QueryRequest::all_pairs(all.clone(), all.clone()),
    );
    assert_eq!(o2.meta.index_cache, IndexCacheUse::Hit);
    assert_eq!(session.stats().index_misses, 1);
    assert_eq!(session.stats().index_hits, 1);

    // A different run is a different cache entry...
    let other = RunBuilder::new(session.spec())
        .seed(8)
        .target_edges(90)
        .build()
        .unwrap();
    let o3 = eval(&q1, &other, &QueryRequest::all_pairs(all.clone(), all));
    assert_eq!(o3.meta.index_cache, IndexCacheUse::Miss);
    assert_eq!(session.stats().index_misses, 2);

    // ...while a re-deserialized copy of the first run shares its entry
    // (identity is structural, not by address).
    let copy: rpq_labeling::Run =
        serde_json::from_str(&serde_json::to_string(&run).unwrap()).unwrap();
    let (_, usage) = session.index_for(&copy);
    assert_eq!(usage, IndexCacheUse::Hit);
}

#[test]
fn clear_run_cache_forgets_indexes_but_keeps_plans() {
    let session = Session::from_spec(paper_examples::fig2_spec());
    let run = paper_examples::fig2_run(session.spec());
    let all: Vec<NodeId> = run.node_ids().collect();
    let q = session.prepare("_* a _*").unwrap();

    session.evaluate(&q, &run, &QueryRequest::all_pairs(all.clone(), all.clone()));
    assert_eq!(session.stats().index_misses, 1);

    // Eviction drops the per-run tag index *and* CSR arena...
    session.clear_run_cache();
    let outcome = session.evaluate(&q, &run, &QueryRequest::all_pairs(all.clone(), all));
    assert_eq!(outcome.meta.index_cache, IndexCacheUse::Miss);
    assert_eq!(session.stats().index_misses, 2);

    // ...but compiled plans survive: preparing the same query again is
    // still a cache hit.
    session.prepare("_* a _*").unwrap();
    assert_eq!(session.stats().plan_hits, 1);
    assert_eq!(session.stats().plan_misses, 1);
    // Manual eviction is not an LRU eviction: counters stay at zero.
    assert_eq!(session.stats().index_evictions, 0);
    assert_eq!(session.stats().csr_evictions, 0);
}

#[test]
fn lru_capacity_evicts_least_recently_used_runs() {
    // Capacity 2: the third distinct run evicts the least recently
    // used of the first two.
    let session = Session::from_spec(paper_examples::fig2_spec()).with_cache_capacity(2);
    let q = session.prepare("_* a _*").unwrap();
    let runs: Vec<_> = (0..3)
        .map(|i| {
            RunBuilder::new(session.spec())
                .seed(20 + i)
                .target_edges(60 + 25 * i as usize)
                .build()
                .unwrap()
        })
        .collect();
    let all: Vec<NodeId> = runs[0].node_ids().collect();
    // Forced materialized: LRU recency in the *index* cache is the
    // subject, and only the materialized pipeline touches it on every
    // composite evaluation (lazy refreshes the CSR cache instead).
    let probe = |run| {
        session
            .evaluate_with_strategy(
                &q,
                run,
                &QueryRequest::all_pairs(all.clone(), all.clone()),
                EvalStrategy::Materialized,
            )
            .meta
            .index_cache
    };

    assert_eq!(probe(&runs[0]), IndexCacheUse::Miss);
    assert_eq!(probe(&runs[1]), IndexCacheUse::Miss);
    // Touch run 0 so run 1 becomes the LRU victim.
    assert_eq!(probe(&runs[0]), IndexCacheUse::Hit);
    assert_eq!(probe(&runs[2]), IndexCacheUse::Miss);
    assert!(session.stats().index_evictions >= 1);
    assert!(!session.run_is_cached(&runs[1]), "LRU victim evicted");
    assert!(session.run_is_cached(&runs[0]), "recently-used run kept");
    assert!(session.run_is_cached(&runs[2]));
    // The victim re-enters as a miss; the survivor still hits.
    assert_eq!(probe(&runs[1]), IndexCacheUse::Miss);
    assert_eq!(probe(&runs[2]), IndexCacheUse::Hit);
}

#[test]
fn safe_queries_never_touch_the_index() {
    let session = Session::from_spec(paper_examples::fig2_spec());
    let run = paper_examples::fig2_run(session.spec());
    let q = session.prepare("_* e _*").unwrap();
    assert!(q.is_safe());
    let all: Vec<NodeId> = run.node_ids().collect();
    // Forced materialized: the claim is about the *label-decoding*
    // safe plan, which answers without any per-run artifact. A forced
    // lazy evaluation would legitimately build the CSR arena (and the
    // tag index feeding it) even for a safe query.
    let outcome = session.evaluate_with_strategy(
        &q,
        &run,
        &QueryRequest::all_pairs(all.clone(), all),
        EvalStrategy::Materialized,
    );
    assert_eq!(outcome.meta.index_cache, IndexCacheUse::NotNeeded);
    assert_eq!(session.stats().index_misses, 0);
    assert_eq!(session.stats().index_hits, 0);
}

#[test]
fn rpq_error_converts_from_every_layer() {
    let session = Session::from_spec(paper_examples::fig2_spec());

    // Parse layer.
    let err = session.prepare("(((").unwrap_err();
    assert!(matches!(err, RpqError::Parse(_)), "{err:?}");
    assert!(err.to_string().contains("parse"), "{err}");
    assert!(std::error::Error::source(&err).is_some());

    // Plan layer: strictly-safe compilation of an unsafe query.
    let unsafe_q = session.parse("_* a _*").unwrap();
    let err = session.plan_safe(&unsafe_q).unwrap_err();
    assert!(matches!(err, RpqError::Plan(_)), "{err:?}");
    assert!(err.to_string().contains("unsafe"), "{err}");

    // Grammar layer: an invalid specification converts with `?`.
    fn build_bad_spec() -> Result<Specification, RpqError> {
        let mut b = SpecificationBuilder::new();
        b.composite("S");
        // No production for the start module: validation refuses.
        b.start("S");
        Ok(b.build()?)
    }
    let err = build_bad_spec().unwrap_err();
    assert!(matches!(err, RpqError::Grammar(_)), "{err:?}");

    // Run layer: derivation refuses non-strictly-linear recursion.
    fn derive_bad_run() -> Result<rpq_labeling::Run, RpqError> {
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        b.composite("S");
        // Two recursive productions for one module: cycles share S.
        b.production("S", |w| {
            let x = w.node("t");
            let s = w.node("S");
            w.edge_named(x, s, "p");
        });
        b.production("S", |w| {
            let s = w.node("S");
            let y = w.node("t");
            w.edge_named(s, y, "q");
        });
        b.production("S", |w| {
            w.node("t");
        });
        b.start("S");
        let spec = b.build().map_err(RpqError::from)?;
        Ok(RunBuilder::new(&spec).seed(1).target_edges(30).build()?)
    }
    let err = derive_bad_run().unwrap_err();
    assert!(matches!(err, RpqError::Run(_)), "{err:?}");

    // I/O layer.
    let io = std::fs::read_to_string("/definitely/not/a/file.json").unwrap_err();
    let err = RpqError::from(io);
    assert!(matches!(err, RpqError::Io { .. }), "{err:?}");
}

#[test]
fn star_and_reachable_match_the_referee() {
    for (spec, queries) in [
        (
            paper_examples::fig2_spec(),
            vec!["_* e _*", "_* a _*", "a+"],
        ),
        (paper_examples::fork_spec(), vec!["fork*"]),
    ] {
        let session = Session::from_spec(spec);
        let run = RunBuilder::new(session.spec())
            .seed(4)
            .target_edges(150)
            .build()
            .unwrap();
        let all: Vec<NodeId> = run.node_ids().collect();

        for text in queries {
            let query = session.prepare(text).unwrap();
            let dfa = compile_minimal_dfa(query.regex(), session.spec().n_tags());
            let referee = Referee::new(&run, &dfa);

            // Probe several sources/targets including entry and exit.
            let probes: Vec<NodeId> = all.iter().step_by(all.len() / 8 + 1).copied().collect();
            for &node in probes.iter().chain([run.entry(), run.exit()].iter()) {
                let expected_from = referee.all_pairs(&[node], &all);
                let star = session.evaluate(&query, &run, &QueryRequest::source_star(node));
                assert_eq!(
                    star.as_pairs().unwrap(),
                    &expected_from,
                    "{text}: source star of {node:?}"
                );

                let reach = session.evaluate(&query, &run, &QueryRequest::reachable(node));
                let expected_nodes: Vec<NodeId> = expected_from.iter().map(|(_, v)| v).collect();
                assert_eq!(
                    reach.as_nodes().unwrap(),
                    expected_nodes.as_slice(),
                    "{text}: reachable from {node:?}"
                );

                let expected_to = referee.all_pairs(&all, &[node]);
                let tstar = session.evaluate(&query, &run, &QueryRequest::target_star(node));
                assert_eq!(
                    tstar.as_pairs().unwrap(),
                    &expected_to,
                    "{text}: target star of {node:?}"
                );
            }
        }
    }
}

#[test]
fn naive_policy_agrees_with_cost_and_memo() {
    let session = Session::from_spec(paper_examples::fig2_spec());
    let run = paper_examples::fig2_run(session.spec());
    let all: Vec<NodeId> = run.node_ids().collect();

    for text in ["_* a _*", "_* e _* a _*", "a+", "_* e _*"] {
        let mut results = Vec::new();
        for policy in [
            SubqueryPolicy::CostBased,
            SubqueryPolicy::AlwaysLabels,
            SubqueryPolicy::AlwaysRelational,
        ] {
            let q = session.prepare_with(text, policy).unwrap();
            results.push(session.all_pairs(&q, &run, &all, &all));
        }
        assert_eq!(results[0], results[1], "{text}: cost vs memo");
        assert_eq!(results[0], results[2], "{text}: cost vs naive");
    }
}

#[test]
fn semantic_safety_is_policy_independent() {
    let session = Session::from_spec(paper_examples::fig2_spec());

    // R3 is safe (Definition 13); the naive policy plans it
    // relationally but must not change the verdict.
    let naive = session
        .prepare_with("_* e _*", SubqueryPolicy::AlwaysRelational)
        .unwrap();
    assert!(naive.is_safe(), "R3 stays safe under the naive policy");
    assert_eq!(naive.stats().kind, PlanKind::Composite);

    let unsafe_naive = session
        .prepare_with("_* a _*", SubqueryPolicy::AlwaysRelational)
        .unwrap();
    assert!(!unsafe_naive.is_safe());

    // A safe single-symbol leaf is index-answered (composite plan) yet
    // semantically safe: `b` appears on every entry→exit path of Fig. 2.
    let leaf = session.prepare("b").unwrap();
    assert_eq!(leaf.stats().kind, PlanKind::Composite);
    assert_eq!(leaf.is_safe(), session.is_safe(leaf.regex()));
}
