//! End-to-end pipeline tests spanning every crate.

use rpq::prelude::*;
use rpq_baselines::{Referee, G1, G2, G3};
use rpq_core::{all_pairs_filtered, all_pairs_nested, all_pairs_reachability};
use rpq_labeling::RunBuilder;
use rpq_workloads::{bioaid_like, paper_examples, qblast_like};

#[test]
fn fig2_full_pipeline() {
    let spec = paper_examples::fig2_spec();
    let run = paper_examples::fig2_run(&spec);
    let session = Session::from_spec(spec);

    // The paper's safe query R3.
    let r3 = session.prepare("_* e _*").unwrap();
    assert!(r3.is_safe());

    let n = |s: &str| run.node_by_name(session.spec(), s).unwrap();
    assert!(session.pairwise(&r3, &run, n("c:1"), n("b:1")));
    assert!(!session.pairwise(&r3, &run, n("c:1"), n("b:3")));

    // The paper's unsafe query decomposes and still answers correctly.
    let r4 = session.prepare("_* a _*").unwrap();
    assert!(!r4.is_safe());
    assert!(session.pairwise(&r4, &run, n("c:1"), n("e:2")));
    assert!(!session.pairwise(&r4, &run, n("e:1"), n("b:1")));
}

#[test]
fn realistic_specs_answer_queries_consistently() {
    for realistic in [bioaid_like(), qblast_like()] {
        let name = realistic.name;
        let session = Session::from_spec(realistic.spec);
        let spec = session.spec();
        let run = RunBuilder::new(spec)
            .seed(5)
            .target_edges(800)
            .build()
            .unwrap();
        let (index, _) = session.index_for(&run);
        let nodes = rpq_workloads::runs::sample_nodes(&run, 60, 11);

        let mut qg = rpq_workloads::QueryGen::new(spec, 3);
        for k in [0usize, 1, 2, 3] {
            let q = qg.ifq(k);
            let dfa = rpq_automata::compile_minimal_dfa(&q, spec.n_tags());
            let referee = Referee::new(&run, &dfa);
            let expected = referee.all_pairs(&nodes, &nodes);

            let plan = session.prepare_regex(&q).unwrap();
            let got = session.all_pairs(&plan, &run, &nodes, &nodes);
            assert_eq!(got, expected, "{name} ifq k={k}");

            // Baselines agree too.
            let g1 = G1::new(&index);
            assert_eq!(g1.all_pairs(&q, &nodes, &nodes), expected);
            let g2 = G2::new(&run, &index);
            assert_eq!(g2.all_pairs(&dfa, &nodes, &nodes), expected);
            let g3 = G3::new(spec, &run, &index);
            let syms = rpq_baselines::ifq_symbols(&q).expect("IFQ shape");
            assert_eq!(g3.all_pairs(&syms, &nodes, &nodes), expected);
        }
        // Four queries were evaluated over a single run: the tag index
        // was built by `index_for` above and only ever reused after.
        assert_eq!(session.stats().index_misses, 1, "{name}");
    }
}

#[test]
fn s1_and_s2_agree_on_realistic_specs() {
    let realistic = bioaid_like();
    let session = Session::from_spec(realistic.spec);
    let spec = session.spec();
    let run = RunBuilder::new(spec)
        .seed(2)
        .target_edges(600)
        .build()
        .unwrap();
    let l1 = rpq_workloads::runs::sample_nodes(&run, 80, 1);
    let l2 = rpq_workloads::runs::sample_nodes(&run, 80, 2);

    // Reachability is always safe; compare S1, S2 and the pure
    // reachability merge.
    let q = session.prepare("_*").unwrap();
    let plan = q.safe_plan().expect("reachability is safe");
    let s1 = all_pairs_nested(plan, &run, &l1, &l2);
    let s2 = all_pairs_filtered(plan, spec, &run, &l1, &l2);
    let reach = all_pairs_reachability(spec, &run, &l1, &l2);
    assert_eq!(s1, s2);
    assert_eq!(s1, reach);
}

#[test]
fn kleene_star_over_fork_recursion() {
    let session = Session::from_spec(paper_examples::fork_spec());
    let run = rpq_workloads::runs::simulate_fork(session.spec(), 0, 500, 3).unwrap();

    let q = session.prepare("fork*").unwrap();
    let all: Vec<NodeId> = run.node_ids().collect();
    let got = session.all_pairs(&q, &run, &all, &all);

    let dfa = rpq_automata::compile_minimal_dfa(q.regex(), session.spec().n_tags());
    let referee = Referee::new(&run, &dfa);
    assert_eq!(got, referee.all_pairs(&all, &all));
    // The fork chain produces a quadratic-ish number of matches — the
    // reason the fixpoint baseline struggles (Fig. 13g).
    assert!(got.len() > run.n_nodes());
}

#[test]
fn serde_round_trip_spec_and_run() {
    let spec = paper_examples::fig2_spec();
    let run = paper_examples::fig2_run(&spec);
    let spec_json = serde_json::to_string(&spec).unwrap();
    let run_json = serde_json::to_string(&run).unwrap();
    let spec2: rpq_grammar::Specification = serde_json::from_str(&spec_json).unwrap();
    let run2: rpq_labeling::Run = serde_json::from_str(&run_json).unwrap();
    assert_eq!(spec, spec2);
    assert_eq!(run.n_nodes(), run2.n_nodes());
    assert_eq!(run.edges(), run2.edges());
    // Labels survive the round trip and still decode.
    let session = Session::from_spec(spec2);
    let q = session.prepare("_* e _*").unwrap();
    let n = |s: &str| run2.node_by_name(session.spec(), s).unwrap();
    assert!(session.pairwise(&q, &run2, n("c:1"), n("b:1")));
}
