//! Deep-recursion stress tests for the label decoder, exercising the
//! matrix-power range products over one-, two- and three-phase cycles.

use rpq_automata::compile_minimal_dfa;
use rpq_baselines::Referee;
use rpq_core::{all_pairs_filtered, Session};
use rpq_labeling::{NodeId, RunBuilder};
use rpq_workloads::paper_examples::{three_phase_cycle_spec, two_phase_cycle_spec};
use rpq_workloads::QueryGen;

fn check_spec_against_referee(spec: &rpq_grammar::Specification, run_target: usize) {
    let session = Session::from_spec(spec.clone());
    for run_seed in [1u64, 2, 3] {
        let run = RunBuilder::new(spec)
            .seed(run_seed)
            .target_edges(run_target)
            .build()
            .unwrap();
        let all: Vec<NodeId> = run.node_ids().collect();
        // Sample pairs across recursion depths: first and last 15 nodes
        // in document order plus a mid stripe.
        let doc = run.nodes_in_document_order();
        let mut sample: Vec<NodeId> = Vec::new();
        sample.extend(doc.iter().take(15));
        sample.extend(doc.iter().rev().take(15));
        let mid = doc.len() / 2;
        sample.extend(doc[mid..(mid + 10).min(doc.len())].iter());

        let mut qg = QueryGen::new(spec, run_seed);
        let mut n_safe = 0;
        for i in 0..24 {
            let q = if i < 4 { qg.ifq(i) } else { qg.random_query(4) };
            let Ok(plan) = session.plan_safe(&q) else {
                continue;
            };
            n_safe += 1;
            let dfa = compile_minimal_dfa(&q, spec.n_tags());
            let referee = Referee::new(&run, &dfa);
            // Pairwise across recursion depths.
            for &u in &sample {
                for &v in &sample {
                    assert_eq!(
                        plan.pairwise(&run, u, v),
                        referee.pairwise(u, v),
                        "query {q:?} pair ({u:?}, {v:?}) seed {run_seed}"
                    );
                }
            }
            // Full all-pairs through the tree merge.
            assert_eq!(
                all_pairs_filtered(&plan, spec, &run, &all, &all),
                referee.all_pairs(&all, &all),
                "all-pairs for {q:?} seed {run_seed}"
            );
        }
        assert!(n_safe >= 1, "no safe query generated for seed {run_seed}");
    }
}

#[test]
fn two_phase_cycle_decodes_correctly() {
    check_spec_against_referee(&two_phase_cycle_spec(), 400);
}

#[test]
fn three_phase_cycle_decodes_correctly() {
    check_spec_against_referee(&three_phase_cycle_spec(), 400);
}

#[test]
fn very_deep_single_cycle() {
    // A single self-cycle unfolded thousands of times: the decoder must
    // jump over the chain with matrix powers, and still be exact.
    let spec = rpq_workloads::paper_examples::fig2_spec();
    let session = Session::from_spec(spec.clone());
    let run = RunBuilder::new(&spec)
        .seed(9)
        .target_edges(6000)
        .build()
        .unwrap();

    let q = session.prepare("_* e _*").unwrap();
    let plan = q.safe_plan().expect("R3 is safe for Fig. 2");
    let dfa = compile_minimal_dfa(q.regex(), spec.n_tags());
    let referee = Referee::new(&run, &dfa);

    let doc = run.nodes_in_document_order();
    let stripe: Vec<NodeId> = doc.iter().step_by(doc.len() / 64 + 1).copied().collect();
    for &u in &stripe {
        for &v in &stripe {
            assert_eq!(
                plan.pairwise(&run, u, v),
                referee.pairwise(u, v),
                "pair ({u:?}, {v:?})"
            );
        }
    }
}
