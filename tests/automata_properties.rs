//! Property tests for the automata substrate.

use proptest::prelude::*;
use rpq_automata::{analysis, compile_minimal_dfa, minimize, parse, Dfa, Nfa, Regex, Symbol};

const N_SYMS: usize = 3;

/// Random regex strategy over a 3-symbol alphabet.
fn regex_strategy() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        (0u32..N_SYMS as u32).prop_map(|i| Regex::Sym(Symbol(i))),
        Just(Regex::Wildcard),
        Just(Regex::Epsilon),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::star),
            inner.clone().prop_map(Regex::plus),
            inner.prop_map(Regex::optional),
        ]
    })
}

fn all_words(max_len: usize) -> Vec<Vec<Symbol>> {
    let mut words: Vec<Vec<Symbol>> = vec![vec![]];
    let mut frontier = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for w in &frontier {
            for a in 0..N_SYMS as u32 {
                let mut w2 = w.clone();
                w2.push(Symbol(a));
                next.push(w2);
            }
        }
        words.extend(next.iter().cloned());
        frontier = next;
    }
    words
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// NFA, DFA and minimal DFA all accept exactly the same words.
    #[test]
    fn nfa_dfa_minimal_agree(re in regex_strategy()) {
        let nfa = Nfa::from_regex(&re, N_SYMS);
        let dfa = Dfa::from_nfa(&nfa);
        let min = minimize(&dfa);
        for w in all_words(4) {
            let via_nfa = nfa.accepts(&w);
            prop_assert_eq!(dfa.accepts(&w), via_nfa, "DFA vs NFA on {:?}", w);
            prop_assert_eq!(min.accepts(&w), via_nfa, "minimal vs NFA on {:?}", w);
        }
        // Structural invariants.
        prop_assert!(min.n_states() <= dfa.n_states());
        prop_assert_eq!(min.start(), 0);
        prop_assert_eq!(min.accepts_epsilon(), re.nullable());
    }

    /// Minimization is idempotent and canonical.
    #[test]
    fn minimize_idempotent(re in regex_strategy()) {
        let min = compile_minimal_dfa(&re, N_SYMS);
        prop_assert_eq!(minimize(&min), min.clone());
        prop_assert!(min.equivalent(&min));
    }

    /// Display → parse round-trips the AST.
    #[test]
    fn display_parse_round_trip(re in regex_strategy()) {
        let namer = |s: Symbol| format!("t{}", s.0);
        let rendered = re.display_with(&namer).to_string();
        let reparsed = parse(&rendered, &mut |name| {
            name.strip_prefix('t').and_then(|n| n.parse().ok()).map(Symbol)
        });
        prop_assert!(reparsed.is_ok(), "failed to reparse {rendered:?}");
        prop_assert_eq!(reparsed.unwrap(), re);
    }

    /// Required symbols really are required: removing all transitions on
    /// a required symbol empties the language of non-empty words.
    #[test]
    fn required_symbols_are_required(re in regex_strategy()) {
        let dfa = compile_minimal_dfa(&re, N_SYMS);
        let required = analysis::required_symbols(&dfa);
        for w in all_words(4) {
            if w.is_empty() || !dfa.accepts(&w) {
                continue;
            }
            for &r in &required {
                prop_assert!(
                    w.contains(&r),
                    "accepted word {:?} misses required symbol {:?} of {:?}",
                    w, r, re
                );
            }
        }
    }

    /// Product-intersection semantics on random pairs.
    #[test]
    fn intersection_is_conjunction(a in regex_strategy(), b in regex_strategy()) {
        let da = compile_minimal_dfa(&a, N_SYMS);
        let db = compile_minimal_dfa(&b, N_SYMS);
        let both = da.intersect(&db);
        for w in all_words(3) {
            prop_assert_eq!(
                both.accepts(&w),
                da.accepts(&w) && db.accepts(&w),
                "word {:?}", w
            );
        }
    }

    /// Complement flips membership; double complement is the identity
    /// language (checked via equivalence).
    #[test]
    fn complement_involution(a in regex_strategy()) {
        let da = compile_minimal_dfa(&a, N_SYMS);
        let comp = da.complement();
        for w in all_words(3) {
            prop_assert_eq!(comp.accepts(&w), !da.accepts(&w));
        }
        prop_assert!(da.equivalent(&comp.complement()));
    }

    /// Shortest accepted word length matches brute-force enumeration.
    #[test]
    fn shortest_word_matches_enumeration(re in regex_strategy()) {
        let dfa = compile_minimal_dfa(&re, N_SYMS);
        let brute = all_words(5).into_iter().filter(|w| dfa.accepts(w)).map(|w| w.len()).min();
        match (analysis::shortest_word_len(&dfa), brute) {
            (Some(k), Some(b)) if k <= 5 => prop_assert_eq!(k, b),
            (Some(k), None) => prop_assert!(k > 5, "claimed shortest {k} but nothing ≤ 5"),
            (None, found) => prop_assert_eq!(found, None),
            _ => {}
        }
    }
}
