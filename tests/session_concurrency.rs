//! Hammer one shared `Session` from many threads and prove the
//! service-grade claims the serve layer leans on:
//!
//! * every concurrent outcome equals single-threaded evaluation on a
//!   private referee session — under mixed queries (safe, index leaf,
//!   decomposed composite, relational closure), mixed request modes,
//!   LRU evictions mid-flight and hostile `clear_run_cache` calls;
//! * the cache counters stay consistent: hits + misses always equals
//!   the number of cache interactions, with no drops or double counts
//!   lost to races.

use rpq::prelude::*;
use rpq_core::QueryResult;
use std::sync::atomic::{AtomicUsize, Ordering};

const QUERIES: [(&str, &str); 4] = [
    // (query, policy): one safe plan, one index-answered leaf, one
    // decomposed composite, one pure-relational closure.
    ("_* e _*", "cost"),
    ("a", "cost"),
    ("_* a _*", "cost"),
    ("a+", "naive"),
];

const THREADS: usize = 8;
const ITERS: usize = 48;
const N_RUNS: usize = 6;

fn spec() -> rpq::grammar::Specification {
    rpq::workloads::paper_examples::fig2_spec()
}

fn corpus() -> Vec<Run> {
    let spec = spec();
    (0..N_RUNS)
        .map(|i| {
            RunBuilder::new(&spec)
                .seed(i as u64 + 11)
                .target_edges(60 + 20 * i)
                .build()
                .unwrap()
        })
        .collect()
}

fn policy_of(name: &str) -> SubqueryPolicy {
    match name {
        "naive" => SubqueryPolicy::AlwaysRelational,
        _ => SubqueryPolicy::CostBased,
    }
}

/// The deterministic work item of thread `t`, iteration `i`.
fn schedule(t: usize, i: usize, runs: &[Run]) -> (usize, usize, QueryRequest) {
    let q = (t * 31 + i * 7) % QUERIES.len();
    let r = (t * 13 + i * 5) % runs.len();
    let run = &runs[r];
    let request = match (t + i) % 3 {
        0 => QueryRequest::entry_exit(),
        1 => QueryRequest::source_star(run.entry()),
        _ => QueryRequest::pairwise(run.entry(), run.exit()),
    };
    (q, r, request)
}

#[test]
fn concurrent_outcomes_equal_single_threaded_evaluation() {
    let runs = corpus();

    // Referee: a private session, evaluated single-threaded.
    let referee = Session::from_spec(spec());
    let expected: Vec<Vec<QueryResult>> = (0..THREADS)
        .map(|t| {
            (0..ITERS)
                .map(|i| {
                    let (q, r, request) = schedule(t, i, &runs);
                    let (text, policy) = QUERIES[q];
                    let prepared = referee.prepare_with(text, policy_of(policy)).unwrap();
                    referee.evaluate(&prepared, &runs[r], &request).result
                })
                .collect()
        })
        .collect();

    // Subject: one shared session, tight LRU bound (capacity 2 against
    // 6 runs guarantees evictions while queries are in flight), plus a
    // thread that periodically wipes the run caches outright.
    let session = Session::from_spec(spec()).with_cache_capacity(2);
    let lazy_evals = AtomicUsize::new(0);
    let materialized_composites = AtomicUsize::new(0);
    let prepare_calls = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let session = &session;
            let runs = &runs;
            let expected = &expected;
            let lazy_evals = &lazy_evals;
            let materialized_composites = &materialized_composites;
            let prepare_calls = &prepare_calls;
            scope.spawn(move || {
                for (i, want) in expected[t].iter().enumerate() {
                    let (q, r, request) = schedule(t, i, runs);
                    let (text, policy) = QUERIES[q];
                    // Preparing inside the loop exercises the plan
                    // cache under contention.
                    let prepared = session.prepare_with(text, policy_of(policy)).unwrap();
                    prepare_calls.fetch_add(1, Ordering::Relaxed);
                    let outcome = session.evaluate(&prepared, &runs[r], &request);
                    // The meta records the *resolved* strategy, which
                    // is what drives cache-counter accounting below.
                    if outcome.meta.strategy == EvalStrategy::Lazy {
                        lazy_evals.fetch_add(1, Ordering::Relaxed);
                    } else if prepared.stats().kind == PlanKind::Composite {
                        materialized_composites.fetch_add(1, Ordering::Relaxed);
                    }
                    assert_eq!(
                        &outcome.result, want,
                        "thread {t}, iteration {i}: query {text:?} over run {r} diverged"
                    );
                    // Hostile cache traffic mid-flight.
                    if t == 0 && i % 12 == 11 {
                        session.clear_run_cache();
                    }
                }
            });
        }
    });

    let stats = session.stats();
    // Plan-cache accounting: every prepare call is exactly one hit or
    // one miss (racing compilers each count their own miss), and at
    // least one compilation happened per distinct (query, policy) key.
    assert_eq!(
        stats.plan_hits + stats.plan_misses,
        prepare_calls.load(Ordering::Relaxed) as u64
    );
    assert!(stats.plan_misses >= QUERIES.len() as u64, "{stats:?}");

    // Index accounting: every materialized composite evaluation
    // interacts with the per-run index cache exactly once; a lazy
    // evaluation goes straight to the CSR arena and touches the index
    // only when the arena is cold (one build); materialized safe plans
    // never touch either cache.
    let lazy = lazy_evals.load(Ordering::Relaxed) as u64;
    let materialized = materialized_composites.load(Ordering::Relaxed) as u64;
    let index_uses = stats.index_hits + stats.index_misses;
    assert!(
        index_uses >= materialized && index_uses <= materialized + lazy,
        "index uses {index_uses} outside [{materialized}, {}]: {stats:?}",
        materialized + lazy
    );
    // CSR arenas are fetched exactly once per lazy evaluation and at
    // most once per materialized composite evaluation.
    let csr_uses = stats.csr_hits + stats.csr_misses;
    assert!(
        csr_uses >= lazy && csr_uses <= lazy + materialized,
        "csr uses {csr_uses} outside [{lazy}, {}]: {stats:?}",
        lazy + materialized
    );
    // The tight LRU bound plus clear_run_cache forced rebuilding: with
    // 6 distinct runs through 2-entry caches there must be evictions,
    // and strictly more cold builds than the corpus alone explains.
    assert!(stats.index_evictions + stats.csr_evictions > 0, "{stats:?}");
    assert!(
        stats.index_misses + stats.csr_misses > N_RUNS as u64,
        "{stats:?}"
    );
}

#[test]
fn batch_executor_agrees_with_itself_under_eviction_pressure() {
    // The batch path exercises seed_run_cache + evaluate concurrently;
    // under a 1-entry cache its results must not change.
    let runs = corpus();
    let roomy = Session::from_spec(spec());
    let tight = Session::from_spec(spec()).with_cache_capacity(1);
    let request = QueryRequest::entry_exit();
    for (text, policy) in QUERIES {
        let q_roomy = roomy.prepare_with(text, policy_of(policy)).unwrap();
        let q_tight = tight.prepare_with(text, policy_of(policy)).unwrap();
        let a = roomy.evaluate_batch(
            &q_roomy,
            runs.as_slice(),
            &request,
            &BatchOptions::threads(1),
        );
        let b = tight.evaluate_batch(
            &q_tight,
            runs.as_slice(),
            &request,
            &BatchOptions::threads(6),
        );
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(
                x.outcome.as_ref().unwrap().result,
                y.outcome.as_ref().unwrap().result,
                "query {text:?}"
            );
        }
    }
    assert!(tight.stats().index_evictions > 0);
}
