//! Brute-force ground truth: explicit product-graph search.
//!
//! Section III-B opens with "a simple algorithm": intersect the *run*
//! with the query DFA and test port reachability. That algorithm is
//! linear in run size — too slow to be the paper's answer, but perfect as
//! a referee for property tests: every other evaluator in this workspace
//! must agree with it.

use rpq_automata::{Dfa, Symbol};
use rpq_labeling::{NodeId, Run};
use rpq_relalg::NodePairSet;

/// Product-graph evaluator over one run and one DFA.
pub struct Referee<'a> {
    run: &'a Run,
    dfa: &'a Dfa,
}

impl<'a> Referee<'a> {
    /// Bind to a run and a (complete) DFA.
    pub fn new(run: &'a Run, dfa: &'a Dfa) -> Referee<'a> {
        Referee { run, dfa }
    }

    /// All `(node, state)` product states reachable from `(u, q0)`,
    /// returned as a per-node bitmask of states.
    fn forward_states(&self, u: NodeId) -> Vec<u64> {
        let nq = self.dfa.n_states();
        assert!(nq <= 64, "referee uses u64 state masks");
        let mut masks = vec![0u64; self.run.n_nodes()];
        let mut stack: Vec<(NodeId, u32)> = vec![(u, self.dfa.start())];
        masks[u.index()] |= 1 << self.dfa.start();
        while let Some((x, q)) = stack.pop() {
            for &(y, tag) in self.run.out_edges(x) {
                let q2 = self.dfa.next(q, Symbol(tag.0));
                if masks[y.index()] >> q2 & 1 == 0 {
                    masks[y.index()] |= 1 << q2;
                    stack.push((y, q2));
                }
            }
        }
        masks
    }

    /// Pairwise `u —R→ v`.
    pub fn pairwise(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return self.dfa.accepts_epsilon();
        }
        let masks = self.forward_states(u);
        let mut accepting = 0u64;
        for (q, &acc) in self.dfa.accepting().iter().enumerate() {
            if acc {
                accepting |= 1 << q;
            }
        }
        masks[v.index()] & accepting != 0
    }

    /// All-pairs over `l1 × l2`.
    pub fn all_pairs(&self, l1: &[NodeId], l2: &[NodeId]) -> NodePairSet {
        let mut accepting = 0u64;
        for (q, &acc) in self.dfa.accepting().iter().enumerate() {
            if acc {
                accepting |= 1 << q;
            }
        }
        let mut l2sorted: Vec<NodeId> = l2.to_vec();
        l2sorted.sort_unstable();
        l2sorted.dedup();
        let eps = self.dfa.accepts_epsilon();
        let mut out = Vec::new();
        let mut l1sorted: Vec<NodeId> = l1.to_vec();
        l1sorted.sort_unstable();
        l1sorted.dedup();
        for &u in &l1sorted {
            let masks = self.forward_states(u);
            for &v in &l2sorted {
                let hit = if u == v {
                    eps
                } else {
                    masks[v.index()] & accepting != 0
                };
                if hit {
                    out.push((u, v));
                }
            }
        }
        NodePairSet::from_pairs(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::{compile_minimal_dfa, Regex};
    use rpq_grammar::SpecificationBuilder;
    use rpq_labeling::RunBuilder;

    #[test]
    fn referee_on_tiny_chain() {
        let mut b = SpecificationBuilder::new();
        for m in ["x", "y", "z"] {
            b.atomic(m);
        }
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("x");
            let y = w.node("y");
            let z = w.node("z");
            w.edge_named(x, y, "p");
            w.edge_named(y, z, "q");
        });
        b.start("S");
        let spec = b.build().unwrap();
        let run = RunBuilder::new(&spec).build().unwrap();

        let p = Symbol(spec.tag_by_name("p").unwrap().0);
        let q = Symbol(spec.tag_by_name("q").unwrap().0);

        // p q exactly.
        let dfa = compile_minimal_dfa(
            &Regex::concat(vec![Regex::Sym(p), Regex::Sym(q)]),
            spec.n_tags(),
        );
        let referee = Referee::new(&run, &dfa);
        assert!(referee.pairwise(run.entry(), run.exit()));

        // p alone does not take entry to exit.
        let dfa_p = compile_minimal_dfa(&Regex::Sym(p), spec.n_tags());
        let referee_p = Referee::new(&run, &dfa_p);
        assert!(!referee_p.pairwise(run.entry(), run.exit()));

        // ε on self pairs.
        let star = compile_minimal_dfa(&Regex::any_star(), spec.n_tags());
        let referee_s = Referee::new(&run, &star);
        assert!(referee_s.pairwise(run.entry(), run.entry()));
        let plus = compile_minimal_dfa(&Regex::plus(Regex::Wildcard), spec.n_tags());
        let referee_pl = Referee::new(&run, &plus);
        assert!(!referee_pl.pairwise(run.entry(), run.entry()));
    }

    #[test]
    fn all_pairs_dedups_inputs() {
        let mut b = SpecificationBuilder::new();
        b.atomic("x");
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("x");
            let y = w.node("x");
            w.edge_named(x, y, "t");
        });
        b.start("S");
        let spec = b.build().unwrap();
        let run = RunBuilder::new(&spec).build().unwrap();
        let dfa = compile_minimal_dfa(&Regex::any_star(), spec.n_tags());
        let referee = Referee::new(&run, &dfa);
        let l: Vec<NodeId> = run.node_ids().chain(run.node_ids()).collect();
        let res = referee.all_pairs(&l, &l);
        assert_eq!(res.len(), 3); // (e,e), (e,x), (x,x)
    }
}
