//! Baseline **G2**: rare-label decomposition + bidirectional search
//! (Koschmieder & Leser, SSDBM 2012 — the paper's Option G2).
//!
//! The approach picks a *rare label* — a symbol that (a) occurs in every
//! word of the query language and (b) matches few run edges — and splits
//! the search at its occurrences: a backward product search from each
//! rare edge toward candidate sources and a forward product search toward
//! candidate targets. Queries without a required symbol fall back to a
//! plain forward product search per source (still linear in run size,
//! which is the point of comparison with the label-based approach).

use rpq_automata::{required_symbols, Dfa, Symbol};
use rpq_grammar::Tag;
use rpq_labeling::{NodeId, Run};
use rpq_relalg::{NodePairSet, TagIndex};

/// G2 evaluator bound to one run.
pub struct G2<'a> {
    run: &'a Run,
    index: &'a TagIndex,
}

impl<'a> G2<'a> {
    /// Bind to a run and its tag index.
    pub fn new(run: &'a Run, index: &'a TagIndex) -> G2<'a> {
        G2 { run, index }
    }

    /// Pick the rare label for a query DFA: the required symbol with the
    /// fewest matching edges.
    pub fn rare_label(&self, dfa: &Dfa) -> Option<Symbol> {
        let required = required_symbols(dfa);
        let tags: Vec<Tag> = required.iter().map(|s| Tag(s.0)).collect();
        self.index.rarest(&tags).map(|t| Symbol(t.0))
    }

    /// All-pairs over `l1 × l2`.
    pub fn all_pairs(&self, dfa: &Dfa, l1: &[NodeId], l2: &[NodeId]) -> NodePairSet {
        let mut l1s = l1.to_vec();
        l1s.sort_unstable();
        l1s.dedup();
        let mut l2s = l2.to_vec();
        l2s.sort_unstable();
        l2s.dedup();

        let mut out: Vec<(NodeId, NodeId)> = Vec::new();
        if dfa.accepts_epsilon() {
            for &u in &l1s {
                if l2s.binary_search(&u).is_ok() {
                    out.push((u, u));
                }
            }
        }

        match self.rare_label(dfa) {
            Some(rare) => {
                self.all_pairs_via_rare(dfa, rare, &l1s, &l2s, &mut out);
            }
            None => {
                // Fallback: forward product search per source.
                let accepting = accepting_mask(dfa);
                for &u in &l1s {
                    let masks = forward(self.run, dfa, u);
                    for &v in &l2s {
                        if v != u && masks[v.index()] & accepting != 0 {
                            out.push((u, v));
                        }
                    }
                }
            }
        }
        NodePairSet::from_pairs(out)
    }

    fn all_pairs_via_rare(
        &self,
        dfa: &Dfa,
        rare: Symbol,
        l1: &[NodeId],
        l2: &[NodeId],
        out: &mut Vec<(NodeId, NodeId)>,
    ) {
        // l1/l2 arrive sorted and deduplicated: candidate membership is
        // a binary search, not a per-call hash set.
        let accepting = accepting_mask(dfa);

        for (x, y) in self.index.edges(Tag(rare.0)).iter() {
            // Which DFA transitions does this edge realize?
            for q1 in 0..dfa.n_states() as u32 {
                let q2 = dfa.next(q1, rare);
                // Backward: sources u ∈ l1 with a path u → x driving the
                // DFA from start to q1.
                let sources = backward_sources(self.run, dfa, x, q1, l1);
                if sources.is_empty() {
                    continue;
                }
                // Forward: targets v ∈ l2 with a path y → v driving the
                // DFA from q2 to acceptance.
                let targets = forward_targets(self.run, dfa, y, q2, accepting, l2);
                for &u in &sources {
                    for &v in &targets {
                        out.push((u, v));
                    }
                }
            }
        }
    }

    /// Pairwise query: product BFS bounded by the pair.
    pub fn pairwise(&self, dfa: &Dfa, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return dfa.accepts_epsilon();
        }
        let accepting = accepting_mask(dfa);
        let masks = forward(self.run, dfa, u);
        masks[v.index()] & accepting != 0
    }
}

fn accepting_mask(dfa: &Dfa) -> u64 {
    let mut mask = 0u64;
    for (q, &acc) in dfa.accepting().iter().enumerate() {
        if acc {
            mask |= 1 << q;
        }
    }
    mask
}

/// Forward product reachability from `(u, start)`.
fn forward(run: &Run, dfa: &Dfa, u: NodeId) -> Vec<u64> {
    let mut masks = vec![0u64; run.n_nodes()];
    masks[u.index()] |= 1 << dfa.start();
    let mut stack = vec![(u, dfa.start())];
    while let Some((x, q)) = stack.pop() {
        for &(y, tag) in run.out_edges(x) {
            let q2 = dfa.next(q, Symbol(tag.0));
            if masks[y.index()] >> q2 & 1 == 0 {
                masks[y.index()] |= 1 << q2;
                stack.push((y, q2));
            }
        }
    }
    masks
}

/// Nodes `u ∈ candidates` (sorted) that can reach `(x, q1)` starting
/// from `(u, start)` — computed by a backward product search.
fn backward_sources(
    run: &Run,
    dfa: &Dfa,
    x: NodeId,
    q1: u32,
    candidates: &[NodeId],
) -> Vec<NodeId> {
    let mut masks = vec![0u64; run.n_nodes()];
    masks[x.index()] |= 1 << q1;
    let mut stack = vec![(x, q1)];
    while let Some((y, q)) = stack.pop() {
        for &(w, tag) in run.in_edges(y) {
            // All predecessor states p with δ(p, tag) = q.
            for p in 0..dfa.n_states() as u32 {
                if dfa.next(p, Symbol(tag.0)) == q && masks[w.index()] >> p & 1 == 0 {
                    masks[w.index()] |= 1 << p;
                    stack.push((w, p));
                }
            }
        }
    }
    candidates
        .iter()
        .copied()
        .filter(|u| masks[u.index()] >> dfa.start() & 1 == 1)
        .collect()
}

/// Nodes `v ∈ candidates` (sorted) reachable from `(y, q2)` at an
/// accepting state.
fn forward_targets(
    run: &Run,
    dfa: &Dfa,
    y: NodeId,
    q2: u32,
    accepting: u64,
    candidates: &[NodeId],
) -> Vec<NodeId> {
    let mut masks = vec![0u64; run.n_nodes()];
    masks[y.index()] |= 1 << q2;
    let mut stack = vec![(y, q2)];
    while let Some((x, q)) = stack.pop() {
        for &(z, tag) in run.out_edges(x) {
            let q3 = dfa.next(q, Symbol(tag.0));
            if masks[z.index()] >> q3 & 1 == 0 {
                masks[z.index()] |= 1 << q3;
                stack.push((z, q3));
            }
        }
    }
    candidates
        .iter()
        .copied()
        .filter(|v| masks[v.index()] & accepting != 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Referee;
    use rpq_automata::{compile_minimal_dfa, Regex};
    use rpq_grammar::SpecificationBuilder;
    use rpq_labeling::RunBuilder;

    fn spec() -> rpq_grammar::Specification {
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        b.atomic("u");
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("t");
            let s = w.node("S");
            let y = w.node("u");
            w.edge_named(x, s, "fwd");
            w.edge_named(s, y, "bwd");
        });
        b.production("S", |w| {
            let x = w.node("t");
            let y = w.node("u");
            w.edge_named(x, y, "mid");
        });
        b.start("S");
        b.build().unwrap()
    }

    #[test]
    fn rare_label_is_the_infrequent_one() {
        let spec = spec();
        let run = RunBuilder::new(&spec)
            .seed(2)
            .target_edges(100)
            .build()
            .unwrap();
        let index = TagIndex::build(&run, spec.n_tags());
        let g2 = G2::new(&run, &index);
        let mid = Symbol(spec.tag_by_name("mid").unwrap().0);
        // ⎵* mid ⎵* requires mid, which occurs exactly once.
        let dfa = compile_minimal_dfa(&Regex::ifq(&[mid]), spec.n_tags());
        assert_eq!(g2.rare_label(&dfa), Some(mid));
        // Plain reachability has no required symbol.
        let star = compile_minimal_dfa(&Regex::any_star(), spec.n_tags());
        assert_eq!(g2.rare_label(&star), None);
    }

    #[test]
    fn g2_matches_referee() {
        let spec = spec();
        let run = RunBuilder::new(&spec)
            .seed(5)
            .target_edges(80)
            .build()
            .unwrap();
        let index = TagIndex::build(&run, spec.n_tags());
        let g2 = G2::new(&run, &index);
        let all: Vec<NodeId> = run.node_ids().collect();
        let sym = |n: &str| Symbol(spec.tag_by_name(n).unwrap().0);

        let queries = vec![
            Regex::any_star(),
            Regex::ifq(&[sym("mid")]),
            Regex::ifq(&[sym("fwd"), sym("mid")]),
            Regex::plus(Regex::Sym(sym("fwd"))),
            Regex::concat(vec![
                Regex::Sym(sym("fwd")),
                Regex::star(Regex::Wildcard),
                Regex::Sym(sym("bwd")),
            ]),
        ];
        for q in &queries {
            let dfa = compile_minimal_dfa(q, spec.n_tags());
            let referee = Referee::new(&run, &dfa);
            assert_eq!(
                g2.all_pairs(&dfa, &all, &all),
                referee.all_pairs(&all, &all),
                "query {q:?}"
            );
            // Spot-check pairwise agreement on a few pairs.
            for &u in all.iter().take(6) {
                for &v in all.iter().rev().take(6) {
                    assert_eq!(g2.pairwise(&dfa, u, v), referee.pairwise(u, v));
                }
            }
        }
    }
}
