//! Baseline **G1**: bottom-up parse-tree evaluation with joins
//! (Li & Moon, VLDB 2001 — the paper's Option G1).
//!
//! "This approach treats a regular expression as a (binary/unary) tree,
//! where leaves are single symbols, and internal nodes are union,
//! concatenation, or Kleene star. We then evaluate the tree bottom-up."
//! Every subexpression materializes its full node-pair relation, which is
//! exactly why the approach drowns in intermediate results on lowly
//! selective subqueries and unbounded Kleene fixpoints (Fig. 13g/13h).

use rpq_automata::Regex;
use rpq_grammar::Tag;
use rpq_labeling::{NodeId, Run};
use rpq_relalg::{compose_in, transitive_closure_in, NodePairSet, Relation, TagIndex};

/// G1 evaluator bound to one run (through its tag index).
pub struct G1<'a> {
    index: &'a TagIndex,
}

impl<'a> G1<'a> {
    /// Bind to a prebuilt tag index.
    pub fn new(index: &'a TagIndex) -> G1<'a> {
        G1 { index }
    }

    /// Evaluate a regex bottom-up to its full relation. Joins and
    /// fixpoints dispatch through the kernel-aware relalg operators
    /// (the run's node count — stored on the index — bounds the
    /// bitset universe), so G1 benefits from the bit-parallel kernel
    /// exactly as the decomposed evaluator's unsafe remainders do.
    pub fn eval(&self, regex: &Regex) -> Relation {
        let n_nodes = self.index.n_nodes();
        match regex {
            Regex::Empty => Relation::empty(),
            Regex::Epsilon => Relation::epsilon(),
            Regex::Sym(s) => Relation::from_pairs(self.index.edges(Tag(s.0)).clone()),
            Regex::Wildcard => Relation::from_pairs(self.index.all_edges().clone()),
            Regex::Concat(parts) => {
                let mut rel = self.eval(&parts[0]);
                for p in &parts[1..] {
                    if rel.pairs.is_empty() && !rel.identity {
                        return Relation::empty();
                    }
                    rel = compose_in(&rel, &self.eval(p), n_nodes);
                }
                rel
            }
            Regex::Alt(parts) => {
                let mut rel = Relation::empty();
                for p in parts {
                    rel = rel.union(&self.eval(p));
                }
                rel
            }
            Regex::Star(inner) => {
                let base = self.eval(inner);
                Relation {
                    pairs: transitive_closure_in(&base.pairs, n_nodes),
                    identity: true,
                }
            }
            Regex::Plus(inner) => {
                let base = self.eval(inner);
                Relation {
                    pairs: transitive_closure_in(&base.pairs, n_nodes),
                    identity: base.identity,
                }
            }
            Regex::Optional(inner) => {
                let base = self.eval(inner);
                Relation {
                    pairs: base.pairs,
                    identity: true,
                }
            }
        }
    }

    /// All-pairs over `l1 × l2`: one merge pass over the sorted
    /// relation ([`Relation::select_pairs`]) instead of an
    /// `|l1|·|l2|` membership product.
    pub fn all_pairs(&self, regex: &Regex, l1: &[NodeId], l2: &[NodeId]) -> NodePairSet {
        self.eval(regex).select_pairs(l1, l2)
    }

    /// Pairwise query (evaluates the whole relation — G1 has no better
    /// pairwise mode, which the paper exploits).
    pub fn pairwise(&self, regex: &Regex, u: NodeId, v: NodeId) -> bool {
        self.eval(regex).contains(u, v)
    }

    /// The run is only needed by callers for node lists; expose nothing
    /// else to keep the baseline honest (no labels, no grammar).
    pub fn index(&self) -> &TagIndex {
        self.index
    }
}

/// Convenience: build the index and evaluate once (tests).
pub fn eval_once(run: &Run, n_tags: usize, regex: &Regex) -> Relation {
    let index = TagIndex::build(run, n_tags);
    G1::new(&index).eval(regex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::{compile_minimal_dfa, Symbol};
    use rpq_grammar::SpecificationBuilder;
    use rpq_labeling::RunBuilder;

    fn linear_rec_spec() -> rpq_grammar::Specification {
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        b.atomic("u");
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("t");
            let s = w.node("S");
            let y = w.node("u");
            w.edge_named(x, s, "fwd");
            w.edge_named(s, y, "bwd");
        });
        b.production("S", |w| {
            let x = w.node("t");
            let y = w.node("u");
            w.edge_named(x, y, "mid");
        });
        b.start("S");
        b.build().unwrap()
    }

    #[test]
    fn g1_matches_referee_on_assorted_queries() {
        let spec = linear_rec_spec();
        let run = RunBuilder::new(&spec)
            .seed(3)
            .target_edges(60)
            .build()
            .unwrap();
        let index = TagIndex::build(&run, spec.n_tags());
        let g1 = G1::new(&index);
        let all: Vec<NodeId> = run.node_ids().collect();

        let sym = |name: &str| Symbol(spec.tag_by_name(name).unwrap().0);
        let queries = vec![
            Regex::any_star(),
            Regex::ifq(&[sym("mid")]),
            Regex::plus(Regex::Sym(sym("fwd"))),
            Regex::concat(vec![
                Regex::star(Regex::Sym(sym("fwd"))),
                Regex::Sym(sym("mid")),
                Regex::star(Regex::Sym(sym("bwd"))),
            ]),
            Regex::alt(vec![Regex::Sym(sym("fwd")), Regex::Sym(sym("bwd"))]),
            Regex::Epsilon,
            Regex::Empty,
        ];
        for q in &queries {
            let dfa = compile_minimal_dfa(q, spec.n_tags());
            let referee = crate::Referee::new(&run, &dfa);
            assert_eq!(
                g1.all_pairs(q, &all, &all),
                referee.all_pairs(&all, &all),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn full_star_is_reachability() {
        let spec = linear_rec_spec();
        let run = RunBuilder::new(&spec)
            .seed(1)
            .target_edges(40)
            .build()
            .unwrap();
        let rel = eval_once(&run, spec.n_tags(), &Regex::any_star());
        assert!(rel.identity);
        // entry reaches exit.
        assert!(rel.contains(run.entry(), run.exit()));
        assert!(!rel.contains(run.exit(), run.entry()));
    }
}
