//! Baseline **G3**: tag index + reachability labels for IFQs.
//!
//! For queries of the infrequent form `R = ⎵* a1 ⎵* a2 … ⎵* ak ⎵*`
//! (Section IV-B, Option G3): fetch the edge list of every `ai` from the
//! index, then chain-join consecutive lists with *reachability* tests
//! answered from the labels of Bao et al. — here, the 1-state reachability
//! plan of `rpq-core`. The cost profile is exactly the paper's: great for
//! highly selective symbol lists, miserable when the lists are long.

use rpq_automata::{Regex, Symbol};
use rpq_core::SafeQueryPlan;
use rpq_grammar::{Specification, Tag};
use rpq_labeling::{NodeId, Run};
use rpq_relalg::{NodePairSet, TagIndex};

/// Extract the symbol sequence of an IFQ, if the regex has that shape.
///
/// Accepts `⎵*`, `⎵* a ⎵*`, `⎵* a ⎵* b ⎵*`, … — i.e. an alternation-free
/// concatenation of `⎵*` separators and single symbols with `⎵*` at both
/// ends.
pub fn ifq_symbols(regex: &Regex) -> Option<Vec<Symbol>> {
    fn is_any_star(r: &Regex) -> bool {
        matches!(r, Regex::Star(inner) if matches!(**inner, Regex::Wildcard))
    }
    match regex {
        r if is_any_star(r) => Some(Vec::new()),
        Regex::Concat(parts) => {
            // Expect: ⎵* (sym ⎵*)+
            if parts.len() < 3 || parts.len() % 2 == 0 || !is_any_star(&parts[0]) {
                return None;
            }
            let mut syms = Vec::new();
            for chunk in parts[1..].chunks(2) {
                match (&chunk[0], chunk.get(1)) {
                    (Regex::Sym(s), Some(sep)) if is_any_star(sep) => syms.push(*s),
                    _ => return None,
                }
            }
            Some(syms)
        }
        _ => None,
    }
}

/// G3 evaluator: index lookups chained with label-based reachability.
pub struct G3<'a> {
    run: &'a Run,
    index: &'a TagIndex,
    /// The 1-state reachability plan (the labels of ref [3]/[4]).
    reach: SafeQueryPlan,
}

impl<'a> G3<'a> {
    /// Build for a specification and run. Panics only if the spec is not
    /// strictly linear (callers validated at derivation time).
    pub fn new(spec: &Specification, run: &'a Run, index: &'a TagIndex) -> G3<'a> {
        let dfa = rpq_automata::compile_minimal_dfa(&Regex::any_star(), spec.n_tags());
        let reach = SafeQueryPlan::compile(spec, dfa).expect("reachability is always safe");
        G3 { run, index, reach }
    }

    /// Reachability with equality: `u = v` or `u ⇝ v`.
    #[inline]
    fn reach_eq(&self, u: NodeId, v: NodeId) -> bool {
        u == v || self.reach.pairwise(self.run, u, v)
    }

    /// All-pairs for the IFQ with the given symbol sequence.
    pub fn all_pairs(&self, symbols: &[Symbol], l1: &[NodeId], l2: &[NodeId]) -> NodePairSet {
        let mut l1s = l1.to_vec();
        l1s.sort_unstable();
        l1s.dedup();
        let mut l2s = l2.to_vec();
        l2s.sort_unstable();
        l2s.dedup();

        if symbols.is_empty() {
            // Plain reachability (including self pairs: ε ∈ ⎵*).
            let mut out = Vec::new();
            for &u in &l1s {
                for &v in &l2s {
                    if self.reach_eq(u, v) {
                        out.push((u, v));
                    }
                }
            }
            return NodePairSet::from_pairs(out);
        }

        // Stage 0: sources joined to the first symbol's edge list.
        let first = self.index.edges(Tag(symbols[0].0));
        let mut frontier: Vec<(NodeId, NodeId)> = Vec::new(); // (u, y_i)
        for &u in &l1s {
            for (x, y) in first.iter() {
                if self.reach_eq(u, x) {
                    frontier.push((u, y));
                }
            }
        }
        frontier.sort_unstable();
        frontier.dedup();

        // Chain through the remaining symbols. Many frontier entries
        // share their mid node, so probe the reachability labels once
        // per distinct mid instead of once per (entry, edge).
        for s in &symbols[1..] {
            let edges = self.index.edges(Tag(s.0));
            if edges.is_empty() {
                return NodePairSet::new();
            }
            let mids = distinct_seconds(&frontier);
            let hops: Vec<Vec<NodeId>> = mids
                .iter()
                .map(|&yi| {
                    edges
                        .iter()
                        .filter(|&(x, _)| self.reach_eq(yi, x))
                        .map(|(_, y)| y)
                        .collect()
                })
                .collect();
            let mut next = Vec::new();
            for &(u, yi) in &frontier {
                let slot = mids.binary_search(&yi).expect("mid collected above");
                next.extend(hops[slot].iter().map(|&y| (u, y)));
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
            if frontier.is_empty() {
                return NodePairSet::new();
            }
        }

        // Final stage: join to targets, again once per distinct end.
        let ends = distinct_seconds(&frontier);
        let closures: Vec<Vec<NodeId>> = ends
            .iter()
            .map(|&yk| {
                l2s.iter()
                    .copied()
                    .filter(|&v| self.reach_eq(yk, v))
                    .collect()
            })
            .collect();
        let mut out = Vec::new();
        for &(u, yk) in &frontier {
            let slot = ends.binary_search(&yk).expect("end collected above");
            out.extend(closures[slot].iter().map(|&v| (u, v)));
        }
        NodePairSet::from_pairs(out)
    }

    /// Pairwise IFQ query.
    pub fn pairwise(&self, symbols: &[Symbol], u: NodeId, v: NodeId) -> bool {
        if symbols.is_empty() {
            return self.reach_eq(u, v);
        }
        // Chain with the pair's endpoints fixed.
        let first = self.index.edges(Tag(symbols[0].0));
        let mut frontier: Vec<NodeId> = first
            .iter()
            .filter(|&(x, _)| self.reach_eq(u, x))
            .map(|(_, y)| y)
            .collect();
        frontier.sort_unstable();
        frontier.dedup();
        for s in &symbols[1..] {
            let edges = self.index.edges(Tag(s.0));
            let mut next: Vec<NodeId> = Vec::new();
            for &yi in &frontier {
                for (x, y) in edges.iter() {
                    if self.reach_eq(yi, x) {
                        next.push(y);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
            if frontier.is_empty() {
                return false;
            }
        }
        frontier.iter().any(|&yk| self.reach_eq(yk, v))
    }
}

/// The sorted distinct second components of a sorted pair list.
fn distinct_seconds(pairs: &[(NodeId, NodeId)]) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = pairs.iter().map(|&(_, y)| y).collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Referee;
    use rpq_automata::compile_minimal_dfa;
    use rpq_grammar::SpecificationBuilder;
    use rpq_labeling::RunBuilder;

    #[test]
    fn ifq_recognizer() {
        let s0 = Symbol(0);
        let s1 = Symbol(1);
        assert_eq!(ifq_symbols(&Regex::any_star()), Some(vec![]));
        assert_eq!(ifq_symbols(&Regex::ifq(&[s0])), Some(vec![s0]));
        assert_eq!(ifq_symbols(&Regex::ifq(&[s0, s1])), Some(vec![s0, s1]));
        assert_eq!(ifq_symbols(&Regex::Sym(s0)), None);
        assert_eq!(
            ifq_symbols(&Regex::concat(vec![Regex::Sym(s0), Regex::Sym(s1)])),
            None
        );
        assert_eq!(ifq_symbols(&Regex::plus(Regex::Sym(s0))), None);
    }

    #[test]
    fn g3_matches_referee_on_ifqs() {
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        b.atomic("u");
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("t");
            let s = w.node("S");
            let y = w.node("u");
            w.edge_named(x, s, "fwd");
            w.edge_named(s, y, "bwd");
        });
        b.production("S", |w| {
            let x = w.node("t");
            let y = w.node("u");
            w.edge_named(x, y, "mid");
        });
        b.start("S");
        let spec = b.build().unwrap();
        let run = RunBuilder::new(&spec)
            .seed(9)
            .target_edges(120)
            .build()
            .unwrap();
        let index = TagIndex::build(&run, spec.n_tags());
        let g3 = G3::new(&spec, &run, &index);
        let all: Vec<NodeId> = run.node_ids().collect();
        let sym = |n: &str| Symbol(spec.tag_by_name(n).unwrap().0);

        for syms in [
            vec![],
            vec![sym("mid")],
            vec![sym("fwd"), sym("mid")],
            vec![sym("fwd"), sym("mid"), sym("bwd")],
            vec![sym("mid"), sym("mid")], // unsatisfiable: mid occurs once
        ] {
            let regex = Regex::ifq(&syms);
            let dfa = compile_minimal_dfa(&regex, spec.n_tags());
            let referee = Referee::new(&run, &dfa);
            assert_eq!(
                g3.all_pairs(&syms, &all, &all),
                referee.all_pairs(&all, &all),
                "symbols {syms:?}"
            );
            for &u in all.iter().take(5) {
                for &v in all.iter().rev().take(5) {
                    assert_eq!(
                        g3.pairwise(&syms, u, v),
                        referee.pairwise(u, v),
                        "pair {u:?},{v:?} symbols {syms:?}"
                    );
                }
            }
        }
    }
}
