#![warn(missing_docs)]

//! Baseline RPQ evaluators and the brute-force referee.
//!
//! The paper compares against three prior approaches (Section IV-B):
//!
//! * **G1** ([`g1`]) — Li & Moon: represent the query as a parse tree and
//!   evaluate bottom-up with relational joins;
//! * **G2** ([`g2`]) — Koschmieder & Leser: decompose at *rare labels*
//!   and run bidirectional searches from the rare-edge occurrences;
//! * **G3** ([`g3`]) — per-symbol tag index + reachability labels for
//!   infrequent-form queries `⎵* a1 ⎵* … ak ⎵*`.
//!
//! [`referee`] is not from the paper: it is the obviously-correct product
//! construction of Section III-B ("augment each module in the run with
//! input and output ports representing the states of a DFA"), used as
//! ground truth by the test suite.

pub mod g1;
pub mod g2;
pub mod g3;
pub mod referee;

pub use g1::G1;
pub use g2::G2;
pub use g3::{ifq_symbols, G3};
pub use referee::Referee;
