//! Cardinality estimation and join ordering for decomposed plans.
//!
//! The paper's conclusion names a cost model as future work: "building a
//! cost model to predict the intermediate result size so as to optimize
//! the query process". This module provides a simple, documented one:
//!
//! * leaf relations are estimated from the tag index (exact for single
//!   symbols and wildcards);
//! * composition uses the uniform-containment assumption
//!   `|A ∘ B| ≈ |A|·|B| / n`, unions add, Kleene closure multiplies by
//!   the run's average path expansion (capped at `n²`);
//! * concatenation chains are associated with the classic matrix-chain
//!   dynamic program over these estimates, minimizing the size of
//!   intermediate relations the joins must materialize.
//!
//! Estimates steer *plan shape* only — results are exact regardless.

use crate::general::PlanNode;
use rpq_relalg::TagIndex;

/// Modeled semi-naive rounds factor of the pair-kernel fixpoint: each
/// closure pair is hashed, pushed, and re-sorted into the result.
pub const PAIR_CLOSURE_FACTOR: f64 = 4.0;

/// Modeled cost of one blocked-bitset word OR relative to one hashed
/// pair touch: words are branch-free, sequential, and discover up to
/// 64 pairs at once (see `rpq_relalg::kernel::HASH_OP_COST`).
pub const WORD_VS_PAIR_DISCOUNT: f64 =
    rpq_relalg::kernel::WORD_OP_COST / rpq_relalg::kernel::HASH_OP_COST;

/// Cardinality estimator over one run.
#[derive(Debug, Clone)]
pub struct CostModel {
    n_nodes: f64,
    n_edges: f64,
    per_tag: Vec<f64>,
}

impl CostModel {
    /// Build from the run's tag index.
    pub fn new(index: &TagIndex, n_nodes: usize) -> CostModel {
        let per_tag: Vec<f64> = (0..index.n_tags())
            .map(|t| index.count(rpq_grammar::Tag(t as u32)) as f64)
            .collect();
        CostModel {
            n_nodes: n_nodes as f64,
            n_edges: per_tag.iter().sum(),
            per_tag,
        }
    }

    /// Estimated pair count of a plan node's relation.
    pub fn estimate(&self, node: &PlanNode) -> f64 {
        match node {
            PlanNode::Empty => 0.0,
            PlanNode::Epsilon => self.n_nodes,
            PlanNode::Sym(t) => self.per_tag.get(t.index()).copied().unwrap_or(0.0),
            PlanNode::Wildcard => self.n_edges,
            // A safe subquery's result is bounded by reachable pairs;
            // without deeper statistics assume DAG reachability density
            // ~ n·√n (chains give n²/2, shallow forests n·depth).
            PlanNode::SafeEval(..) => self.n_nodes * self.n_nodes.max(1.0).sqrt(),
            PlanNode::Concat(children) => {
                let mut est = self.estimate(&children[0]);
                for c in &children[1..] {
                    est = self.compose_estimate(est, self.estimate(c));
                }
                est
            }
            PlanNode::Alt(children) => children.iter().map(|c| self.estimate(c)).sum(),
            PlanNode::Star(inner) | PlanNode::Plus(inner) => {
                self.closure_estimate(self.estimate(inner))
            }
            PlanNode::Optional(inner) => self.estimate(inner) + self.n_nodes,
        }
    }

    /// `|A ∘ B|` under uniform containment.
    pub fn compose_estimate(&self, a: f64, b: f64) -> f64 {
        if self.n_nodes == 0.0 {
            return 0.0;
        }
        a * b / self.n_nodes
    }

    /// `|A⁺|`: closure expansion, capped by the all-pairs bound.
    ///
    /// Calibration note: `ln n` expansion (the classic chain-count
    /// heuristic) badly underestimates reachability-style closures on
    /// provenance DAGs, whose transitive closures are dense; `√n`
    /// reproduces the observed blowups on the Fig. 15 workload while
    /// leaving genuinely sparse closures cheap.
    pub fn closure_estimate(&self, a: f64) -> f64 {
        (a * self.n_nodes.max(1.0).sqrt()).min(self.n_nodes * self.n_nodes)
    }

    /// Total relational *work* of evaluating a plan node: the sum of
    /// every intermediate relation's estimated size (joins and closures
    /// pay for what they materialize). Used to decide between relational
    /// evaluation and the label-based merge for safe subqueries.
    pub fn work_estimate(&self, node: &PlanNode) -> f64 {
        match node {
            PlanNode::Empty | PlanNode::Epsilon => 1.0,
            PlanNode::Sym(_) | PlanNode::Wildcard => self.estimate(node),
            // Should the caller hand us a nested safe subquery, its own
            // evaluation would touch the candidate pairs of the
            // universe; surface that as expensive.
            PlanNode::SafeEval(..) => self.n_nodes * self.n_nodes,
            PlanNode::Concat(children) => {
                let mut work = 0.0;
                let mut est = self.estimate(&children[0]);
                work += self.work_estimate(&children[0]);
                for c in &children[1..] {
                    work += self.work_estimate(c);
                    est = self.compose_estimate(est, self.estimate(c));
                    work += est;
                }
                work
            }
            PlanNode::Alt(children) => {
                children.iter().map(|c| self.work_estimate(c)).sum::<f64>() + self.estimate(node)
            }
            PlanNode::Star(inner) | PlanNode::Plus(inner) => {
                self.work_estimate(inner) + self.closure_op_work(self.estimate(inner))
            }
            PlanNode::Optional(inner) => self.work_estimate(inner) + self.estimate(inner),
        }
    }

    /// Work (in equivalent pair touches) of one transitive-closure
    /// operator over a base relation of estimated size `base_est`.
    ///
    /// The pair kernel pays [`PAIR_CLOSURE_FACTOR`] per closure pair
    /// (hash + re-sort); the bit kernel pays one `⌈n/64⌉`-word row OR
    /// per closure pair plus the pair↔bitset conversions, each word
    /// discounted by [`WORD_VS_PAIR_DISCOUNT`]. The condensation kernel
    /// pays per *base* pair instead of per closure pair — one row OR per
    /// distinct condensation edge, plus the linear Tarjan walk and the
    /// `n`-row output write — which is why it dominates on deep sparse
    /// graphs whose closures dwarf their bases. The dispatcher in
    /// `rpq_relalg::kernel` picks the cheapest strategy at evaluation
    /// time, so the model charges the minimum of the three under auto
    /// mode — and the forced kernel's cost under an override, keeping
    /// the cost-based policy honest in `--kernel` A/B runs.
    pub fn closure_op_work(&self, base_est: f64) -> f64 {
        let closure = self.closure_estimate(base_est);
        let pair_work = PAIR_CLOSURE_FACTOR * closure;
        if !rpq_relalg::kernel::bits_representable(self.n_nodes as usize) {
            return pair_work;
        }
        let wpr = (self.n_nodes / 64.0).ceil().max(1.0);
        let bit_work = WORD_VS_PAIR_DISCOUNT * wpr * (closure + 3.0 * self.n_nodes);
        // Condensation: row ORs bounded by the base's edges (distinct
        // condensation edges never exceed them), the n-row output copy,
        // and the Tarjan walk at roughly one pair touch per node+edge.
        let scc_work = WORD_VS_PAIR_DISCOUNT * wpr * (base_est + 2.0 * self.n_nodes)
            + 0.25 * (self.n_nodes + base_est);
        // Under a forced mode, charge the kernel that will actually
        // run — the auto minimum would mislead the policy choice in
        // `--kernel pairs` A/B runs.
        match rpq_relalg::kernel_mode() {
            rpq_relalg::KernelMode::ForcePairs => pair_work,
            rpq_relalg::KernelMode::ForceBits => bit_work,
            rpq_relalg::KernelMode::ForceScc => scc_work,
            rpq_relalg::KernelMode::Auto => pair_work.min(bit_work).min(scc_work),
        }
    }

    /// Optimal association order for composing a concatenation chain:
    /// the matrix-chain DP over pair-count estimates. Returns a binary
    /// association tree as nested split indices: `splits[i][j]` is the
    /// split point of segment `i..=j`.
    pub fn chain_order(&self, sizes: &[f64]) -> ChainOrder {
        let m = sizes.len();
        debug_assert!(m >= 1);
        // cost[i][j]: cheapest total intermediate size for segment i..=j;
        // est[i][j]: its estimated result size.
        let idx = |i: usize, j: usize| i * m + j;
        let mut cost = vec![0.0f64; m * m];
        let mut est = vec![0.0f64; m * m];
        let mut split = vec![0usize; m * m];
        for i in 0..m {
            est[idx(i, i)] = sizes[i];
        }
        for len in 2..=m {
            for i in 0..=(m - len) {
                let j = i + len - 1;
                let mut best = f64::INFINITY;
                let mut best_k = i;
                let mut best_est = 0.0;
                for k in i..j {
                    let left = est[idx(i, k)];
                    let right = est[idx(k + 1, j)];
                    let out = self.compose_estimate(left, right);
                    let total = cost[idx(i, k)] + cost[idx(k + 1, j)] + out;
                    if total < best {
                        best = total;
                        best_k = k;
                        best_est = out;
                    }
                }
                cost[idx(i, j)] = best;
                est[idx(i, j)] = best_est;
                split[idx(i, j)] = best_k;
            }
        }
        ChainOrder { m, split }
    }
}

/// Association tree for a concatenation chain.
#[derive(Debug)]
pub struct ChainOrder {
    m: usize,
    split: Vec<usize>,
}

impl ChainOrder {
    /// The split point of the segment `i..=j`.
    pub fn split_of(&self, i: usize, j: usize) -> usize {
        self.split[i * self.m + j]
    }

    /// Chain length.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Is the chain trivial?
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_grammar::Tag;

    fn model(n_nodes: usize, counts: &[usize]) -> CostModel {
        CostModel {
            n_nodes: n_nodes as f64,
            n_edges: counts.iter().sum::<usize>() as f64,
            per_tag: counts.iter().map(|&c| c as f64).collect(),
        }
    }

    #[test]
    fn leaf_estimates_are_exact() {
        let m = model(100, &[5, 50]);
        assert_eq!(m.estimate(&PlanNode::Sym(Tag(0))), 5.0);
        assert_eq!(m.estimate(&PlanNode::Sym(Tag(1))), 50.0);
        assert_eq!(m.estimate(&PlanNode::Wildcard), 55.0);
        assert_eq!(m.estimate(&PlanNode::Epsilon), 100.0);
        assert_eq!(m.estimate(&PlanNode::Empty), 0.0);
    }

    #[test]
    fn compose_shrinks_with_selective_sides() {
        let m = model(1000, &[]);
        let joined = m.compose_estimate(10.0, 10.0);
        assert!(joined < 10.0);
        let big = m.compose_estimate(5000.0, 5000.0);
        assert!(big > 5000.0);
    }

    #[test]
    fn chain_order_prefers_selective_first() {
        // Sizes [1000, 1, 1000]: composing the two big ends last loses;
        // the DP must split at the small middle.
        let m = model(100, &[]);
        let order = m.chain_order(&[1000.0, 1.0, 1000.0]);
        // Optimal association: either (A·B)·C or A·(B·C) — both confine
        // one big operand per join. The losing split would not exist in
        // a 3-chain, so check a 4-chain where it matters:
        let order4 = m.chain_order(&[1000.0, 1.0, 1.0, 1000.0]);
        // Best plan joins the middle small pair first: split at 0 or 2
        // overall, never pairing the two 1000s directly.
        let s = order4.split_of(0, 3);
        assert!(s == 0 || s == 2, "split {s}");
        let _ = order;
    }

    #[test]
    fn closure_is_capped() {
        let m = model(10, &[]);
        assert!(m.closure_estimate(1e12) <= 100.0 + 1e-9);
    }
}
