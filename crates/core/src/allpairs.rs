//! All-pairs safe queries (Section IV-A, Algorithm 2).
//!
//! Three evaluation strategies, matching the paper's experiment labels:
//!
//! * [`all_pairs_nested`] — **Option S1 / "RPL"**: nested loop over
//!   `l1 × l2` with the constant-time pairwise decode per pair,
//!   `Θ(|l1|·|l2|)`.
//! * [`all_pairs_filtered`] — **Option S2 / "optRPL"**: Algorithm 2.
//!   Both lists become projections of the compressed parse tree
//!   ([`ListTree`]); a simultaneous top-down merge emits exactly the
//!   *reachable* candidate pairs (Case 1: same simple workflow, Case 2:
//!   recursion with red/blue coloring). Each emitted group shares its
//!   decode "bridge", so filtering costs one forward mask per source,
//!   one backward mask per target and a single AND per pair. Runs in
//!   `O(|G|³·max(|l1|,|l2|) + N)` with `N` the reachable-pair count.
//! * [`all_pairs_reachability`] — Algorithm 2 with no filter: the
//!   optimal input+output-linear all-pairs reachability evaluator the
//!   paper obtains "as a side effect".

use crate::plan::{Bridge, SafeQueryPlan};
use rpq_grammar::Specification;
use rpq_labeling::{LabelEntry, ListTree, NodeId, Run};
use rpq_relalg::NodePairSet;

/// Option S1: nested-loop structural join with O(1) pairwise decodes.
pub fn all_pairs_nested(
    plan: &SafeQueryPlan,
    run: &Run,
    l1: &[NodeId],
    l2: &[NodeId],
) -> NodePairSet {
    let mut out = Vec::new();
    for &u in l1 {
        for &v in l2 {
            if plan.pairwise(run, u, v) {
                out.push((u, v));
            }
        }
    }
    NodePairSet::from_pairs(out)
}

/// Option S2: Algorithm 2 — reachable pairs as a filtering step, with
/// group-factorized decodes on each candidate group.
pub fn all_pairs_filtered(
    plan: &SafeQueryPlan,
    spec: &Specification,
    run: &Run,
    l1: &[NodeId],
    l2: &[NodeId],
) -> NodePairSet {
    let merger = Merger {
        spec,
        run,
        t1: ListTree::build(run, l1),
        t2: ListTree::build(run, l2),
        emit_filter: if plan.is_reachability() {
            None
        } else {
            Some(plan)
        },
        epsilon: plan.accepts_epsilon(),
    };
    merger.run()
}

/// Algorithm 2 without the filter: all-pairs *reachability* in time
/// linear in input and output.
pub fn all_pairs_reachability(
    spec: &Specification,
    run: &Run,
    l1: &[NodeId],
    l2: &[NodeId],
) -> NodePairSet {
    let merger = Merger {
        spec,
        run,
        t1: ListTree::build(run, l1),
        t2: ListTree::build(run, l2),
        emit_filter: None,
        epsilon: true, // u ⇝ u holds under plain reachability
    };
    merger.run()
}

struct Merger<'a> {
    spec: &'a Specification,
    run: &'a Run,
    t1: ListTree,
    t2: ListTree,
    emit_filter: Option<&'a SafeQueryPlan>,
    epsilon: bool,
}

impl Merger<'_> {
    fn run(&self) -> NodePairSet {
        let mut out = Vec::new();
        if self.t1.n_leaves() == 0 || self.t2.n_leaves() == 0 {
            return NodePairSet::new();
        }
        self.merge(0, 0, 0, &mut out);
        NodePairSet::from_pairs(out)
    }

    /// Emit the cross product of two leaf groups. With a filter plan,
    /// all pairs of the group share `bridge`: each source contributes a
    /// forward mask, each target a backward mask, each pair one AND
    /// (Algorithm 2's `output` subroutine, line 8, batched).
    ///
    /// `u_anchor` / `v_anchor` are the label depths of the group anchors
    /// (entries strictly below them feed the chains).
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        us: &[NodeId],
        u_anchor: usize,
        vs: &[NodeId],
        v_anchor: usize,
        bridge: Option<Bridge>,
        out: &mut Vec<(NodeId, NodeId)>,
    ) {
        match (self.emit_filter, bridge) {
            (Some(plan), Some(bridge)) => {
                let w_us: Vec<u64> = us
                    .iter()
                    .map(|&u| plan.source_mask(&self.run.label(u).entries()[u_anchor..], &bridge))
                    .collect();
                let a_vs: Vec<u64> = vs
                    .iter()
                    .map(|&v| plan.target_mask(&self.run.label(v).entries()[v_anchor..]))
                    .collect();
                for (&u, &w) in us.iter().zip(&w_us) {
                    if w == 0 {
                        continue;
                    }
                    for (&v, &a) in vs.iter().zip(&a_vs) {
                        if w & a != 0 {
                            out.push((u, v));
                        }
                    }
                }
            }
            _ => {
                for &u in us {
                    for &v in vs {
                        out.push((u, v));
                    }
                }
            }
        }
    }

    fn merge(&self, n1: u32, n2: u32, depth: usize, out: &mut Vec<(NodeId, NodeId)>) {
        let a = self.t1.node(n1);
        let b = self.t2.node(n2);

        // Same tree position holding a leaf in both lists: the self pair.
        if let (Some(u), Some(v)) = (a.leaf, b.leaf) {
            debug_assert_eq!(u, v, "equal labels denote the same node");
            if self.epsilon {
                out.push((u, v));
            }
        }
        if a.children.is_empty() || b.children.is_empty() {
            return;
        }

        // All children of one node share their entry kind.
        let is_rec = matches!(
            self.t1.node(a.children[0]).entry,
            Some(LabelEntry::Rec { .. })
        );
        if is_rec {
            self.merge_recursion(a, b, depth, out);
        } else {
            self.merge_production(a, b, depth, out);
        }
    }

    /// Case 1: children come from the same simple workflow.
    fn merge_production(
        &self,
        a: &rpq_labeling::ListTreeNode,
        b: &rpq_labeling::ListTreeNode,
        depth: usize,
        out: &mut Vec<(NodeId, NodeId)>,
    ) {
        for &c1 in &a.children {
            let (k1, i) = prod_entry(self.t1.node(c1).entry);
            for &c2 in &b.children {
                let (k2, j) = prod_entry(self.t2.node(c2).entry);
                debug_assert_eq!(k1, k2, "same parent node fired one production");
                if i == j {
                    self.merge(c1, c2, depth + 1, out);
                } else {
                    let body = &self.spec.production(k1).body;
                    if body.reaches(i, j) {
                        let bridge = self
                            .emit_filter
                            .map(|plan| plan.bridge_production(k1, i, j));
                        self.emit(
                            &self.t1.leaves_under(c1),
                            depth + 1,
                            &self.t2.leaves_under(c2),
                            depth + 1,
                            bridge,
                            out,
                        );
                    }
                }
            }
        }
    }

    /// Case 2: children are recursion unfoldings; merge-join by index
    /// with red/blue edge coloring.
    fn merge_recursion(
        &self,
        a: &rpq_labeling::ListTreeNode,
        b: &rpq_labeling::ListTreeNode,
        depth: usize,
        out: &mut Vec<(NodeId, NodeId)>,
    ) {
        // Set=: equal unfolding index → recurse (merge join).
        let (mut x, mut y) = (0usize, 0usize);
        while x < a.children.len() && y < b.children.len() {
            let ia = rec_entry(self.t1.node(a.children[x]).entry);
            let ib = rec_entry(self.t2.node(b.children[y]).entry);
            match ia.2.cmp(&ib.2) {
                std::cmp::Ordering::Equal => {
                    self.merge(a.children[x], b.children[y], depth + 1, out);
                    x += 1;
                    y += 1;
                }
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
            }
        }

        // Set<: u under child at index i < j = v's index, u's top body
        // position reaching the recursive position (a "red" grandchild):
        // leaves under the red grandchild reach all leaves under v.
        let mut x = 0usize;
        let mut red_prefix: Vec<(u32, u32, rpq_grammar::ProductionId, usize, Vec<NodeId>)> =
            Vec::new();
        for &c2 in &b.children {
            let (cycle, phase, ib) = rec_entry(self.t2.node(c2).entry);
            while x < a.children.len() {
                let (_, _, ia) = rec_entry(self.t1.node(a.children[x]).entry);
                if ia >= ib {
                    break;
                }
                let c1 = a.children[x];
                for &g in &self.t1.node(c1).children {
                    if let Some((k, i)) = try_prod_entry(self.t1.node(g).entry) {
                        if self.is_red(k, i) {
                            red_prefix.push((ia, 0, k, i, self.t1.leaves_under(g)));
                        }
                    }
                }
                x += 1;
            }
            let v_leaves = self.t2.leaves_under(c2);
            for (ia, _, k, i, reds) in &red_prefix {
                let bridge = self
                    .emit_filter
                    .map(|plan| plan.bridge_rec_desc(cycle, phase, *ia, ib, *k, *i));
                // u anchor: below the red grandchild (depth+2);
                // v anchor: below the recursion child (depth+1).
                self.emit(reds, depth + 2, &v_leaves, depth + 1, bridge, out);
            }
        }

        // Set>: u under child at index i > j = v's index, v having
        // "blue" grandchildren (reachable from the recursive position).
        let mut y = 0usize;
        let mut blue_prefix: Vec<(u32, rpq_grammar::ProductionId, usize, Vec<NodeId>)> = Vec::new();
        for &c1 in &a.children {
            let (cycle, phase, ia) = rec_entry(self.t1.node(c1).entry);
            while y < b.children.len() {
                let (_, _, ib) = rec_entry(self.t2.node(b.children[y]).entry);
                if ib >= ia {
                    break;
                }
                let c2 = b.children[y];
                for &g in &self.t2.node(c2).children {
                    if let Some((k, j)) = try_prod_entry(self.t2.node(g).entry) {
                        if self.is_blue(k, j) {
                            blue_prefix.push((ib, k, j, self.t2.leaves_under(g)));
                        }
                    }
                }
                y += 1;
            }
            let u_leaves = self.t1.leaves_under(c1);
            for (ib, k, j, blues) in &blue_prefix {
                let bridge = self
                    .emit_filter
                    .map(|plan| plan.bridge_rec_asc(cycle, phase, ia, *ib, *k, *j));
                // u anchor: below the recursion child (depth+1);
                // v anchor: below the blue grandchild (depth+2).
                self.emit(&u_leaves, depth + 1, blues, depth + 2, bridge, out);
            }
        }
    }

    /// Red: position `i` of cycle production `k` reaches the recursive
    /// position ("v ⇝ v′ in W").
    fn is_red(&self, k: rpq_grammar::ProductionId, i: usize) -> bool {
        match self.spec.recursion().cycle_of_production(k) {
            Some((_, rec_pos)) => self.spec.production(k).body.reaches(i, rec_pos as usize),
            None => false, // exit production: no deeper unfolding
        }
    }

    /// Blue: the recursive position reaches position `j` ("v′ ⇝ v in W").
    fn is_blue(&self, k: rpq_grammar::ProductionId, j: usize) -> bool {
        match self.spec.recursion().cycle_of_production(k) {
            Some((_, rec_pos)) => self.spec.production(k).body.reaches(rec_pos as usize, j),
            None => false,
        }
    }
}

fn prod_entry(e: Option<LabelEntry>) -> (rpq_grammar::ProductionId, usize) {
    match e {
        Some(LabelEntry::Prod { production, pos }) => (production, pos as usize),
        other => unreachable!("expected production entry, got {other:?}"),
    }
}

fn try_prod_entry(e: Option<LabelEntry>) -> Option<(rpq_grammar::ProductionId, usize)> {
    match e {
        Some(LabelEntry::Prod { production, pos }) => Some((production, pos as usize)),
        _ => None,
    }
}

fn rec_entry(e: Option<LabelEntry>) -> (u16, u16, u32) {
    match e {
        Some(LabelEntry::Rec {
            cycle,
            start_phase,
            idx,
        }) => (cycle, start_phase, idx),
        other => unreachable!("expected recursion entry, got {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SafeQueryPlan;
    use rpq_automata::{compile_minimal_dfa, parse, Symbol};
    use rpq_grammar::{ProductionId, SpecificationBuilder};
    use rpq_labeling::{RunBuilder, Scripted};

    fn fig2() -> Specification {
        let mut b = SpecificationBuilder::new();
        for m in ["a", "b", "c", "d", "e"] {
            b.atomic(m);
        }
        for m in ["S", "A", "B"] {
            b.composite(m);
        }
        b.production("S", |w| {
            let c = w.node("c");
            let a = w.node("A");
            let bb = w.node("B");
            let b2 = w.node("b");
            // W1 is a diamond: c feeds both A and B, which both feed b
            // (the only shape consistent with Examples 3.1 and 3.2).
            w.edge(c, a);
            w.edge(c, bb);
            w.edge(a, b2);
            w.edge(bb, b2);
        });
        b.production("A", |w| {
            let a = w.node("a");
            let aa = w.node("A");
            let d = w.node("d");
            // The paper's unsafe example ⎵* a ⎵* needs an `a` tag that
            // only W2 executions cross.
            w.edge_named(a, aa, "a");
            w.edge(aa, d);
        });
        b.production("A", |w| {
            let e1 = w.node("e");
            let e2 = w.node("e");
            w.edge(e1, e2);
        });
        b.production("B", |w| {
            let b1 = w.node("b");
            let b2 = w.node("b");
            w.edge(b1, b2);
        });
        b.start("S");
        b.build().unwrap()
    }

    fn plan(spec: &Specification, text: &str) -> SafeQueryPlan {
        let re = parse(text, &mut |n| spec.tag_by_name(n).map(|t| Symbol(t.0))).unwrap();
        SafeQueryPlan::compile(spec, compile_minimal_dfa(&re, spec.n_tags())).unwrap()
    }

    fn fig2_run(spec: &Specification) -> Run {
        RunBuilder::new(spec)
            .policy(Scripted::new([
                ProductionId(0),
                ProductionId(1),
                ProductionId(1),
                ProductionId(2),
                ProductionId(3),
            ]))
            .build()
            .unwrap()
    }

    #[test]
    fn filtered_matches_nested_on_fig2() {
        let spec = fig2();
        let run = fig2_run(&spec);
        let all: Vec<NodeId> = run.node_ids().collect();
        for q in ["_*", "_* e _*", "_* b _*", "d d", "d+", "b+"] {
            let p = plan(&spec, q);
            let nested = all_pairs_nested(&p, &run, &all, &all);
            let filtered = all_pairs_filtered(&p, &spec, &run, &all, &all);
            assert_eq!(nested, filtered, "query {q}");
        }
    }

    #[test]
    fn reachability_tree_merge_matches_bfs() {
        let spec = fig2();
        let run = RunBuilder::new(&spec)
            .seed(7)
            .target_edges(600)
            .build()
            .unwrap();
        let all: Vec<NodeId> = run.node_ids().collect();
        let result = all_pairs_reachability(&spec, &run, &all, &all);

        // BFS ground truth from every node.
        let mut expected = Vec::new();
        for u in run.node_ids() {
            let mut seen = vec![false; run.n_nodes()];
            let mut stack = vec![u];
            seen[u.index()] = true;
            while let Some(x) = stack.pop() {
                for &(to, _) in run.out_edges(x) {
                    if !seen[to.index()] {
                        seen[to.index()] = true;
                        stack.push(to);
                    }
                }
            }
            for v in run.node_ids() {
                if seen[v.index()] {
                    expected.push((u, v));
                }
            }
        }
        assert_eq!(result, NodePairSet::from_pairs(expected));
    }

    #[test]
    fn example_3_1_all_pairs() {
        // All-pairs over l1 = {d:1, d:2, e:2}, l2 = {b:1, b:2} for the
        // paper's Example 3.1 analogues: with tags following the
        // head-name convention, ⎵* b matches exactly the pairs the paper
        // lists for R1 and b matches the single pair of R2.
        let spec = fig2();
        let run = fig2_run(&spec);
        let n = |s: &str| run.node_by_name(&spec, s).unwrap();
        let l1 = vec![n("d:1"), n("d:2"), n("e:2")];
        let l2 = vec![n("b:1"), n("b:2")];

        let r1 = plan(&spec, "_* b");
        let got = all_pairs_filtered(&r1, &spec, &run, &l1, &l2);
        let expect = NodePairSet::from_pairs(vec![
            (n("d:1"), n("b:1")),
            (n("d:2"), n("b:1")),
            (n("e:2"), n("b:1")),
        ]);
        assert_eq!(got, expect);

        let r2 = plan(&spec, "b");
        let got = all_pairs_filtered(&r2, &spec, &run, &l1, &l2);
        let expect = NodePairSet::from_pairs(vec![(n("d:1"), n("b:1"))]);
        assert_eq!(got, expect);
    }

    #[test]
    fn disjoint_lists_and_empty_lists() {
        let spec = fig2();
        let run = fig2_run(&spec);
        let p = plan(&spec, "_*");
        assert!(all_pairs_filtered(&p, &spec, &run, &[], &[]).is_empty());
        let some = vec![run.entry()];
        assert!(all_pairs_filtered(&p, &spec, &run, &some, &[]).is_empty());
        // Self pair under reachability.
        let self_pairs = all_pairs_filtered(&p, &spec, &run, &some, &some);
        assert_eq!(self_pairs.len(), 1);
    }

    #[test]
    fn filtered_matches_nested_on_larger_runs() {
        let spec = fig2();
        for seed in 0..4u64 {
            let run = RunBuilder::new(&spec)
                .seed(seed)
                .target_edges(300)
                .build()
                .unwrap();
            let all: Vec<NodeId> = run.node_ids().collect();
            for q in ["_* e _*", "d d", "b+"] {
                let p = plan(&spec, q);
                let nested = all_pairs_nested(&p, &run, &all, &all);
                let filtered = all_pairs_filtered(&p, &spec, &run, &all, &all);
                assert_eq!(nested, filtered, "seed {seed} query {q}");
            }
        }
    }
}
