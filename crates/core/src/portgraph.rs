//! Port-graph closures of production bodies under a query DFA.
//!
//! This module realizes the query-intersected specification `G_R` of
//! Section III-B *implicitly*: instead of materializing modules with
//! `|Q|` input/output ports, it computes — per production body — the
//! state-transition matrices between all port pairs the decoder and the
//! safety check need:
//!
//! * `between[i][j]`: transitions from the **output** of body node `i` to
//!   the **input** of body node `j` (crossing edges and intermediate
//!   modules' λ matrices);
//! * `up[i]`: from the output of node `i` to the body's output (the
//!   sink's output port);
//! * `down[j]`: from the body's input (the source's input port) to the
//!   input of node `j`;
//! * `head`: from body input to body output — the candidate λ of the
//!   production's head module.

use crate::matrix::StateMatrix;
use rpq_automata::{Dfa, Symbol};
use rpq_grammar::SimpleWorkflow;
use serde::{Deserialize, Serialize};

/// All port-to-port closures of one production body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BodyMatrices {
    /// `between[i * n + j]`: out(i) → in(j). Zero matrix when no path.
    between: Vec<StateMatrix>,
    /// `up[i]`: out(i) → body output.
    up: Vec<StateMatrix>,
    /// `down[j]`: body input → in(j).
    down: Vec<StateMatrix>,
    /// body input → body output: the head module's candidate λ.
    head: StateMatrix,
    n: usize,
}

impl BodyMatrices {
    /// Compute closures for `body`, given the λ matrix of every module
    /// (λ must already be defined for all modules occurring in `body`).
    ///
    /// `lambda_of` maps a body position's module to its λ matrix.
    pub fn compute(
        body: &SimpleWorkflow,
        dfa: &Dfa,
        lambda_of: &dyn Fn(rpq_grammar::ModuleId) -> StateMatrix,
    ) -> BodyMatrices {
        let n = body.n_nodes();
        let q = dfa.n_states();
        let lambdas: Vec<StateMatrix> = body.nodes().iter().map(|&m| lambda_of(m)).collect();

        // Edge transition matrices, shared per distinct tag on demand.
        let edge_matrix = |tag: rpq_grammar::Tag| StateMatrix::from_dfa_symbol(dfa, Symbol(tag.0));

        // between[i][j] over increasing j (nodes are topologically
        // ordered, so all edges go forward).
        let mut between = vec![StateMatrix::zero(q); n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let mut acc = StateMatrix::zero(q);
                for e in body.edges_into(j) {
                    let m = e.src as usize;
                    let step = edge_matrix(e.tag);
                    if m == i {
                        acc.or_assign(&step);
                    } else if m > i {
                        // out(i) → in(m), through m's λ, over the edge.
                        let via = between[i * n + m].mul(&lambdas[m]).mul(&step);
                        acc.or_assign(&via);
                    }
                }
                between[i * n + j] = acc;
            }
        }

        let source = body.source();
        let sink = body.sink();

        let up: Vec<StateMatrix> = (0..n)
            .map(|i| {
                if i == sink {
                    StateMatrix::identity(q)
                } else {
                    between[i * n + sink].mul(&lambdas[sink])
                }
            })
            .collect();

        let down: Vec<StateMatrix> = (0..n)
            .map(|j| {
                if j == source {
                    StateMatrix::identity(q)
                } else {
                    lambdas[source].mul(&between[source * n + j])
                }
            })
            .collect();

        let head = if source == sink {
            lambdas[source].clone()
        } else {
            lambdas[source]
                .mul(&between[source * n + sink])
                .mul(&lambdas[sink])
        };

        BodyMatrices {
            between,
            up,
            down,
            head,
            n,
        }
    }

    /// out(i) → in(j).
    #[inline]
    pub fn between(&self, i: usize, j: usize) -> &StateMatrix {
        &self.between[i * self.n + j]
    }

    /// out(i) → body output.
    #[inline]
    pub fn up(&self, i: usize) -> &StateMatrix {
        &self.up[i]
    }

    /// body input → in(j).
    #[inline]
    pub fn down(&self, j: usize) -> &StateMatrix {
        &self.down[j]
    }

    /// body input → body output (candidate λ of the head).
    pub fn head(&self) -> &StateMatrix {
        &self.head
    }

    /// Number of body nodes these matrices cover.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Do the invariants [`BodyMatrices::compute`] establishes hold
    /// for a DFA of dimension `q`? Serde deserialization bypasses the
    /// constructor, so loaders of persisted matrices must check.
    pub fn is_well_formed(&self, q: usize) -> bool {
        self.between.len() == self.n * self.n
            && self.up.len() == self.n
            && self.down.len() == self.n
            && self
                .between
                .iter()
                .chain(self.up.iter())
                .chain(self.down.iter())
                .chain(std::iter::once(&self.head))
                .all(|m| m.dim() == q && m.is_well_formed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::{compile_minimal_dfa, Regex, Symbol};
    use rpq_grammar::{Specification, SpecificationBuilder};

    /// S -> x -e-> y -f-> z, all atomic.
    fn chain_spec() -> Specification {
        let mut b = SpecificationBuilder::new();
        for m in ["x", "y", "z"] {
            b.atomic(m);
        }
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("x");
            let y = w.node("y");
            let z = w.node("z");
            w.edge_named(x, y, "e");
            w.edge_named(y, z, "f");
        });
        b.start("S");
        b.build().unwrap()
    }

    #[test]
    fn chain_matrices_track_dfa_states() {
        let spec = chain_spec();
        // Query: ⎵* e ⎵* — 2-state DFA, q0 -e-> qf.
        let e = Symbol(spec.tag_by_name("e").unwrap().0);
        let dfa = compile_minimal_dfa(&Regex::ifq(&[e]), spec.n_tags());
        assert_eq!(dfa.n_states(), 2);
        let body = &spec.productions()[0].body;
        let id = StateMatrix::identity(2);
        let bm = BodyMatrices::compute(body, &dfa, &|_| id.clone());

        // out(x) → in(y): one e-edge, so q0 → qf and qf → qf.
        let b01 = bm.between(0, 1);
        assert!(b01.get(0, 1));
        assert!(b01.get(1, 1));
        assert!(!b01.get(0, 0));

        // out(x) → in(z): e then f — still lands in qf from q0.
        let b02 = bm.between(0, 2);
        assert!(b02.get(0, 1));
        assert!(!b02.get(0, 0));

        // out(y) → in(z): only the f-edge, which keeps states.
        let b12 = bm.between(1, 2);
        assert!(b12.get(0, 0));
        assert!(b12.get(1, 1));
        assert!(!b12.get(0, 1));

        // head: in(x) → out(z) passes the e edge.
        assert!(bm.head().get(0, 1));
        assert!(!bm.head().get(0, 0));

        // up(z) is the identity (z is the sink).
        assert_eq!(bm.up(2), &id);
        // down(x) is the identity (x is the source).
        assert_eq!(bm.down(0), &id);
        // down(y) = λ(x) ∘ edge(e): q0 → qf.
        assert!(bm.down(1).get(0, 1));
    }

    #[test]
    fn diamond_unions_paths() {
        // S -> src -> (a | b branches) -> dst; tags differ per branch.
        let mut b = SpecificationBuilder::new();
        for m in ["s", "p", "q", "t"] {
            b.atomic(m);
        }
        b.composite("S");
        b.production("S", |w| {
            let s = w.node("s");
            let p = w.node("p");
            let q = w.node("q");
            let t = w.node("t");
            w.edge_named(s, p, "left");
            w.edge_named(s, q, "right");
            w.edge_named(p, t, "mid");
            w.edge_named(q, t, "mid");
        });
        b.start("S");
        let spec = b.build().unwrap();

        // Query ⎵* left ⎵*: paths via p transition to accept, via q not.
        let left = Symbol(spec.tag_by_name("left").unwrap().0);
        let dfa = compile_minimal_dfa(&Regex::ifq(&[left]), spec.n_tags());
        let body = &spec.productions()[0].body;
        let id = StateMatrix::identity(dfa.n_states());
        let bm = BodyMatrices::compute(body, &dfa, &|_| id.clone());

        // out(s) → in(t): the union of both branches: q0 can reach qf
        // (via left) and also stay in q0 (via right).
        let s_pos = 0;
        let t_pos = 3;
        let m = bm.between(s_pos, t_pos);
        assert!(m.get(0, 1));
        assert!(m.get(0, 0));
    }

    #[test]
    fn no_path_gives_zero_matrix() {
        let spec = chain_spec();
        let dfa = compile_minimal_dfa(&Regex::any_star(), spec.n_tags());
        let body = &spec.productions()[0].body;
        let id = StateMatrix::identity(1);
        let bm = BodyMatrices::compute(body, &dfa, &|_| id.clone());
        // Backwards: out(z) → in(x) has no path.
        assert!(bm.between(2, 0).is_zero());
        // Reachability forward is total for the 1-state DFA.
        assert!(bm.between(0, 2).get(0, 0));
    }
}
