//! Safe-query detection (Section III-C).
//!
//! A DFA is safe w.r.t. a workflow iff for every module, all executions
//! induce the same input→output state-transition matrix λ(M)
//! (Definition 12). The checking algorithm follows the paper: λ of an
//! atomic module is the identity; a production is *verifiable* once λ is
//! defined for every module in its body, at which point the head's
//! candidate matrix is computed from the body's port graph. The DFA is
//! safe iff λ ends up consistently defined for all composite modules —
//! the same worklist structure as the classic CFG emptiness check, so
//! each production is verified a bounded number of times and the overall
//! cost is `O(|Q|² · |G|)` matrix work.
//!
//! Soundness/completeness sketch (induction over recursion depth): if
//! every execution of every body module of depth < d matches λ, a
//! depth-d execution's matrix equals the production's candidate; the
//! final consistency sweep compares every production's candidate against
//! the fixed λ, so any divergent execution is caught at its topmost
//! divergent production.

use crate::matrix::StateMatrix;
use crate::portgraph::BodyMatrices;
use rpq_automata::Dfa;
use rpq_grammar::{ModuleKind, ProductionId, Specification};

/// Result of checking a (minimal) DFA against a specification.
#[derive(Debug, Clone)]
pub enum SafetyOutcome {
    /// The query is safe; λ matrices and per-production port closures are
    /// returned for reuse by the query plan.
    Safe {
        /// λ(M) per module.
        lambda: Vec<StateMatrix>,
        /// Port-graph closures per production.
        bodies: Vec<BodyMatrices>,
    },
    /// Unsafe: two executions of the head of `witness` disagree.
    Unsafe {
        /// A production whose candidate matrix contradicts λ of its head.
        witness: ProductionId,
    },
}

impl SafetyOutcome {
    /// Is the query safe?
    pub fn is_safe(&self) -> bool {
        matches!(self, SafetyOutcome::Safe { .. })
    }
}

/// Check safety of `dfa` w.r.t. `spec` (Definition 12, via the λ
/// fixpoint).
pub fn check_safety(spec: &Specification, dfa: &Dfa) -> SafetyOutcome {
    let q = dfa.n_states();
    let n_modules = spec.n_modules();
    let mut lambda: Vec<Option<StateMatrix>> = vec![None; n_modules];
    for (i, m) in spec.modules().iter().enumerate() {
        if m.kind == ModuleKind::Atomic {
            lambda[i] = Some(StateMatrix::identity(q));
        }
    }

    let n_prods = spec.productions().len();
    let mut bodies: Vec<Option<BodyMatrices>> = vec![None; n_prods];
    let mut verified = vec![false; n_prods];

    // Worklist fixpoint: try to verify productions whose bodies are fully
    // λ-defined; defining a new λ may unlock more productions. At most
    // |Σ| rounds define something new.
    loop {
        let mut progressed = false;
        for pi in 0..n_prods {
            if verified[pi] {
                continue;
            }
            let prod = &spec.productions()[pi];
            let ready = prod
                .body
                .nodes()
                .iter()
                .all(|m| lambda[m.index()].is_some());
            if !ready {
                continue;
            }
            let bm = BodyMatrices::compute(&prod.body, dfa, &|m| {
                lambda[m.index()].clone().expect("checked ready")
            });
            let candidate = bm.head().clone();
            bodies[pi] = Some(bm);
            verified[pi] = true;
            progressed = true;
            match &lambda[prod.head.index()] {
                None => lambda[prod.head.index()] = Some(candidate),
                Some(existing) => {
                    if *existing != candidate {
                        return SafetyOutcome::Unsafe {
                            witness: ProductionId(pi as u32),
                        };
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }

    // Productivity (enforced at spec validation) guarantees every module
    // eventually gets a λ and every production gets verified.
    debug_assert!(verified.iter().all(|&v| v), "unverified production");
    debug_assert!(lambda.iter().all(Option::is_some), "λ left undefined");

    SafetyOutcome::Safe {
        lambda: lambda.into_iter().map(|l| l.expect("defined")).collect(),
        bodies: bodies.into_iter().map(|b| b.expect("verified")).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::{compile_minimal_dfa, parse, Regex, Symbol};
    use rpq_grammar::SpecificationBuilder;

    /// The paper's Fig. 2a specification with example tag conventions.
    fn fig2() -> Specification {
        let mut b = SpecificationBuilder::new();
        for m in ["a", "b", "c", "d", "e"] {
            b.atomic(m);
        }
        for m in ["S", "A", "B"] {
            b.composite(m);
        }
        b.production("S", |w| {
            let c = w.node("c");
            let a = w.node("A");
            let bb = w.node("B");
            let b2 = w.node("b");
            // W1 is a diamond: c feeds both A and B, which both feed b
            // (the only shape consistent with Examples 3.1 and 3.2).
            w.edge(c, a);
            w.edge(c, bb);
            w.edge(a, b2);
            w.edge(bb, b2);
        });
        b.production("A", |w| {
            let a = w.node("a");
            let aa = w.node("A");
            let d = w.node("d");
            // The paper's unsafe example ⎵* a ⎵* needs an `a` tag that
            // only W2 executions cross.
            w.edge_named(a, aa, "a");
            w.edge(aa, d);
        });
        b.production("A", |w| {
            let e1 = w.node("e");
            let e2 = w.node("e");
            w.edge(e1, e2);
        });
        b.production("B", |w| {
            let b1 = w.node("b");
            let b2 = w.node("b");
            w.edge(b1, b2);
        });
        b.start("S");
        b.build().unwrap()
    }

    use rpq_grammar::Specification;

    fn query(spec: &Specification, text: &str) -> rpq_automata::Dfa {
        let re = parse(text, &mut |name| {
            spec.tag_by_name(name).map(|t| Symbol(t.0))
        })
        .unwrap();
        compile_minimal_dfa(&re, spec.n_tags())
    }

    #[test]
    fn r3_is_safe_for_fig2() {
        // R3 = ⎵* e ⎵* (the paper's Example 3.4): safe, because every
        // execution of A eventually runs W3 whose internal edge is
        // tagged e, and no execution of B ever sees an e.
        let spec = fig2();
        let dfa = query(&spec, "_* e _*");
        let outcome = check_safety(&spec, &dfa);
        assert!(outcome.is_safe());
        if let SafetyOutcome::Safe { lambda, .. } = outcome {
            let a = spec.module_by_name("A").unwrap();
            let bmod = spec.module_by_name("B").unwrap();
            // λ(A): q0 → qf (every A execution crosses an e edge) and
            // qf → qf.
            assert!(lambda[a.index()].get(0, 1));
            assert!(!lambda[a.index()].get(0, 0));
            assert!(lambda[a.index()].get(1, 1));
            // λ(B): identity — B's executions never see an e.
            assert!(lambda[bmod.index()].get(0, 0));
            assert!(!lambda[bmod.index()].get(0, 1));
        }
    }

    #[test]
    fn r4_is_unsafe_for_fig2() {
        // R4 = ⎵* a ⎵* (the paper's "( )∗a( )∗" unsafe example): whether
        // an A execution crosses an `a`-tagged edge depends on the number
        // of W2 unfoldings, so (q0, qf) is unsafe for module A.
        let spec = fig2();
        let dfa = query(&spec, "_* a _*");
        let outcome = check_safety(&spec, &dfa);
        assert!(!outcome.is_safe());
    }

    #[test]
    fn plain_reachability_is_always_safe() {
        // "It is also easy to see that the reachability query ( )∗ is
        // safe with respect to any workflow."
        let spec = fig2();
        let dfa = query(&spec, "_*");
        assert_eq!(dfa.n_states(), 1);
        assert!(check_safety(&spec, &dfa).is_safe());
    }

    #[test]
    fn exact_single_symbol_can_be_unsafe() {
        // R4 = e (Fig. 11b): unsafe — an execution of A with one W2
        // unfolding inserts extra symbols before the e.
        let spec = fig2();
        let dfa = query(&spec, "e");
        assert!(!check_safety(&spec, &dfa).is_safe());
    }

    #[test]
    fn safe_by_construction_when_branches_agree() {
        // Both implementations of A produce exactly one `t`-tagged edge,
        // so ⎵* t ⎵* is safe even though implementations differ.
        let mut b = SpecificationBuilder::new();
        for m in ["x", "y"] {
            b.atomic(m);
        }
        b.composite("S");
        b.composite("A");
        b.production("S", |w| {
            let x = w.node("x");
            let a = w.node("A");
            w.edge_named(x, a, "in");
        });
        b.production("A", |w| {
            let x = w.node("x");
            let y = w.node("y");
            w.edge_named(x, y, "t");
        });
        b.production("A", |w| {
            let y = w.node("y");
            let x = w.node("x");
            w.edge_named(y, x, "t");
        });
        b.start("S");
        let spec = b.build().unwrap();
        let dfa = query(&spec, "_* t _*");
        assert!(check_safety(&spec, &dfa).is_safe());

        // But requiring *two* t's is unsafe? No — both still produce
        // exactly one t, so the matrices still agree; the unsafe case
        // needs diverging implementations:
        let dfa2 = query(&spec, "_* t _* t _*");
        assert!(check_safety(&spec, &dfa2).is_safe());
    }

    #[test]
    fn diverging_branch_is_unsafe() {
        let mut b = SpecificationBuilder::new();
        for m in ["x", "y"] {
            b.atomic(m);
        }
        b.composite("S");
        b.composite("A");
        b.production("S", |w| {
            let x = w.node("x");
            let a = w.node("A");
            w.edge_named(x, a, "in");
        });
        b.production("A", |w| {
            let x = w.node("x");
            let y = w.node("y");
            w.edge_named(x, y, "t");
        });
        b.production("A", |w| {
            let x = w.node("x");
            let y = w.node("y");
            w.edge_named(x, y, "u");
        });
        b.start("S");
        let spec = b.build().unwrap();
        assert!(!check_safety(&spec, &query(&spec, "_* t _*")).is_safe());
        // A query that cannot distinguish t from u stays safe.
        assert!(check_safety(&spec, &query(&spec, "_* (t|u) _*")).is_safe());
    }

    #[test]
    fn ifq_over_w1_only_tags_is_safe() {
        // Tags that only occur in S's body (outside any choice or
        // recursion) always induce consistent matrices.
        let spec = fig2();
        assert!(check_safety(&spec, &query(&spec, "_* B _*")).is_safe());
        let _ = Regex::Empty; // silence unused import in some cfgs
    }
}
