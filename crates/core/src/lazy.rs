//! Lazy product-graph evaluation: on-the-fly DFA × graph composition.
//!
//! Every materialized strategy answers a request by evaluating per-tag
//! relations and closing them — even a `Pairwise(u, v)` that only ever
//! needs one source's reachable frontier pays for full closures over
//! the run. This module is the third strategy: compose the query's
//! minimal DFA with the run's cached [`CsrIndex`] *on the fly*,
//! expanding `(dfa_state, node)` product pairs from a worklist and
//! never touching relations the frontier does not reach (rustfst's lazy
//! `compose` architecture, specialized to a complete DFA over a CSR
//! graph).
//!
//! Core mechanics:
//!
//! * a **worklist search** over product pairs with a visited bitset
//!   sized `|Q| × n` — frontier-bound, not closure-bound;
//! * successors come **straight off the CSR arenas** per tag; when
//!   every live symbol of a DFA state leads to one successor state the
//!   merged wildcard adjacency is walked instead (one scan, not
//!   `|Γ|`);
//! * **dead-state pruning**: product pairs whose DFA component cannot
//!   reach an accepting state are never enqueued;
//! * `Pairwise` **terminates early** at target-in-accepting;
//! * `TargetStar` runs the same search over the *transposed* CSR and
//!   the reversed (now nondeterministic) transition relation.
//!
//! Strategy selection mirrors the relational kernel dispatch: a
//! process-wide [`EvalStrategy`] (env `RPQ_EVAL_STRATEGY`, CLI
//! `--strategy`, or [`set_eval_strategy`]), resolved per request by the
//! cost model under `auto` — see `Session::evaluate`.

use rpq_automata::{Dfa, StateId, Symbol};
use rpq_grammar::Tag;
use rpq_labeling::NodeId;
use rpq_relalg::CsrIndex;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Evaluation strategy override mode, settable per process (and per
/// request through `Session::evaluate_with_strategy` / the serve
/// protocol's `QuerySpec::strategy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvalStrategy {
    /// Cost-model choice per request (default): lazy for frontier-bound
    /// requests over composite plans, materialized otherwise.
    Auto,
    /// Force the lazy product-graph engine for every request mode.
    Lazy,
    /// Force the materialized relational/label pipeline (the pre-lazy
    /// behavior).
    Materialized,
}

impl EvalStrategy {
    /// Every CLI/env name, in display order.
    pub const NAMES: [&'static str; 3] = ["auto", "lazy", "materialized"];

    /// Parse a strategy name (`auto` / `lazy` / `materialized`), as
    /// accepted by both the env var and the CLI flag.
    pub fn from_name(name: &str) -> Option<EvalStrategy> {
        match name {
            "auto" => Some(EvalStrategy::Auto),
            "lazy" => Some(EvalStrategy::Lazy),
            "materialized" => Some(EvalStrategy::Materialized),
            _ => None,
        }
    }

    /// The canonical name (inverse of [`EvalStrategy::from_name`]).
    pub fn name(self) -> &'static str {
        match self {
            EvalStrategy::Auto => "auto",
            EvalStrategy::Lazy => "lazy",
            EvalStrategy::Materialized => "materialized",
        }
    }

    /// Validate a raw `RPQ_EVAL_STRATEGY` environment value.
    ///
    /// Unset is handled by the caller; an empty (or all-whitespace)
    /// value means "no preference" and resolves to `auto`. Anything
    /// else must be a recognized strategy name — unrecognized values
    /// return an error naming the valid choices instead of being
    /// silently coerced (the env reader warns and falls back to
    /// `auto`; CLIs can surface the message as a hard error).
    pub fn from_env_value(raw: &str) -> Result<EvalStrategy, String> {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Ok(EvalStrategy::Auto);
        }
        EvalStrategy::from_name(trimmed).ok_or_else(|| {
            format!(
                "unrecognized RPQ_EVAL_STRATEGY value {trimmed:?}: \
                 valid values are auto, lazy, materialized"
            )
        })
    }
}

const STRATEGY_UNSET: u8 = 0;
const STRATEGY_AUTO: u8 = 1;
const STRATEGY_LAZY: u8 = 2;
const STRATEGY_MATERIALIZED: u8 = 3;

/// Process-wide strategy: runtime override wins, else the env var,
/// else auto.
static STRATEGY: AtomicU8 = AtomicU8::new(STRATEGY_UNSET);

fn strategy_from_env() -> EvalStrategy {
    match std::env::var("RPQ_EVAL_STRATEGY") {
        Err(_) => EvalStrategy::Auto,
        Ok(raw) => strategy_from_raw(&raw),
    }
}

/// Resolve a raw `RPQ_EVAL_STRATEGY` value with the same
/// warn-and-fall-back contract as `RPQ_RELALG_KERNEL`, through the same
/// [`rpq_relalg::warn_config_fallback`] helper: the first evaluation is
/// a poor place to abort, so warn once (the strategy is cached after
/// this read), fall back to the default — and leave a trackable trace
/// in the shared config-warning counter so stats/metrics scrapes
/// surface it.
fn strategy_from_raw(raw: &str) -> EvalStrategy {
    EvalStrategy::from_env_value(raw).unwrap_or_else(|message| {
        rpq_relalg::warn_config_fallback(&message, "auto");
        EvalStrategy::Auto
    })
}

/// The evaluation strategy in force for this process.
pub fn eval_strategy() -> EvalStrategy {
    match STRATEGY.load(Ordering::Relaxed) {
        STRATEGY_AUTO => EvalStrategy::Auto,
        STRATEGY_LAZY => EvalStrategy::Lazy,
        STRATEGY_MATERIALIZED => EvalStrategy::Materialized,
        _ => {
            let strategy = strategy_from_env();
            set_eval_strategy(strategy);
            strategy
        }
    }
}

/// Override the evaluation strategy (the CLI `--strategy` flag; also
/// used by the A/B bench harness).
pub fn set_eval_strategy(strategy: EvalStrategy) {
    let raw = match strategy {
        EvalStrategy::Auto => STRATEGY_AUTO,
        EvalStrategy::Lazy => STRATEGY_LAZY,
        EvalStrategy::Materialized => STRATEGY_MATERIALIZED,
    };
    STRATEGY.store(raw, Ordering::Relaxed);
}

/// Process-wide lazy-engine totals (service stats and metrics scrapes);
/// the thread-local view backs exact per-evaluation deltas in
/// `EvalMeta`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LazyCounts {
    /// Product states expanded by the lazy engine.
    pub expansions: u64,
    /// Evaluations answered by the lazy engine.
    pub lazy_evals: u64,
    /// Evaluations answered by the materialized pipeline.
    pub materialized_evals: u64,
}

static EXPANSIONS: AtomicU64 = AtomicU64::new(0);
static LAZY_EVALS: AtomicU64 = AtomicU64::new(0);
static MATERIALIZED_EVALS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_EXPANSIONS: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide lazy-engine totals (monotonic).
pub fn lazy_counts() -> LazyCounts {
    LazyCounts {
        expansions: EXPANSIONS.load(Ordering::Relaxed),
        lazy_evals: LAZY_EVALS.load(Ordering::Relaxed),
        materialized_evals: MATERIALIZED_EVALS.load(Ordering::Relaxed),
    }
}

/// This thread's product-state expansion total (monotonic); snapshot
/// before and after an evaluation for an exact per-evaluation delta.
pub fn thread_expansions() -> u64 {
    THREAD_EXPANSIONS.with(Cell::get)
}

fn record_expansions(n: u64) {
    if n > 0 {
        EXPANSIONS.fetch_add(n, Ordering::Relaxed);
        THREAD_EXPANSIONS.with(|c| c.set(c.get() + n));
    }
}

/// Record which strategy answered one evaluation (called by the
/// session after resolution, so `auto` counts under what it resolved
/// to).
pub(crate) fn record_strategy(lazy: bool) {
    if lazy {
        LAZY_EVALS.fetch_add(1, Ordering::Relaxed);
    } else {
        MATERIALIZED_EVALS.fetch_add(1, Ordering::Relaxed);
    }
}

/// A lazy product-graph evaluator over one `(DFA, CSR arena)` pair.
///
/// Construction precomputes the per-search-independent pieces — dead
/// DFA states, the uniform-successor fast path, the reversed
/// transition relation — and allocates the `|Q| × n` visited bitset
/// once; each request mode then runs one or more worklist searches over
/// it. One evaluator serves one evaluation (it is cheap: a few `O(|Q| ·
/// |Γ|)` scans plus the bitset allocation).
pub struct LazyEval<'a> {
    dfa: &'a Dfa,
    csr: &'a CsrIndex,
    n_tags: usize,
    n_nodes: usize,
    n_states: usize,
    /// DFA states that cannot reach an accepting state; product pairs
    /// over them are never enqueued.
    dead: Vec<bool>,
    /// `uniform[q] = Some(q2)` when every tag moves `q` to the same
    /// *live* successor `q2`: the expansion walks the merged wildcard
    /// adjacency once instead of `|Γ|` per-tag lists.
    uniform: Vec<Option<StateId>>,
    /// Visited bitset over product pairs, bit `node * |Q| + q`.
    visited: Vec<u64>,
    /// Worklist of product pairs to expand (order does not affect the
    /// reachable set).
    worklist: Vec<(StateId, u32)>,
    /// Product states expanded across this evaluator's searches.
    expanded: u64,
}

impl<'a> LazyEval<'a> {
    /// Set up an evaluator for `dfa` over `csr` (`n_tags` is the
    /// specification's tag count — the symbol alphabet both sides
    /// share).
    pub fn new(dfa: &'a Dfa, csr: &'a CsrIndex, n_tags: usize) -> LazyEval<'a> {
        let n_states = dfa.n_states();
        let n_nodes = csr.n_nodes();
        let dead = dfa.dead_states();
        let uniform = (0..n_states as StateId)
            .map(|q| {
                let mut target: Option<StateId> = None;
                for t in 0..n_tags {
                    let q2 = dfa.next(q, Symbol(t as u32));
                    if dead[q2 as usize] {
                        return None;
                    }
                    match target {
                        None => target = Some(q2),
                        Some(prev) if prev == q2 => {}
                        Some(_) => return None,
                    }
                }
                target
            })
            .collect();
        let words = (n_states * n_nodes).div_ceil(64);
        LazyEval {
            dfa,
            csr,
            n_tags,
            n_nodes,
            n_states,
            dead,
            uniform,
            visited: vec![0u64; words],
            worklist: Vec::new(),
            expanded: 0,
        }
    }

    /// Product states expanded so far (all searches of this evaluator).
    pub fn expanded(&self) -> u64 {
        self.expanded
    }

    #[inline]
    fn try_visit(&mut self, q: StateId, node: u32) -> bool {
        let bit = node as usize * self.n_states + q as usize;
        let (word, mask) = (bit / 64, 1u64 << (bit % 64));
        if self.visited[word] & mask != 0 {
            return false;
        }
        self.visited[word] |= mask;
        true
    }

    #[inline]
    fn is_visited(&self, q: StateId, node: u32) -> bool {
        let bit = node as usize * self.n_states + q as usize;
        self.visited[bit / 64] & (1 << (bit % 64)) != 0
    }

    /// Any accepting DFA state visited at `node`?
    fn accepting_at(&self, node: u32) -> bool {
        self.dfa
            .accepting()
            .iter()
            .enumerate()
            .any(|(q, &acc)| acc && self.is_visited(q as StateId, node))
    }

    fn reset(&mut self) {
        self.visited.fill(0);
        self.worklist.clear();
    }

    /// Forward product search from `source`; stops early when `target`
    /// (paired with an accepting state) is reached. Returns whether
    /// that early stop fired — callers without a target read the
    /// visited bitset instead.
    fn search(&mut self, source: NodeId, target: Option<NodeId>) -> bool {
        self.reset();
        let _span = rpq_obs::Trace::span("lazy_expand");
        // Copy the shared borrows out of `self` so the adjacency scans
        // do not pin it against `try_visit`.
        let (dfa, csr) = (self.dfa, self.csr);
        let start = dfa.start();
        if self.dead[start as usize] {
            return false;
        }
        let src = source.0;
        self.try_visit(start, src);
        self.worklist.push((start, src));
        let mut expanded = 0u64;
        let hit = 'outer: loop {
            let Some((q, x)) = self.worklist.pop() else {
                break false;
            };
            expanded += 1;
            if let Some(q2) = self.uniform[q as usize] {
                // Every live tag moves q to q2: one merged-adjacency
                // scan replaces |Γ| per-tag scans.
                for &y in csr.all().neighbors_raw(x) {
                    if self.try_visit(q2, y) {
                        if accepts(dfa, q2, y, target) {
                            break 'outer true;
                        }
                        self.worklist.push((q2, y));
                    }
                }
                continue;
            }
            for t in 0..self.n_tags {
                let q2 = dfa.next(q, Symbol(t as u32));
                if self.dead[q2 as usize] {
                    continue;
                }
                for &y in csr.csr(Tag(t as u32)).neighbors_raw(x) {
                    if self.try_visit(q2, y) {
                        if accepts(dfa, q2, y, target) {
                            break 'outer true;
                        }
                        self.worklist.push((q2, y));
                    }
                }
            }
        };
        self.expanded += expanded;
        record_expansions(expanded);
        hit
    }

    /// Does a matching path lead from `u` to `v`?
    ///
    /// Matches the relational semantics over any graph (including
    /// cyclic appended runs): `u == v` holds on ε-acceptance *or* a
    /// matching cycle through `u`.
    pub fn pairwise(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v && self.dfa.accepts_epsilon() {
            return true;
        }
        self.search(u, Some(v))
    }

    /// The nodes reachable from `u` along a matching path, sorted —
    /// `Reachable(u)`, and the target column of `SourceStar(u)`.
    pub fn reachable(&mut self, u: NodeId) -> Vec<NodeId> {
        self.search(u, None);
        let mut out = Vec::new();
        let eps = self.dfa.accepts_epsilon();
        for node in 0..self.n_nodes as u32 {
            if (eps && node == u.0) || self.accepting_at(node) {
                out.push(NodeId(node));
            }
        }
        out
    }

    /// All matching pairs of `l1 × l2`, bit-identical to the
    /// materialized `select_pairs` finale: one forward search per
    /// distinct source in `l1`, targets filtered against `l2`.
    pub fn all_pairs(&mut self, l1: &[NodeId], l2: &[NodeId]) -> Vec<(NodeId, NodeId)> {
        let mut in_l2 = vec![false; self.n_nodes];
        for &v in l2 {
            in_l2[v.index()] = true;
        }
        let mut sources: Vec<NodeId> = l1.to_vec();
        sources.sort_unstable_by_key(|n| n.0);
        sources.dedup();
        let mut pairs = Vec::new();
        for u in sources {
            for v in self.reachable(u) {
                if in_l2[v.index()] {
                    pairs.push((u, v));
                }
            }
        }
        pairs
    }

    /// All matching pairs into the fixed target `v` — the transposed
    /// search: start from every accepting state at `v`, walk the
    /// reversed CSR under the reversed (nondeterministic) transition
    /// relation, and report the sources that reach the DFA start state.
    pub fn target_star(&mut self, v: NodeId) -> Vec<(NodeId, NodeId)> {
        self.reset();
        let _span = rpq_obs::Trace::span("lazy_expand");
        let (dfa, csr) = (self.dfa, self.csr);
        // Reversed transitions: `rev[q2 * |Γ| + t]` = the live states
        // `q` with `δ(q, t) = q2`. Dead states are excluded — a forward
        // path through one never accepts, so its reversed image cannot
        // witness a source.
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); self.n_states * self.n_tags];
        for q in 0..self.n_states as StateId {
            if self.dead[q as usize] {
                continue;
            }
            for t in 0..self.n_tags {
                let q2 = dfa.next(q, Symbol(t as u32));
                rev[q2 as usize * self.n_tags + t].push(q);
            }
        }
        let start = dfa.start();
        for (q, &acc) in dfa.accepting().iter().enumerate() {
            if acc {
                self.try_visit(q as StateId, v.0);
                self.worklist.push((q as StateId, v.0));
            }
        }
        let mut expanded = 0u64;
        while let Some((q2, y)) = self.worklist.pop() {
            expanded += 1;
            for t in 0..self.n_tags {
                let states = &rev[q2 as usize * self.n_tags + t];
                if states.is_empty() {
                    continue;
                }
                for &x in csr.csr(Tag(t as u32)).predecessors_raw(y) {
                    for &q in states {
                        if self.try_visit(q, x) {
                            self.worklist.push((q, x));
                        }
                    }
                }
            }
        }
        self.expanded += expanded;
        record_expansions(expanded);
        let eps = dfa.accepts_epsilon();
        (0..self.n_nodes as u32)
            .filter(|&node| self.is_visited(start, node) || (eps && node == v.0))
            .map(|node| (NodeId(node), v))
            .collect()
    }
}

#[inline]
fn accepts(dfa: &Dfa, q: StateId, node: u32, target: Option<NodeId>) -> bool {
    match target {
        Some(v) => node == v.0 && dfa.is_accepting(q),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_round_trip() {
        for strategy in [
            EvalStrategy::Auto,
            EvalStrategy::Lazy,
            EvalStrategy::Materialized,
        ] {
            assert_eq!(EvalStrategy::from_name(strategy.name()), Some(strategy));
            assert!(EvalStrategy::NAMES.contains(&strategy.name()));
        }
        assert_eq!(EvalStrategy::from_name("eager"), None);
    }

    #[test]
    fn env_values_are_validated() {
        assert_eq!(EvalStrategy::from_env_value("lazy"), Ok(EvalStrategy::Lazy));
        assert_eq!(
            EvalStrategy::from_env_value(" materialized\n"),
            Ok(EvalStrategy::Materialized)
        );
        assert_eq!(EvalStrategy::from_env_value(""), Ok(EvalStrategy::Auto));
        assert_eq!(EvalStrategy::from_env_value("  "), Ok(EvalStrategy::Auto));
        for bad in ["eager", "LAZY", "lazy,materialized", "1"] {
            let err = EvalStrategy::from_env_value(bad).unwrap_err();
            assert!(err.contains("RPQ_EVAL_STRATEGY"), "{err}");
            assert!(
                err.contains("auto") && err.contains("lazy") && err.contains("materialized"),
                "error must name the valid values: {err}"
            );
        }
    }

    #[test]
    fn bad_strategy_value_counts_as_config_warning() {
        // Regression: the `RPQ_EVAL_STRATEGY` warn-and-fall-back path
        // must feed the shared config-warning counters exactly like
        // `RPQ_RELALG_KERNEL` does (both now route through
        // `rpq_relalg::warn_config_fallback`). It used to print the
        // warning without recording it, leaving metrics scrapes blind
        // to strategy typos.
        let before = rpq_relalg::config_warnings();
        assert_eq!(strategy_from_raw("eager"), EvalStrategy::Auto);
        assert_eq!(rpq_relalg::config_warnings(), before + 1);
        let last = rpq_relalg::last_config_warning()
            .expect("a config warning must be recorded, not just printed");
        assert!(last.contains("RPQ_EVAL_STRATEGY"), "{last}");
        assert!(last.contains("eager"), "{last}");

        // Valid and empty values must not count as warnings.
        assert_eq!(strategy_from_raw("lazy"), EvalStrategy::Lazy);
        assert_eq!(strategy_from_raw(""), EvalStrategy::Auto);
        assert_eq!(rpq_relalg::config_warnings(), before + 1);
    }

    #[test]
    fn expansion_counters_accumulate() {
        let thread_before = thread_expansions();
        let global_before = lazy_counts();
        record_expansions(3);
        record_expansions(0); // no-op
        record_expansions(2);
        assert_eq!(thread_expansions() - thread_before, 5);
        assert!(lazy_counts().expansions - global_before.expansions >= 5);
        record_strategy(true);
        record_strategy(false);
        let g = lazy_counts();
        assert!(g.lazy_evals > global_before.lazy_evals);
        assert!(g.materialized_evals > global_before.materialized_evals);
    }
}
