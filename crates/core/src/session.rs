//! The session-oriented prepared-query API.
//!
//! The paper's economics are *compile once, evaluate many*: a query is
//! compiled against the specification (safety check, query-intersected
//! grammar, decomposition) and then answered over many runs with
//! constant-time pairwise decoding — the access pattern of the stored
//! indexes in Section VII. [`Session`] makes that the shape of the API:
//!
//! * a `Session` owns an `Arc<`[`Specification`]`>` and two caches — a
//!   **plan cache** keyed by the normalized regex (plus subquery
//!   policy), and a **per-run [`TagIndex`] cache** keyed by run
//!   identity — so repeated queries never recompile and repeated runs
//!   never re-index;
//! * [`Session::prepare`] returns a [`PreparedQuery`], a cheaply
//!   cloneable handle bundling the parsed regex, the compiled
//!   [`QueryPlan`], its safety verdict and plan statistics;
//! * [`Session::evaluate`] answers a [`QueryRequest`] with a
//!   [`QueryOutcome`] carrying the result and evaluation metadata.
//!
//! ```
//! use rpq_core::{QueryRequest, Session};
//! use rpq_grammar::SpecificationBuilder;
//! use rpq_labeling::RunBuilder;
//!
//! let mut b = SpecificationBuilder::new();
//! b.atomic("t");
//! b.composite("S");
//! b.production("S", |w| {
//!     let x = w.node("t");
//!     let s = w.node("S");
//!     let y = w.node("t");
//!     w.edge_named(x, s, "down");
//!     w.edge_named(s, y, "up");
//! });
//! b.production("S", |w| { w.node("t"); });
//! b.start("S");
//! let spec = b.build().unwrap();
//!
//! let session = Session::from_spec(spec);
//! let query = session.prepare("_* down _* up _*").unwrap();
//! let run = RunBuilder::new(session.spec()).seed(1).target_edges(64).build().unwrap();
//! let outcome = session.evaluate(
//!     &query,
//!     &run,
//!     &QueryRequest::pairwise(run.entry(), run.exit()),
//! );
//! assert_eq!(outcome.as_bool(), Some(true));
//!
//! // Preparing the same query again (any spelling) hits the plan cache.
//! let again = session.prepare("_*  down  _*  up  _*").unwrap();
//! assert_eq!(session.stats().plan_hits, 1);
//! assert_eq!(session.stats().plan_misses, 1);
//! assert_eq!(again.source(), query.source());
//! ```

use crate::error::RpqError;
use crate::general::{self, QueryPlan, SubqueryPolicy};
use crate::lazy::{self, EvalStrategy, LazyEval};
use crate::plan::SafeQueryPlan;
use crate::request::{EvalMeta, IndexCacheUse, PlanKind, QueryOutcome, QueryRequest, QueryResult};
use rpq_automata::{compile_minimal_dfa, parse, Dfa, Regex, Symbol};
use rpq_grammar::Specification;
use rpq_labeling::{NodeId, Run};
use rpq_relalg::{CsrIndex, NodePairSet, TagIndex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Compile-time statistics of a prepared query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStats {
    /// States of the query's minimal DFA.
    pub dfa_states: usize,
    /// Number of label-evaluated safe subqueries (1 for safe plans).
    pub n_safe_subqueries: usize,
    /// The subquery-evaluation policy the plan was compiled with.
    pub policy: SubqueryPolicy,
    /// Safe or composite evaluation strategy.
    pub kind: PlanKind,
    /// The Definition-13 safety verdict (see [`PreparedQuery::is_safe`]).
    pub safe: bool,
}

struct PreparedInner {
    /// The specification the plan was compiled against; evaluation
    /// asserts it matches the session's.
    spec: Arc<Specification>,
    source: String,
    regex: Regex,
    plan: QueryPlan,
    /// The query's minimal DFA, retained from planning: the lazy
    /// product-graph engine composes it with the run's CSR arena at
    /// evaluation time.
    dfa: Arc<Dfa>,
    stats: PlanStats,
}

/// A compiled query handle, cheap to clone and detached from the
/// session's lifetime.
///
/// Produced by [`Session::prepare`]; reusing one across runs (or
/// cloning it into other threads of work) never recompiles the plan.
#[derive(Clone)]
pub struct PreparedQuery {
    inner: Arc<PreparedInner>,
}

impl PreparedQuery {
    /// The query text as given to [`Session::prepare`] (normalized
    /// queries prepared from different spellings keep the first
    /// spelling seen).
    pub fn source(&self) -> &str {
        &self.inner.source
    }

    /// The parsed regex.
    pub fn regex(&self) -> &Regex {
        &self.inner.regex
    }

    /// The compiled plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.inner.plan
    }

    /// The query's minimal DFA (compiled once at prepare time; the
    /// lazy evaluation strategy composes it with the run graph on the
    /// fly).
    pub fn dfa(&self) -> &Dfa {
        &self.inner.dfa
    }

    /// Is the query safe for the specification (Definition 13)?
    ///
    /// This is the *semantic* safety verdict, independent of how the
    /// plan evaluates: it stays `true` for a safe query prepared under
    /// [`SubqueryPolicy::AlwaysRelational`] (whose plan is composite by
    /// construction) and for safe single-symbol leaves (which are
    /// answered from the tag index regardless). Use
    /// [`PlanStats::kind`] for the evaluation strategy.
    pub fn is_safe(&self) -> bool {
        self.inner.stats.safe
    }

    /// Compile-time statistics.
    pub fn stats(&self) -> &PlanStats {
        &self.inner.stats
    }

    /// The underlying safe plan, when the whole query is safe —
    /// for direct access to the label decoder (`pairwise`, λ
    /// matrices) without going through [`Session::evaluate`].
    pub fn safe_plan(&self) -> Option<&SafeQueryPlan> {
        self.inner.plan.as_safe()
    }
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("source", &self.inner.source)
            .field("stats", &self.inner.stats)
            .finish()
    }
}

/// Cache counters of a [`Session`] (monotonic, snapshot via
/// [`Session::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Queries served from the plan cache.
    pub plan_hits: u64,
    /// Queries compiled anew.
    pub plan_misses: u64,
    /// Evaluations that found their run's tag index cached.
    pub index_hits: u64,
    /// Evaluations that had to build a tag index.
    pub index_misses: u64,
    /// Evaluations that found their run's CSR arena cached.
    pub csr_hits: u64,
    /// Evaluations that had to build a CSR arena.
    pub csr_misses: u64,
    /// Tag indexes dropped by the LRU bound
    /// ([`Session::with_cache_capacity`]).
    pub index_evictions: u64,
    /// CSR arenas dropped by the LRU bound.
    pub csr_evictions: u64,
}

impl SessionStats {
    /// The counter movement since an `earlier` snapshot — per-batch /
    /// per-request deltas out of the monotonic totals.
    pub fn since(self, earlier: SessionStats) -> SessionStats {
        SessionStats {
            plan_hits: self.plan_hits - earlier.plan_hits,
            plan_misses: self.plan_misses - earlier.plan_misses,
            index_hits: self.index_hits - earlier.index_hits,
            index_misses: self.index_misses - earlier.index_misses,
            csr_hits: self.csr_hits - earlier.csr_hits,
            csr_misses: self.csr_misses - earlier.csr_misses,
            index_evictions: self.index_evictions - earlier.index_evictions,
            csr_evictions: self.csr_evictions - earlier.csr_evictions,
        }
    }
}

/// A size-bounded least-recently-used map over [`RunKey`]s.
///
/// Both per-run caches (tag indexes and CSR arenas) sit behind one of
/// these: every get or insert stamps the entry with a logical tick, and
/// inserts past the capacity drop the stalest entries. The default
/// capacity is unbounded, matching the pre-LRU behavior; long-lived
/// sessions over large run corpora bound it via
/// [`Session::with_cache_capacity`].
struct LruMap<V> {
    entries: HashMap<RunKey, (V, u64)>,
    tick: u64,
    capacity: usize,
}

impl<V: Clone> LruMap<V> {
    fn new() -> LruMap<V> {
        LruMap {
            entries: HashMap::new(),
            tick: 0,
            capacity: usize::MAX,
        }
    }

    fn get(&mut self, key: &RunKey) -> Option<V> {
        let tick = self.tick + 1;
        let (value, last_used) = self.entries.get_mut(key)?;
        self.tick = tick;
        *last_used = tick;
        Some(value.clone())
    }

    /// Insert, keeping any entry already present for `key` (so racing
    /// builders converge on one shared value), then trim to capacity.
    /// Returns the retained value and the number of evicted entries.
    fn insert_or_keep(&mut self, key: RunKey, value: V) -> (V, u64) {
        self.tick += 1;
        let entry = self.entries.entry(key).or_insert((value, self.tick));
        entry.1 = self.tick;
        let kept = entry.0.clone();
        (kept, self.trim())
    }

    /// Evict least-recently-used entries until the map fits the
    /// capacity; returns how many were dropped. The victim search is
    /// an O(len) min-scan per eviction — deliberate: capacities are
    /// working-set sized (tens to thousands), where the scan beats a
    /// heap's bookkeeping; revisit if capacities ever reach 10⁵+.
    fn trim(&mut self) -> u64 {
        let mut evicted = 0;
        while self.entries.len() > self.capacity {
            let stalest = self
                .entries
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(key, _)| *key)
                .expect("len > capacity >= 0 implies non-empty");
            self.entries.remove(&stalest);
            evicted += 1;
        }
        evicted
    }

    fn set_capacity(&mut self, capacity: usize) -> u64 {
        self.capacity = capacity;
        self.trim()
    }

    fn clear(&mut self) {
        self.entries.clear();
    }

    fn remove(&mut self, key: &RunKey) -> bool {
        self.entries.remove(key).is_some()
    }

    fn contains(&self, key: &RunKey) -> bool {
        self.entries.contains_key(key)
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    /// Normalized regex rendering — parsing runs the AST smart
    /// constructors, so differently-spelled equivalent queries share
    /// one entry.
    canon: String,
    policy: SubqueryPolicy,
}

/// A persistence hook for compiled safe plans.
///
/// A session's in-memory plan cache dies with the process; stores
/// implementing this trait give safe-plan compilation a durable tier:
/// on a cache miss the session asks `load` before compiling (a
/// restarted service reuses plans a previous process compiled), and
/// hands every freshly compiled fully-safe plan to `store`.
///
/// Implementations own keying, durability and validation — a `load`
/// must only return plans that verify against the session's
/// specification (see [`SafeQueryPlan::restore`]); returning `None`
/// makes the session recompile, so a corrupt or mismatched persisted
/// plan degrades to a cold compile, never a wrong answer.
pub trait PlanStore: Send + Sync {
    /// A previously persisted plan for `(canon, policy)`, already
    /// validated and ready to evaluate, or `None` to recompile.
    fn load(&self, canon: &str, policy: SubqueryPolicy) -> Option<SafeQueryPlan>;

    /// Persist a freshly compiled fully-safe plan. `source` is the
    /// query's display rendering — re-parseable, so services can warm
    /// their session from persisted plans at startup. Best-effort: a
    /// failed write only costs a future recompile.
    fn store(&self, canon: &str, source: &str, policy: SubqueryPolicy, plan: &SafeQueryPlan);
}

/// A query session bound to one workflow specification.
///
/// Sessions are `Send + Sync`: the specification is shared behind an
/// `Arc` and both caches sit behind mutexes, so one session can serve
/// queries from many threads (the architectural requirement for the
/// service-style deployments the roadmap targets).
pub struct Session {
    spec: Arc<Specification>,
    plans: Mutex<HashMap<PlanKey, PreparedQuery>>,
    /// Durable tier under the in-memory plan cache; see [`PlanStore`].
    plan_store: Option<Arc<dyn PlanStore>>,
    indexes: Mutex<LruMap<Arc<TagIndex>>>,
    /// CSR adjacency arenas (per-tag + wildcard), cached per run beside
    /// the tag indexes: composite evaluations feed them to the
    /// bit-parallel join/fixpoint kernel of `rpq-relalg`.
    csrs: Mutex<LruMap<Arc<CsrIndex>>>,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    index_hits: AtomicU64,
    index_misses: AtomicU64,
    csr_hits: AtomicU64,
    csr_misses: AtomicU64,
    index_evictions: AtomicU64,
    csr_evictions: AtomicU64,
}

/// Run identity for the index cache: the run's 128-bit structural
/// fingerprint ([`Run::fingerprint`], computed once per run and cached
/// on it) plus its node/edge counts as an extra collision guard, so
/// re-deserialized copies of the same run share a cache entry.
/// The fingerprint is not collision-resistant against an adversary;
/// services ingesting untrusted runs should key caches by an external
/// run id instead.
type RunKey = (u64, u64, u64, u64);

fn run_key(run: &Run) -> RunKey {
    let (a, b) = run.fingerprint();
    (a, b, run.n_nodes() as u64, run.n_edges() as u64)
}

impl Session {
    /// Open a session over a shared specification.
    pub fn new(spec: Arc<Specification>) -> Session {
        Session {
            spec,
            plans: Mutex::new(HashMap::new()),
            plan_store: None,
            indexes: Mutex::new(LruMap::new()),
            csrs: Mutex::new(LruMap::new()),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            index_hits: AtomicU64::new(0),
            index_misses: AtomicU64::new(0),
            csr_hits: AtomicU64::new(0),
            csr_misses: AtomicU64::new(0),
            index_evictions: AtomicU64::new(0),
            csr_evictions: AtomicU64::new(0),
        }
    }

    /// Open a session, taking ownership of the specification.
    pub fn from_spec(spec: Specification) -> Session {
        Session::new(Arc::new(spec))
    }

    /// Attach a durable plan tier: safe-plan cache misses consult
    /// `store` before compiling, and freshly compiled fully-safe plans
    /// are handed to it for persistence. See [`PlanStore`].
    pub fn with_plan_store(mut self, store: Arc<dyn PlanStore>) -> Session {
        self.plan_store = Some(store);
        self
    }

    /// Bound each per-run cache (tag indexes and CSR arenas) to at most
    /// `capacity` runs, evicting least-recently-used entries beyond it.
    ///
    /// Long-lived sessions iterating large corpora (batch executors,
    /// services) use this so memory stays proportional to the working
    /// set instead of the corpus; evictions are counted in
    /// [`SessionStats::index_evictions`] / [`SessionStats::csr_evictions`].
    /// A capacity of 0 disables retention entirely (every evaluation
    /// rebuilds or reloads its indexes). Prepared plans are unaffected —
    /// they are small and keyed by query, not by run.
    pub fn with_cache_capacity(self, capacity: usize) -> Session {
        let evicted = self
            .indexes
            .lock()
            .expect("index cache lock")
            .set_capacity(capacity);
        self.index_evictions.fetch_add(evicted, Ordering::Relaxed);
        let evicted = self
            .csrs
            .lock()
            .expect("csr cache lock")
            .set_capacity(capacity);
        self.csr_evictions.fetch_add(evicted, Ordering::Relaxed);
        self
    }

    /// The specification this session queries.
    pub fn spec(&self) -> &Specification {
        &self.spec
    }

    /// A shared handle to the specification.
    pub fn spec_arc(&self) -> Arc<Specification> {
        Arc::clone(&self.spec)
    }

    /// Cache counters so far.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
            index_hits: self.index_hits.load(Ordering::Relaxed),
            index_misses: self.index_misses.load(Ordering::Relaxed),
            csr_hits: self.csr_hits.load(Ordering::Relaxed),
            csr_misses: self.csr_misses.load(Ordering::Relaxed),
            index_evictions: self.index_evictions.load(Ordering::Relaxed),
            csr_evictions: self.csr_evictions.load(Ordering::Relaxed),
        }
    }

    /// Parse query text, resolving tag names against the specification.
    pub fn parse(&self, text: &str) -> Result<Regex, RpqError> {
        Ok(parse(text, &mut |name| {
            self.spec.tag_by_name(name).map(|t| Symbol(t.0))
        })?)
    }

    /// Prepare a query with the default (cost-based) subquery policy.
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery, RpqError> {
        self.prepare_with(text, SubqueryPolicy::CostBased)
    }

    /// Prepare a query with an explicit subquery-evaluation policy.
    pub fn prepare_with(
        &self,
        text: &str,
        policy: SubqueryPolicy,
    ) -> Result<PreparedQuery, RpqError> {
        let regex = self.parse(text)?;
        self.prepare_cached(|| text.to_owned(), &regex, policy)
    }

    /// Prepare an already-parsed regex (default policy).
    pub fn prepare_regex(&self, regex: &Regex) -> Result<PreparedQuery, RpqError> {
        self.prepare_regex_with(regex, SubqueryPolicy::CostBased)
    }

    /// Prepare an already-parsed regex with an explicit policy.
    pub fn prepare_regex_with(
        &self,
        regex: &Regex,
        policy: SubqueryPolicy,
    ) -> Result<PreparedQuery, RpqError> {
        let source = || {
            regex
                .display_with(&|s| self.spec.tag_name(rpq_grammar::Tag(s.0)).to_owned())
                .to_string()
        };
        self.prepare_cached(source, regex, policy)
    }

    /// `source` is rendered only on a cache miss.
    fn prepare_cached(
        &self,
        source: impl FnOnce() -> String,
        regex: &Regex,
        policy: SubqueryPolicy,
    ) -> Result<PreparedQuery, RpqError> {
        // Stage-timed when a trace frame is open (a cache hit is still
        // a `plan` stage — just a very short one).
        let _plan_span = rpq_obs::Trace::span("plan");
        let key = PlanKey {
            canon: format!("{regex:?}"),
            policy,
        };
        if let Some(prepared) = self.plans.lock().expect("plan cache lock").get(&key) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(prepared.clone());
        }
        // Compile outside the lock: planning can be expensive and must
        // not serialize concurrent sessions' unrelated queries. The
        // minimal DFA is the dominant cost — compile it once and share
        // it between the planner, the stats and the safety verdict.
        let dfa = Arc::new(compile_minimal_dfa(regex, self.spec.n_tags()));
        let dfa_states = dfa.n_states();
        let source = source();
        let plan = match policy {
            // The naive policy plans without safety analysis.
            SubqueryPolicy::AlwaysRelational => {
                general::plan_query_with(&self.spec, regex, policy)?
            }
            // Fully-safe plans have a durable tier: a persisted plan
            // (validated by the store) skips the safety analysis and
            // port-graph closure computation; a fresh compile that
            // lands fully safe is handed back for persistence. Leaf
            // queries never compile safe plans, so they skip the tier.
            _ if self.plan_store.is_some() && !general::is_leaf(regex) => {
                let store = self.plan_store.as_ref().expect("checked above");
                match store.load(&key.canon, policy) {
                    Some(plan) => QueryPlan::Safe(plan),
                    None => {
                        let plan = general::plan_query_with_dfa(
                            &self.spec,
                            regex,
                            policy,
                            (*dfa).clone(),
                        )?;
                        if let QueryPlan::Safe(safe) = &plan {
                            store.store(&key.canon, &source, policy, safe);
                        }
                        plan
                    }
                }
            }
            _ => general::plan_query_with_dfa(&self.spec, regex, policy, (*dfa).clone())?,
        };
        // Definition-13 safety is a property of the query, not of the
        // chosen plan: a non-leaf plan under a label-aware policy
        // settles it, but naive plans (always composite) and index-
        // answered leaves need an explicit probe.
        let safe = match &plan {
            QueryPlan::Safe(_) => true,
            QueryPlan::Composite(..)
                if policy == SubqueryPolicy::AlwaysRelational || general::is_leaf(regex) =>
            {
                SafeQueryPlan::compile(&self.spec, (*dfa).clone()).is_ok()
            }
            QueryPlan::Composite(..) => false,
        };
        let stats = PlanStats {
            dfa_states,
            n_safe_subqueries: plan.n_safe_subqueries(),
            policy,
            kind: if plan.is_safe() {
                PlanKind::Safe
            } else {
                PlanKind::Composite
            },
            safe,
        };
        let prepared = PreparedQuery {
            inner: Arc::new(PreparedInner {
                spec: Arc::clone(&self.spec),
                source,
                regex: regex.clone(),
                plan,
                dfa,
                stats,
            }),
        };
        // This call compiled, so it counts as a miss even if a racing
        // thread inserted the same key first (the first entry is kept
        // so clones stay identity-shared); hits + misses therefore
        // always equals the number of prepare calls.
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let mut plans = self.plans.lock().expect("plan cache lock");
        let entry = plans.entry(key).or_insert(prepared);
        Ok(entry.clone())
    }

    /// Is `regex` safe w.r.t. the specification (Definition 13)?
    pub fn is_safe(&self, regex: &Regex) -> bool {
        self.plan_safe(regex).is_ok()
    }

    /// Compile strictly as a safe plan, erroring when decomposition
    /// would be needed.
    pub fn plan_safe(&self, regex: &Regex) -> Result<SafeQueryPlan, RpqError> {
        Ok(SafeQueryPlan::compile(
            &self.spec,
            compile_minimal_dfa(regex, self.spec.n_tags()),
        )?)
    }

    /// The cached per-run tag index, building it on first sight of the
    /// run. Returns the index and whether the cache hit.
    pub fn index_for(&self, run: &Run) -> (Arc<TagIndex>, IndexCacheUse) {
        let _span = rpq_obs::Trace::span("index");
        let key = run_key(run);
        if let Some(index) = self.indexes.lock().expect("index cache lock").get(&key) {
            self.index_hits.fetch_add(1, Ordering::Relaxed);
            return (index, IndexCacheUse::Hit);
        }
        let built = Arc::new(TagIndex::build(run, self.spec.n_tags()));
        // As with plans: this call built an index, so it reports (and
        // counts) a miss even when it loses an insert race.
        self.index_misses.fetch_add(1, Ordering::Relaxed);
        let (kept, evicted) = self
            .indexes
            .lock()
            .expect("index cache lock")
            .insert_or_keep(key, built);
        self.index_evictions.fetch_add(evicted, Ordering::Relaxed);
        (kept, IndexCacheUse::Miss)
    }

    /// Adopt externally built per-run artifacts — typically decoded
    /// from a persistent run store — into the session caches, so the
    /// next evaluation over `run` hits instead of rebuilding. Entries
    /// already cached for the run are kept (the adopted copies are
    /// dropped); neither path touches the hit/miss counters, though
    /// LRU evictions triggered by the insert are counted as usual.
    pub fn seed_run_cache(&self, run: &Run, index: Arc<TagIndex>, csr: Option<Arc<CsrIndex>>) {
        let key = run_key(run);
        let (_, evicted) = self
            .indexes
            .lock()
            .expect("index cache lock")
            .insert_or_keep(key, index);
        self.index_evictions.fetch_add(evicted, Ordering::Relaxed);
        if let Some(csr) = csr {
            let (_, evicted) = self
                .csrs
                .lock()
                .expect("csr cache lock")
                .insert_or_keep(key, csr);
            self.csr_evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Is `run`'s tag index currently cached? Batch executors use this
    /// to skip redundant warm-artifact loads; it does not bump LRU
    /// recency or any counter.
    pub fn run_is_cached(&self, run: &Run) -> bool {
        self.indexes
            .lock()
            .expect("index cache lock")
            .contains(&run_key(run))
    }

    /// The cached per-run CSR adjacency arena, building it (and the tag
    /// index it derives from) on first sight of the run. Returns the
    /// arena and whether the cache hit.
    pub fn csr_for(&self, run: &Run) -> (Arc<CsrIndex>, IndexCacheUse) {
        let key = run_key(run);
        if let Some(csr) = self.csrs.lock().expect("csr cache lock").get(&key) {
            self.csr_hits.fetch_add(1, Ordering::Relaxed);
            return (csr, IndexCacheUse::Hit);
        }
        let (index, _) = self.index_for(run);
        self.csr_build(key, &index)
    }

    /// [`Session::csr_for`] when the caller already fetched the run's
    /// tag index — avoids a second index-cache interaction (and a
    /// second hit in the counters) per evaluation.
    fn csr_with(&self, run: &Run, index: &TagIndex) -> (Arc<CsrIndex>, IndexCacheUse) {
        let key = run_key(run);
        if let Some(csr) = self.csrs.lock().expect("csr cache lock").get(&key) {
            self.csr_hits.fetch_add(1, Ordering::Relaxed);
            return (csr, IndexCacheUse::Hit);
        }
        self.csr_build(key, index)
    }

    /// The cached CSR arena when `plan` can consume it (it contains a
    /// closure over an index leaf) and the kernel dispatch can take the
    /// bit path for this run; `None` otherwise — forced-pairs A/B runs,
    /// closure-free plans and universes past the bit-kernel memory
    /// guard never pay the arena build.
    fn csr_if_useful(
        &self,
        run: &Run,
        index: &TagIndex,
        plan: &QueryPlan,
    ) -> Option<Arc<CsrIndex>> {
        if rpq_relalg::kernel_mode() == rpq_relalg::KernelMode::ForcePairs
            || !rpq_relalg::kernel::bits_representable(run.n_nodes())
            || !general::plan_uses_csr(plan)
        {
            return None;
        }
        Some(self.csr_with(run, index).0)
    }

    fn csr_build(&self, key: RunKey, index: &TagIndex) -> (Arc<CsrIndex>, IndexCacheUse) {
        let _span = rpq_obs::Trace::span("csr");
        let built = Arc::new(CsrIndex::build(index));
        // As with plans and indexes: this call built an arena, so it
        // reports (and counts) a miss even when it loses an insert race.
        self.csr_misses.fetch_add(1, Ordering::Relaxed);
        let (kept, evicted) = self
            .csrs
            .lock()
            .expect("csr cache lock")
            .insert_or_keep(key, built);
        self.csr_evictions.fetch_add(evicted, Ordering::Relaxed);
        (kept, IndexCacheUse::Miss)
    }

    /// Evict cached per-run indexes and CSR arenas (e.g. after
    /// discarding a batch of runs); prepared plans are kept.
    pub fn clear_run_cache(&self) {
        self.indexes.lock().expect("index cache lock").clear();
        self.csrs.lock().expect("csr cache lock").clear();
    }

    /// Evict the cached artifacts of one run — fingerprint-level
    /// invalidation for live ingestion: when a stored run grows, its
    /// *old* fingerprint's entries are stale (the grown run keys
    /// differently, so they would never be overwritten, only orphaned).
    /// Pass the pre-growth run; returns whether anything was cached.
    /// Pair with [`Session::seed_run_cache`] on the grown run to swap
    /// the entries instead of merely dropping them.
    pub fn invalidate_run(&self, run: &Run) -> bool {
        let key = run_key(run);
        let index_dropped = self.indexes.lock().expect("index cache lock").remove(&key);
        let csr_dropped = self.csrs.lock().expect("csr cache lock").remove(&key);
        index_dropped || csr_dropped
    }

    /// Answer `request` for `query` over `run`.
    ///
    /// Safe plans never touch the tag index; composite plans fetch it
    /// from the per-run cache (building it at most once per run).
    /// The evaluation strategy is the process-wide default
    /// ([`crate::eval_strategy`], settable via `RPQ_EVAL_STRATEGY` or
    /// [`crate::set_eval_strategy`]); use
    /// [`Session::evaluate_with_strategy`] for a per-request override.
    pub fn evaluate(
        &self,
        query: &PreparedQuery,
        run: &Run,
        request: &QueryRequest,
    ) -> QueryOutcome {
        self.evaluate_with_strategy(query, run, request, lazy::eval_strategy())
    }

    /// [`Session::evaluate`] with an explicit evaluation strategy:
    /// `Lazy` composes the query DFA with the run's CSR arena on the
    /// fly (frontier-bound product search), `Materialized` runs the
    /// compiled relational/label plan, and `Auto` picks per request
    /// with a shape-only cost model (see [`crate::lazy`]).
    ///
    /// Under `Auto`, safe plans always evaluate materialized — label
    /// decoding is already constant-time per pair, so a product search
    /// could only lose. Forcing `Lazy` overrides that and runs the
    /// product search regardless of plan kind (the DFA alone defines
    /// the query language), which is what the differential test suite
    /// leans on.
    pub fn evaluate_with_strategy(
        &self,
        query: &PreparedQuery,
        run: &Run,
        request: &QueryRequest,
        strategy: EvalStrategy,
    ) -> QueryOutcome {
        self.assert_owns(query);
        // Open a trace frame for this evaluation: the artifact lookups
        // below record `index`/`csr` spans, the evaluation proper is
        // the `eval` span (plus `lazy_expand` for product searches),
        // and the collected breakdown lands in `EvalMeta::stages`.
        // Frames nest, so a server tracing its own request stages
        // around this call is unaffected.
        rpq_obs::Trace::begin();
        // Safe (sub)plans decode derivation labels, and labels describe
        // reachability only on derivation DAGs. A streamed run that
        // has grown a cycle (`Run::apply_events` accepts arbitrary
        // event batches) is no derivation, so the label shortcut is
        // unsound there — for fully-safe plans *and* for composite
        // plans with `SafeEval` subtrees alike. The product search
        // reads the edge lists as they actually are and takes over
        // regardless of the requested strategy. The acyclicity verdict
        // is cached on the run, so steady-state pairwise decoding
        // stays allocation-free.
        let labels_unsound = query.inner.plan.n_safe_subqueries() > 0 && !run.is_acyclic();
        let use_lazy = labels_unsound
            || match strategy {
                EvalStrategy::Lazy => true,
                EvalStrategy::Materialized => false,
                EvalStrategy::Auto => self.auto_picks_lazy(query, run, request),
            };
        lazy::record_strategy(use_lazy);
        if use_lazy {
            return self.evaluate_lazy(query, run, request);
        }
        let plan = &query.inner.plan;
        let kind = query.inner.stats.kind;
        // Composite evaluation needs the per-run index; safe plans
        // decode labels only. The CSR arena rides along only when the
        // plan actually closes over an index leaf and the kernel mode
        // allows the bit path — never pay the build for dead weight.
        let (index, csr, index_cache) = match plan {
            QueryPlan::Safe(_) => (None, None, IndexCacheUse::NotNeeded),
            QueryPlan::Composite(..) => {
                let (index, usage) = self.index_for(run);
                let csr = self.csr_if_useful(run, &index, plan);
                (Some(index), csr, usage)
            }
        };
        let index = index.as_deref();
        let csr = csr.as_deref();

        // Evaluation is synchronous on this thread, so the thread-local
        // closure counters bracket it exactly even under concurrency.
        let closures_before = rpq_relalg::thread_closure_counts();
        let condensations_before = rpq_relalg::thread_condensation_counts();

        let eval_span = rpq_obs::Trace::span("eval");
        let (result, nodes_touched) = match request {
            QueryRequest::Pairwise(..) | QueryRequest::EntryExit => {
                let (u, v) = match request {
                    QueryRequest::Pairwise(u, v) => (*u, *v),
                    _ => (run.entry(), run.exit()),
                };
                let hit = match (plan, index) {
                    (QueryPlan::Safe(p), _) => p.pairwise(run, u, v),
                    (QueryPlan::Composite(..), Some(idx)) => {
                        general::pairwise_csr(plan, &self.spec, run, idx, csr, u, v)
                    }
                    (QueryPlan::Composite(..), None) => unreachable!("index fetched above"),
                };
                (QueryResult::Bool(hit), 2)
            }
            QueryRequest::AllPairs(l1, l2) => {
                let pairs = self.all_pairs_inner(plan, run, index, csr, l1, l2);
                (QueryResult::Pairs(pairs), l1.len() + l2.len())
            }
            QueryRequest::SourceStar(u) => {
                let all: Vec<NodeId> = run.node_ids().collect();
                let touched = all.len() + 1;
                let pairs = self.all_pairs_inner(plan, run, index, csr, &[*u], &all);
                (QueryResult::Pairs(pairs), touched)
            }
            QueryRequest::TargetStar(v) => {
                let all: Vec<NodeId> = run.node_ids().collect();
                let touched = all.len() + 1;
                let pairs = self.all_pairs_inner(plan, run, index, csr, &all, &[*v]);
                (QueryResult::Pairs(pairs), touched)
            }
            QueryRequest::Reachable(u) => {
                let all: Vec<NodeId> = run.node_ids().collect();
                let touched = all.len() + 1;
                let pairs = self.all_pairs_inner(plan, run, index, csr, &[*u], &all);
                let nodes: Vec<NodeId> = pairs.iter().map(|(_, v)| v).collect();
                (QueryResult::Nodes(nodes), touched)
            }
        };
        drop(eval_span);
        QueryOutcome {
            result,
            meta: EvalMeta {
                plan_kind: kind,
                index_cache,
                kernel: rpq_relalg::kernel_mode(),
                closures: rpq_relalg::thread_closure_counts().since(closures_before),
                condensations: rpq_relalg::thread_condensation_counts().since(condensations_before),
                nodes_touched,
                strategy: EvalStrategy::Materialized,
                product_states: 0,
                stages: rpq_obs::Trace::take(),
            },
        }
    }

    /// The `Auto` strategy's per-request choice. Deliberately
    /// shape-only — it reads the run's node/edge counts and the plan's
    /// DFA size, never the tag index — so choosing a strategy can't
    /// perturb the session's index-cache hit/miss accounting.
    ///
    /// Lazy wins when the frontier-bound product search is predicted
    /// cheaper than materializing the plan's closures:
    /// `searches × |Q| × (n + m)` (product-search worst case) against
    /// `max(n, min(m·√n, n²))` (a semi-naive closure's ballpark). The
    /// search count is 1 for single-source/target modes and `|l1|` for
    /// all-pairs, so full-universe all-pairs requests — where the
    /// materialized closure amortizes across every source — stay
    /// materialized.
    fn auto_picks_lazy(&self, query: &PreparedQuery, run: &Run, request: &QueryRequest) -> bool {
        if query.inner.stats.kind != PlanKind::Composite
            || !general::plan_uses_csr(&query.inner.plan)
        {
            return false;
        }
        let n_searches = match request {
            QueryRequest::Pairwise(..)
            | QueryRequest::EntryExit
            | QueryRequest::SourceStar(_)
            | QueryRequest::TargetStar(_)
            | QueryRequest::Reachable(_) => 1.0,
            QueryRequest::AllPairs(l1, _) => l1.len().max(1) as f64,
        };
        let n = run.n_nodes() as f64;
        let m = run.n_edges() as f64;
        // The reversed-DFA `TargetStar` search walks the *transposed
        // arenas*, whose per-tag predecessor lists are deduplicated
        // pair sets — so its edge budget is the run's distinct-triple
        // count, not the raw event count. The two differ on stores
        // whose histories re-append existing edges (live streams
        // routinely do); charging the raw forward count there
        // over-priced the reversed walk and flipped `auto` to
        // materialized on exactly the append-heavy runs where the
        // backward search is cheapest. Forward modes keep the raw
        // count: it is the conservative bound that holds full-universe
        // all-pairs requests on the materialized path.
        let m_lazy = match request {
            QueryRequest::TargetStar(_) => run.n_distinct_edges() as f64,
            _ => m,
        };
        let states = query.inner.stats.dfa_states.max(1) as f64;
        let lazy_cost = n_searches * states * (n + m_lazy);
        let materialized_cost = (m * n.max(1.0).sqrt()).min(n * n).max(n);
        lazy_cost < materialized_cost
    }

    /// The lazy product-graph evaluation path: compose the prepared
    /// query's minimal DFA with the run's CSR arena on the fly (see
    /// [`LazyEval`]). Uses the same per-run CSR cache as materialized
    /// composite evaluation, so the two strategies warm each other.
    fn evaluate_lazy(
        &self,
        query: &PreparedQuery,
        run: &Run,
        request: &QueryRequest,
    ) -> QueryOutcome {
        let (csr, index_cache) = self.csr_for(run);
        let closures_before = rpq_relalg::thread_closure_counts();
        let condensations_before = rpq_relalg::thread_condensation_counts();
        let expansions_before = lazy::thread_expansions();
        let eval_span = rpq_obs::Trace::span("eval");
        let mut engine = LazyEval::new(query.dfa(), &csr, self.spec.n_tags());
        let (result, nodes_touched) = match request {
            QueryRequest::Pairwise(..) | QueryRequest::EntryExit => {
                let (u, v) = match request {
                    QueryRequest::Pairwise(u, v) => (*u, *v),
                    _ => (run.entry(), run.exit()),
                };
                (QueryResult::Bool(engine.pairwise(u, v)), 2)
            }
            QueryRequest::AllPairs(l1, l2) => {
                let pairs = NodePairSet::from_pairs(engine.all_pairs(l1, l2));
                (QueryResult::Pairs(pairs), l1.len() + l2.len())
            }
            QueryRequest::SourceStar(u) => {
                let pairs: Vec<(NodeId, NodeId)> =
                    engine.reachable(*u).into_iter().map(|v| (*u, v)).collect();
                (
                    QueryResult::Pairs(NodePairSet::from_pairs(pairs)),
                    run.n_nodes() + 1,
                )
            }
            QueryRequest::TargetStar(v) => (
                QueryResult::Pairs(NodePairSet::from_pairs(engine.target_star(*v))),
                run.n_nodes() + 1,
            ),
            QueryRequest::Reachable(u) => {
                (QueryResult::Nodes(engine.reachable(*u)), run.n_nodes() + 1)
            }
        };
        drop(eval_span);
        QueryOutcome {
            result,
            meta: EvalMeta {
                plan_kind: query.inner.stats.kind,
                index_cache,
                kernel: rpq_relalg::kernel_mode(),
                closures: rpq_relalg::thread_closure_counts().since(closures_before),
                condensations: rpq_relalg::thread_condensation_counts().since(condensations_before),
                nodes_touched,
                strategy: EvalStrategy::Lazy,
                product_states: lazy::thread_expansions() - expansions_before,
                stages: rpq_obs::Trace::take(),
            },
        }
    }

    fn all_pairs_inner(
        &self,
        plan: &QueryPlan,
        run: &Run,
        index: Option<&TagIndex>,
        csr: Option<&CsrIndex>,
        l1: &[NodeId],
        l2: &[NodeId],
    ) -> NodePairSet {
        match (plan, index) {
            (QueryPlan::Safe(p), _) => {
                crate::allpairs::all_pairs_filtered(p, &self.spec, run, l1, l2)
            }
            (QueryPlan::Composite(..), Some(idx)) => {
                general::all_pairs_csr(plan, &self.spec, run, idx, csr, l1, l2)
            }
            (QueryPlan::Composite(..), None) => unreachable!("index fetched above"),
        }
    }

    /// Convenience: pairwise verdict.
    pub fn pairwise(&self, query: &PreparedQuery, run: &Run, u: NodeId, v: NodeId) -> bool {
        self.evaluate(query, run, &QueryRequest::Pairwise(u, v))
            .as_bool()
            .expect("pairwise outcome")
    }

    /// Convenience: all-pairs result set.
    pub fn all_pairs(
        &self,
        query: &PreparedQuery,
        run: &Run,
        l1: &[NodeId],
        l2: &[NodeId],
    ) -> NodePairSet {
        self.assert_owns(query);
        // Borrowed-slice fast path: skips the Vec copies a
        // `QueryRequest::AllPairs` would require.
        let (index, csr) = match &query.inner.plan {
            QueryPlan::Safe(_) => (None, None),
            QueryPlan::Composite(..) => {
                let index = self.index_for(run).0;
                let csr = self.csr_if_useful(run, &index, &query.inner.plan);
                (Some(index), csr)
            }
        };
        self.all_pairs_inner(
            &query.inner.plan,
            run,
            index.as_deref(),
            csr.as_deref(),
            l1,
            l2,
        )
    }

    /// A prepared query carries λ matrices and tag ids compiled for
    /// one specification; evaluating it against a session over a
    /// different one would silently decode garbage. Identical-content
    /// specifications behind different `Arc`s are accepted (the
    /// equality check only runs when the pointers differ).
    fn assert_owns(&self, query: &PreparedQuery) {
        assert!(
            Arc::ptr_eq(&self.spec, &query.inner.spec) || *self.spec == *query.inner.spec,
            "PreparedQuery {:?} was prepared against a different specification \
             than this session's; re-prepare it on this session",
            query.source(),
        );
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("spec_size", &self.spec.size())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_grammar::SpecificationBuilder;
    use rpq_labeling::{EventBatch, RunBuilder, RunEdge};

    fn spec() -> Specification {
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        b.atomic("u");
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("t");
            let s = w.node("S");
            let y = w.node("u");
            w.edge_named(x, s, "go");
            w.edge_named(s, y, "done");
        });
        b.production("S", |w| {
            let x = w.node("t");
            let y = w.node("u");
            w.edge_named(x, y, "base");
        });
        b.start("S");
        b.build().unwrap()
    }

    #[test]
    fn prepare_twice_hits_the_plan_cache() {
        let session = Session::from_spec(spec());
        let q1 = session.prepare("go+ base _*").unwrap();
        let q2 = session.prepare("go+  base  _*").unwrap(); // different spelling
        assert_eq!(session.stats().plan_misses, 1);
        assert_eq!(session.stats().plan_hits, 1);
        // Same underlying plan object.
        assert!(Arc::ptr_eq(&q1.inner, &q2.inner));
        // A different policy is a different cache entry.
        session
            .prepare_with("go+ base _*", SubqueryPolicy::AlwaysLabels)
            .unwrap();
        assert_eq!(session.stats().plan_misses, 2);
    }

    #[test]
    fn index_is_built_once_per_run() {
        let session = Session::from_spec(spec());
        let run = RunBuilder::new(session.spec())
            .seed(2)
            .target_edges(60)
            .build()
            .unwrap();
        // Single-symbol queries are composite (index-answered) leaves.
        let q_go = session.prepare("go").unwrap();
        let q_base = session.prepare("base").unwrap();
        let all: Vec<NodeId> = run.node_ids().collect();
        // Forced materialized: the per-evaluation index-cache contract
        // is the subject (the lazy product search only touches the
        // index cache while building a missing CSR arena).
        let o1 = session.evaluate_with_strategy(
            &q_go,
            &run,
            &QueryRequest::all_pairs(all.clone(), all.clone()),
            EvalStrategy::Materialized,
        );
        assert_eq!(o1.meta.index_cache, IndexCacheUse::Miss);
        let o2 = session.evaluate_with_strategy(
            &q_base,
            &run,
            &QueryRequest::all_pairs(all.clone(), all),
            EvalStrategy::Materialized,
        );
        assert_eq!(o2.meta.index_cache, IndexCacheUse::Hit);
        assert_eq!(session.stats().index_misses, 1);
        assert_eq!(session.stats().index_hits, 1);
        // Leaf plans have no closure, so no CSR arena was built.
        assert_eq!(session.stats().csr_misses, 0);
    }

    /// Serializes tests that flip the process-wide kernel mode (they
    /// would otherwise race each other's assertions; unrelated tests
    /// only see outcome-equivalent kernels, so they are unaffected).
    static KERNEL_MODE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn csr_arena_is_built_once_and_only_for_closure_plans() {
        let _guard = KERNEL_MODE_LOCK.lock().expect("kernel mode lock");
        // Pin the dispatch mode: under a forced-pairs environment (the
        // CI kernel matrix) the arena would legitimately never be
        // built, which is not what this test pins down.
        let before = rpq_relalg::kernel_mode();
        rpq_relalg::set_kernel_mode(rpq_relalg::KernelMode::Auto);
        let session = Session::from_spec(spec());
        let run = RunBuilder::new(session.spec())
            .seed(4)
            .target_edges(60)
            .build()
            .unwrap();
        // A relationally-planned star closes over an index leaf: the
        // arena is built on first evaluation, cached on the second.
        // (Forced materialized: this test pins the relational path's
        // artifact accounting, which `Auto` would route around here.)
        let q = session
            .prepare_with("go+", SubqueryPolicy::AlwaysRelational)
            .unwrap();
        let entry = run.entry();
        let star = QueryRequest::source_star(entry);
        let forced = EvalStrategy::Materialized;
        session.evaluate_with_strategy(&q, &run, &star, forced);
        assert_eq!(session.stats().csr_misses, 1);
        session.evaluate_with_strategy(&q, &run, &star, forced);
        assert_eq!(session.stats().csr_hits, 1);
        assert_eq!(session.stats().csr_misses, 1);
        // One index interaction per evaluation, not two.
        assert_eq!(session.stats().index_misses + session.stats().index_hits, 2);
        // Eviction drops the arena with the index.
        session.clear_run_cache();
        session.evaluate_with_strategy(&q, &run, &star, forced);
        assert_eq!(session.stats().csr_misses, 2);
        rpq_relalg::set_kernel_mode(before);
    }

    #[test]
    fn closure_algorithms_surface_in_eval_meta() {
        let _guard = KERNEL_MODE_LOCK.lock().expect("kernel mode lock");
        let before = rpq_relalg::kernel_mode();
        let session = Session::from_spec(spec());
        let run = RunBuilder::new(session.spec())
            .seed(6)
            .target_edges(60)
            .build()
            .unwrap();
        let q = session
            .prepare_with("go+", SubqueryPolicy::AlwaysRelational)
            .unwrap();
        let entry = run.entry();
        let star = QueryRequest::source_star(entry);
        // Forced materialized throughout: closure counters are a
        // relational-path fact, and `Auto` would pick lazy here.
        let forced = EvalStrategy::Materialized;
        // Forced condensation: the one closure of `go+` runs scc and
        // the meta says so.
        rpq_relalg::set_kernel_mode(rpq_relalg::KernelMode::ForceScc);
        let outcome = session.evaluate_with_strategy(&q, &run, &star, forced);
        assert_eq!(outcome.meta.kernel, rpq_relalg::KernelMode::ForceScc);
        assert_eq!(outcome.meta.closures.scc, 1, "{:?}", outcome.meta.closures);
        assert_eq!(outcome.meta.closures.total(), 1);
        assert_eq!(outcome.meta.strategy, EvalStrategy::Materialized);
        assert_eq!(outcome.meta.product_states, 0);
        // Forced pairs: same query, same closure count, other column.
        rpq_relalg::set_kernel_mode(rpq_relalg::KernelMode::ForcePairs);
        let outcome = session.evaluate_with_strategy(&q, &run, &star, forced);
        assert_eq!(
            outcome.meta.closures.pairs, 1,
            "{:?}",
            outcome.meta.closures
        );
        // Safe plans never touch the relational kernels.
        let safe = session.prepare("_*").unwrap();
        let outcome = session.evaluate(&safe, &run, &QueryRequest::entry_exit());
        assert_eq!(outcome.meta.closures, rpq_relalg::ClosureCounts::default());
        rpq_relalg::set_kernel_mode(before);
    }

    #[test]
    fn k_tag_closures_condense_exactly_once() {
        let _guard = KERNEL_MODE_LOCK.lock().expect("kernel mode lock");
        let before = rpq_relalg::kernel_mode();
        rpq_relalg::set_kernel_mode(rpq_relalg::KernelMode::ForceScc);
        let session = Session::from_spec(spec());
        let run = RunBuilder::new(session.spec())
            .seed(6)
            .target_edges(60)
            .build()
            .unwrap();
        // Three distinct closures in one plan, alternated so every
        // branch evaluates (a concat chain short-circuits on empty
        // intermediates, and repeated subqueries are deduplicated by
        // plan compilation): Tarjan runs once over the run's full
        // adjacency, the other two closures — the wildcard one
        // included — reuse the cached component DAG.
        let q = session
            .prepare_with("go+ | done+ | _+", SubqueryPolicy::AlwaysRelational)
            .unwrap();
        let star = QueryRequest::source_star(run.entry());
        let outcome = session.evaluate_with_strategy(&q, &run, &star, EvalStrategy::Materialized);
        assert_eq!(outcome.meta.closures.scc, 3, "{:?}", outcome.meta.closures);
        assert_eq!(
            outcome.meta.condensations.computed, 1,
            "{:?}",
            outcome.meta.condensations
        );
        assert_eq!(
            outcome.meta.condensations.reused, 2,
            "{:?}",
            outcome.meta.condensations
        );
        // The cache is evaluation-scoped: a fresh evaluation condenses
        // afresh (and reuses again), it does not inherit the last one.
        let outcome = session.evaluate_with_strategy(&q, &run, &star, EvalStrategy::Materialized);
        assert_eq!(outcome.meta.condensations.computed, 1);
        assert_eq!(outcome.meta.condensations.reused, 2);
        // Lazy evaluations never condense.
        let outcome = session.evaluate_with_strategy(&q, &run, &star, EvalStrategy::Lazy);
        assert_eq!(
            outcome.meta.condensations,
            rpq_relalg::CondensationCounts::default()
        );
        rpq_relalg::set_kernel_mode(before);
    }

    #[test]
    fn target_star_auto_boundary_charges_the_transposed_arena() {
        // Regression: the reversed-DFA `TargetStar` search walks the
        // deduplicated transposed arenas, so `auto` must charge it the
        // run's distinct-triple count — not the raw event count, which
        // a live stream re-appending existing edges inflates
        // arbitrarily. Forward modes keep the conservative raw charge,
        // so the two sides of the decision boundary diverge on exactly
        // such runs.
        let session = Session::from_spec(spec());
        let q = session
            .prepare_with("go+", SubqueryPolicy::AlwaysRelational)
            .unwrap();
        let mut run = RunBuilder::new(session.spec())
            .seed(4)
            .target_edges(60)
            .build()
            .unwrap();
        let duplicates: Vec<RunEdge> = run
            .node_ids()
            .flat_map(|u| {
                run.out_edges(u)
                    .iter()
                    .map(move |&(v, tag)| RunEdge {
                        src: u,
                        dst: v,
                        tag,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let n = run.n_nodes() as f64;
        let s = q.inner.stats.dfa_states.max(1) as f64;
        let mat = |m_raw: f64| (m_raw * n.sqrt()).min(n * n).max(n);
        // Re-append the existing edges until the *raw* charge for one
        // search crosses the materialized estimate. The distinct count
        // never moves, so the run ends up straddling the boundary.
        for _ in 0..200 {
            let m_raw = run.n_edges() as f64;
            if s * (n + m_raw) >= mat(m_raw) {
                break;
            }
            run = run
                .apply_events(&EventBatch {
                    nodes: Vec::new(),
                    edges: duplicates.clone(),
                })
                .unwrap();
        }
        let m_raw = run.n_edges() as f64;
        let m_distinct = run.n_distinct_edges() as f64;
        assert!(m_distinct < m_raw);
        assert!(
            s * (n + m_raw) >= mat(m_raw),
            "raw-charged search must look more expensive than materializing"
        );
        assert!(
            s * (n + m_distinct) < mat(m_raw),
            "distinct-charged search must undercut it"
        );
        // The boundary: backward search lazy, forward search (same run,
        // same plan, still raw-charged) materialized.
        let target = QueryRequest::target_star(run.exit());
        assert!(session.auto_picks_lazy(&q, &run, &target));
        assert!(!session.auto_picks_lazy(&q, &run, &QueryRequest::source_star(run.entry())));
        // End to end: `Auto` resolves — and reports — lazy for the
        // backward search on this run.
        let outcome = session.evaluate_with_strategy(&q, &run, &target, EvalStrategy::Auto);
        assert_eq!(outcome.meta.strategy, EvalStrategy::Lazy);
    }

    #[test]
    fn evaluations_carry_a_stage_breakdown() {
        let session = Session::from_spec(spec());
        let run = RunBuilder::new(session.spec())
            .seed(11)
            .target_edges(60)
            .build()
            .unwrap();
        // A composite leaf touches the index: both stages appear.
        let q = session.prepare("go").unwrap();
        let all: Vec<NodeId> = run.node_ids().collect();
        let outcome = session.evaluate(&q, &run, &QueryRequest::all_pairs(all.clone(), all));
        let names: Vec<&str> = outcome.meta.stages.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"index"), "{names:?}");
        assert!(names.contains(&"eval"), "{names:?}");
        // Safe plans have no artifact stage.
        let safe = session.prepare("_*").unwrap();
        let outcome = session.evaluate(&safe, &run, &QueryRequest::entry_exit());
        let names: Vec<&str> = outcome.meta.stages.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"eval"), "{names:?}");
        assert!(!names.contains(&"index"), "{names:?}");
    }

    #[test]
    fn safe_plans_skip_the_index() {
        let session = Session::from_spec(spec());
        let run = RunBuilder::new(session.spec())
            .seed(3)
            .target_edges(60)
            .build()
            .unwrap();
        let q = session.prepare("_*").unwrap();
        assert!(q.is_safe());
        // Forced materialized: the claim is about the label-decoding
        // safe plan, which needs no per-run artifact at all; a forced
        // lazy evaluation would legitimately build the CSR arena.
        let outcome = session.evaluate_with_strategy(
            &q,
            &run,
            &QueryRequest::pairwise(run.entry(), run.exit()),
            EvalStrategy::Materialized,
        );
        assert_eq!(outcome.as_bool(), Some(true));
        assert_eq!(outcome.meta.index_cache, IndexCacheUse::NotNeeded);
        assert_eq!(outcome.meta.plan_kind, PlanKind::Safe);
        assert_eq!(session.stats().index_misses, 0);
    }

    #[test]
    fn star_and_reachable_agree() {
        let session = Session::from_spec(spec());
        let run = RunBuilder::new(session.spec())
            .seed(5)
            .target_edges(80)
            .build()
            .unwrap();
        let q = session.prepare("go+").unwrap();
        let entry = run.entry();
        let star = session.evaluate(&q, &run, &QueryRequest::source_star(entry));
        let reach = session.evaluate(&q, &run, &QueryRequest::reachable(entry));
        let star_targets: Vec<NodeId> = star.as_pairs().unwrap().iter().map(|(_, v)| v).collect();
        assert_eq!(reach.as_nodes().unwrap(), star_targets.as_slice());

        // Target star is the transpose selection.
        let exit = run.exit();
        let tstar = session.evaluate(&q, &run, &QueryRequest::target_star(exit));
        for (u, v) in tstar.as_pairs().unwrap().iter() {
            assert_eq!(v, exit);
            assert!(session.pairwise(&q, &run, u, v));
        }
    }

    #[test]
    fn lazy_and_materialized_agree_and_surface_in_meta() {
        let session = Session::from_spec(spec());
        let run = RunBuilder::new(session.spec())
            .seed(12)
            .target_edges(80)
            .build()
            .unwrap();
        let q = session
            .prepare_with("go+ base _*", SubqueryPolicy::AlwaysRelational)
            .unwrap();
        let all: Vec<NodeId> = run.node_ids().collect();
        let requests = [
            QueryRequest::entry_exit(),
            QueryRequest::pairwise(run.entry(), run.exit()),
            QueryRequest::all_pairs(all.clone(), all.clone()),
            QueryRequest::source_star(run.entry()),
            QueryRequest::target_star(run.exit()),
            QueryRequest::reachable(run.entry()),
        ];
        for request in &requests {
            let lazy = session.evaluate_with_strategy(&q, &run, request, EvalStrategy::Lazy);
            let mat = session.evaluate_with_strategy(&q, &run, request, EvalStrategy::Materialized);
            assert_eq!(lazy.result, mat.result, "{request:?}");
            assert_eq!(lazy.meta.strategy, EvalStrategy::Lazy);
            assert_eq!(mat.meta.strategy, EvalStrategy::Materialized);
            assert!(lazy.meta.product_states > 0, "{request:?}");
            assert_eq!(mat.meta.product_states, 0);
            // Lazy evaluations never run relational closures, and their
            // product search shows up in the stage breakdown.
            assert_eq!(lazy.meta.closures.total(), 0);
            let names: Vec<&str> = lazy.meta.stages.iter().map(|(n, _)| *n).collect();
            assert!(names.contains(&"lazy_expand"), "{names:?}");
        }
        // The lazy path reports the CSR cache interaction: the first
        // evaluation above built the arena, the rest hit it.
        assert_eq!(session.stats().csr_misses, 1);
    }

    #[test]
    fn invalidate_run_evicts_only_that_run() {
        let session = Session::from_spec(spec());
        let run_a = RunBuilder::new(session.spec())
            .seed(8)
            .target_edges(40)
            .build()
            .unwrap();
        let run_b = RunBuilder::new(session.spec())
            .seed(9)
            .target_edges(60)
            .build()
            .unwrap();
        let q = session.prepare("go").unwrap();
        let all_a: Vec<NodeId> = run_a.node_ids().collect();
        let all_b: Vec<NodeId> = run_b.node_ids().collect();
        session.evaluate(&q, &run_a, &QueryRequest::all_pairs(all_a.clone(), all_a));
        session.evaluate(
            &q,
            &run_b,
            &QueryRequest::all_pairs(all_b.clone(), all_b.clone()),
        );
        assert!(session.run_is_cached(&run_a));
        assert!(session.run_is_cached(&run_b));

        assert!(session.invalidate_run(&run_a));
        assert!(!session.run_is_cached(&run_a));
        assert!(session.run_is_cached(&run_b));
        // Nothing left to drop for the same run.
        assert!(!session.invalidate_run(&run_a));
        // The survivor still answers from cache.
        let misses = session.stats().index_misses;
        session.evaluate(&q, &run_b, &QueryRequest::all_pairs(all_b.clone(), all_b));
        assert_eq!(session.stats().index_misses, misses);
    }

    #[test]
    fn prepared_queries_outlive_their_borrow_sites() {
        // The handle is detached: usable after the preparing scope ends
        // and across clones.
        let session = Session::from_spec(spec());
        let q = {
            let q = session.prepare("_* done").unwrap();
            q.clone()
        };
        let run = RunBuilder::new(session.spec())
            .seed(7)
            .target_edges(40)
            .build()
            .unwrap();
        assert!(session.pairwise(&q, &run, run.entry(), run.exit()));
    }
}
