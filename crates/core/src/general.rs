//! General (possibly unsafe) all-pairs queries — Section IV-B.
//!
//! "Our approach": represent the regular expression as a parse tree and
//! find its *maximal safe subtrees* top-down; each safe subtree is
//! evaluated with the label-based all-pairs engine (Algorithm 2), and
//! the unsafe remainder is composed with relational operators exactly as
//! baseline G1 would (join for concatenation, union for alternation,
//! semi-naive fixpoint for Kleene closure). Leaf subexpressions (one
//! symbol, wildcard, ε) are always answered from the tag index — exact
//! and cheaper than a structural join.

use crate::allpairs::{all_pairs_filtered, all_pairs_nested};
use crate::plan::{PlanError, SafeQueryPlan};
use rpq_automata::{compile_minimal_dfa, Regex};
use rpq_grammar::{Specification, Tag};
use rpq_labeling::{NodeId, Run};
use rpq_relalg::{
    compose_in, transitive_closure_csr, transitive_closure_csr_shared, transitive_closure_in,
    CondensationCache, CsrIndex, NodePairSet, Relation, TagIndex,
};

/// How safe subqueries inside a decomposed plan are evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubqueryPolicy {
    /// Always use the label-based all-pairs merge (the paper's optRPL).
    AlwaysLabels,
    /// Let the cost model pick label-based vs relational per subquery
    /// (the cost-based optimizer the paper's conclusion sketches).
    CostBased,
    /// Never use labels: evaluate the whole query with relational
    /// joins and fixpoints, exactly as baseline G1 would. Useful as a
    /// CLI-selectable referee and for measuring what the labels buy.
    AlwaysRelational,
}

impl SubqueryPolicy {
    /// CLI names of the valid policies.
    pub const NAMES: [&'static str; 3] = ["cost", "memo", "naive"];

    /// Parse a CLI policy name (`cost` → cost-based, `memo` →
    /// label-based memo, `naive` → pure relational).
    pub fn from_cli_name(name: &str) -> Option<SubqueryPolicy> {
        match name {
            "cost" => Some(SubqueryPolicy::CostBased),
            "memo" => Some(SubqueryPolicy::AlwaysLabels),
            "naive" => Some(SubqueryPolicy::AlwaysRelational),
            _ => None,
        }
    }

    /// The CLI name of this policy (inverse of
    /// [`SubqueryPolicy::from_cli_name`]).
    pub fn cli_name(self) -> &'static str {
        match self {
            SubqueryPolicy::CostBased => "cost",
            SubqueryPolicy::AlwaysLabels => "memo",
            SubqueryPolicy::AlwaysRelational => "naive",
        }
    }
}

/// A compiled plan for an arbitrary regular path query.
#[derive(Debug)]
pub enum QueryPlan {
    /// The whole query is safe: evaluated purely from labels.
    Safe(SafeQueryPlan),
    /// Mixed plan: safe subtrees under relational composition.
    Composite(PlanNode, SubqueryPolicy),
}

impl QueryPlan {
    /// Is the whole query safe for the specification?
    pub fn is_safe(&self) -> bool {
        matches!(self, QueryPlan::Safe(_))
    }

    /// Number of safe sub-plans (1 for a fully safe query).
    pub fn n_safe_subqueries(&self) -> usize {
        match self {
            QueryPlan::Safe(_) => 1,
            QueryPlan::Composite(node, _) => node.count_safe(),
        }
    }

    /// The underlying safe plan, when the whole query is safe.
    pub fn as_safe(&self) -> Option<&SafeQueryPlan> {
        match self {
            QueryPlan::Safe(p) => Some(p),
            QueryPlan::Composite(..) => None,
        }
    }
}

/// One node of a composite plan.
#[derive(Debug)]
pub enum PlanNode {
    /// A maximal safe subtree, normally evaluated with Algorithm 2; the
    /// original subexpression is kept so the cost model may fall back to
    /// relational evaluation when the subquery is estimated to be cheap
    /// (the paper's closing remark: "a very useful component in a
    /// cost-based query optimizer").
    SafeEval(Box<SafeQueryPlan>, Regex),
    /// One edge tag: answered from the tag index.
    Sym(Tag),
    /// Any one edge: the full edge relation.
    Wildcard,
    /// The empty path.
    Epsilon,
    /// The empty language.
    Empty,
    /// Concatenation: relational composition of the children.
    Concat(Vec<PlanNode>),
    /// Alternation: union of the children.
    Alt(Vec<PlanNode>),
    /// Kleene star: semi-naive closure ∪ identity.
    Star(Box<PlanNode>),
    /// Kleene plus: semi-naive closure.
    Plus(Box<PlanNode>),
    /// Zero-or-one.
    Optional(Box<PlanNode>),
}

impl PlanNode {
    fn count_safe(&self) -> usize {
        match self {
            PlanNode::SafeEval(..) => 1,
            PlanNode::Concat(cs) | PlanNode::Alt(cs) => cs.iter().map(PlanNode::count_safe).sum(),
            PlanNode::Star(c) | PlanNode::Plus(c) | PlanNode::Optional(c) => c.count_safe(),
            _ => 0,
        }
    }
}

/// Compile a general query plan: top-down maximal-safe-subtree search.
///
/// Fails only on structural grounds (non-strictly-linear spec, DFA too
/// large); *unsafety* is what this planner exists to handle, so it never
/// surfaces as an error here.
pub fn plan_query(spec: &Specification, regex: &Regex) -> Result<QueryPlan, PlanError> {
    plan_query_with(spec, regex, SubqueryPolicy::CostBased)
}

/// [`plan_query`] with an explicit subquery-evaluation policy.
pub fn plan_query_with(
    spec: &Specification,
    regex: &Regex,
    policy: SubqueryPolicy,
) -> Result<QueryPlan, PlanError> {
    if !spec.is_strictly_linear() {
        return Err(PlanError::NotStrictlyLinear);
    }
    // The naive policy skips safety analysis entirely: the whole query
    // is lowered to joins/fixpoints (the G1 evaluation shape).
    if policy == SubqueryPolicy::AlwaysRelational {
        return Ok(QueryPlan::Composite(relational_node(regex), policy));
    }
    plan_query_with_dfa(
        spec,
        regex,
        policy,
        compile_minimal_dfa(regex, spec.n_tags()),
    )
}

/// [`plan_query_with`] when the caller already compiled the query's
/// minimal DFA (it is the dominant planning cost; `Session::prepare`
/// compiles it once for plan statistics and hands it in here).
///
/// `policy` must not be [`SubqueryPolicy::AlwaysRelational`] — that
/// path never needs a DFA; use [`plan_query_with`].
pub fn plan_query_with_dfa(
    spec: &Specification,
    regex: &Regex,
    policy: SubqueryPolicy,
    dfa: rpq_automata::Dfa,
) -> Result<QueryPlan, PlanError> {
    debug_assert_ne!(policy, SubqueryPolicy::AlwaysRelational);
    if !spec.is_strictly_linear() {
        return Err(PlanError::NotStrictlyLinear);
    }
    // Leaf expressions are cheaper via the index even when safe.
    if !is_leaf(regex) {
        match SafeQueryPlan::compile(spec, dfa) {
            Ok(plan) => return Ok(QueryPlan::Safe(plan)),
            Err(PlanError::Unsafe { .. }) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(QueryPlan::Composite(plan_node(spec, regex)?, policy))
}

/// Is the expression a leaf (answered from the tag index rather than a
/// compiled plan, even when safe)?
pub(crate) fn is_leaf(re: &Regex) -> bool {
    matches!(
        re,
        Regex::Empty | Regex::Epsilon | Regex::Sym(_) | Regex::Wildcard
    )
}

fn try_safe(spec: &Specification, regex: &Regex) -> Result<SafeQueryPlan, PlanError> {
    let dfa = compile_minimal_dfa(regex, spec.n_tags());
    SafeQueryPlan::compile(spec, dfa)
}

fn plan_node(spec: &Specification, regex: &Regex) -> Result<PlanNode, PlanError> {
    // Non-leaf safe subtree → stop descending (the "largest safe
    // subtree" heuristic of Section IV-B).
    if !is_leaf(regex) {
        match try_safe(spec, regex) {
            Ok(plan) => return Ok(PlanNode::SafeEval(Box::new(plan), regex.clone())),
            Err(PlanError::Unsafe { .. } | PlanError::TooManyStates(_)) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(match regex {
        Regex::Empty => PlanNode::Empty,
        Regex::Epsilon => PlanNode::Epsilon,
        Regex::Sym(s) => PlanNode::Sym(Tag(s.0)),
        Regex::Wildcard => PlanNode::Wildcard,
        Regex::Concat(parts) => PlanNode::Concat(plan_concat_segments(spec, parts)?),
        Regex::Alt(parts) => PlanNode::Alt(
            parts
                .iter()
                .map(|p| plan_node(spec, p))
                .collect::<Result<_, _>>()?,
        ),
        Regex::Star(inner) => PlanNode::Star(Box::new(plan_node(spec, inner)?)),
        Regex::Plus(inner) => PlanNode::Plus(Box::new(plan_node(spec, inner)?)),
        Regex::Optional(inner) => PlanNode::Optional(Box::new(plan_node(spec, inner)?)),
    })
}

/// Plan a concatenation whose whole is unsafe: greedily group maximal
/// *safe segments* of adjacent factors. This goes beyond the paper's
/// per-subtree search (its "query rewriting" future work): `A B C` may
/// be unsafe as a whole while `A B` is safe, and evaluating `A B` with
/// one label-based subquery instead of two halves both the subquery
/// count and the join fan-in.
fn plan_concat_segments(spec: &Specification, parts: &[Regex]) -> Result<Vec<PlanNode>, PlanError> {
    let mut nodes = Vec::new();
    let mut i = 0;
    while i < parts.len() {
        let mut grouped = None;
        // Longest safe segment of ≥ 2 factors starting at i.
        for j in ((i + 2)..=parts.len()).rev() {
            let seg = Regex::concat(parts[i..j].to_vec());
            if is_leaf(&seg) {
                continue;
            }
            match try_safe(spec, &seg) {
                Ok(plan) => {
                    grouped = Some((j, plan));
                    break;
                }
                Err(PlanError::Unsafe { .. } | PlanError::TooManyStates(_)) => {}
                Err(e) => return Err(e),
            }
        }
        match grouped {
            Some((j, plan)) => {
                let seg = Regex::concat(parts[i..j].to_vec());
                nodes.push(PlanNode::SafeEval(Box::new(plan), seg));
                i = j;
            }
            None => {
                nodes.push(plan_node(spec, &parts[i])?);
                i += 1;
            }
        }
    }
    Ok(nodes)
}

/// Everything a composite-plan evaluation ranges over: the compiled
/// context (specification), the run with its cached indexes, and the
/// evaluation policy. Bundling these keeps the recursive evaluators'
/// signatures flat and lets sessions hand down their cached
/// [`CsrIndex`] arena without widening every call site.
#[derive(Clone, Copy)]
pub struct EvalCtx<'a> {
    /// The workflow specification the plan was compiled against.
    pub spec: &'a Specification,
    /// The run under query.
    pub run: &'a Run,
    /// The run's per-tag inverted index.
    pub index: &'a TagIndex,
    /// The run's CSR adjacency arena, when the caller has one cached
    /// (sessions do); closures over index leaves then skip the
    /// pair→CSR conversion.
    pub csr: Option<&'a CsrIndex>,
    /// The candidate universe for safe subqueries.
    pub universe: &'a [NodeId],
    /// The subquery-evaluation policy.
    pub policy: SubqueryPolicy,
    /// The evaluation-scoped condensation cache: a plan with k
    /// SCC-kernel tag closures runs Tarjan once over the run's full
    /// adjacency and schedules the other k−1 closures off the cached
    /// component DAG. `None` (plus `csr: None`) keeps hand-rolled
    /// contexts working; the session entry points always wire one in.
    pub condensations: Option<&'a CondensationCache>,
}

/// Evaluate a composite plan node to a relation over the run.
pub fn eval_node(node: &PlanNode, ctx: &EvalCtx<'_>) -> Relation {
    let n_nodes = ctx.run.n_nodes();
    match node {
        PlanNode::SafeEval(plan, regex) => {
            // Naive plans contain no SafeEval nodes, but stay total in
            // case one is composed by hand.
            if ctx.policy == SubqueryPolicy::AlwaysRelational {
                return eval_node(&relational_node(regex), ctx);
            }
            // Cost-based evaluator choice (the optimizer the paper's
            // conclusion sketches): the label-based merge touches every
            // reachable candidate pair over the universe, so when the
            // subquery's relational work estimate is far below that,
            // plain joins win — e.g. a selective symbol chain on a large
            // run.
            if ctx.policy == SubqueryPolicy::CostBased {
                let model = crate::cost::CostModel::new(ctx.index, n_nodes);
                let rel_node = relational_node(regex);
                let n = n_nodes as f64;
                if model.work_estimate(&rel_node) < n * n / 16.0 {
                    return eval_node(&rel_node, ctx);
                }
            }
            let pairs = all_pairs_filtered(plan, ctx.spec, ctx.run, ctx.universe, ctx.universe);
            // ε acceptance is already reflected in the self pairs the
            // safe evaluator emits; strip them back out into the
            // symbolic identity so downstream composition stays sparse.
            if plan.accepts_epsilon() {
                let non_reflexive: NodePairSet = pairs.iter().filter(|(u, v)| u != v).collect();
                Relation {
                    pairs: non_reflexive,
                    identity: true,
                }
            } else {
                Relation::from_pairs(pairs)
            }
        }
        PlanNode::Sym(tag) => Relation::from_pairs(ctx.index.edges(*tag).clone()),
        PlanNode::Wildcard => Relation::from_pairs(ctx.index.all_edges().clone()),
        PlanNode::Epsilon => Relation::epsilon(),
        PlanNode::Empty => Relation::empty(),
        PlanNode::Concat(children) => {
            if children.len() <= 2 {
                let mut rel = eval_node(&children[0], ctx);
                for c in &children[1..] {
                    if rel.pairs.is_empty() && !rel.identity {
                        return Relation::empty();
                    }
                    rel = compose_in(&rel, &eval_node(c, ctx), n_nodes);
                }
                return rel;
            }
            // Associate the chain by estimated intermediate sizes (the
            // paper's cost-model future work; see `cost`).
            let model = crate::cost::CostModel::new(ctx.index, n_nodes);
            let sizes: Vec<f64> = children.iter().map(|c| model.estimate(c)).collect();
            let order = model.chain_order(&sizes);
            eval_chain(children, &order, 0, children.len() - 1, ctx)
        }
        PlanNode::Alt(children) => {
            let mut rel = Relation::empty();
            for c in children {
                rel = rel.union(&eval_node(c, ctx));
            }
            rel
        }
        PlanNode::Star(inner) => Relation {
            pairs: closure_of(inner, ctx),
            identity: true,
        },
        PlanNode::Plus(inner) => {
            // Index leaves never carry identity, so the CSR shortcut in
            // `closure_of` preserves Plus semantics; for general inner
            // nodes the identity of the base must survive.
            match inner.as_ref() {
                PlanNode::Sym(_) | PlanNode::Wildcard => Relation {
                    pairs: closure_of(inner, ctx),
                    identity: false,
                },
                _ => {
                    let base = eval_node(inner, ctx);
                    Relation {
                        pairs: transitive_closure_in(&base.pairs, n_nodes),
                        identity: base.identity,
                    }
                }
            }
        }
        PlanNode::Optional(inner) => {
            let base = eval_node(inner, ctx);
            Relation {
                pairs: base.pairs,
                identity: true,
            }
        }
    }
}

/// Does the plan contain a Kleene closure over a bare index leaf — the
/// only construct that reads a cached [`CsrIndex`]? Sessions skip
/// building the arena for plans that can never consume it. Safe
/// subtrees count when the policy may lower them to relational form at
/// evaluation time (the cost-based fallback), since the lowered shape
/// can contain leaf closures of its own.
pub fn plan_uses_csr(plan: &QueryPlan) -> bool {
    match plan {
        QueryPlan::Safe(_) => false,
        QueryPlan::Composite(node, policy) => node_uses_csr(node, *policy),
    }
}

fn node_uses_csr(node: &PlanNode, policy: SubqueryPolicy) -> bool {
    match node {
        PlanNode::SafeEval(_, regex) => {
            policy != SubqueryPolicy::AlwaysLabels && regex_uses_csr(regex)
        }
        PlanNode::Star(inner) | PlanNode::Plus(inner) => {
            matches!(inner.as_ref(), PlanNode::Sym(_) | PlanNode::Wildcard)
                || node_uses_csr(inner, policy)
        }
        PlanNode::Optional(inner) => node_uses_csr(inner, policy),
        PlanNode::Concat(cs) | PlanNode::Alt(cs) => cs.iter().any(|c| node_uses_csr(c, policy)),
        _ => false,
    }
}

/// Would the relational lowering of `re` contain a closure over an
/// index leaf? Mirrors [`relational_node`] without building the tree.
fn regex_uses_csr(re: &Regex) -> bool {
    match re {
        Regex::Star(inner) | Regex::Plus(inner) => {
            matches!(inner.as_ref(), Regex::Sym(_) | Regex::Wildcard) || regex_uses_csr(inner)
        }
        Regex::Optional(inner) => regex_uses_csr(inner),
        Regex::Concat(ps) | Regex::Alt(ps) => ps.iter().any(regex_uses_csr),
        _ => false,
    }
}

/// The transitive closure of a plan node's relation. Closures over
/// bare index leaves (`a*`, `⎵*` remainders) run straight off the
/// session's cached CSR arena when one is available — the headline
/// fixpoint path — and fall back to evaluating the node and closing
/// its pair set otherwise.
fn closure_of(inner: &PlanNode, ctx: &EvalCtx<'_>) -> NodePairSet {
    match (inner, ctx.csr) {
        // Tag/wildcard closures share one evaluation-scoped Tarjan
        // condensation of the full adjacency (`csr.all()` is a
        // super-graph of every per-tag arena, so its component DAG
        // soundly schedules them all). Derived relations — the `_` arm
        // below — are *not* sub-graphs of the run's edges and must not
        // reuse it.
        (PlanNode::Sym(tag), Some(csr)) => match ctx.condensations {
            Some(cache) => transitive_closure_csr_shared(csr.csr(*tag), csr.all(), cache),
            None => transitive_closure_csr(csr.csr(*tag)),
        },
        (PlanNode::Wildcard, Some(csr)) => match ctx.condensations {
            Some(cache) => transitive_closure_csr_shared(csr.all(), csr.all(), cache),
            None => transitive_closure_csr(csr.all()),
        },
        _ => {
            let base = eval_node(inner, ctx);
            transitive_closure_in(&base.pairs, ctx.run.n_nodes())
        }
    }
}

/// Lower a regex to a purely relational plan (no label-based subqueries)
/// — the evaluator baseline G1 uses, and the cost model's fallback shape.
pub fn relational_node(regex: &Regex) -> PlanNode {
    match regex {
        Regex::Empty => PlanNode::Empty,
        Regex::Epsilon => PlanNode::Epsilon,
        Regex::Sym(s) => PlanNode::Sym(Tag(s.0)),
        Regex::Wildcard => PlanNode::Wildcard,
        Regex::Concat(parts) => PlanNode::Concat(parts.iter().map(relational_node).collect()),
        Regex::Alt(parts) => PlanNode::Alt(parts.iter().map(relational_node).collect()),
        Regex::Star(inner) => PlanNode::Star(Box::new(relational_node(inner))),
        Regex::Plus(inner) => PlanNode::Plus(Box::new(relational_node(inner))),
        Regex::Optional(inner) => PlanNode::Optional(Box::new(relational_node(inner))),
    }
}

/// Evaluate a concatenation segment `i..=j` in the association order the
/// cost model chose.
fn eval_chain(
    children: &[PlanNode],
    order: &crate::cost::ChainOrder,
    i: usize,
    j: usize,
    ctx: &EvalCtx<'_>,
) -> Relation {
    if i == j {
        return eval_node(&children[i], ctx);
    }
    let k = order.split_of(i, j);
    let left = eval_chain(children, order, i, k, ctx);
    if left.pairs.is_empty() && !left.identity {
        return Relation::empty();
    }
    let right = eval_chain(children, order, k + 1, j, ctx);
    compose_in(&left, &right, ctx.run.n_nodes())
}

/// Evaluate a full query plan as an all-pairs query over `l1 × l2`.
pub fn all_pairs(
    plan: &QueryPlan,
    spec: &Specification,
    run: &Run,
    index: &TagIndex,
    l1: &[NodeId],
    l2: &[NodeId],
) -> NodePairSet {
    all_pairs_csr(plan, spec, run, index, None, l1, l2)
}

/// [`all_pairs`] with an optional cached CSR arena (the session entry
/// point).
pub fn all_pairs_csr(
    plan: &QueryPlan,
    spec: &Specification,
    run: &Run,
    index: &TagIndex,
    csr: Option<&CsrIndex>,
    l1: &[NodeId],
    l2: &[NodeId],
) -> NodePairSet {
    match plan {
        QueryPlan::Safe(p) => all_pairs_filtered(p, spec, run, l1, l2),
        QueryPlan::Composite(node, policy) => {
            let universe: Vec<NodeId> = run.node_ids().collect();
            let condensations = CondensationCache::new();
            let ctx = EvalCtx {
                spec,
                run,
                index,
                csr,
                universe: &universe,
                policy: *policy,
                condensations: Some(&condensations),
            };
            // Kernel-dispatched endpoint selection: the dense closures
            // relational plans end in AND a target mask into each bit
            // row instead of probing per pair.
            eval_node(node, &ctx).select_pairs_in(l1, l2, run.n_nodes())
        }
    }
}

/// Evaluate a full query plan pairwise.
pub fn pairwise(
    plan: &QueryPlan,
    spec: &Specification,
    run: &Run,
    index: &TagIndex,
    u: NodeId,
    v: NodeId,
) -> bool {
    pairwise_csr(plan, spec, run, index, None, u, v)
}

/// [`pairwise`] with an optional cached CSR arena (the session entry
/// point).
pub fn pairwise_csr(
    plan: &QueryPlan,
    spec: &Specification,
    run: &Run,
    index: &TagIndex,
    csr: Option<&CsrIndex>,
    u: NodeId,
    v: NodeId,
) -> bool {
    match plan {
        QueryPlan::Safe(p) => p.pairwise(run, u, v),
        QueryPlan::Composite(node, policy) => {
            let universe: Vec<NodeId> = run.node_ids().collect();
            let condensations = CondensationCache::new();
            let ctx = EvalCtx {
                spec,
                run,
                index,
                csr,
                universe: &universe,
                policy: *policy,
                condensations: Some(&condensations),
            };
            eval_node(node, &ctx).contains(u, v)
        }
    }
}

/// Nested-loop variant for the "RPL" measurement (Option S1) on safe
/// plans; composite plans fall back to [`all_pairs`].
pub fn all_pairs_s1(
    plan: &QueryPlan,
    spec: &Specification,
    run: &Run,
    index: &TagIndex,
    l1: &[NodeId],
    l2: &[NodeId],
) -> NodePairSet {
    match plan {
        QueryPlan::Safe(p) => all_pairs_nested(p, run, l1, l2),
        QueryPlan::Composite(..) => all_pairs(plan, spec, run, index, l1, l2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::{parse, Symbol};
    use rpq_grammar::SpecificationBuilder;
    use rpq_labeling::RunBuilder;

    fn fig2() -> Specification {
        let mut b = SpecificationBuilder::new();
        for m in ["a", "b", "c", "d", "e"] {
            b.atomic(m);
        }
        for m in ["S", "A", "B"] {
            b.composite(m);
        }
        b.production("S", |w| {
            let c = w.node("c");
            let a = w.node("A");
            let bb = w.node("B");
            let b2 = w.node("b");
            // W1 is a diamond: c feeds both A and B, which both feed b
            // (the only shape consistent with Examples 3.1 and 3.2).
            w.edge(c, a);
            w.edge(c, bb);
            w.edge(a, b2);
            w.edge(bb, b2);
        });
        b.production("A", |w| {
            let a = w.node("a");
            let aa = w.node("A");
            let d = w.node("d");
            // The paper's unsafe example ⎵* a ⎵* needs an `a` tag that
            // only W2 executions cross.
            w.edge_named(a, aa, "a");
            w.edge(aa, d);
        });
        b.production("A", |w| {
            let e1 = w.node("e");
            let e2 = w.node("e");
            w.edge(e1, e2);
        });
        b.production("B", |w| {
            let b1 = w.node("b");
            let b2 = w.node("b");
            w.edge(b1, b2);
        });
        b.start("S");
        b.build().unwrap()
    }

    fn q(spec: &Specification, text: &str) -> Regex {
        parse(text, &mut |n| spec.tag_by_name(n).map(|t| Symbol(t.0))).unwrap()
    }

    #[test]
    fn safe_query_gets_a_safe_plan() {
        let spec = fig2();
        let plan = plan_query(&spec, &q(&spec, "_* e _*")).unwrap();
        assert!(plan.is_safe());
        assert_eq!(plan.n_safe_subqueries(), 1);
    }

    #[test]
    fn unsafe_query_decomposes() {
        // ⎵* a ⎵* is unsafe for Fig. 2 (the paper's running example).
        let spec = fig2();
        let plan = plan_query(&spec, &q(&spec, "_* a _*")).unwrap();
        assert!(!plan.is_safe());
        // Decomposition: [⎵*][a][⎵*] with two safe reachability parts.
        assert_eq!(plan.n_safe_subqueries(), 2);
    }

    #[test]
    fn composite_matches_safe_on_safe_remainder() {
        // Even when forced through the composite path, the answer agrees
        // with the label-based evaluator.
        let spec = fig2();
        let run = RunBuilder::new(&spec)
            .seed(3)
            .target_edges(120)
            .build()
            .unwrap();
        let index = TagIndex::build(&run, spec.n_tags());
        let all: Vec<NodeId> = run.node_ids().collect();

        let regex = q(&spec, "_* e _*");
        let safe = plan_query(&spec, &regex).unwrap();
        let forced = QueryPlan::Composite(
            PlanNode::Concat(vec![
                PlanNode::SafeEval(
                    Box::new(
                        SafeQueryPlan::compile(
                            &spec,
                            compile_minimal_dfa(&q(&spec, "_*"), spec.n_tags()),
                        )
                        .unwrap(),
                    ),
                    q(&spec, "_*"),
                ),
                PlanNode::Sym(spec.tag_by_name("e").unwrap()),
                PlanNode::SafeEval(
                    Box::new(
                        SafeQueryPlan::compile(
                            &spec,
                            compile_minimal_dfa(&q(&spec, "_*"), spec.n_tags()),
                        )
                        .unwrap(),
                    ),
                    q(&spec, "_*"),
                ),
            ]),
            SubqueryPolicy::AlwaysLabels,
        );
        let a = all_pairs(&safe, &spec, &run, &index, &all, &all);
        let b = all_pairs(&forced, &spec, &run, &index, &all, &all);
        assert_eq!(a, b);
    }

    #[test]
    fn unsafe_plan_answers_correctly() {
        let spec = fig2();
        let run = {
            use rpq_grammar::ProductionId;
            RunBuilder::new(&spec)
                .policy(rpq_labeling::Scripted::new([
                    ProductionId(0),
                    ProductionId(1),
                    ProductionId(1),
                    ProductionId(2),
                    ProductionId(3),
                ]))
                .build()
                .unwrap()
        };
        let index = TagIndex::build(&run, spec.n_tags());
        let n = |s: &str| run.node_by_name(&spec, s).unwrap();

        // ⎵* a ⎵*: true iff the path crosses an `a`-tagged edge.
        // In the Fig. 2b run the a-tagged edges are a:1→a:2 and
        // a:2→e:1 (both introduced by W2 firings).
        let plan = plan_query(&spec, &q(&spec, "_* a _*")).unwrap();
        assert!(pairwise(&plan, &spec, &run, &index, n("c:1"), n("e:2")));
        assert!(pairwise(&plan, &spec, &run, &index, n("c:1"), n("b:1")));
        assert!(!pairwise(&plan, &spec, &run, &index, n("e:1"), n("b:1")));
        assert!(!pairwise(&plan, &spec, &run, &index, n("d:2"), n("b:1")));

        // Exact single symbol (unsafe leaf): e matches only e:1 → e:2.
        let plan_e = plan_query(&spec, &q(&spec, "e")).unwrap();
        let all: Vec<NodeId> = run.node_ids().collect();
        let res = all_pairs(&plan_e, &spec, &run, &index, &all, &all);
        assert_eq!(res.len(), 1);
        assert!(res.contains(n("e:1"), n("e:2")));
    }

    #[test]
    fn concat_segments_group_maximal_safe_prefixes() {
        // ⎵* e ⎵* a ⎵* is unsafe for Fig. 2 (whether an `a` follows the
        // e depends on the recursion depth), but the prefix ⎵* e ⎵* a
        // happens to be safe: grouping it into one label-based subquery
        // leaves [SafeEval(⎵* e ⎵* a), SafeEval(⎵*)] — 2 safe
        // subqueries where per-child planning would produce 3
        // reachability subqueries plus two index symbols.
        let spec = fig2();
        let regex = q(&spec, "_* e _* a _*");
        let plan = plan_query(&spec, &regex).unwrap();
        assert!(!plan.is_safe());
        assert_eq!(plan.n_safe_subqueries(), 2);

        // Correctness against a product-BFS referee.
        let run = RunBuilder::new(&spec)
            .seed(5)
            .target_edges(150)
            .build()
            .unwrap();
        let index = TagIndex::build(&run, spec.n_tags());
        let all: Vec<NodeId> = run.node_ids().collect();
        let got = all_pairs(&plan, &spec, &run, &index, &all, &all);
        let expected = bfs_referee(&spec, &run, &regex, &all);
        assert_eq!(got, expected);
    }

    /// Tiny product-BFS referee (inline to avoid a dev-dependency cycle
    /// with rpq-baselines).
    fn bfs_referee(spec: &Specification, run: &Run, regex: &Regex, all: &[NodeId]) -> NodePairSet {
        let dfa = compile_minimal_dfa(regex, spec.n_tags());
        let mut acc_mask = 0u64;
        for (state, &is_acc) in dfa.accepting().iter().enumerate() {
            if is_acc {
                acc_mask |= 1 << state;
            }
        }
        let mut expected = Vec::new();
        for &u in all {
            let mut masks = vec![0u64; run.n_nodes()];
            masks[u.index()] |= 1 << dfa.start();
            let mut stack = vec![(u, dfa.start())];
            while let Some((x, qs)) = stack.pop() {
                for &(y, tag) in run.out_edges(x) {
                    let q2 = dfa.next(qs, Symbol(tag.0));
                    if masks[y.index()] >> q2 & 1 == 0 {
                        masks[y.index()] |= 1 << q2;
                        stack.push((y, q2));
                    }
                }
            }
            for &v in all {
                let hit = if u == v {
                    dfa.accepts_epsilon()
                } else {
                    masks[v.index()] & acc_mask != 0
                };
                if hit {
                    expected.push((u, v));
                }
            }
        }
        NodePairSet::from_pairs(expected)
    }

    #[test]
    fn cost_ordered_chain_is_exact() {
        // Long unsafe chains go through the matrix-chain association;
        // the result must be identical to naive left-to-right folding.
        let spec = fig2();
        let run = RunBuilder::new(&spec)
            .seed(9)
            .target_edges(200)
            .build()
            .unwrap();
        let index = TagIndex::build(&run, spec.n_tags());
        let all: Vec<NodeId> = run.node_ids().collect();
        let regex = q(&spec, "_* a _* a _* d _*");
        let plan = plan_query(&spec, &regex).unwrap();
        assert!(!plan.is_safe());
        let got = all_pairs(&plan, &spec, &run, &index, &all, &all);
        assert_eq!(got, bfs_referee(&spec, &run, &regex, &all));
    }

    #[test]
    fn empty_and_epsilon_plans() {
        let spec = fig2();
        let run = RunBuilder::new(&spec)
            .seed(1)
            .target_edges(40)
            .build()
            .unwrap();
        let index = TagIndex::build(&run, spec.n_tags());
        let all: Vec<NodeId> = run.node_ids().collect();

        let empty = plan_query(&spec, &Regex::Empty).unwrap();
        assert!(all_pairs(&empty, &spec, &run, &index, &all, &all).is_empty());

        let eps = plan_query(&spec, &Regex::Epsilon).unwrap();
        let res = all_pairs(&eps, &spec, &run, &index, &all, &all);
        assert_eq!(res.len(), run.n_nodes()); // exactly the self pairs
    }
}
