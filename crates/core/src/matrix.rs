//! Boolean DFA-state transition matrices.
//!
//! The safety check and the label decoder both manipulate `|Q| × |Q|`
//! boolean matrices: `M[q, q'] = 1` iff some path (in the relevant scope)
//! transitions the query DFA from `q` to `q'`. The paper's λ(M) matrices
//! (Section III-C) are exactly these. Matrix multiplication is relation
//! composition; powers of cycle-step matrices let the decoder skip over
//! arbitrarily many recursion unfoldings in `O(log n)` multiplications.
//!
//! Rows are `u64` bitmasks, capping `|Q|` at 64 states — ample for the
//! paper's query classes (an IFQ of size k has a (k+1)-state minimal DFA)
//! and checked at plan time.

use rpq_automata::{Dfa, Symbol};
use serde::{Deserialize, Serialize};

/// Maximum supported DFA size.
pub const MAX_STATES: usize = 64;

/// A dense boolean `n × n` matrix over DFA states.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StateMatrix {
    n: u8,
    rows: Vec<u64>,
}

impl StateMatrix {
    /// All-zero matrix (the empty relation).
    pub fn zero(n: usize) -> StateMatrix {
        assert!(n <= MAX_STATES, "DFA too large for StateMatrix");
        StateMatrix {
            n: n as u8,
            rows: vec![0; n],
        }
    }

    /// Identity matrix (the ε relation) — λ of an atomic module.
    pub fn identity(n: usize) -> StateMatrix {
        let mut m = StateMatrix::zero(n);
        for i in 0..n {
            m.rows[i] = 1 << i;
        }
        m
    }

    /// The one-symbol transition matrix of a complete DFA:
    /// `E[q, q'] = 1` iff `δ(q, a) = q'` (each row has exactly one bit).
    pub fn from_dfa_symbol(dfa: &Dfa, a: Symbol) -> StateMatrix {
        let n = dfa.n_states();
        let mut m = StateMatrix::zero(n);
        for q in 0..n {
            let to = dfa.next(q as u32, a);
            m.rows[q] = 1 << to;
        }
        m
    }

    /// Dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n as usize
    }

    /// Entry test.
    #[inline]
    pub fn get(&self, q1: usize, q2: usize) -> bool {
        (self.rows[q1] >> q2) & 1 == 1
    }

    /// Set an entry.
    #[inline]
    pub fn set(&mut self, q1: usize, q2: usize) {
        self.rows[q1] |= 1 << q2;
    }

    /// Raw row bitmask.
    #[inline]
    pub fn row(&self, q: usize) -> u64 {
        self.rows[q]
    }

    /// Boolean matrix product (relation composition): first `self`'s
    /// step, then `other`'s.
    pub fn mul(&self, other: &StateMatrix) -> StateMatrix {
        debug_assert_eq!(self.n, other.n);
        let n = self.dim();
        let mut out = StateMatrix::zero(n);
        for i in 0..n {
            let mut bits = self.rows[i];
            let mut acc = 0u64;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                acc |= other.rows[j];
            }
            out.rows[i] = acc;
        }
        out
    }

    /// Element-wise OR (relation union).
    pub fn or(&self, other: &StateMatrix) -> StateMatrix {
        debug_assert_eq!(self.n, other.n);
        let mut out = self.clone();
        for (r, o) in out.rows.iter_mut().zip(other.rows.iter()) {
            *r |= o;
        }
        out
    }

    /// In-place OR.
    pub fn or_assign(&mut self, other: &StateMatrix) {
        debug_assert_eq!(self.n, other.n);
        for (r, o) in self.rows.iter_mut().zip(other.rows.iter()) {
            *r |= o;
        }
    }

    /// Matrix power by repeated squaring — `O(n³/64 · log e)`.
    pub fn pow(&self, mut e: u64) -> StateMatrix {
        let mut result = StateMatrix::identity(self.dim());
        let mut base = self.clone();
        while e > 0 {
            if e & 1 == 1 {
                result = result.mul(&base);
            }
            e >>= 1;
            if e > 0 {
                base = base.mul(&base);
            }
        }
        result
    }

    /// Is any of `mask`'s states reachable from `q`?
    #[inline]
    pub fn row_intersects(&self, q: usize, mask: u64) -> bool {
        self.rows[q] & mask != 0
    }

    /// Apply the matrix to a row vector (state set) on the left:
    /// `{ q' | ∃ q ∈ row : M[q, q'] }`. The allocation-free primitive
    /// behind pairwise decoding.
    #[inline]
    pub fn row_mul(&self, row: u64) -> u64 {
        let mut bits = row;
        let mut acc = 0u64;
        while bits != 0 {
            let q = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            acc |= self.rows[q];
        }
        acc
    }

    /// Apply the matrix to a column vector (state set) on the right:
    /// `{ q | M.row(q) ∩ col ≠ ∅ }` — backward propagation toward
    /// accepting states.
    #[inline]
    pub fn col_mul(&self, col: u64) -> u64 {
        let mut acc = 0u64;
        for (q, &r) in self.rows.iter().enumerate() {
            if r & col != 0 {
                acc |= 1 << q;
            }
        }
        acc
    }

    /// Is this the all-zero matrix?
    pub fn is_zero(&self) -> bool {
        self.rows.iter().all(|&r| r == 0)
    }

    /// Do the invariants the constructors establish hold? Serde
    /// deserialization bypasses them, so loaders of persisted matrices
    /// must check: dimension within the cap, one row per state, no
    /// bits set beyond the dimension.
    pub fn is_well_formed(&self) -> bool {
        let n = self.n as usize;
        n <= MAX_STATES
            && self.rows.len() == n
            && (n == 64 || self.rows.iter().all(|&r| r >> n == 0))
    }
}

impl std::fmt::Debug for StateMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "StateMatrix({}x{})", self.n, self.n)?;
        for i in 0..self.dim() {
            for j in 0..self.dim() {
                write!(f, "{}", u8::from(self.get(i, j)))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::{compile_minimal_dfa, Regex};

    #[test]
    fn identity_is_multiplicative_unit() {
        let mut m = StateMatrix::zero(4);
        m.set(0, 2);
        m.set(3, 1);
        let id = StateMatrix::identity(4);
        assert_eq!(m.mul(&id), m);
        assert_eq!(id.mul(&m), m);
    }

    #[test]
    fn mul_composes_relations() {
        let mut a = StateMatrix::zero(3);
        a.set(0, 1);
        a.set(1, 2);
        let mut b = StateMatrix::zero(3);
        b.set(1, 0);
        b.set(2, 2);
        let c = a.mul(&b);
        assert!(c.get(0, 0)); // 0 -a-> 1 -b-> 0
        assert!(c.get(1, 2)); // 1 -a-> 2 -b-> 2
        assert!(!c.get(0, 2));
    }

    #[test]
    fn pow_matches_iterated_mul() {
        let mut m = StateMatrix::zero(5);
        m.set(0, 1);
        m.set(1, 2);
        m.set(2, 0);
        m.set(2, 3);
        let mut iterated = StateMatrix::identity(5);
        for e in 0..12u64 {
            assert_eq!(m.pow(e), iterated, "exponent {e}");
            iterated = iterated.mul(&m);
        }
    }

    #[test]
    fn pow_zero_is_identity() {
        let m = StateMatrix::zero(3);
        assert_eq!(m.pow(0), StateMatrix::identity(3));
    }

    #[test]
    fn pow_handles_huge_exponents() {
        // A permutation matrix of order 3: m^(3k) = I.
        let mut m = StateMatrix::zero(3);
        m.set(0, 1);
        m.set(1, 2);
        m.set(2, 0);
        assert_eq!(m.pow(3_000_000_000), StateMatrix::identity(3));
        assert_eq!(m.pow(3_000_000_001), m);
    }

    #[test]
    fn from_dfa_symbol_rows_are_functional() {
        // DFA of ⎵* a ⎵* over 2 symbols: 2 states.
        let dfa = compile_minimal_dfa(&Regex::ifq(&[Symbol(0)]), 2);
        let e = StateMatrix::from_dfa_symbol(&dfa, Symbol(0));
        for q in 0..dfa.n_states() {
            assert_eq!(e.row(q).count_ones(), 1);
        }
    }

    #[test]
    fn row_and_col_mul_agree_with_mul() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            let n = rng.gen_range(1..=8usize);
            let mut m = StateMatrix::zero(n);
            for q in 0..n {
                for r in 0..n {
                    if rng.gen_bool(0.3) {
                        m.set(q, r);
                    }
                }
            }
            let row: u64 = rng.gen_range(0..(1u64 << n));
            let col: u64 = rng.gen_range(0..(1u64 << n));
            // row ⋅ M via explicit expansion.
            let mut expect_row = 0u64;
            for q in 0..n {
                if row >> q & 1 == 1 {
                    expect_row |= m.row(q);
                }
            }
            assert_eq!(m.row_mul(row), expect_row);
            // M ⋅ col via explicit expansion.
            let mut expect_col = 0u64;
            for q in 0..n {
                if m.row(q) & col != 0 {
                    expect_col |= 1 << q;
                }
            }
            assert_eq!(m.col_mul(col), expect_col);
            // Associativity spot check: (row ⋅ M) ∩ col = row ∩ (M ⋅ col).
            assert_eq!(m.row_mul(row) & col != 0, row & m.col_mul(col) != 0);
        }
    }

    #[test]
    fn or_unions() {
        let mut a = StateMatrix::zero(2);
        a.set(0, 0);
        let mut b = StateMatrix::zero(2);
        b.set(0, 1);
        let u = a.or(&b);
        assert!(u.get(0, 0) && u.get(0, 1));
        assert!(!u.is_zero());
        assert!(StateMatrix::zero(2).is_zero());
    }
}
