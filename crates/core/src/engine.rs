//! High-level engine facade.
//!
//! [`RpqEngine`] ties the pieces together for applications: parse a query
//! against a specification's tag alphabet, compile a plan (safe or
//! decomposed), and evaluate pairwise or all-pairs against labeled runs.

use crate::general::{self, QueryPlan};
use crate::plan::{PlanError, SafeQueryPlan};
use rpq_automata::{compile_minimal_dfa, parse, ParseError, Regex, Symbol};
use rpq_grammar::Specification;
use rpq_labeling::{NodeId, Run};
use rpq_relalg::{NodePairSet, TagIndex};

/// Query engine bound to one workflow specification.
///
/// ```
/// use rpq_core::RpqEngine;
/// use rpq_grammar::SpecificationBuilder;
/// use rpq_labeling::RunBuilder;
///
/// let mut b = SpecificationBuilder::new();
/// b.atomic("t");
/// b.composite("S");
/// b.production("S", |w| {
///     let x = w.node("t");
///     let s = w.node("S");
///     let y = w.node("t");
///     w.edge_named(x, s, "down");
///     w.edge_named(s, y, "up");
/// });
/// b.production("S", |w| { w.node("t"); });
/// b.start("S");
/// let spec = b.build().unwrap();
/// let run = RunBuilder::new(&spec).seed(1).target_edges(64).build().unwrap();
///
/// let engine = RpqEngine::new(&spec);
/// let query = engine.parse_query("_* down _* up _*").unwrap();
/// let plan = engine.plan(&query).unwrap();
/// let result = engine.all_pairs(&plan, &run, &[run.entry()], &[run.exit()]);
/// assert_eq!(result.len(), 1);
/// ```
pub struct RpqEngine<'a> {
    spec: &'a Specification,
}

impl<'a> RpqEngine<'a> {
    /// Bind an engine to a specification.
    pub fn new(spec: &'a Specification) -> RpqEngine<'a> {
        RpqEngine { spec }
    }

    /// The underlying specification.
    pub fn spec(&self) -> &Specification {
        self.spec
    }

    /// Parse a query, resolving tag names against the specification.
    pub fn parse_query(&self, text: &str) -> Result<Regex, ParseError> {
        parse(text, &mut |name| {
            self.spec.tag_by_name(name).map(|t| Symbol(t.0))
        })
    }

    /// Compile a general plan: safe if possible, decomposed otherwise
    /// (cost-based subquery evaluation by default).
    pub fn plan(&self, regex: &Regex) -> Result<QueryPlan, PlanError> {
        general::plan_query(self.spec, regex)
    }

    /// [`RpqEngine::plan`] with an explicit subquery-evaluation policy.
    pub fn plan_with(
        &self,
        regex: &Regex,
        policy: general::SubqueryPolicy,
    ) -> Result<QueryPlan, PlanError> {
        general::plan_query_with(self.spec, regex, policy)
    }

    /// Compile strictly as a safe plan (errors with
    /// [`PlanError::Unsafe`] when decomposition would be needed).
    pub fn plan_safe(&self, regex: &Regex) -> Result<SafeQueryPlan, PlanError> {
        SafeQueryPlan::compile(self.spec, compile_minimal_dfa(regex, self.spec.n_tags()))
    }

    /// Is `regex` safe w.r.t. the specification (Definition 13)?
    pub fn is_safe(&self, regex: &Regex) -> bool {
        self.plan_safe(regex).is_ok()
    }

    /// Build the per-run tag index used by decomposed plans (and the
    /// baselines).
    pub fn index(&self, run: &Run) -> TagIndex {
        TagIndex::build(run, self.spec.n_tags())
    }

    /// Pairwise query `u —R→ v`.
    pub fn pairwise(&self, plan: &QueryPlan, run: &Run, u: NodeId, v: NodeId) -> bool {
        match plan {
            QueryPlan::Safe(p) => p.pairwise(run, u, v),
            QueryPlan::Composite(..) => {
                let index = self.index(run);
                general::pairwise(plan, self.spec, run, &index, u, v)
            }
        }
    }

    /// All-pairs query over `l1 × l2` (Algorithm 2 for safe plans).
    pub fn all_pairs(
        &self,
        plan: &QueryPlan,
        run: &Run,
        l1: &[NodeId],
        l2: &[NodeId],
    ) -> NodePairSet {
        let index = self.index(run);
        general::all_pairs(plan, self.spec, run, &index, l1, l2)
    }

    /// All-pairs with a prebuilt index (benchmarks reuse the index
    /// across queries, as the paper's stored indexes do).
    pub fn all_pairs_indexed(
        &self,
        plan: &QueryPlan,
        run: &Run,
        index: &TagIndex,
        l1: &[NodeId],
        l2: &[NodeId],
    ) -> NodePairSet {
        general::all_pairs(plan, self.spec, run, index, l1, l2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_grammar::SpecificationBuilder;
    use rpq_labeling::RunBuilder;

    fn spec() -> Specification {
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        b.atomic("u");
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("t");
            let s = w.node("S");
            let y = w.node("u");
            w.edge_named(x, s, "go");
            w.edge_named(s, y, "done");
        });
        b.production("S", |w| {
            let x = w.node("t");
            let y = w.node("u");
            w.edge_named(x, y, "base");
        });
        b.start("S");
        b.build().unwrap()
    }

    #[test]
    fn engine_round_trip() {
        let spec = spec();
        let engine = RpqEngine::new(&spec);
        let run = RunBuilder::new(&spec).seed(2).target_edges(80).build().unwrap();

        let q = engine.parse_query("go+ base _*").unwrap();
        let plan = engine.plan(&q).unwrap();
        // Entry descends through all `go` edges then crosses `base`.
        assert!(engine.pairwise(&plan, &run, run.entry(), run.exit()));
    }

    #[test]
    fn unknown_tag_is_a_parse_error() {
        let spec = spec();
        let engine = RpqEngine::new(&spec);
        assert!(engine.parse_query("nosuchtag").is_err());
    }

    #[test]
    fn is_safe_matches_plan_kind() {
        let spec = spec();
        let engine = RpqEngine::new(&spec);
        let safe_q = engine.parse_query("_*").unwrap();
        assert!(engine.is_safe(&safe_q));
        assert!(engine.plan(&safe_q).unwrap().is_safe());
        // `go` exactly once is unsafe: deeper recursions insert more
        // `go` edges on every entry-to-exit path... but single-symbol
        // queries are planned via the index regardless.
        let go_q = engine.parse_query("go").unwrap();
        let plan = engine.plan(&go_q).unwrap();
        assert!(!plan.is_safe());
    }
}
