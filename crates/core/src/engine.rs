//! The deprecated pre-session facade.
//!
//! [`RpqEngine`] was the original entry point: it borrowed a
//! specification, recompiled plans at every call site and rebuilt the
//! [`TagIndex`] on every `pairwise`/`all_pairs` call. The
//! session-oriented API ([`crate::Session`] / [`crate::PreparedQuery`]
//! / [`crate::QueryRequest`]) replaces it with *compile once, evaluate
//! many* semantics and shared caches; this type remains only as a thin
//! deprecated shim over the same planner and evaluators, preserving
//! the original per-call cost model (no hidden caches, no clones —
//! in particular, no per-run CSR arena: composite evaluation through
//! this shim still dispatches to the kernel-aware join/fixpoint
//! operators of `rpq-relalg`, but rebuilds adjacency from pair sets
//! on every call where a session would reuse its cached `CsrIndex`).

#![allow(deprecated)]

use crate::general::{QueryPlan, SubqueryPolicy};
use crate::plan::{PlanError, SafeQueryPlan};
use rpq_automata::{ParseError, Regex};
use rpq_grammar::Specification;
use rpq_labeling::{NodeId, Run};
use rpq_relalg::{NodePairSet, TagIndex};

/// Deprecated query facade bound to one workflow specification.
///
/// ```
/// #![allow(deprecated)]
/// use rpq_core::RpqEngine;
/// use rpq_grammar::SpecificationBuilder;
/// use rpq_labeling::RunBuilder;
///
/// let mut b = SpecificationBuilder::new();
/// b.atomic("t");
/// b.composite("S");
/// b.production("S", |w| {
///     let x = w.node("t");
///     let s = w.node("S");
///     let y = w.node("t");
///     w.edge_named(x, s, "down");
///     w.edge_named(s, y, "up");
/// });
/// b.production("S", |w| { w.node("t"); });
/// b.start("S");
/// let spec = b.build().unwrap();
/// let run = RunBuilder::new(&spec).seed(1).target_edges(64).build().unwrap();
///
/// let engine = RpqEngine::new(&spec);
/// let query = engine.parse_query("_* down _* up _*").unwrap();
/// let plan = engine.plan(&query).unwrap();
/// let result = engine.all_pairs(&plan, &run, &[run.entry()], &[run.exit()]);
/// assert_eq!(result.len(), 1);
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use `Session` / `PreparedQuery` / `QueryRequest`: engines recompile \
            plans and rebuild indexes per call, sessions cache both"
)]
pub struct RpqEngine<'a> {
    spec: &'a Specification,
}

impl<'a> RpqEngine<'a> {
    /// Bind an engine to a specification (zero-cost, as the original
    /// engine was — no clone, no cache state).
    pub fn new(spec: &'a Specification) -> RpqEngine<'a> {
        RpqEngine { spec }
    }

    /// The underlying specification.
    pub fn spec(&self) -> &Specification {
        self.spec
    }

    /// Parse a query, resolving tag names against the specification.
    pub fn parse_query(&self, text: &str) -> Result<Regex, ParseError> {
        rpq_automata::parse(text, &mut |name| {
            self.spec
                .tag_by_name(name)
                .map(|t| rpq_automata::Symbol(t.0))
        })
    }

    /// Compile a general plan: safe if possible, decomposed otherwise
    /// (cost-based subquery evaluation by default).
    pub fn plan(&self, regex: &Regex) -> Result<QueryPlan, PlanError> {
        self.plan_with(regex, SubqueryPolicy::CostBased)
    }

    /// [`RpqEngine::plan`] with an explicit subquery-evaluation policy.
    pub fn plan_with(&self, regex: &Regex, policy: SubqueryPolicy) -> Result<QueryPlan, PlanError> {
        crate::general::plan_query_with(self.spec, regex, policy)
    }

    /// Compile strictly as a safe plan (errors with
    /// [`PlanError::Unsafe`] when decomposition would be needed).
    pub fn plan_safe(&self, regex: &Regex) -> Result<SafeQueryPlan, PlanError> {
        SafeQueryPlan::compile(
            self.spec,
            rpq_automata::compile_minimal_dfa(regex, self.spec.n_tags()),
        )
    }

    /// Is `regex` safe w.r.t. the specification (Definition 13)?
    pub fn is_safe(&self, regex: &Regex) -> bool {
        self.plan_safe(regex).is_ok()
    }

    /// Build the per-run tag index used by decomposed plans (and the
    /// baselines).
    pub fn index(&self, run: &Run) -> TagIndex {
        TagIndex::build(run, self.spec.n_tags())
    }

    /// Pairwise query `u —R→ v`.
    ///
    /// Keeps the original engine's behavior: composite plans build a
    /// fresh index per call (constant memory over any number of runs).
    /// The session API caches it per run instead — that cache is
    /// deliberately *not* used here, because engines have no eviction
    /// surface and legacy callers may stream unboundedly many runs.
    pub fn pairwise(&self, plan: &QueryPlan, run: &Run, u: NodeId, v: NodeId) -> bool {
        match plan {
            QueryPlan::Safe(p) => p.pairwise(run, u, v),
            QueryPlan::Composite(..) => {
                let index = self.index(run);
                crate::general::pairwise(plan, self.spec, run, &index, u, v)
            }
        }
    }

    /// All-pairs query over `l1 × l2` (Algorithm 2 for safe plans).
    /// Builds the index per call, as the original engine did; see
    /// [`RpqEngine::pairwise`].
    pub fn all_pairs(
        &self,
        plan: &QueryPlan,
        run: &Run,
        l1: &[NodeId],
        l2: &[NodeId],
    ) -> NodePairSet {
        let index = self.index(run);
        crate::general::all_pairs(plan, self.spec, run, &index, l1, l2)
    }

    /// All-pairs with a caller-managed prebuilt index.
    pub fn all_pairs_indexed(
        &self,
        plan: &QueryPlan,
        run: &Run,
        index: &TagIndex,
        l1: &[NodeId],
        l2: &[NodeId],
    ) -> NodePairSet {
        crate::general::all_pairs(plan, self.spec, run, index, l1, l2)
    }
}
