//! Cross-run batch evaluation: one prepared plan fanned across a run
//! corpus on a scoped thread pool.
//!
//! The paper's stored-index workloads (Section VII) are *one query,
//! many runs*: the plan is compiled once and each run is answered off
//! its persisted per-run indexes. [`Session::evaluate_batch`] is that
//! shape as an API — it takes any [`RunSource`] (an in-memory slice of
//! runs, or a persistent `RunStore` from the `rpq-store` crate),
//! evaluates every run against one [`PreparedQuery`], and returns the
//! per-run outcomes plus the batch's aggregate cache-counter movement
//! and wall-clock time.
//!
//! Parallelism is a hand-rolled scoped pool (`std::thread::scope` +
//! an atomic work cursor) rather than an async runtime: the session's
//! caches are already `Send + Sync`, per-run evaluation is pure CPU,
//! and work stealing over a shared counter keeps the threads busy even
//! when run sizes are skewed.

use crate::error::RpqError;
use crate::request::{PlanKind, QueryOutcome, QueryRequest};
use crate::session::{PreparedQuery, Session, SessionStats};
use rpq_labeling::Run;
use rpq_relalg::{CsrIndex, TagIndex};
use std::ops::Deref;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A run handed out by a [`RunSource`]: borrowed straight from an
/// in-memory slice, or shared out of a store's cache.
pub enum RunRef<'a> {
    /// Borrowed from the source's own storage.
    Borrowed(&'a Run),
    /// Shared ownership (e.g. a store's in-memory run cache).
    Shared(Arc<Run>),
}

impl Deref for RunRef<'_> {
    type Target = Run;

    fn deref(&self) -> &Run {
        match self {
            RunRef::Borrowed(run) => run,
            RunRef::Shared(run) => run,
        }
    }
}

/// A corpus of runs a batch evaluation ranges over.
///
/// Implemented by in-memory slices (below) and by the persistent
/// `RunStore` of the `rpq-store` crate, which also hands the session
/// its persisted per-run artifacts via [`RunSource::warm_artifacts`].
/// Sources must be `Sync`: the batch executor calls them from worker
/// threads.
pub trait RunSource: Sync {
    /// Number of runs in the corpus.
    fn n_runs(&self) -> usize;

    /// The `i`-th run (`i < n_runs()`). Errors are per-run: a corrupt
    /// entry fails its own [`BatchItem`] without aborting the batch.
    fn run(&self, i: usize) -> Result<RunRef<'_>, RpqError>;

    /// Pre-built artifacts for the `i`-th run, if the source persisted
    /// them — the batch executor seeds the session's caches with these
    /// (via [`Session::seed_run_cache`]) so warm stores evaluate
    /// without re-deriving any index.
    fn warm_artifacts(&self, i: usize) -> Option<(Arc<TagIndex>, Arc<CsrIndex>)> {
        let _ = i;
        None
    }
}

impl RunSource for [Run] {
    fn n_runs(&self) -> usize {
        self.len()
    }

    fn run(&self, i: usize) -> Result<RunRef<'_>, RpqError> {
        Ok(RunRef::Borrowed(&self[i]))
    }
}

impl RunSource for Vec<Run> {
    fn n_runs(&self) -> usize {
        self.len()
    }

    fn run(&self, i: usize) -> Result<RunRef<'_>, RpqError> {
        Ok(RunRef::Borrowed(&self[i]))
    }
}

impl RunSource for [Arc<Run>] {
    fn n_runs(&self) -> usize {
        self.len()
    }

    fn run(&self, i: usize) -> Result<RunRef<'_>, RpqError> {
        Ok(RunRef::Shared(Arc::clone(&self[i])))
    }
}

/// Knobs of a batch evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchOptions {
    /// Worker threads; 0 means one per available CPU. Clamped to the
    /// corpus size (never more threads than runs, never fewer than 1).
    pub threads: usize,
}

impl BatchOptions {
    /// Options with an explicit thread count.
    pub fn threads(threads: usize) -> BatchOptions {
        BatchOptions { threads }
    }
}

/// One run's result within a [`BatchOutcome`].
#[derive(Debug)]
pub struct BatchItem {
    /// Index of the run in the source.
    pub index: usize,
    /// The evaluation result, or the per-run failure (e.g. a corrupt
    /// store entry) that prevented it.
    pub outcome: Result<QueryOutcome, RpqError>,
    /// Wall-clock seconds this run took on its worker.
    pub secs: f64,
}

/// The result of [`Session::evaluate_batch`].
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-run results, in source order (one per source run).
    pub items: Vec<BatchItem>,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_secs: f64,
    /// The session's cache-counter movement over this batch (plan and
    /// index hits/misses/evictions attributable to it — assuming no
    /// concurrent foreign traffic on the session).
    pub stats: SessionStats,
}

impl BatchOutcome {
    /// Runs that evaluated successfully.
    pub fn n_ok(&self) -> usize {
        self.items.iter().filter(|i| i.outcome.is_ok()).count()
    }

    /// Runs that failed (source errors).
    pub fn n_err(&self) -> usize {
        self.items.len() - self.n_ok()
    }

    /// Successful outcomes with their source indexes.
    pub fn outcomes(&self) -> impl Iterator<Item = (usize, &QueryOutcome)> {
        self.items
            .iter()
            .filter_map(|i| i.outcome.as_ref().ok().map(|o| (i.index, o)))
    }

    /// Total matches across successful runs (pairwise verdicts count
    /// as 0/1).
    pub fn total_matches(&self) -> usize {
        self.outcomes().map(|(_, o)| o.len()).sum()
    }
}

impl Session {
    /// Evaluate `request` for `query` over every run of `source`,
    /// fanning per-run work across a scoped thread pool.
    ///
    /// The plan is compiled exactly once (it already is — `query` is
    /// prepared); per-run tag indexes and CSR arenas come from the
    /// session caches, seeded with the source's persisted artifacts
    /// when it has them ([`RunSource::warm_artifacts`]), so a warm
    /// store evaluates a corpus without re-deriving a single index.
    ///
    /// `options.threads` is clamped to `[1, n_runs]`; 0 asks for one
    /// thread per available CPU. Results arrive in source order
    /// regardless of scheduling. Source failures are per-run
    /// ([`BatchItem::outcome`]); the batch itself always completes.
    pub fn evaluate_batch<S>(
        &self,
        query: &PreparedQuery,
        source: &S,
        request: &QueryRequest,
        options: &BatchOptions,
    ) -> BatchOutcome
    where
        S: RunSource + ?Sized,
    {
        let n = source.n_runs();
        let requested = if options.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            options.threads
        };
        let threads = requested.clamp(1, n.max(1));

        let before = self.stats();
        let started = Instant::now();
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<BatchItem>>> = (0..n).map(|_| Mutex::new(None)).collect();
        // Safe plans decode labels only: never pull (or, on a cold
        // store, derive and persist) index artifacts a plan cannot
        // read. Except under a forced-lazy strategy, where every plan
        // runs the product search over the CSR arena — seed it, or
        // each worker would derive its own.
        let wants_artifacts = query.stats().kind == PlanKind::Composite
            || crate::lazy::eval_strategy() == crate::lazy::EvalStrategy::Lazy;

        let worker = || loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let run_started = Instant::now();
            let outcome = source.run(i).map(|run| {
                if wants_artifacts && !self.run_is_cached(&run) {
                    if let Some((index, csr)) = source.warm_artifacts(i) {
                        self.seed_run_cache(&run, index, Some(csr));
                    }
                }
                self.evaluate(query, &run, request)
            });
            *slots[i].lock().expect("batch result slot") = Some(BatchItem {
                index: i,
                outcome,
                secs: run_started.elapsed().as_secs_f64(),
            });
        };

        if threads == 1 {
            worker();
        } else {
            std::thread::scope(|scope| {
                // The worker captures only shared references, so it is
                // `Copy` — each spawn gets its own copy of the closure.
                for _ in 0..threads {
                    scope.spawn(worker);
                }
            });
        }

        BatchOutcome {
            items: slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("batch result slot")
                        .expect("work cursor covers every run")
                })
                .collect(),
            threads,
            wall_secs: started.elapsed().as_secs_f64(),
            stats: self.stats().since(before),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_grammar::SpecificationBuilder;
    use rpq_labeling::RunBuilder;

    fn spec() -> rpq_grammar::Specification {
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        b.atomic("u");
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("t");
            let s = w.node("S");
            let y = w.node("u");
            w.edge_named(x, s, "go");
            w.edge_named(s, y, "done");
        });
        b.production("S", |w| {
            let x = w.node("t");
            let y = w.node("u");
            w.edge_named(x, y, "base");
        });
        b.start("S");
        b.build().unwrap()
    }

    fn corpus(session: &Session, n: usize) -> Vec<Run> {
        (0..n)
            .map(|seed| {
                RunBuilder::new(session.spec())
                    .seed(seed as u64 + 1)
                    .target_edges(50 + 10 * seed)
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_evaluate_at_any_thread_count() {
        let runs = {
            let session = Session::from_spec(spec());
            corpus(&session, 6)
        };
        let request = QueryRequest::source_star(runs[0].entry());

        // Sequential referee: per-run `evaluate` on a fresh session.
        let referee_session = Session::from_spec(spec());
        let referee_query = referee_session.prepare("go+ done").unwrap();
        let expected: Vec<QueryOutcome> = runs
            .iter()
            .map(|run| referee_session.evaluate(&referee_query, run, &request))
            .collect();

        for threads in [1, 2, 5, 64] {
            // A fresh session per thread count: cold caches every time.
            let session = Session::from_spec(spec());
            let query = session.prepare("go+ done").unwrap();
            let outcome = session.evaluate_batch(
                &query,
                runs.as_slice(),
                &request,
                &BatchOptions::threads(threads),
            );
            assert_eq!(outcome.items.len(), runs.len());
            assert!(outcome.threads <= runs.len());
            for (i, item) in outcome.items.iter().enumerate() {
                assert_eq!(item.index, i);
                let got = item.outcome.as_ref().expect("in-memory source");
                assert_eq!(got.result, expected[i].result, "run {i}, {threads} threads");
            }
        }
    }

    #[test]
    fn batch_counts_one_index_build_per_run() {
        let session = Session::from_spec(spec());
        let runs = corpus(&session, 4);
        // Composite plan: needs the per-run index.
        let query = session.prepare("go").unwrap();
        let all: Vec<rpq_labeling::NodeId> = runs[0].node_ids().collect();
        let outcome = session.evaluate_batch(
            &query,
            runs.as_slice(),
            &QueryRequest::all_pairs(all.clone(), all),
            &BatchOptions::threads(3),
        );
        assert_eq!(outcome.n_ok(), 4);
        assert_eq!(outcome.n_err(), 0);
        assert_eq!(outcome.stats.index_misses, 4);
        assert_eq!(outcome.stats.index_hits, 0);
        assert!(outcome.wall_secs > 0.0);
    }

    #[test]
    fn lru_capacity_bounds_the_cache_and_counts_evictions() {
        let session = Session::from_spec(spec()).with_cache_capacity(2);
        let runs = corpus(&session, 5);
        let query = session.prepare("go").unwrap();
        let all: Vec<rpq_labeling::NodeId> = runs[0].node_ids().collect();
        // Forced materialized: index-cache LRU recency is the subject,
        // and only the materialized pipeline touches that cache on
        // every composite evaluation (the lazy product search works
        // off the CSR cache instead).
        let eval = |run: &_| {
            session.evaluate_with_strategy(
                &query,
                run,
                &QueryRequest::all_pairs(all.clone(), all.clone()),
                crate::lazy::EvalStrategy::Materialized,
            )
        };
        for run in &runs {
            eval(run);
        }
        // 5 distinct runs through a 2-entry cache: ≥ 3 evictions.
        assert!(session.stats().index_evictions >= 3);
        // The two most recent runs are still cached.
        assert!(session.run_is_cached(&runs[4]));
        assert!(session.run_is_cached(&runs[3]));
        assert!(!session.run_is_cached(&runs[0]));
        // Re-evaluating an evicted run is a miss again.
        let before = session.stats();
        eval(&runs[0]);
        assert_eq!(session.stats().since(before).index_misses, 1);
        // And a recently-cached run still hits.
        let before = session.stats();
        eval(&runs[4]);
        assert_eq!(session.stats().since(before).index_hits, 1);
    }

    #[test]
    fn seeded_artifacts_turn_first_touch_into_a_hit() {
        let session = Session::from_spec(spec());
        let run = corpus(&session, 1).remove(0);
        let index = Arc::new(rpq_relalg::TagIndex::build(&run, session.spec().n_tags()));
        let csr = Arc::new(rpq_relalg::CsrIndex::build(&index));
        session.seed_run_cache(&run, index, Some(csr));
        // Seeding counts neither hits nor misses.
        assert_eq!(session.stats().index_misses, 0);
        assert_eq!(session.stats().index_hits, 0);
        assert!(session.run_is_cached(&run));

        let query = session.prepare("go").unwrap();
        let all: Vec<rpq_labeling::NodeId> = run.node_ids().collect();
        // Forced materialized, which consults the index cache on every
        // composite evaluation — the seeded entry must hit.
        session.evaluate_with_strategy(
            &query,
            &run,
            &QueryRequest::all_pairs(all.clone(), all),
            crate::lazy::EvalStrategy::Materialized,
        );
        assert_eq!(session.stats().index_hits, 1);
        assert_eq!(session.stats().index_misses, 0);
    }
}
