//! Compiled safe-query plans and the pairwise label decoder.
//!
//! [`SafeQueryPlan`] packages everything Algorithm 1 needs: the minimal
//! DFA, λ matrices, per-production port-graph closures (the implicit
//! `G_R` of Section III-B) and, per recursion cycle, the step matrices
//! *and their period-product binary powers*, so the decoder jumps over
//! arbitrarily many recursion unfoldings in `O(log n)` bitmask
//! operations. Given the labels of two nodes, [`SafeQueryPlan::pairwise`]
//! answers `u —R→ v` in time independent of the run size, without heap
//! allocation.
//!
//! ## Decoding
//!
//! Write both labels from their divergence point (the lowest common
//! ancestor in the compressed parse tree). Any `u → v` path in the run
//! must exit `u`'s enclosing sub-runs through their unique exit nodes,
//! cross the LCA's production body (or recursion chain), and enter `v`'s
//! enclosing sub-runs through their unique entry nodes; the state
//! matrices compose accordingly:
//!
//! * same-production divergence `(k,i)` vs `(k,j)`:
//!   `exit(u…) · between_k(i, j) · enter(v…)`;
//! * recursion divergence `(s,t,a)` vs `(s,t,b)` with `a < b` (v nested
//!   deeper): `exit(u…) · between_{k_a}(i₁, rec) · desc^{b-a-1} ·
//!   enter(v…)`;
//! * `a > b` (u nested deeper): `exit(u…) · asc^{a-b-1} ·
//!   between_{k_b}(rec, j₁) · enter(v…)`.
//!
//! The pairwise decoder propagates the start-state **row bitmask**
//! through this product left-to-right; the all-pairs evaluator uses the
//! [`Bridge`] factorization instead — all pairs of an emitted candidate
//! group share the bridge, so each `u` needs one forward row pass
//! ([`SafeQueryPlan::source_mask`]), each `v` one backward column pass
//! ([`SafeQueryPlan::target_mask`]), and each pair a single `AND`.

use crate::matrix::StateMatrix;
use crate::portgraph::BodyMatrices;
use crate::safety::{check_safety, SafetyOutcome};
use rpq_automata::Dfa;
use rpq_grammar::{ProductionId, Specification};
use rpq_labeling::{Label, LabelEntry, NodeId, Run};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a safe plan could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The minimal DFA exceeds the 64-state matrix cap.
    TooManyStates(usize),
    /// The specification is not strictly linear-recursive.
    NotStrictlyLinear,
    /// The query is not safe w.r.t. the specification (the interesting
    /// case — callers fall back to decomposition, Section IV-B).
    Unsafe {
        /// A production whose executions disagree.
        witness: ProductionId,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::TooManyStates(n) => write!(f, "minimal DFA has {n} states (max 64)"),
            PlanError::NotStrictlyLinear => {
                write!(f, "specification is not strictly linear-recursive")
            }
            PlanError::Unsafe { witness } => {
                write!(f, "query is unsafe (witness production #{})", witness.0)
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Number of precomputed period-power levels (`2^47` unfoldings — far
/// beyond any materializable run).
const POW_LEVELS: usize = 48;

/// Per-cycle decoding tables.
///
/// The binary power tables are derived data — recomputable from the
/// step matrices — so persistence skips them and
/// [`CyclePlan::rebuild_pows`] re-derives them on load.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CyclePlan {
    len: usize,
    /// Per phase: the cycle production and its recursive body position.
    production: Vec<ProductionId>,
    rec_pos: Vec<usize>,
    /// Per phase φ: body-input → in(rec position) of the φ-cycle
    /// production (one descent step).
    desc_step: Vec<StateMatrix>,
    /// Per phase φ: out(rec position) → body-output (one ascent step).
    asc_step: Vec<StateMatrix>,
    /// `desc_pows[p][k]` = (product of one descent period starting at
    /// phase `p`)^(2^k).
    #[serde(skip)]
    desc_pows: Vec<Vec<StateMatrix>>,
    /// `asc_pows[p][k]` = (product of one ascent period starting at
    /// phase `p`, phases descending)^(2^k).
    #[serde(skip)]
    asc_pows: Vec<Vec<StateMatrix>>,
}

impl CyclePlan {
    /// (Re)compute the period-product power tables from the step
    /// matrices: one descent/ascent period per starting phase, then
    /// [`POW_LEVELS`] repeated squarings. Called at compile time and
    /// again after deserialization (the tables are `#[serde(skip)]`).
    fn rebuild_pows(&mut self, n: usize) {
        let len = self.len;
        self.desc_pows = Vec::with_capacity(len);
        self.asc_pows = Vec::with_capacity(len);
        for p in 0..len {
            let mut dp = StateMatrix::identity(n);
            let mut ap = StateMatrix::identity(n);
            for i in 0..len {
                dp = dp.mul(&self.desc_step[(p + i) % len]);
                ap = ap.mul(&self.asc_step[(p + len - i % len) % len]);
            }
            let mut dpow = Vec::with_capacity(POW_LEVELS);
            let mut apow = Vec::with_capacity(POW_LEVELS);
            for _ in 0..POW_LEVELS {
                dpow.push(dp.clone());
                apow.push(ap.clone());
                dp = dp.mul(&dp);
                ap = ap.mul(&ap);
            }
            self.desc_pows.push(dpow);
            self.asc_pows.push(apow);
        }
    }

    /// Phase of the `c`-th recursion child (1-based) for a chain
    /// starting at phase `t`.
    #[inline]
    fn phase(&self, t: u64, c: u64) -> usize {
        ((t + c - 1) % self.len as u64) as usize
    }

    /// Full matrix of `count` descent steps with phases `p0, p0+1, …`.
    fn desc_range(&self, p0: usize, count: u64) -> StateMatrix {
        let n = self.desc_step[0].dim();
        let l = self.len as u64;
        if count <= 2 * l {
            let mut m = StateMatrix::identity(n);
            for i in 0..count {
                m = m.mul(&self.desc_step[(p0 as u64 + i) as usize % self.len]);
            }
            return m;
        }
        let (q, r) = (count / l, count % l);
        let mut m = pow_from_table(&self.desc_pows[p0], q, n);
        for i in 0..r {
            m = m.mul(&self.desc_step[(p0 as u64 + i) as usize % self.len]);
        }
        m
    }

    /// Full matrix of `count` ascent steps with phases `p0, p0-1, …`.
    fn asc_range(&self, p0: usize, count: u64) -> StateMatrix {
        let n = self.asc_step[0].dim();
        let l = self.len as u64;
        let step = |i: u64| &self.asc_step[((p0 as u64 + l - (i % l)) % l) as usize];
        if count <= 2 * l {
            let mut m = StateMatrix::identity(n);
            for i in 0..count {
                m = m.mul(step(i));
            }
            return m;
        }
        let (q, r) = (count / l, count % l);
        let mut m = pow_from_table(&self.asc_pows[p0], q, n);
        for i in 0..r {
            m = m.mul(step(i));
        }
        m
    }

    /// `row · descⁿ` without allocating.
    fn desc_row(&self, mut row: u64, p0: usize, count: u64) -> u64 {
        let l = self.len as u64;
        let (q, r) = if count > 2 * l {
            (count / l, count % l)
        } else {
            (0, count)
        };
        if q > 0 {
            row = row_pow(&self.desc_pows[p0], q, row);
        }
        for i in 0..r {
            row = self.desc_step[(p0 as u64 + i) as usize % self.len].row_mul(row);
        }
        row
    }

    /// `descⁿ · col` without allocating.
    fn desc_col(&self, mut col: u64, p0: usize, count: u64) -> u64 {
        let l = self.len as u64;
        let (q, r) = if count > 2 * l {
            (count / l, count % l)
        } else {
            (0, count)
        };
        // M = P^q · partial; apply the partial steps to the column
        // first (right to left).
        for i in (0..r).rev() {
            col = self.desc_step[(p0 as u64 + i) as usize % self.len].col_mul(col);
        }
        if q > 0 {
            col = col_pow(&self.desc_pows[p0], q, col);
        }
        col
    }

    /// `row · ascⁿ` without allocating (phases descend).
    fn asc_row(&self, mut row: u64, p0: usize, count: u64) -> u64 {
        let l = self.len as u64;
        let step = |i: u64| &self.asc_step[((p0 as u64 + l - (i % l)) % l) as usize];
        let (q, r) = if count > 2 * l {
            (count / l, count % l)
        } else {
            (0, count)
        };
        if q > 0 {
            row = row_pow(&self.asc_pows[p0], q, row);
        }
        for i in 0..r {
            row = step(i).row_mul(row);
        }
        row
    }
}

/// `P^q` from a binary power table (powers of one matrix commute, so
/// application order is free).
fn pow_from_table(pows: &[StateMatrix], q: u64, n: usize) -> StateMatrix {
    let mut m = StateMatrix::identity(n);
    for (k, p) in pows.iter().enumerate() {
        if q >> k & 1 == 1 {
            m = m.mul(p);
        }
    }
    debug_assert!(q < (1u64 << pows.len().min(63)), "period power overflow");
    m
}

/// `row · P^q` via the power table.
fn row_pow(pows: &[StateMatrix], q: u64, mut row: u64) -> u64 {
    for (k, p) in pows.iter().enumerate() {
        if q >> k & 1 == 1 {
            row = p.row_mul(row);
        }
    }
    row
}

/// `P^q · col` via the power table.
fn col_pow(pows: &[StateMatrix], q: u64, mut col: u64) -> u64 {
    for (k, p) in pows.iter().enumerate() {
        if q >> k & 1 == 1 {
            col = p.col_mul(col);
        }
    }
    col
}

/// A compiled plan for one safe query against one specification.
///
/// Plans serialize (λ matrices, port-graph closures, cycle step
/// matrices; the derivable power tables are skipped) so stores can
/// persist them beside index artifacts. A deserialized plan is inert
/// until [`SafeQueryPlan::restore`] validates it against the
/// specification and rebuilds the power tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SafeQueryPlan {
    dfa: Dfa,
    start_state: usize,
    accepting_mask: u64,
    epsilon: bool,
    lambda: Vec<StateMatrix>,
    bodies: Vec<BodyMatrices>,
    cycles: Vec<CyclePlan>,
}

/// The group-constant middle factor of a decode: all pairs of one
/// emitted candidate group share it (see module docs).
#[derive(Debug, Clone)]
pub struct Bridge {
    matrix: StateMatrix,
}

impl SafeQueryPlan {
    /// Compile a plan from a *minimal* DFA. Checks strict linearity and
    /// safety; on success the plan answers pairwise queries in constant
    /// time w.r.t. run size.
    pub fn compile(spec: &Specification, dfa: Dfa) -> Result<SafeQueryPlan, PlanError> {
        if dfa.n_states() > crate::matrix::MAX_STATES {
            return Err(PlanError::TooManyStates(dfa.n_states()));
        }
        if !spec.is_strictly_linear() {
            return Err(PlanError::NotStrictlyLinear);
        }
        let (lambda, bodies) = match check_safety(spec, &dfa) {
            SafetyOutcome::Safe { lambda, bodies } => (lambda, bodies),
            SafetyOutcome::Unsafe { witness } => return Err(PlanError::Unsafe { witness }),
        };

        let n = dfa.n_states();
        let cycles = spec
            .recursion()
            .cycles
            .iter()
            .map(|cycle| {
                let len = cycle.len();
                let mut production = Vec::with_capacity(len);
                let mut rec_pos = Vec::with_capacity(len);
                let mut desc_step = Vec::with_capacity(len);
                let mut asc_step = Vec::with_capacity(len);
                for e in &cycle.edges {
                    let bm = &bodies[e.production.index()];
                    production.push(e.production);
                    rec_pos.push(e.body_pos as usize);
                    desc_step.push(bm.down(e.body_pos as usize).clone());
                    asc_step.push(bm.up(e.body_pos as usize).clone());
                }
                let mut plan = CyclePlan {
                    len,
                    production,
                    rec_pos,
                    desc_step,
                    asc_step,
                    desc_pows: Vec::new(),
                    asc_pows: Vec::new(),
                };
                plan.rebuild_pows(n);
                plan
            })
            .collect();

        let mut accepting_mask = 0u64;
        for (q, &acc) in dfa.accepting().iter().enumerate() {
            if acc {
                accepting_mask |= 1 << q;
            }
        }
        Ok(SafeQueryPlan {
            start_state: dfa.start() as usize,
            accepting_mask,
            epsilon: dfa.accepts_epsilon(),
            lambda,
            bodies,
            cycles,
            dfa,
        })
    }

    /// Validate a deserialized plan against `spec` and rebuild the
    /// cycle power tables, returning the ready-to-use plan.
    ///
    /// Deserialization bypasses every constructor invariant, so a plan
    /// loaded from disk is untrusted: a truncated, tampered or
    /// mis-copied file (a plan for a *different* specification) must
    /// fail here so the caller recompiles instead of decoding garbage.
    /// Checks are structural — DFA table shape, matrix dimensions and
    /// counts against the specification — mirroring the well-formed
    /// checks persisted index artifacts get.
    pub fn restore(mut self, spec: &Specification) -> Result<SafeQueryPlan, String> {
        if !self.dfa.is_well_formed() {
            return Err("malformed DFA".into());
        }
        let n = self.dfa.n_states();
        if n > crate::matrix::MAX_STATES {
            return Err(format!("DFA has {n} states (max 64)"));
        }
        if self.dfa.n_symbols() != spec.n_tags() {
            return Err(format!(
                "DFA alphabet {} does not match the specification's {} tags",
                self.dfa.n_symbols(),
                spec.n_tags()
            ));
        }
        if self.start_state != self.dfa.start() as usize {
            return Err("start state disagrees with the DFA".into());
        }
        let mut accepting_mask = 0u64;
        for (q, &acc) in self.dfa.accepting().iter().enumerate() {
            if acc {
                accepting_mask |= 1 << q;
            }
        }
        if self.accepting_mask != accepting_mask {
            return Err("accepting mask disagrees with the DFA".into());
        }
        if self.epsilon != self.dfa.accepts_epsilon() {
            return Err("epsilon flag disagrees with the DFA".into());
        }
        if self.lambda.len() != spec.n_modules() {
            return Err(format!(
                "{} λ matrices for {} modules",
                self.lambda.len(),
                spec.n_modules()
            ));
        }
        if !self
            .lambda
            .iter()
            .all(|m| m.dim() == n && m.is_well_formed())
        {
            return Err("malformed λ matrix".into());
        }
        let productions = spec.productions();
        if self.bodies.len() != productions.len() {
            return Err(format!(
                "{} body-matrix sets for {} productions",
                self.bodies.len(),
                productions.len()
            ));
        }
        for (bm, p) in self.bodies.iter().zip(productions) {
            if bm.n_nodes() != p.body.n_nodes() || !bm.is_well_formed(n) {
                return Err("malformed body matrices".into());
            }
        }
        let cycles = &spec.recursion().cycles;
        if self.cycles.len() != cycles.len() {
            return Err(format!(
                "{} cycle plans for {} cycles",
                self.cycles.len(),
                cycles.len()
            ));
        }
        for (cp, cycle) in self.cycles.iter().zip(cycles) {
            if cp.len == 0
                || cp.len != cycle.len()
                || cp.production.len() != cp.len
                || cp.rec_pos.len() != cp.len
                || cp.desc_step.len() != cp.len
                || cp.asc_step.len() != cp.len
            {
                return Err("cycle plan shape disagrees with the recursion analysis".into());
            }
            for (e, (&production, &rec_pos)) in cycle
                .edges
                .iter()
                .zip(cp.production.iter().zip(cp.rec_pos.iter()))
            {
                if production != e.production || rec_pos != e.body_pos as usize {
                    return Err("cycle plan phases disagree with the recursion analysis".into());
                }
            }
            if !cp
                .desc_step
                .iter()
                .chain(cp.asc_step.iter())
                .all(|m| m.dim() == n && m.is_well_formed())
            {
                return Err("malformed cycle step matrix".into());
            }
        }
        for cp in &mut self.cycles {
            cp.rebuild_pows(n);
        }
        Ok(self)
    }

    /// The minimal DFA the plan was compiled from.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// Number of DFA states `|Q|`.
    pub fn n_states(&self) -> usize {
        self.dfa.n_states()
    }

    /// Does the query accept the empty path (`u —R→ u` on a DAG)?
    pub fn accepts_epsilon(&self) -> bool {
        self.epsilon
    }

    /// λ matrix of a module (for diagnostics and tests).
    pub fn lambda(&self, module: rpq_grammar::ModuleId) -> &StateMatrix {
        &self.lambda[module.index()]
    }

    /// Is this the trivial reachability plan (`⎵*`)?
    pub fn is_reachability(&self) -> bool {
        self.dfa.n_states() == 1 && self.epsilon
    }

    /// Accepting-state bitmask.
    pub fn accepting_mask(&self) -> u64 {
        self.accepting_mask
    }

    /// The DFA start state.
    pub fn start_state(&self) -> usize {
        self.start_state
    }

    /// Answer the pairwise query `u —R→ v` from labels alone
    /// (Algorithm 1 / Theorem 1). Allocation-free.
    pub fn pairwise(&self, run: &Run, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return self.epsilon;
        }
        self.pairwise_labels(run.label(u), run.label(v))
    }

    /// Pairwise decode from raw labels (distinct leaves of one run).
    pub fn pairwise_labels(&self, lu: &Label, lv: &Label) -> bool {
        let cp = lu.common_prefix_len(lv);
        let eu = &lu.entries()[cp..];
        let ev = &lv.entries()[cp..];
        debug_assert!(
            !eu.is_empty() && !ev.is_empty(),
            "labels of distinct leaves diverge strictly before both ends"
        );
        let q0 = 1u64 << self.start_state;
        let row = match (eu[0], ev[0]) {
            (
                LabelEntry::Prod {
                    production: k1,
                    pos: i,
                },
                LabelEntry::Prod { pos: j, .. },
            ) => {
                let row = self.exit_row(q0, &eu[1..]);
                let row = self.bodies[k1.index()]
                    .between(i as usize, j as usize)
                    .row_mul(row);
                self.enter_row(row, &ev[1..])
            }
            (
                LabelEntry::Rec {
                    cycle,
                    start_phase,
                    idx: a,
                },
                LabelEntry::Rec { idx: b, .. },
            ) => {
                let cpl = &self.cycles[cycle as usize];
                let t = start_phase as u64;
                if a < b {
                    let (ka, i1) = expect_prod(&eu[1]);
                    debug_assert_eq!(ka, cpl.production[cpl.phase(t, a as u64)]);
                    let rp = cpl.rec_pos[cpl.phase(t, a as u64)];
                    let row = self.exit_row(q0, &eu[2..]);
                    let row = self.bodies[ka.index()].between(i1, rp).row_mul(row);
                    let row = cpl.desc_row(row, cpl.phase(t, a as u64 + 1), (b - a - 1) as u64);
                    self.enter_row(row, &ev[1..])
                } else {
                    let (kb, j1) = expect_prod(&ev[1]);
                    debug_assert_eq!(kb, cpl.production[cpl.phase(t, b as u64)]);
                    let rp = cpl.rec_pos[cpl.phase(t, b as u64)];
                    let row = self.exit_row(q0, &eu[1..]);
                    let row = cpl.asc_row(row, cpl.phase(t, a as u64 - 1), (a - b - 1) as u64);
                    let row = self.bodies[kb.index()].between(rp, j1).row_mul(row);
                    self.enter_row(row, &ev[2..])
                }
            }
            _ => unreachable!("siblings are either all production or all recursion children"),
        };
        row & self.accepting_mask != 0
    }

    /// The full state-transition matrix from `out(u)` to `in(v)` (test
    /// and diagnostics API; production paths use bitmask rows instead).
    pub fn decode_matrix(&self, lu: &Label, lv: &Label) -> StateMatrix {
        let cp = lu.common_prefix_len(lv);
        let eu = &lu.entries()[cp..];
        let ev = &lv.entries()[cp..];
        debug_assert!(!eu.is_empty() && !ev.is_empty());
        match (eu[0], ev[0]) {
            (
                LabelEntry::Prod {
                    production: k1,
                    pos: i,
                },
                LabelEntry::Prod { pos: j, .. },
            ) => {
                let bm = &self.bodies[k1.index()];
                self.exit_matrix(&eu[1..])
                    .mul(bm.between(i as usize, j as usize))
                    .mul(&self.enter_matrix(&ev[1..]))
            }
            (
                LabelEntry::Rec {
                    cycle,
                    start_phase,
                    idx: a,
                },
                LabelEntry::Rec { idx: b, .. },
            ) => {
                let cpl = &self.cycles[cycle as usize];
                let t = start_phase as u64;
                if a < b {
                    let (ka, i1) = expect_prod(&eu[1]);
                    let rp = cpl.rec_pos[cpl.phase(t, a as u64)];
                    self.exit_matrix(&eu[2..])
                        .mul(self.bodies[ka.index()].between(i1, rp))
                        .mul(&cpl.desc_range(cpl.phase(t, a as u64 + 1), (b - a - 1) as u64))
                        .mul(&self.enter_matrix(&ev[1..]))
                } else {
                    let (kb, j1) = expect_prod(&ev[1]);
                    let rp = cpl.rec_pos[cpl.phase(t, b as u64)];
                    self.exit_matrix(&eu[1..])
                        .mul(&cpl.asc_range(cpl.phase(t, a as u64 - 1), (a - b - 1) as u64))
                        .mul(self.bodies[kb.index()].between(rp, j1))
                        .mul(&self.enter_matrix(&ev[2..]))
                }
            }
            _ => unreachable!("siblings are either all production or all recursion children"),
        }
    }

    // -- Group decoding (Algorithm 2's output step) ----------------------

    /// Bridge for a same-production divergence: `out(x_i) → in(x_j)` of
    /// production `k`.
    pub fn bridge_production(&self, k: ProductionId, i: usize, j: usize) -> Bridge {
        Bridge {
            matrix: self.bodies[k.index()].between(i, j).clone(),
        }
    }

    /// Bridge for recursion divergence with `u` under child `a` at
    /// top-level body position `i1` (of cycle production `ka`) and `v`
    /// under the deeper child `b`.
    pub fn bridge_rec_desc(
        &self,
        cycle: u16,
        start_phase: u16,
        a: u32,
        b: u32,
        ka: ProductionId,
        i1: usize,
    ) -> Bridge {
        let cpl = &self.cycles[cycle as usize];
        let t = start_phase as u64;
        let rp = cpl.rec_pos[cpl.phase(t, a as u64)];
        let m = self.bodies[ka.index()]
            .between(i1, rp)
            .mul(&cpl.desc_range(cpl.phase(t, a as u64 + 1), (b - a - 1) as u64));
        Bridge { matrix: m }
    }

    /// Bridge for recursion divergence with `u` under the deeper child
    /// `a` and `v` under child `b` at top-level position `j1` (of cycle
    /// production `kb`).
    pub fn bridge_rec_asc(
        &self,
        cycle: u16,
        start_phase: u16,
        a: u32,
        b: u32,
        kb: ProductionId,
        j1: usize,
    ) -> Bridge {
        let cpl = &self.cycles[cycle as usize];
        let t = start_phase as u64;
        let rp = cpl.rec_pos[cpl.phase(t, b as u64)];
        let m = cpl
            .asc_range(cpl.phase(t, a as u64 - 1), (a - b - 1) as u64)
            .mul(self.bodies[kb.index()].between(rp, j1));
        Bridge { matrix: m }
    }

    /// Forward mask of a group member `u`: the DFA states reachable on
    /// the far side of the bridge when leaving `u`. `entries` are `u`'s
    /// label entries strictly below the group anchor.
    pub fn source_mask(&self, entries: &[LabelEntry], bridge: &Bridge) -> u64 {
        let row = self.exit_row(1u64 << self.start_state, entries);
        bridge.matrix.row_mul(row)
    }

    /// Backward mask of a group member `v`: the far-side states from
    /// which `v`'s entry chain reaches acceptance. A pair matches iff
    /// `source_mask(u) & target_mask(v) ≠ 0`.
    pub fn target_mask(&self, entries: &[LabelEntry]) -> u64 {
        self.enter_col(self.accepting_mask, entries)
    }

    // -- Row/column chain propagation ------------------------------------

    /// `row · exit-chain`: out(u) upward to out(top sub-run); entries
    /// compose deepest-first.
    fn exit_row(&self, mut row: u64, entries: &[LabelEntry]) -> u64 {
        for e in entries.iter().rev() {
            match *e {
                LabelEntry::Prod { production, pos } => {
                    row = self.bodies[production.index()]
                        .up(pos as usize)
                        .row_mul(row);
                }
                LabelEntry::Rec {
                    cycle,
                    start_phase,
                    idx,
                } => {
                    if idx > 1 {
                        let cpl = &self.cycles[cycle as usize];
                        row = cpl.asc_row(
                            row,
                            cpl.phase(start_phase as u64, idx as u64 - 1),
                            idx as u64 - 1,
                        );
                    }
                }
            }
        }
        row
    }

    /// `row · enter-chain`: in(top sub-run) downward to in(v).
    fn enter_row(&self, mut row: u64, entries: &[LabelEntry]) -> u64 {
        for e in entries {
            match *e {
                LabelEntry::Prod { production, pos } => {
                    row = self.bodies[production.index()]
                        .down(pos as usize)
                        .row_mul(row);
                }
                LabelEntry::Rec {
                    cycle,
                    start_phase,
                    idx,
                } => {
                    if idx > 1 {
                        let cpl = &self.cycles[cycle as usize];
                        row = cpl.desc_row(row, start_phase as usize, idx as u64 - 1);
                    }
                }
            }
        }
        row
    }

    /// `enter-chain · col`: backward from `v` toward the group anchor.
    fn enter_col(&self, mut col: u64, entries: &[LabelEntry]) -> u64 {
        for e in entries.iter().rev() {
            match *e {
                LabelEntry::Prod { production, pos } => {
                    col = self.bodies[production.index()]
                        .down(pos as usize)
                        .col_mul(col);
                }
                LabelEntry::Rec {
                    cycle,
                    start_phase,
                    idx,
                } => {
                    if idx > 1 {
                        let cpl = &self.cycles[cycle as usize];
                        col = cpl.desc_col(col, start_phase as usize, idx as u64 - 1);
                    }
                }
            }
        }
        col
    }

    /// Full exit-chain matrix (diagnostics/tests).
    fn exit_matrix(&self, entries: &[LabelEntry]) -> StateMatrix {
        let mut m = StateMatrix::identity(self.n_states());
        for e in entries.iter().rev() {
            match *e {
                LabelEntry::Prod { production, pos } => {
                    m = m.mul(self.bodies[production.index()].up(pos as usize));
                }
                LabelEntry::Rec {
                    cycle,
                    start_phase,
                    idx,
                } => {
                    if idx > 1 {
                        let cpl = &self.cycles[cycle as usize];
                        m = m.mul(&cpl.asc_range(
                            cpl.phase(start_phase as u64, idx as u64 - 1),
                            idx as u64 - 1,
                        ));
                    }
                }
            }
        }
        m
    }

    /// Full enter-chain matrix (diagnostics/tests).
    fn enter_matrix(&self, entries: &[LabelEntry]) -> StateMatrix {
        let mut m = StateMatrix::identity(self.n_states());
        for e in entries {
            match *e {
                LabelEntry::Prod { production, pos } => {
                    m = m.mul(self.bodies[production.index()].down(pos as usize));
                }
                LabelEntry::Rec {
                    cycle,
                    start_phase,
                    idx,
                } => {
                    if idx > 1 {
                        let cpl = &self.cycles[cycle as usize];
                        m = m.mul(&cpl.desc_range(start_phase as usize, idx as u64 - 1));
                    }
                }
            }
        }
        m
    }
}

fn expect_prod(e: &LabelEntry) -> (ProductionId, usize) {
    match *e {
        LabelEntry::Prod { production, pos } => (production, pos as usize),
        LabelEntry::Rec { .. } => {
            unreachable!("a recursion child's own children carry production entries")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::{compile_minimal_dfa, parse, Symbol};
    use rpq_grammar::SpecificationBuilder;
    use rpq_labeling::{RunBuilder, Scripted};

    fn fig2() -> Specification {
        let mut b = SpecificationBuilder::new();
        for m in ["a", "b", "c", "d", "e"] {
            b.atomic(m);
        }
        for m in ["S", "A", "B"] {
            b.composite(m);
        }
        b.production("S", |w| {
            let c = w.node("c");
            let a = w.node("A");
            let bb = w.node("B");
            let b2 = w.node("b");
            // W1 is a diamond: c feeds both A and B, which both feed b
            // (the only shape consistent with Examples 3.1 and 3.2).
            w.edge(c, a);
            w.edge(c, bb);
            w.edge(a, b2);
            w.edge(bb, b2);
        });
        b.production("A", |w| {
            let a = w.node("a");
            let aa = w.node("A");
            let d = w.node("d");
            // The paper's unsafe example ⎵* a ⎵* needs an `a` tag that
            // only W2 executions cross.
            w.edge_named(a, aa, "a");
            w.edge(aa, d);
        });
        b.production("A", |w| {
            let e1 = w.node("e");
            let e2 = w.node("e");
            w.edge(e1, e2);
        });
        b.production("B", |w| {
            let b1 = w.node("b");
            let b2 = w.node("b");
            w.edge(b1, b2);
        });
        b.start("S");
        b.build().unwrap()
    }

    fn plan(spec: &Specification, text: &str) -> SafeQueryPlan {
        let re = parse(text, &mut |n| spec.tag_by_name(n).map(|t| Symbol(t.0))).unwrap();
        let dfa = compile_minimal_dfa(&re, spec.n_tags());
        SafeQueryPlan::compile(spec, dfa).unwrap()
    }

    fn fig2_run(spec: &Specification) -> rpq_labeling::Run {
        RunBuilder::new(spec)
            .policy(Scripted::new([
                ProductionId(0),
                ProductionId(1),
                ProductionId(1),
                ProductionId(2),
                ProductionId(3),
            ]))
            .build()
            .unwrap()
    }

    #[test]
    fn example_3_2_pairwise_results() {
        // R3 = ⎵* e ⎵* evaluates to true for (c:1, b:1) but false for
        // (c:1, b:3) — Section III-B, Example 3.2.
        let spec = fig2();
        let run = fig2_run(&spec);
        let p = plan(&spec, "_* e _*");
        let n = |s: &str| run.node_by_name(&spec, s).unwrap();
        assert!(p.pairwise(&run, n("c:1"), n("b:1")));
        assert!(!p.pairwise(&run, n("c:1"), n("b:3")));
    }

    #[test]
    fn reachability_plan_matches_bfs() {
        let spec = fig2();
        let run = fig2_run(&spec);
        let p = plan(&spec, "_*");
        assert!(p.is_reachability());
        let reach = |u: NodeId, v: NodeId| {
            let mut seen = vec![false; run.n_nodes()];
            let mut stack = vec![u];
            seen[u.index()] = true;
            while let Some(x) = stack.pop() {
                if x == v {
                    return true;
                }
                for &(to, _) in run.out_edges(x) {
                    if !seen[to.index()] {
                        seen[to.index()] = true;
                        stack.push(to);
                    }
                }
            }
            false
        };
        for u in run.node_ids() {
            for v in run.node_ids() {
                assert_eq!(
                    p.pairwise(&run, u, v),
                    reach(u, v),
                    "reach({}, {})",
                    run.node_name(&spec, u),
                    run.node_name(&spec, v)
                );
            }
        }
    }

    #[test]
    fn unsafe_query_is_rejected_at_compile() {
        let spec = fig2();
        let re = parse("_* a _*", &mut |n| spec.tag_by_name(n).map(|t| Symbol(t.0))).unwrap();
        let dfa = compile_minimal_dfa(&re, spec.n_tags());
        match SafeQueryPlan::compile(&spec, dfa) {
            Err(PlanError::Unsafe { .. }) => {}
            other => panic!("expected Unsafe, got {other:?}"),
        }
    }

    #[test]
    fn epsilon_semantics_on_self_pairs() {
        let spec = fig2();
        let run = fig2_run(&spec);
        let star = plan(&spec, "_*");
        let plus = plan(&spec, "_+");
        let u = run.entry();
        assert!(star.pairwise(&run, u, u));
        assert!(!plus.pairwise(&run, u, u));
    }

    #[test]
    fn deep_recursion_uses_matrix_powers() {
        let spec = fig2();
        let run = RunBuilder::new(&spec)
            .seed(1)
            .target_edges(4000)
            .build()
            .unwrap();
        let p = plan(&spec, "_* e _*");
        let a = spec.module_by_name("a").unwrap();
        let d = spec.module_by_name("d").unwrap();
        let a_nodes = run.nodes_of_module(a);
        let d_nodes = run.nodes_of_module(d);
        assert!(a_nodes.len() > 100, "expected a deep recursion chain");
        let first_a = a_nodes[0];
        for &dn in &d_nodes {
            assert!(p.pairwise(&run, first_a, dn));
        }
        for &dn in d_nodes.iter().take(10) {
            assert!(!p.pairwise(&run, dn, first_a));
        }
    }

    #[test]
    fn pairwise_row_decode_matches_full_matrix_decode() {
        let spec = fig2();
        for seed in [3u64, 4, 5] {
            let run = RunBuilder::new(&spec)
                .seed(seed)
                .target_edges(400)
                .build()
                .unwrap();
            for q in ["_*", "_* e _*", "_* b _*", "d+", "b+"] {
                let p = plan(&spec, q);
                let nodes: Vec<NodeId> = run.node_ids().collect();
                for &u in nodes.iter().step_by(7) {
                    for &v in nodes.iter().step_by(5) {
                        if u == v {
                            continue;
                        }
                        let via_matrix = p
                            .decode_matrix(run.label(u), run.label(v))
                            .row_intersects(p.start_state, p.accepting_mask);
                        assert_eq!(
                            p.pairwise(&run, u, v),
                            via_matrix,
                            "query {q} pair ({u:?}, {v:?}) seed {seed}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bridge_masks_match_pairwise() {
        // Pairs diverging at the root production: the bridge
        // factorization must agree with the direct decode.
        let spec = fig2();
        let run = fig2_run(&spec);
        let p = plan(&spec, "_* e _*");
        let n = |s: &str| run.node_by_name(&spec, s).unwrap();
        // u = a:1 under body position 1 (A), v = b:1 at position 3; the
        // path a:1 → … → e:1 → e:2 → … → b:1 crosses the e edge.
        let u = n("a:1");
        let v = n("b:1");
        let bridge = p.bridge_production(ProductionId(0), 1, 3);
        let w_u = p.source_mask(&run.label(u).entries()[1..], &bridge);
        let a_v = p.target_mask(&run.label(v).entries()[1..]);
        assert_eq!(w_u & a_v != 0, p.pairwise(&run, u, v));
        assert!(w_u & a_v != 0);
        // d:2 sits after the e's: same bridge, no match.
        let u3 = n("d:2");
        let w3 = p.source_mask(&run.label(u3).entries()[1..], &bridge);
        assert_eq!(w3 & a_v != 0, p.pairwise(&run, u3, v));
        assert_eq!(w3 & a_v, 0);

        // A pair that must NOT match: the B branch never sees an e.
        let u2 = n("c:1");
        let v2 = n("b:3");
        let bridge2 = p.bridge_production(ProductionId(0), 0, 2);
        let w2 = p.source_mask(&run.label(u2).entries()[1..], &bridge2);
        let a2 = p.target_mask(&run.label(v2).entries()[1..]);
        assert_eq!(w2 & a2 != 0, p.pairwise(&run, u2, v2));
        assert_eq!(w2 & a2, 0);
    }

    #[test]
    fn rec_bridges_match_pairwise_on_deep_chains() {
        let spec = fig2();
        let run = RunBuilder::new(&spec)
            .seed(2)
            .target_edges(800)
            .build()
            .unwrap();
        let p = plan(&spec, "_* e _*");
        let a_mod = spec.module_by_name("a").unwrap();
        let d_mod = spec.module_by_name("d").unwrap();
        let a_nodes = run.nodes_of_module(a_mod);
        let d_nodes = run.nodes_of_module(d_mod);
        // a:i lives under recursion child i; d:j under child j. Pick a
        // pair several unfoldings apart in each direction and check the
        // bridge factorization.
        let u = a_nodes[2]; // child 3 of the recursion node
        let v = d_nodes[40]; // child 41
        let (lu, lv) = (run.label(u), run.label(v));
        let cp = lu.common_prefix_len(lv);
        let eu = &lu.entries()[cp..];
        let ev = &lv.entries()[cp..];
        if let (
            LabelEntry::Rec {
                cycle,
                start_phase,
                idx: a,
            },
            LabelEntry::Rec { idx: b, .. },
        ) = (eu[0], ev[0])
        {
            assert!(a < b, "expected u shallower than v");
            let (ka, i1) = match eu[1] {
                LabelEntry::Prod { production, pos } => (production, pos as usize),
                _ => unreachable!(),
            };
            let bridge = p.bridge_rec_desc(cycle, start_phase, a, b, ka, i1);
            let w = p.source_mask(&eu[2..], &bridge);
            let t = p.target_mask(&ev[1..]);
            assert_eq!(w & t != 0, p.pairwise(&run, u, v));
        } else {
            panic!("expected recursion divergence");
        }

        // And the ascending direction (u deeper than v).
        let u2 = d_nodes[40];
        let v2 = d_nodes[2];
        let (lu2, lv2) = (run.label(u2), run.label(v2));
        let cp2 = lu2.common_prefix_len(lv2);
        let eu2 = &lu2.entries()[cp2..];
        let ev2 = &lv2.entries()[cp2..];
        if let (
            LabelEntry::Rec {
                cycle,
                start_phase,
                idx: a,
            },
            LabelEntry::Rec { idx: b, .. },
        ) = (eu2[0], ev2[0])
        {
            assert!(a > b);
            let (kb, j1) = match ev2[1] {
                LabelEntry::Prod { production, pos } => (production, pos as usize),
                _ => unreachable!(),
            };
            let bridge = p.bridge_rec_asc(cycle, start_phase, a, b, kb, j1);
            let w = p.source_mask(&eu2[1..], &bridge);
            let t = p.target_mask(&ev2[2..]);
            assert_eq!(w & t != 0, p.pairwise(&run, u2, v2));
        } else {
            panic!("expected recursion divergence");
        }
    }
}
