//! The unified error type of the query API.
//!
//! Every layer's failure mode converts into [`RpqError`], so callers
//! of [`crate::Session`] (and of the CLI built on it) handle exactly
//! one error enum instead of the parse/plan/grammar/derivation/IO
//! types the individual crates expose.

use crate::plan::PlanError;
use rpq_automata::ParseError;
use rpq_grammar::ValidationError;
use rpq_labeling::DeriveError;
use std::fmt;

/// Any failure produced by the query API.
#[derive(Debug)]
pub enum RpqError {
    /// The query text failed to parse against the tag alphabet.
    Parse(ParseError),
    /// Plan compilation failed on structural grounds (an *unsafe*
    /// query is not an error — the planner decomposes it).
    Plan(PlanError),
    /// A specification failed validation.
    Grammar(ValidationError),
    /// Run derivation failed, or a run did not match its specification.
    Run(DeriveError),
    /// An I/O failure (loading or persisting specs and runs).
    Io {
        /// What was being done when the failure occurred.
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Invalid input that is not attributable to a lower layer
    /// (unknown CLI flags, bad node names, malformed JSON, …).
    Invalid(String),
}

impl RpqError {
    /// An [`RpqError::Io`] with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> RpqError {
        RpqError::Io {
            context: context.into(),
            source,
        }
    }

    /// An [`RpqError::Invalid`] from a message.
    pub fn invalid(message: impl Into<String>) -> RpqError {
        RpqError::Invalid(message.into())
    }
}

impl fmt::Display for RpqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpqError::Parse(e) => write!(f, "query parse error: {e}"),
            RpqError::Plan(e) => write!(f, "planning failed: {e}"),
            RpqError::Grammar(e) => write!(f, "invalid specification: {e}"),
            RpqError::Run(e) => write!(f, "run derivation failed: {e}"),
            RpqError::Io { context, source } => write!(f, "{context}: {source}"),
            RpqError::Invalid(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for RpqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RpqError::Parse(e) => Some(e),
            RpqError::Plan(e) => Some(e),
            RpqError::Grammar(e) => Some(e),
            RpqError::Run(e) => Some(e),
            RpqError::Io { source, .. } => Some(source),
            RpqError::Invalid(_) => None,
        }
    }
}

impl From<ParseError> for RpqError {
    fn from(e: ParseError) -> RpqError {
        RpqError::Parse(e)
    }
}

impl From<PlanError> for RpqError {
    fn from(e: PlanError) -> RpqError {
        RpqError::Plan(e)
    }
}

impl From<ValidationError> for RpqError {
    fn from(e: ValidationError) -> RpqError {
        RpqError::Grammar(e)
    }
}

impl From<DeriveError> for RpqError {
    fn from(e: DeriveError) -> RpqError {
        RpqError::Run(e)
    }
}

impl From<std::io::Error> for RpqError {
    fn from(e: std::io::Error) -> RpqError {
        RpqError::io("I/O error", e)
    }
}
