//! Query requests and outcomes: every evaluation mode in one place.
//!
//! A [`QueryRequest`] selects *which* pairs of a run to test against a
//! prepared query; [`crate::Session::evaluate`] answers it with a
//! [`QueryOutcome`] carrying the result plus evaluation metadata
//! (which plan kind ran, whether the per-run index cache hit, how many
//! candidate nodes were touched).

use rpq_labeling::NodeId;
use rpq_relalg::NodePairSet;

/// What to evaluate over a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryRequest {
    /// Does a matching path lead from the first node to the second?
    Pairwise(NodeId, NodeId),
    /// Does a matching path lead from the run's unique entry to its
    /// unique exit? Run-relative, so one request is meaningful across
    /// a whole corpus — the batch executor's natural mode (node ids
    /// differ per run; entry/exit always exist).
    EntryExit,
    /// All matching pairs of `l1 × l2` (Algorithm 2 for safe plans).
    AllPairs(Vec<NodeId>, Vec<NodeId>),
    /// All matching pairs `(u, v)` for the fixed source `u`.
    SourceStar(NodeId),
    /// All matching pairs `(u, v)` for the fixed target `v`.
    TargetStar(NodeId),
    /// The set of nodes reachable from `u` along a matching path.
    Reachable(NodeId),
}

impl QueryRequest {
    /// [`QueryRequest::Pairwise`] from endpoints.
    pub fn pairwise(u: NodeId, v: NodeId) -> QueryRequest {
        QueryRequest::Pairwise(u, v)
    }

    /// [`QueryRequest::EntryExit`] — the run-relative pairwise mode.
    pub fn entry_exit() -> QueryRequest {
        QueryRequest::EntryExit
    }

    /// [`QueryRequest::AllPairs`] from node lists.
    pub fn all_pairs(l1: impl Into<Vec<NodeId>>, l2: impl Into<Vec<NodeId>>) -> QueryRequest {
        QueryRequest::AllPairs(l1.into(), l2.into())
    }

    /// [`QueryRequest::SourceStar`] from the source.
    pub fn source_star(u: NodeId) -> QueryRequest {
        QueryRequest::SourceStar(u)
    }

    /// [`QueryRequest::TargetStar`] from the target.
    pub fn target_star(v: NodeId) -> QueryRequest {
        QueryRequest::TargetStar(v)
    }

    /// [`QueryRequest::Reachable`] from the source.
    pub fn reachable(u: NodeId) -> QueryRequest {
        QueryRequest::Reachable(u)
    }
}

/// Which evaluation strategy a prepared plan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// Fully safe: answered from labels alone (Algorithms 1 and 2).
    Safe,
    /// Decomposed: safe subqueries composed relationally (Section IV-B).
    Composite,
}

/// Whether an evaluation consulted the session's per-run index cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexCacheUse {
    /// The plan never needed the tag index (safe plans).
    NotNeeded,
    /// The index was served from the session cache.
    Hit,
    /// The index was built (and cached) for this evaluation.
    Miss,
}

/// Evaluation metadata returned alongside every result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalMeta {
    /// Strategy of the plan that ran.
    pub plan_kind: PlanKind,
    /// Per-run tag-index cache interaction.
    pub index_cache: IndexCacheUse,
    /// The relational kernel mode in force during the evaluation
    /// (`auto` dispatches per operator on density; `pairs`/`bits`/`scc`
    /// are the A/B overrides — see `rpq_relalg::kernel`). Safe plans
    /// never touch the relational kernels regardless.
    pub kernel: rpq_relalg::KernelMode,
    /// Which closure algorithm(s) actually executed during this
    /// evaluation — the mode above is intent, this is fact (e.g. `auto`
    /// may have condensed one fixpoint and run another semi-naive).
    /// All-zero for safe plans and closure-free composite plans.
    pub closures: rpq_relalg::ClosureCounts,
    /// How the SCC-kernel closures above sourced their Tarjan
    /// condensation: `computed` counts fresh condensations of the run's
    /// adjacency, `reused` counts closures answered off the
    /// evaluation-scoped [`rpq_relalg::CondensationCache`] (a plan with
    /// k eligible tag closures reports `computed == 1, reused == k - 1`).
    /// All-zero whenever no SCC-kernel closure ran.
    pub condensations: rpq_relalg::CondensationCounts,
    /// Candidate nodes the request ranged over (2 for pairwise,
    /// `|l1| + |l2|` for list modes).
    pub nodes_touched: usize,
    /// Which evaluation strategy answered this request — always the
    /// *resolved* choice ([`crate::EvalStrategy::Lazy`] or
    /// [`crate::EvalStrategy::Materialized`], never `Auto`): the
    /// requested mode is intent, this is fact.
    pub strategy: crate::EvalStrategy,
    /// `(dfa_state, node)` product states the lazy engine expanded for
    /// this request; 0 for materialized evaluations.
    pub product_states: u64,
    /// Per-stage timing breakdown of this evaluation: `(stage, µs)`
    /// self-times collected by `rpq_obs::Trace` (`plan` = prepared-plan
    /// compile/lookup, `index`/`csr` = per-run artifact build or load,
    /// `eval` = the evaluation proper). Empty when tracing is disabled
    /// process-wide (`rpq_obs::set_enabled(false)`).
    pub stages: rpq_obs::Stages,
}

/// The payload of a [`QueryOutcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// Pairwise verdict.
    Bool(bool),
    /// Matching pairs.
    Pairs(NodePairSet),
    /// Matching nodes (for [`QueryRequest::Reachable`]).
    Nodes(Vec<NodeId>),
}

/// The answer to a [`QueryRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The result payload, shaped by the request mode.
    pub result: QueryResult,
    /// How the evaluation ran.
    pub meta: EvalMeta,
}

impl QueryOutcome {
    /// The pairwise verdict, if this was a pairwise request.
    pub fn as_bool(&self) -> Option<bool> {
        match &self.result {
            QueryResult::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The matching pairs, if this was a pair-producing request.
    pub fn as_pairs(&self) -> Option<&NodePairSet> {
        match &self.result {
            QueryResult::Pairs(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The matching nodes, if this was a reachability request.
    pub fn as_nodes(&self) -> Option<&[NodeId]> {
        match &self.result {
            QueryResult::Nodes(nodes) => Some(nodes),
            _ => None,
        }
    }

    /// Number of matches (1/0 for pairwise verdicts).
    pub fn len(&self) -> usize {
        match &self.result {
            QueryResult::Bool(b) => usize::from(*b),
            QueryResult::Pairs(pairs) => pairs.len(),
            QueryResult::Nodes(nodes) => nodes.len(),
        }
    }

    /// Did the query match nothing?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
