#![warn(missing_docs)]

//! The paper's core contribution: answering regular path queries on
//! workflow provenance with derivation-based reachability labels.
//!
//! Pipeline (Huang, Bao, Davidson, Milo, Yuan — ICDE 2015):
//!
//! 1. compile the query to its **minimal DFA** (`rpq-automata`);
//! 2. **check safety** w.r.t. the workflow specification via the λ-matrix
//!    fixpoint ([`safety`], Section III-C);
//! 3. for safe queries, build the implicit **query-intersected
//!    specification** `G_R` as per-production port-graph closures
//!    ([`portgraph`], Section III-B) and compile a [`SafeQueryPlan`];
//! 4. answer **pairwise** queries in constant time per pair by decoding
//!    the two nodes' labels ([`plan`], Algorithm 1);
//! 5. answer **all-pairs** queries with a tree-merge structural join over
//!    label tries ([`allpairs`], Algorithm 2 — Options S1/S2);
//! 6. **decompose** unsafe queries into maximal safe subtrees composed
//!    relationally ([`general`], Section IV-B).
//!
//! [`Session`] is the high-level entry point: it owns the
//! specification, caches compiled plans ([`PreparedQuery`]) and per-run
//! tag indexes, and answers [`QueryRequest`]s with [`QueryOutcome`]s.
//! Every failure mode surfaces as the single [`RpqError`] enum. The
//! old [`RpqEngine`] facade is deprecated and delegates here.

pub mod allpairs;
pub mod batch;
pub mod cost;
pub mod engine;
pub mod error;
pub mod general;
pub mod lazy;
pub mod matrix;
pub mod plan;
pub mod portgraph;
pub mod request;
pub mod safety;
pub mod session;

pub use allpairs::{all_pairs_filtered, all_pairs_nested, all_pairs_reachability};
pub use batch::{BatchItem, BatchOptions, BatchOutcome, RunRef, RunSource};
pub use cost::{ChainOrder, CostModel};
#[allow(deprecated)]
pub use engine::RpqEngine;
pub use error::RpqError;
pub use general::{
    all_pairs, all_pairs_csr, eval_node, pairwise, pairwise_csr, plan_query, plan_query_with,
    relational_node, EvalCtx, PlanNode, QueryPlan, SubqueryPolicy,
};
pub use lazy::{
    eval_strategy, lazy_counts, set_eval_strategy, thread_expansions, EvalStrategy, LazyCounts,
    LazyEval,
};
pub use matrix::StateMatrix;
pub use plan::{PlanError, SafeQueryPlan};
pub use portgraph::BodyMatrices;
pub use request::{EvalMeta, IndexCacheUse, PlanKind, QueryOutcome, QueryRequest, QueryResult};
pub use safety::{check_safety, SafetyOutcome};
pub use session::{PlanStats, PlanStore, PreparedQuery, Session, SessionStats};
