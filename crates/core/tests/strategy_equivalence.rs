//! Differential property tests for the evaluation strategies: the lazy
//! product-graph engine must agree **byte-identically** with the
//! materialized relational pipeline (and with the auto cost model,
//! whichever side it picks) on every request mode, under both subquery
//! policies, under all three forced relational kernels, and across run
//! shapes from plain acyclic simulations to deep recursive unfoldings
//! and streamed-in cyclic / multi-SCC graphs.
//!
//! The referee is test-local and deliberately primitive: one DFS per
//! source over the product space `(dfa_state, node)`, reading
//! successors straight off [`Run::out_edges`]. It shares nothing with
//! either subject — no relational kernels, no CSR arenas, no visited
//! bitsets — so a bug in shared plumbing cannot cancel out.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rpq_automata::Symbol;
use rpq_core::{EvalStrategy, PreparedQuery, QueryRequest, QueryResult, Session, SubqueryPolicy};
use rpq_labeling::{EventBatch, NodeId, Run, RunEdge};

/// Full matching-pair relation by brute-force product search: for each
/// source `u`, walk `(state, node)` pairs depth-first from
/// `(q0, u)` and record `(u, v)` whenever an accepting state is
/// reached at `v`. The length-0 path falls out of the same check —
/// `(q0, u)` itself is accepting exactly when ε is in the language.
fn referee_pairs(query: &PreparedQuery, run: &Run) -> BTreeSet<(NodeId, NodeId)> {
    let dfa = query.dfa();
    let mut pairs = BTreeSet::new();
    let mut seen = vec![false; dfa.n_states() * run.n_nodes()];
    for u in run.node_ids() {
        seen.iter_mut().for_each(|s| *s = false);
        let mut stack = vec![(dfa.start(), u)];
        seen[dfa.start() as usize * run.n_nodes() + u.index()] = true;
        while let Some((q, v)) = stack.pop() {
            if dfa.is_accepting(q) {
                pairs.insert((u, v));
            }
            for &(w, tag) in run.out_edges(v) {
                let q2 = dfa.next(q, Symbol(tag.0));
                let slot = q2 as usize * run.n_nodes() + w.index();
                if !seen[slot] {
                    seen[slot] = true;
                    stack.push((q2, w));
                }
            }
        }
    }
    pairs
}

/// Request-shaped canonical form so referee expectations and engine
/// results compare on content (the engines themselves are additionally
/// compared byte-for-byte against each other).
#[derive(Debug, PartialEq, Eq)]
enum Canon {
    Bool(bool),
    Pairs(BTreeSet<(NodeId, NodeId)>),
    Nodes(BTreeSet<NodeId>),
}

fn canon(result: &QueryResult) -> Canon {
    match result {
        QueryResult::Bool(b) => Canon::Bool(*b),
        QueryResult::Pairs(set) => Canon::Pairs(set.iter().collect()),
        QueryResult::Nodes(nodes) => Canon::Nodes(nodes.iter().copied().collect()),
    }
}

fn expected(request: &QueryRequest, pairs: &BTreeSet<(NodeId, NodeId)>, run: &Run) -> Canon {
    match request {
        QueryRequest::Pairwise(u, v) => Canon::Bool(pairs.contains(&(*u, *v))),
        QueryRequest::EntryExit => Canon::Bool(pairs.contains(&(run.entry(), run.exit()))),
        QueryRequest::AllPairs(l1, l2) => {
            let s1: BTreeSet<NodeId> = l1.iter().copied().collect();
            let s2: BTreeSet<NodeId> = l2.iter().copied().collect();
            Canon::Pairs(
                pairs
                    .iter()
                    .filter(|(u, v)| s1.contains(u) && s2.contains(v))
                    .copied()
                    .collect(),
            )
        }
        QueryRequest::SourceStar(u) => {
            Canon::Pairs(pairs.iter().filter(|(a, _)| a == u).copied().collect())
        }
        QueryRequest::TargetStar(v) => {
            Canon::Pairs(pairs.iter().filter(|(_, b)| b == v).copied().collect())
        }
        QueryRequest::Reachable(u) => Canon::Nodes(
            pairs
                .iter()
                .filter(|(a, _)| a == u)
                .map(|(_, b)| *b)
                .collect(),
        ),
    }
}

/// Every request mode, probed from the entry, the exit, and two
/// interior nodes — each answered under all three strategies and
/// pinned to the referee relation.
fn assert_differential(session: &Session, query_text: &str, policy: SubqueryPolicy, run: &Run) {
    let query = session
        .prepare_with(query_text, policy)
        .expect("query prepares");
    let pairs = referee_pairs(&query, run);
    let nodes: Vec<NodeId> = run.node_ids().collect();
    let mid = nodes[nodes.len() / 2];
    let probe = nodes[nodes.len() / 3];
    let requests = [
        QueryRequest::Pairwise(run.entry(), run.exit()),
        QueryRequest::Pairwise(run.entry(), mid),
        QueryRequest::Pairwise(mid, probe),
        QueryRequest::EntryExit,
        QueryRequest::AllPairs(nodes.clone(), nodes.clone()),
        QueryRequest::AllPairs(vec![run.entry(), mid], nodes.clone()),
        QueryRequest::SourceStar(run.entry()),
        QueryRequest::SourceStar(mid),
        QueryRequest::TargetStar(run.exit()),
        QueryRequest::TargetStar(probe),
        QueryRequest::Reachable(run.entry()),
        QueryRequest::Reachable(mid),
    ];
    for request in &requests {
        let lazy = session.evaluate_with_strategy(&query, run, request, EvalStrategy::Lazy);
        let materialized =
            session.evaluate_with_strategy(&query, run, request, EvalStrategy::Materialized);
        let auto = session.evaluate_with_strategy(&query, run, request, EvalStrategy::Auto);
        assert_eq!(
            lazy.result, materialized.result,
            "{query_text} [{policy:?}] {request:?}: lazy and materialized disagree"
        );
        assert_eq!(
            auto.result, materialized.result,
            "{query_text} [{policy:?}] {request:?}: auto disagrees with materialized"
        );
        assert_eq!(
            canon(&lazy.result),
            expected(request, &pairs, run),
            "{query_text} [{policy:?}] {request:?}: engines disagree with the product-DFS referee"
        );
    }
}

const FIG2_QUERIES: &[&str] = &["_*", "_+", "_* a _*", "(a | e)+", "a* e a*"];
const FORK_QUERIES: &[&str] = &["_*", "fork*", "fork* join", "_* join"];
const CYCLE_QUERIES: &[&str] = &["_*", "_+", "_* ab _*", "(ab | ba)+"];

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Random Fig. 2 simulations: the paper's running example, acyclic
    /// but branchy, under the cost-based planner.
    #[test]
    fn strategies_agree_on_fig2_simulations(seed in 0u64..64, edges in 30usize..140) {
        let session = Session::from_spec(rpq_workloads::paper_examples::fig2_spec());
        let run = rpq_workloads::runs::simulate(session.spec(), edges, seed).expect("derivable");
        for query in FIG2_QUERIES {
            assert_differential(&session, query, SubqueryPolicy::CostBased, &run);
        }
    }

    /// The same corpus forced down the relational pipeline, so the
    /// materialized side exercises composite plans even for queries the
    /// cost model would answer from the tag index.
    #[test]
    fn strategies_agree_under_forced_relational_plans(seed in 0u64..64, edges in 30usize..120) {
        let session = Session::from_spec(rpq_workloads::paper_examples::fig2_spec());
        let run = rpq_workloads::runs::simulate(session.spec(), edges, seed).expect("derivable");
        for query in &["_*", "_* a _*", "(a | e)+"] {
            assert_differential(&session, query, SubqueryPolicy::AlwaysRelational, &run);
        }
    }

    /// Deep fork-join unfoldings: long recursive chains through the
    /// `M → dist (A | M) agg` cycle give the lazy frontier its worst
    /// diameter.
    #[test]
    fn strategies_agree_on_deep_fork_unfoldings(seed in 0u64..64, edges in 60usize..260) {
        let spec = rpq_workloads::paper_examples::fork_spec();
        let session = Session::from_spec(spec);
        let run = rpq_workloads::runs::simulate_fork(session.spec(), 0, edges, seed)
            .expect("fork spec derives");
        for query in FORK_QUERIES {
            assert_differential(&session, query, SubqueryPolicy::CostBased, &run);
        }
    }
}

/// Append back-edges to a simulated run through the streaming-ingestion
/// path, turning interior stretches into cycles. Edges are chosen so
/// the run keeps a unique source and sink (entry keeps no incoming
/// edge, exit no outgoing one), which `Run::assemble` requires.
fn with_back_edges(run: &Run, every: usize) -> Run {
    let mut back = Vec::new();
    for (i, e) in run.edges().iter().enumerate() {
        if i % every == 0 && e.src != run.entry() && e.dst != run.exit() {
            back.push(RunEdge {
                src: e.dst,
                dst: e.src,
                tag: e.tag,
            });
        }
    }
    assert!(!back.is_empty(), "corpus too small to seed cycles");
    run.apply_events(&EventBatch {
        nodes: Vec::new(),
        edges: back,
    })
    .expect("back-edge batch re-assembles")
}

/// Cyclic and multi-SCC graphs: closures stop being path counting and
/// the lazy visited-set must terminate. One reversed edge per stretch
/// of five yields several disjoint nontrivial SCCs.
#[test]
fn strategies_agree_on_cyclic_and_multi_scc_runs() {
    let session = Session::from_spec(rpq_workloads::paper_examples::fig2_spec());
    for (seed, every) in [(3u64, 5usize), (17, 7), (29, 4)] {
        let base = rpq_workloads::runs::simulate(session.spec(), 110, seed).expect("derivable");
        let run = with_back_edges(&base, every);
        assert!(!run.is_acyclic(), "back-edges must create cycles");
        for query in FIG2_QUERIES {
            assert_differential(&session, query, SubqueryPolicy::CostBased, &run);
            assert_differential(&session, query, SubqueryPolicy::AlwaysRelational, &run);
        }
    }
}

/// Strictly linear two-phase recursion: the deepest chains the corpus
/// can produce, probing worklist depth rather than branching.
#[test]
fn strategies_agree_on_deep_two_phase_chains() {
    let session = Session::from_spec(rpq_workloads::paper_examples::two_phase_cycle_spec());
    for seed in [1u64, 9, 23] {
        let run = rpq_workloads::runs::simulate(session.spec(), 160, seed).expect("derivable");
        for query in CYCLE_QUERIES {
            assert_differential(&session, query, SubqueryPolicy::CostBased, &run);
        }
    }
}

/// The strategy × kernel matrix: force each relational closure kernel
/// and check lazy against materialized under it. Lazy never touches
/// the kernels — which is exactly the point: its answers must not
/// depend on which kernel the materialized side (and the auto cost
/// model's fallback path) happens to run.
#[test]
fn strategies_agree_under_every_forced_kernel() {
    let before = rpq_relalg::kernel_mode();
    let session = Session::from_spec(rpq_workloads::paper_examples::fig2_spec());
    let run = rpq_workloads::runs::simulate(session.spec(), 150, 11).expect("derivable");
    let cyclic = with_back_edges(&run, 6);
    for mode in [
        rpq_relalg::KernelMode::ForcePairs,
        rpq_relalg::KernelMode::ForceBits,
        rpq_relalg::KernelMode::ForceScc,
    ] {
        rpq_relalg::set_kernel_mode(mode);
        for query in &["_*", "_* a _*", "(a | e)+"] {
            assert_differential(&session, query, SubqueryPolicy::AlwaysRelational, &run);
            assert_differential(&session, query, SubqueryPolicy::AlwaysRelational, &cyclic);
        }
    }
    rpq_relalg::set_kernel_mode(before);
}
