//! Fig. 13d — pairwise query time vs query size k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_baselines::{ifq_symbols, G3};
use rpq_bench::Dataset;
use rpq_workloads::{runs, QueryGen};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13d_pairwise_vs_query_size");
    group.sample_size(10);
    let d = Dataset::bioaid();
    let run = d.run(2000, 42);
    let index = d.index(&run);
    let pairs: Vec<_> = runs::sample_nodes(&run, 200, 1)
        .into_iter()
        .zip(runs::sample_nodes(&run, 200, 2))
        .collect();
    for &k in &[0usize, 3, 6, 10] {
        let mut qg = QueryGen::new(d.spec(), 7 + k as u64);
        let q = qg.ifq_over(&d.real.pool_tags, k);
        let syms = ifq_symbols(&q).unwrap();
        let plan = d.session().plan_safe(&q).unwrap();
        group.bench_with_input(BenchmarkId::new("RPL", k), &pairs, |b, pairs| {
            b.iter(|| {
                let mut hits = 0;
                for &(u, v) in pairs {
                    hits += usize::from(plan.pairwise(&run, u, v));
                }
                std::hint::black_box(hits)
            })
        });
        let g3 = G3::new(d.spec(), &run, &index);
        group.bench_with_input(BenchmarkId::new("G3", k), &pairs, |b, pairs| {
            b.iter(|| {
                let mut hits = 0;
                for &(u, v) in pairs {
                    hits += usize::from(g3.pairwise(&syms, u, v));
                }
                std::hint::black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
