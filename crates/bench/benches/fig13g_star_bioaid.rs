//! Fig. 13g — all-pairs Kleene star a* on fork-heavy bioaid runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_baselines::G1;
use rpq_bench::Dataset;
use rpq_core::{all_pairs_filtered, all_pairs_nested};
use rpq_workloads::{runs, QueryGen};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13g_star_bioaid");
    group.sample_size(10);
    let d = Dataset::bioaid();
    let qg = QueryGen::new(d.spec(), 0);
    let q = qg.kleene_star(d.star_tag()).unwrap();
    for &edges in &[1000usize, 4000] {
        let run = d.fork_run(edges, 42);
        let index = d.index(&run);
        let all = runs::sample_nodes(&run, 300, 5);
        let g1 = G1::new(&index);
        group.bench_function(BenchmarkId::new("BaselineG1", edges), |b| {
            b.iter(|| std::hint::black_box(g1.all_pairs(&q, &all, &all)))
        });
        let plan = d.session().plan_safe(&q).unwrap();
        group.bench_function(BenchmarkId::new("RPL_S1", edges), |b| {
            b.iter(|| std::hint::black_box(all_pairs_nested(&plan, &run, &all, &all)))
        });
        group.bench_function(BenchmarkId::new("optRPL_S2", edges), |b| {
            b.iter(|| std::hint::black_box(all_pairs_filtered(&plan, d.spec(), &run, &all, &all)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
