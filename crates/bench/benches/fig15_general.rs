//! Fig. 15a/15b — general (unsafe) queries: optRPL vs baseline G1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::compile_minimal_dfa;
use rpq_baselines::G1;
use rpq_bench::Dataset;
use rpq_workloads::{runs, QueryGen};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_general_unsafe_queries");
    group.sample_size(10);
    for d in [Dataset::bioaid(), Dataset::qblast()] {
        let run = d.run(1000, 42);
        let index = d.index(&run);
        let all = runs::sample_nodes(&run, 250, 5);
        // First few unsafe random queries.
        let mut qg = QueryGen::new(d.spec(), 1234);
        let mut unsafe_queries = Vec::new();
        let mut tries = 0;
        while unsafe_queries.len() < 3 && tries < 400 {
            let q = qg.random_query(6);
            tries += 1;
            if compile_minimal_dfa(&q, d.spec().n_tags()).n_states() <= 64
                && !d.session().is_safe(&q)
            {
                unsafe_queries.push(q);
            }
        }
        for (i, q) in unsafe_queries.iter().enumerate() {
            let plan = d.session().prepare_regex(q).unwrap();
            let g1 = G1::new(&index);
            group.bench_function(BenchmarkId::new(format!("{}_G1", d.name()), i), |b| {
                b.iter(|| std::hint::black_box(g1.all_pairs(q, &all, &all)))
            });
            group.bench_function(BenchmarkId::new(format!("{}_optRPL", d.name()), i), |b| {
                b.iter(|| std::hint::black_box(d.session().all_pairs(&plan, &run, &all, &all)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
