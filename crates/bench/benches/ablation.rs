//! Ablation benches beyond the paper's figures:
//!
//! * S1 (nested) vs S2 (tree-merge filter) vs pure reachability merge —
//!   quantifies how much the reachability filter buys at different
//!   selectivities;
//! * pairwise decode vs product-BFS referee — the constant-time claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::compile_minimal_dfa;
use rpq_baselines::Referee;
use rpq_bench::Dataset;
use rpq_core::{all_pairs_filtered, all_pairs_nested, all_pairs_reachability};
use rpq_workloads::{runs, QueryGen};

fn bench(c: &mut Criterion) {
    let d = Dataset::bioaid();

    {
        let mut group = c.benchmark_group("ablation_s1_vs_s2");
        group.sample_size(10);
        let run = d.run(2000, 42);
        let all = runs::sample_nodes(&run, 400, 5);
        let mut qg = QueryGen::new(d.spec(), 11);
        let q = qg.ifq_over(&d.real.pool_tags, 2);
        let plan = d.session().plan_safe(&q).unwrap();
        group.bench_function("S1_nested", |b| {
            b.iter(|| std::hint::black_box(all_pairs_nested(&plan, &run, &all, &all)))
        });
        group.bench_function("S2_filtered", |b| {
            b.iter(|| std::hint::black_box(all_pairs_filtered(&plan, d.spec(), &run, &all, &all)))
        });
        group.bench_function("reachability_merge", |b| {
            b.iter(|| std::hint::black_box(all_pairs_reachability(d.spec(), &run, &all, &all)))
        });
        group.finish();
    }

    {
        // Pairwise decode stays flat as runs grow; BFS does not.
        let mut group = c.benchmark_group("ablation_decode_vs_bfs");
        group.sample_size(10);
        let mut qg = QueryGen::new(d.spec(), 13);
        let q = qg.ifq_over(&d.real.pool_tags, 3);
        let dfa = compile_minimal_dfa(&q, d.spec().n_tags());
        for &edges in &[1000usize, 8000] {
            let run = d.run(edges, 42);
            let plan = d.session().plan_safe(&q).unwrap();
            let pairs: Vec<_> = runs::sample_nodes(&run, 64, 1)
                .into_iter()
                .zip(runs::sample_nodes(&run, 64, 2))
                .collect();
            group.bench_function(BenchmarkId::new("label_decode", edges), |b| {
                b.iter(|| {
                    let mut hits = 0;
                    for &(u, v) in &pairs {
                        hits += usize::from(plan.pairwise(&run, u, v));
                    }
                    std::hint::black_box(hits)
                })
            });
            let referee = Referee::new(&run, &dfa);
            let few: Vec<_> = pairs.iter().copied().take(8).collect();
            group.bench_function(BenchmarkId::new("product_bfs", edges), |b| {
                b.iter(|| {
                    let mut hits = 0;
                    for &(u, v) in &few {
                        hits += usize::from(referee.pairwise(u, v));
                    }
                    std::hint::black_box(hits)
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
