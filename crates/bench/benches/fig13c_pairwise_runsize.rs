//! Fig. 13c — pairwise query time vs run size (RPL vs G3 vs G2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::compile_minimal_dfa;
use rpq_baselines::{ifq_symbols, G2, G3};
use rpq_bench::Dataset;
use rpq_workloads::{runs, QueryGen};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13c_pairwise_vs_run_size");
    group.sample_size(10);
    let d = Dataset::bioaid();
    let mut qg = QueryGen::new(d.spec(), 99);
    let q = qg.ifq_over(&d.real.pool_tags, 3);
    let syms = ifq_symbols(&q).unwrap();
    let dfa = compile_minimal_dfa(&q, d.spec().n_tags());
    for &edges in &[1000usize, 4000] {
        let run = d.run(edges, 42);
        let index = d.index(&run);
        let pairs: Vec<_> = runs::sample_nodes(&run, 200, 1)
            .into_iter()
            .zip(runs::sample_nodes(&run, 200, 2))
            .collect();
        let plan = d.session().plan_safe(&q).unwrap();
        group.bench_with_input(BenchmarkId::new("RPL", edges), &pairs, |b, pairs| {
            b.iter(|| {
                let mut hits = 0;
                for &(u, v) in pairs {
                    hits += usize::from(plan.pairwise(&run, u, v));
                }
                std::hint::black_box(hits)
            })
        });
        let g3 = G3::new(d.spec(), &run, &index);
        group.bench_with_input(BenchmarkId::new("G3", edges), &pairs, |b, pairs| {
            b.iter(|| {
                let mut hits = 0;
                for &(u, v) in pairs {
                    hits += usize::from(g3.pairwise(&syms, u, v));
                }
                std::hint::black_box(hits)
            })
        });
        let g2 = G2::new(&run, &index);
        let few: Vec<_> = pairs.iter().copied().take(20).collect();
        group.bench_with_input(BenchmarkId::new("G2", edges), &few, |b, few| {
            b.iter(|| {
                let mut hits = 0;
                for &(u, v) in few {
                    hits += usize::from(g2.pairwise(&dfa, u, v));
                }
                std::hint::black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
