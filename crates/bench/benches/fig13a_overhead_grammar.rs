//! Fig. 13a — safety-check/planning overhead vs grammar size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_core::plan_query;
use rpq_workloads::{synthetic, QueryGen, SynthParams};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13a_overhead_vs_grammar_size");
    group.sample_size(20);
    for &n_composite in &[40usize, 80, 120] {
        let s = synthetic::generate(&SynthParams {
            n_atomic: n_composite * 2,
            n_composite,
            n_self_cycles: n_composite / 4,
            n_two_cycles: 0,
            body_nodes: (4, 8),
            extra_edge_prob: 0.2,
            composite_ref_prob: 0.0,
            n_tags: 20,
            alt_production_per_mille: 0,
            seed: 0xF13A,
        });
        let mut qg = QueryGen::new(&s.spec, 1);
        let q = qg.ifq_over(&s.pool_tags, 3);
        group.bench_with_input(BenchmarkId::from_parameter(s.spec.size()), &q, |b, q| {
            b.iter(|| std::hint::black_box(plan_query(&s.spec, q).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
