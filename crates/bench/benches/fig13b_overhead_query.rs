//! Fig. 13b — planning overhead vs query size k on BioAID/QBLast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::Dataset;
use rpq_core::{plan_query, Session};
use rpq_workloads::QueryGen;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13b_overhead_vs_query_size");
    group.sample_size(20);
    for d in [Dataset::bioaid(), Dataset::qblast()] {
        for &k in &[0usize, 3, 6, 10] {
            let mut qg = QueryGen::new(d.spec(), k as u64);
            let q = qg.ifq_over(&d.real.pool_tags, k);
            group.bench_with_input(BenchmarkId::new(d.name(), k), &q, |b, q| {
                b.iter(|| std::hint::black_box(plan_query(d.spec(), q).unwrap()))
            });
            // The session's prepared-plan cache amortizes that cost to
            // a lookup: the gap is what `Session::prepare` buys.
            let session = Session::from_spec(d.spec().clone());
            session.prepare_regex(&q).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("{}_cached", d.name()), k),
                &q,
                |b, q| b.iter(|| std::hint::black_box(session.prepare_regex(q).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
