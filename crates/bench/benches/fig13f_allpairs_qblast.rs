//! Fig. 13f — all-pairs IFQs by selectivity on qblast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_baselines::{ifq_symbols, G3};
use rpq_bench::Dataset;
use rpq_core::{all_pairs_filtered, all_pairs_nested};
use rpq_workloads::{runs, QueryGen};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13f_allpairs_qblast");
    group.sample_size(10);
    let d = Dataset::qblast();
    let run = d.run(1000, 42);
    let index = d.index(&run);
    let all = runs::sample_nodes(&run, 300, 5);
    let mut qg = QueryGen::new(d.spec(), 31);
    for (label, high) in [("high_sel", true), ("low_sel", false)] {
        let q = loop {
            let q = qg.ifq_by_selectivity(3, &index, high);
            if d.session().is_safe(&q) {
                break q;
            }
        };
        let syms = ifq_symbols(&q).unwrap();
        let plan = d.session().plan_safe(&q).unwrap();
        let g3 = G3::new(d.spec(), &run, &index);
        group.bench_function(BenchmarkId::new("BaselineG3", label), |b| {
            b.iter(|| std::hint::black_box(g3.all_pairs(&syms, &all, &all)))
        });
        group.bench_function(BenchmarkId::new("RPL_S1", label), |b| {
            b.iter(|| std::hint::black_box(all_pairs_nested(&plan, &run, &all, &all)))
        });
        group.bench_function(BenchmarkId::new("optRPL_S2", label), |b| {
            b.iter(|| std::hint::black_box(all_pairs_filtered(&plan, d.spec(), &run, &all, &all)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
