//! Pairs-vs-bits-vs-scc kernel micro-benchmarks: transitive closure
//! and composition across run sizes (the Criterion face of
//! `rpq_bench::kernelbench`; `repro -- relalg` records the same
//! workloads into `BENCH_relalg.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::kernelbench::{layered_relation, random_relation};
use rpq_relalg::{
    compose_pairs_bits, compose_pairs_kernel, transitive_closure_bits, transitive_closure_pairs,
    transitive_closure_scc,
};
use rpq_workloads::runs::deep_chain_relation;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("relalg_kernel");
    group.sample_size(10);
    for &n in &[128usize, 512, 2048] {
        let base = layered_relation(n, (n / 16).max(2), 2, 0xC105 + n as u64);
        group.bench_function(BenchmarkId::new("closure_pairs", n), |b| {
            b.iter(|| std::hint::black_box(transitive_closure_pairs(&base)))
        });
        group.bench_function(BenchmarkId::new("closure_bits", n), |b| {
            b.iter(|| std::hint::black_box(transitive_closure_bits(&base, n)))
        });
        group.bench_function(BenchmarkId::new("closure_scc", n), |b| {
            b.iter(|| std::hint::black_box(transitive_closure_scc(&base, n)))
        });

        let chain = deep_chain_relation(n, 0xDC + n as u64);
        group.bench_function(BenchmarkId::new("chain_closure_bits", n), |b| {
            b.iter(|| std::hint::black_box(transitive_closure_bits(&chain, n)))
        });
        group.bench_function(BenchmarkId::new("chain_closure_scc", n), |b| {
            b.iter(|| std::hint::black_box(transitive_closure_scc(&chain, n)))
        });

        let a = random_relation(n, 4 * n, 0xA11CE + n as u64);
        let bb = random_relation(n, 4 * n, 0xB0B + n as u64);
        group.bench_function(BenchmarkId::new("compose_pairs", n), |b| {
            b.iter(|| std::hint::black_box(compose_pairs_kernel(&a, &bb)))
        });
        group.bench_function(BenchmarkId::new("compose_bits", n), |b| {
            b.iter(|| std::hint::black_box(compose_pairs_bits(&a, &bb, n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
