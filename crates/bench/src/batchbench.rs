//! Batch-executor and run-store measurement: the source of
//! `BENCH_batch.json`.
//!
//! Two sweeps over one corpus of BioAID-like runs held in a
//! [`RunStore`]:
//!
//! * **threads** — `Session::evaluate_batch` wall-clock at 1/2/4/8
//!   worker threads, everything in-memory-warm so the sweep isolates
//!   the fan-out itself. Speedups are relative to the 1-thread leg.
//!   The committed baseline was recorded on however many CPUs the
//!   build container exposes (`available_parallelism` in the JSON);
//!   on a single-CPU host the sweep shows scheduling parity, not
//!   speedup — rerun `repro -- batch` on multicore hardware for the
//!   real curve.
//! * **cold vs warm store** — a cheap index-answered (single-symbol)
//!   batch evaluated (a) against a store with no persisted artifacts
//!   (every index derived from its run, then persisted) and (b)
//!   against a reopened store whose artifacts decode from disk. The
//!   cheap query keeps evaluation out of the wall-clock, so the gap
//!   isolates artifact acquisition — build-and-persist vs decode —
//!   and the reload/rebuild counters prove which path ran.

use crate::timing::{fmt_secs, Table};
use rpq_core::{BatchOptions, QueryRequest, Session, SessionStats, SubqueryPolicy};
use rpq_store::{RunStore, StoreStats};
use rpq_workloads::{bioaid_like, runs};
use std::path::PathBuf;
use std::sync::Arc;

/// One thread-sweep point.
#[derive(Debug, Clone)]
pub struct ThreadPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Batch wall-clock seconds.
    pub wall_secs: f64,
    /// Speedup relative to the 1-thread leg.
    pub speedup: f64,
}

/// One store leg (cold or warm).
#[derive(Debug, Clone)]
pub struct StoreLeg {
    /// `"cold"` or `"warm"`.
    pub leg: &'static str,
    /// Batch wall-clock seconds (4 threads).
    pub wall_secs: f64,
    /// Store counter movement during the leg.
    pub store: StoreStats,
    /// Session counter movement during the leg.
    pub session: SessionStats,
}

/// One plan-cache leg: preparing the standing queries with the store
/// attached as the session's persisted plan tier — compiling cold
/// (and persisting) vs reloading after a process restart.
#[derive(Debug, Clone)]
pub struct PlanLeg {
    /// `"cold"` or `"warm"`.
    pub leg: &'static str,
    /// Wall-clock seconds to prepare every standing query.
    pub prepare_secs: f64,
    /// Plans decoded warm from disk during the leg.
    pub plan_reloads: u64,
    /// Plans compiled cold (and persisted) during the leg.
    pub plan_rebuilds: u64,
}

/// The full measurement.
#[derive(Debug, Clone)]
pub struct BatchMeasurement {
    /// Corpus size (runs).
    pub n_runs: usize,
    /// Smallest target edge count in the corpus (sizes ramp ~1.5×).
    pub target_edges: usize,
    /// The relational query of the thread sweep (entry→exit).
    pub query: String,
    /// The cheap index-answered query of the cold/warm store legs.
    pub store_query: String,
    /// CPUs the host exposed while measuring.
    pub available_parallelism: usize,
    /// Thread sweep (in-memory warm).
    pub threads: Vec<ThreadPoint>,
    /// Cold leg: no persisted artifacts, everything re-derived.
    pub cold: StoreLeg,
    /// Warm leg: reopened store, artifacts decoded from disk.
    pub warm: StoreLeg,
    /// Standing queries of the plan-cache legs (safe, non-leaf — the
    /// persisted-plan-eligible shape).
    pub plan_queries: Vec<String>,
    /// Plan-cache cold leg: every plan compiled and persisted.
    pub plan_cold: PlanLeg,
    /// Plan-cache warm leg: every plan decoded from disk after a
    /// simulated restart.
    pub plan_warm: PlanLeg,
}

impl BatchMeasurement {
    /// Cold wall over warm wall — what a persisted store saves a
    /// restarted process.
    pub fn warm_speedup(&self) -> f64 {
        self.cold.wall_secs / self.warm.wall_secs.max(1e-12)
    }

    /// Cold compile wall over warm reload wall — what the persisted
    /// plan cache saves a restarted process's standing queries.
    pub fn plan_warm_speedup(&self) -> f64 {
        self.plan_cold.prepare_secs / self.plan_warm.prepare_secs.max(1e-12)
    }
}

/// A scratch store directory (wiped before use).
fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir()
        .join("rpq_bench_batch")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run the sweep. `full` widens the corpus; quick mode keeps CI fast.
pub fn measure(full: bool) -> BatchMeasurement {
    let (n_runs, target_edges) = if full { (16, 1500) } else { (8, 400) };
    let real = bioaid_like();
    let spec = Arc::new(real.spec.clone());

    // Thread sweep: an IFQ over the dataset's pool tags, planned
    // relationally so every run pays real index + closure work.
    // Cold/warm legs: the bare symbol — an index-answered composite
    // leaf whose evaluation is a lookup, leaving artifact acquisition
    // as the legs' dominant cost.
    let query_text = format!("_* {} _*", real.pool_tags[0]);
    let store_query_text = real.pool_tags[0].clone();
    let request = QueryRequest::entry_exit();

    let corpus = runs::corpus(&spec, n_runs, target_edges, 0xBA7C).expect("bioaid derives");

    // ---- store setup: ingest only, artifacts stay unmaterialized ----
    let dir = scratch_dir();
    let store = RunStore::create(&dir, Arc::clone(&spec)).expect("create scratch store");
    for run in &corpus {
        store.ingest(run).expect("ingest corpus run");
    }
    assert_eq!(store.len(), n_runs, "corpus must not self-deduplicate");
    // Reopen before the cold leg: the ingesting instance still holds
    // every run in its in-memory cache, which would hand the cold leg
    // a head start (no run decode) the warm leg doesn't get. Both
    // legs must model a freshly restarted process.
    drop(store);
    let store = RunStore::open(&dir).expect("reopen scratch store");

    // ---- cold leg: every artifact derived from its run -------------
    let cold = {
        let session = Session::new(store.spec_arc());
        let query = session
            .prepare_with(&store_query_text, SubqueryPolicy::AlwaysRelational)
            .expect("query compiles");
        let store_before = store.stats();
        let outcome = session.evaluate_batch(&query, &store, &request, &BatchOptions::threads(4));
        assert_eq!(outcome.n_err(), 0);
        StoreLeg {
            leg: "cold",
            wall_secs: outcome.wall_secs,
            store: store.stats().since(store_before),
            session: outcome.stats,
        }
    };
    drop(store);

    // ---- warm leg: reopen, artifacts decode from disk --------------
    let store = RunStore::open(&dir).expect("reopen scratch store");
    let warm = {
        let session = Session::new(store.spec_arc());
        let query = session
            .prepare_with(&store_query_text, SubqueryPolicy::AlwaysRelational)
            .expect("query compiles");
        let store_before = store.stats();
        let outcome = session.evaluate_batch(&query, &store, &request, &BatchOptions::threads(4));
        assert_eq!(outcome.n_err(), 0);
        StoreLeg {
            leg: "warm",
            wall_secs: outcome.wall_secs,
            store: store.stats().since(store_before),
            session: outcome.stats,
        }
    };

    // ---- thread sweep: in-memory warm, fresh session per point -----
    // The store instance keeps its in-memory run/artifact caches
    // across points, so every point measures pure evaluation fan-out.
    let mut points = Vec::new();
    let mut one_thread_secs = 0.0;
    for &threads in &[1usize, 2, 4, 8] {
        let session = Session::new(store.spec_arc());
        let query = session
            .prepare_with(&query_text, SubqueryPolicy::AlwaysRelational)
            .expect("query compiles");
        let outcome =
            session.evaluate_batch(&query, &store, &request, &BatchOptions::threads(threads));
        assert_eq!(outcome.n_err(), 0);
        if threads == 1 {
            one_thread_secs = outcome.wall_secs;
        }
        points.push(ThreadPoint {
            threads,
            wall_secs: outcome.wall_secs,
            speedup: one_thread_secs / outcome.wall_secs.max(1e-12),
        });
    }

    drop(store);

    // ---- plan-cache legs: compile cold, reload after a restart -----
    // Standing queries in the persisted-plan-eligible shape (safe,
    // non-leaf): an IFQ and a plus-closure per pool tag. The cold leg
    // compiles each through the full safety/port-graph pipeline and
    // persists it; the warm leg models the restarted process — a fresh
    // store instance and session whose prepares decode from disk.
    let plan_queries: Vec<String> = real
        .pool_tags
        .iter()
        .take(6)
        .flat_map(|t| [format!("_* {t} _*"), format!("{t}+")])
        .collect();
    let plan_leg = |leg: &'static str| -> PlanLeg {
        let store = Arc::new(RunStore::open(&dir).expect("reopen scratch store"));
        let session = Session::new(store.spec_arc())
            .with_plan_store(Arc::clone(&store) as Arc<dyn rpq_core::PlanStore>);
        let before = store.stats();
        let start = std::time::Instant::now();
        for q in &plan_queries {
            session.prepare(q).expect("standing query compiles");
        }
        let prepare_secs = start.elapsed().as_secs_f64();
        let delta = store.stats().since(before);
        PlanLeg {
            leg,
            prepare_secs,
            plan_reloads: delta.plan_reloads,
            plan_rebuilds: delta.plan_rebuilds,
        }
    };
    let plan_cold = plan_leg("cold");
    let plan_warm = plan_leg("warm");

    let _ = std::fs::remove_dir_all(&dir);
    BatchMeasurement {
        n_runs,
        target_edges,
        query: query_text,
        store_query: store_query_text,
        available_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        threads: points,
        cold,
        warm,
        plan_queries,
        plan_cold,
        plan_warm,
    }
}

/// Paper-style table of a measurement.
pub fn table(m: &BatchMeasurement) -> Table {
    let mut table = Table::new(
        &format!(
            "batch store: {} runs (≥{} edges), query {:?}, {} CPU(s)",
            m.n_runs, m.target_edges, m.query, m.available_parallelism
        ),
        &["leg", "wall", "speedup", "reloads", "rebuilds"],
    );
    for p in &m.threads {
        table.row(vec![
            format!("{} thread(s)", p.threads),
            fmt_secs(p.wall_secs),
            format!("{:.2}x", p.speedup),
            "-".to_owned(),
            "-".to_owned(),
        ]);
    }
    for leg in [&m.cold, &m.warm] {
        table.row(vec![
            format!("store {}", leg.leg),
            fmt_secs(leg.wall_secs),
            if leg.leg == "warm" {
                format!(
                    "{:.2}x vs cold",
                    m.cold.wall_secs / leg.wall_secs.max(1e-12)
                )
            } else {
                "1.00x".to_owned()
            },
            format!("{}+{}", leg.store.tag_reloads, leg.store.csr_reloads),
            format!("{}+{}", leg.store.tag_rebuilds, leg.store.csr_rebuilds),
        ]);
    }
    for leg in [&m.plan_cold, &m.plan_warm] {
        table.row(vec![
            format!("plans {} ({} queries)", leg.leg, m.plan_queries.len()),
            fmt_secs(leg.prepare_secs),
            if leg.leg == "warm" {
                format!("{:.2}x vs cold", m.plan_warm_speedup())
            } else {
                "1.00x".to_owned()
            },
            format!("{}", leg.plan_reloads),
            format!("{}", leg.plan_rebuilds),
        ]);
    }
    table
}

fn leg_json(leg: &StoreLeg) -> String {
    format!(
        "{{\"leg\": \"{}\", \"wall_secs\": {:.9}, \
         \"tag_reloads\": {}, \"csr_reloads\": {}, \
         \"tag_rebuilds\": {}, \"csr_rebuilds\": {}, \
         \"session_index_hits\": {}, \"session_csr_hits\": {}}}",
        leg.leg,
        leg.wall_secs,
        leg.store.tag_reloads,
        leg.store.csr_reloads,
        leg.store.tag_rebuilds,
        leg.store.csr_rebuilds,
        leg.session.index_hits,
        leg.session.csr_hits,
    )
}

/// The JSON baseline record (`BENCH_batch.json`).
pub fn to_json(m: &BatchMeasurement) -> String {
    let mut out = String::from("{\n  \"bench\": \"batch_store\",\n");
    out.push_str(&format!(
        "  \"dataset\": \"bioaid\",\n  \"n_runs\": {},\n  \"target_edges\": {},\n  \
         \"query\": \"{}\",\n  \"store_query\": \"{}\",\n  \
         \"available_parallelism\": {},\n",
        m.n_runs, m.target_edges, m.query, m.store_query, m.available_parallelism
    ));
    out.push_str(
        "  \"note\": \"thread-sweep speedups are bounded by available_parallelism; \
         on a 1-CPU host expect parity, and rerun `repro -- batch` on multicore \
         hardware for the scaling curve\",\n",
    );
    out.push_str("  \"threads\": [\n");
    for (i, p) in m.threads.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"wall_secs\": {:.9}, \"speedup\": {:.3}}}{}\n",
            p.threads,
            p.wall_secs,
            p.speedup,
            if i + 1 < m.threads.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"cold\": {},\n", leg_json(&m.cold)));
    out.push_str(&format!("  \"warm\": {},\n", leg_json(&m.warm)));
    out.push_str(&format!(
        "  \"warm_speedup_vs_cold\": {:.3},\n",
        m.warm_speedup()
    ));
    out.push_str(&format!("  \"plan_queries\": {},\n", m.plan_queries.len()));
    for leg in [&m.plan_cold, &m.plan_warm] {
        out.push_str(&format!(
            "  \"plan_{}\": {{\"prepare_secs\": {:.9}, \"plan_reloads\": {}, \
             \"plan_rebuilds\": {}}},\n",
            leg.leg, leg.prepare_secs, leg.plan_reloads, leg.plan_rebuilds
        ));
    }
    out.push_str(&format!(
        "  \"plan_warm_speedup_vs_cold\": {:.3}\n}}\n",
        m.plan_warm_speedup()
    ));
    out
}

/// Write the sweep to `path` and return the rendered table.
pub fn run_and_record(full: bool, path: &str) -> std::io::Result<Table> {
    let m = measure(full);
    std::fs::write(path, to_json(&m))?;
    Ok(table(&m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_measurement_proves_cold_and_warm_paths() {
        let m = measure(false);
        assert_eq!(m.threads.len(), 4);
        assert!(m.threads.iter().all(|p| p.wall_secs > 0.0));
        // Cold leg: everything rebuilt, nothing reloaded.
        assert_eq!(m.cold.store.tag_rebuilds as usize, m.n_runs);
        assert_eq!(m.cold.store.csr_rebuilds as usize, m.n_runs);
        assert_eq!(m.cold.store.tag_reloads, 0);
        // Warm leg: everything reloaded, nothing rebuilt.
        assert_eq!(m.warm.store.tag_reloads as usize, m.n_runs);
        assert_eq!(m.warm.store.csr_reloads as usize, m.n_runs);
        assert_eq!(m.warm.store.tag_rebuilds + m.warm.store.csr_rebuilds, 0);
        // The seeded session never built an index itself in either
        // leg, and the warm one consumed seeded artifacts — the tag
        // index under the materialized strategy, the CSR arena under
        // the lazy product search (forced-strategy CI legs included).
        assert_eq!(m.cold.session.index_misses, 0);
        assert_eq!(m.warm.session.index_misses, 0);
        assert!(m.warm.session.index_hits + m.warm.session.csr_hits > 0);

        // Plan-cache legs: every standing query compiles exactly once
        // (cold) and every restart prepare decodes from disk (warm).
        let n_queries = m.plan_queries.len() as u64;
        assert!(n_queries >= 8, "need a k>=4-query standing set");
        assert_eq!(m.plan_cold.plan_rebuilds, n_queries);
        assert_eq!(m.plan_cold.plan_reloads, 0);
        assert_eq!(m.plan_warm.plan_reloads, n_queries);
        assert_eq!(
            m.plan_warm.plan_rebuilds, 0,
            "warm restart must not recompile"
        );

        let json = to_json(&m);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"warm_speedup_vs_cold\""));
        assert!(json.contains("\"plan_warm_speedup_vs_cold\""));
        assert!(table(&m).render().contains("store warm"));
        assert!(table(&m).render().contains("plans warm"));
    }
}
