//! Live-ingestion measurement: the source of `BENCH_ingest.json`.
//!
//! Two sections, both asking the same question — what does delta
//! maintenance buy over rebuilding from scratch on every append?
//!
//! * **store appends** — a streamed BioAID-like run replayed through
//!   [`OpenRun::append_events`](rpq_store::OpenRun::append_events)
//!   twice: once with the churn threshold effectively disabled (every
//!   batch takes the incremental path) and once with it at zero (every
//!   batch forces the full-rebuild fallback). Same base, same batches,
//!   same persisted artifacts at the end — the wall-clock gap is the
//!   maintenance strategy, nothing else. Reported as append throughput
//!   and per-append latency.
//! * **closure deltas** — the kernel underneath: a finished wildcard
//!   closure extended by [`BitRelation::extend_closure`] versus a full
//!   `transitive_closure` refixpoint of the grown graph, per append,
//!   over the three shapes the kernel bench established (deep chains —
//!   maximal round counts, layered DAGs — dense closures, cyclic
//!   cores — condensation territory).

use crate::kernelbench::layered_relation;
use crate::timing::{fmt_secs, Table};
use rpq_labeling::Run;
use rpq_relalg::{BitRelation, NodePairSet};
use rpq_store::RunStore;
use rpq_workloads::runs::{cyclic_core_relation, deep_chain_relation, event_stream};
use rpq_workloads::{bioaid_like, runs};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// One store-append leg (delta maintenance or forced rebuilds).
#[derive(Debug, Clone)]
pub struct AppendLeg {
    /// `"delta"` or `"rebuild"`.
    pub leg: &'static str,
    /// Wall-clock seconds across all appends.
    pub total_secs: f64,
    /// Mean seconds per append.
    pub mean_secs: f64,
    /// Worst single append.
    pub max_secs: f64,
    /// Appended edges per second of wall-clock.
    pub edges_per_sec: f64,
    /// Appends that took the full-rebuild fallback.
    pub rebuilds: u64,
}

/// One closure-delta point: a shape at one size.
#[derive(Debug, Clone)]
pub struct ClosurePoint {
    /// `"deep_chain"`, `"layered"` or `"cyclic_core"`.
    pub shape: &'static str,
    /// Universe size.
    pub n_nodes: usize,
    /// Edges in the base graph (closure pre-fixpointed).
    pub base_edges: usize,
    /// Edges arriving across the appends.
    pub delta_edges: usize,
    /// Number of appends the delta edges are split into.
    pub n_batches: usize,
    /// Mean seconds per append, incremental `extend_closure` path.
    pub delta_mean_secs: f64,
    /// Mean seconds per append, full `transitive_closure` refixpoint.
    pub full_mean_secs: f64,
}

impl ClosurePoint {
    /// Full-refixpoint latency over delta latency.
    pub fn speedup(&self) -> f64 {
        self.full_mean_secs / self.delta_mean_secs.max(1e-12)
    }
}

/// The full measurement.
#[derive(Debug, Clone)]
pub struct IngestMeasurement {
    /// Base-run edges before streaming starts.
    pub base_edges: usize,
    /// Total edges across the appended batches.
    pub appended_edges: usize,
    /// Appends per leg.
    pub n_batches: usize,
    /// Incremental-maintenance leg.
    pub delta: AppendLeg,
    /// Rebuild-per-append leg.
    pub rebuild: AppendLeg,
    /// Closure-kernel points, one per workload shape.
    pub closure: Vec<ClosurePoint>,
}

impl IngestMeasurement {
    /// Rebuild per-append latency over delta per-append latency — the
    /// headline number.
    pub fn append_speedup(&self) -> f64 {
        self.rebuild.mean_secs / self.delta.mean_secs.max(1e-12)
    }
}

/// A scratch store directory (wiped before use).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("rpq_bench_ingest")
        .join(format!("{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Replay `batches` onto a fresh store holding `base`, measuring every
/// append. `churn_percent` selects the maintenance strategy: huge
/// (never rebuild) for the delta leg, zero (always rebuild) for the
/// rebuild leg.
fn measure_append_leg(
    leg: &'static str,
    spec: &Arc<rpq_grammar::Specification>,
    base: &Run,
    batches: &[rpq_labeling::EventBatch],
    churn_percent: u32,
) -> AppendLeg {
    let dir = scratch_dir(leg);
    let store = Arc::new(RunStore::create(&dir, Arc::clone(spec)).expect("create scratch store"));
    let id = store.ingest(base).expect("ingest base").id;
    let open = store.open_run(id).expect("open run");
    open.set_churn_percent(churn_percent);

    let mut total = 0.0f64;
    let mut worst = 0.0f64;
    let mut edges = 0usize;
    for batch in batches {
        let start = Instant::now();
        let receipt = open.append_events(batch).expect("append");
        let t = start.elapsed().as_secs_f64();
        total += t;
        worst = worst.max(t);
        edges += receipt.new_edges;
    }
    let rebuilds = store.stats().append_rebuilds;
    drop(open);
    let _ = std::fs::remove_dir_all(&dir);
    AppendLeg {
        leg,
        total_secs: total,
        mean_secs: total / batches.len().max(1) as f64,
        max_secs: worst,
        edges_per_sec: edges as f64 / total.max(1e-12),
        rebuilds,
    }
}

/// Split a relation into a base prefix plus `n_batches` deltas and
/// measure closure maintenance both ways on every append.
fn measure_closure_point(
    shape: &'static str,
    pairs: NodePairSet,
    n_nodes: usize,
    n_batches: usize,
) -> ClosurePoint {
    let all: Vec<_> = pairs.iter().collect();
    // The last ~10% of edges arrive as appends.
    let cut = all.len() - (all.len() / 10).max(n_batches);
    let (base_pairs, rest) = all.split_at(cut);
    let base_set: NodePairSet = base_pairs.iter().copied().collect();
    let per_batch = rest.len().div_ceil(n_batches);

    // Incremental path: one pre-fixpointed closure, extended per batch
    // (the grown base relation is part of the maintained state, so its
    // update is inside the timed region — exactly what the store pays).
    let mut base_rel = BitRelation::from_pairs(&base_set, n_nodes);
    let mut closure = base_rel.transitive_closure();
    let mut grown = base_set.clone();
    let mut delta_total = 0.0f64;
    for chunk in rest.chunks(per_batch) {
        let delta: NodePairSet = chunk.iter().copied().collect();
        let start = Instant::now();
        grown = grown.iter().chain(delta.iter()).collect();
        base_rel = BitRelation::from_pairs(&grown, n_nodes);
        closure = closure.extend_closure(&base_rel, &delta);
        delta_total += start.elapsed().as_secs_f64();
    }

    // Full path: refixpoint the grown graph from scratch per batch.
    let mut grown_full = base_set.clone();
    let mut full_total = 0.0f64;
    let mut full_closure = BitRelation::new(n_nodes);
    for chunk in rest.chunks(per_batch) {
        let delta: NodePairSet = chunk.iter().copied().collect();
        let start = Instant::now();
        grown_full = grown_full.iter().chain(delta.iter()).collect();
        full_closure = BitRelation::from_pairs(&grown_full, n_nodes).transitive_closure();
        full_total += start.elapsed().as_secs_f64();
    }
    assert_eq!(
        closure, full_closure,
        "{shape}: incremental and full closures diverged"
    );

    let n_appends = rest.chunks(per_batch).count();
    ClosurePoint {
        shape,
        n_nodes,
        base_edges: base_pairs.len(),
        delta_edges: rest.len(),
        n_batches: n_appends,
        delta_mean_secs: delta_total / n_appends.max(1) as f64,
        full_mean_secs: full_total / n_appends.max(1) as f64,
    }
}

/// Run the measurement. `full` widens run and graph sizes; quick mode
/// keeps CI fast.
pub fn measure(full: bool) -> IngestMeasurement {
    let (target_edges, n_batches, n_nodes) = if full {
        (1500, 16, 1500)
    } else {
        (400, 8, 300)
    };
    let real = bioaid_like();
    let spec = Arc::new(real.spec.clone());
    let run = runs::simulate(&spec, target_edges, 0x1A57).expect("bioaid derives");
    let (base, batches) = event_stream(&run, n_batches).expect("streamable");

    // Disabled threshold (delta can never exceed existing × 10000%) vs
    // zero tolerance (any non-empty delta rebuilds).
    let delta = measure_append_leg("delta", &spec, &base, &batches, 10_000);
    let rebuild = measure_append_leg("rebuild", &spec, &base, &batches, 0);

    let closure = vec![
        measure_closure_point(
            "deep_chain",
            deep_chain_relation(n_nodes, 0xC4A1),
            n_nodes,
            n_batches,
        ),
        measure_closure_point(
            "layered",
            layered_relation(n_nodes, n_nodes / 16, 2, 0xC4A2),
            n_nodes,
            n_batches,
        ),
        measure_closure_point(
            "cyclic_core",
            cyclic_core_relation(n_nodes, n_nodes / 8, 0xC4A3),
            n_nodes,
            n_batches,
        ),
    ];

    IngestMeasurement {
        base_edges: base.n_edges(),
        appended_edges: batches.iter().map(|b| b.edges.len()).sum(),
        n_batches: batches.len(),
        delta,
        rebuild,
        closure,
    }
}

/// Paper-style table of a measurement.
pub fn table(m: &IngestMeasurement) -> Table {
    let mut table = Table::new(
        &format!(
            "live ingest: bioaid, {} base + {} appended edge(s) over {} batch(es)",
            m.base_edges, m.appended_edges, m.n_batches
        ),
        &[
            "leg",
            "per-append",
            "worst",
            "edges/s",
            "rebuilds",
            "speedup",
        ],
    );
    for leg in [&m.delta, &m.rebuild] {
        table.row(vec![
            format!("store {}", leg.leg),
            fmt_secs(leg.mean_secs),
            fmt_secs(leg.max_secs),
            format!("{:.0}", leg.edges_per_sec),
            leg.rebuilds.to_string(),
            if leg.leg == "delta" {
                format!("{:.2}x vs rebuild", m.append_speedup())
            } else {
                "1.00x".to_owned()
            },
        ]);
    }
    for p in &m.closure {
        table.row(vec![
            format!("closure {}", p.shape),
            fmt_secs(p.delta_mean_secs),
            fmt_secs(p.full_mean_secs),
            "-".to_owned(),
            "-".to_owned(),
            format!("{:.2}x vs full", p.speedup()),
        ]);
    }
    table
}

fn leg_json(leg: &AppendLeg) -> String {
    format!(
        "{{\"leg\": \"{}\", \"total_secs\": {:.9}, \"mean_secs\": {:.9}, \
         \"max_secs\": {:.9}, \"edges_per_sec\": {:.1}, \"rebuilds\": {}}}",
        leg.leg, leg.total_secs, leg.mean_secs, leg.max_secs, leg.edges_per_sec, leg.rebuilds,
    )
}

/// The JSON baseline record (`BENCH_ingest.json`).
pub fn to_json(m: &IngestMeasurement) -> String {
    let mut out = String::from("{\n  \"bench\": \"live_ingest\",\n");
    out.push_str(&format!(
        "  \"dataset\": \"bioaid\",\n  \"base_edges\": {},\n  \"appended_edges\": {},\n  \
         \"n_batches\": {},\n",
        m.base_edges, m.appended_edges, m.n_batches
    ));
    out.push_str(
        "  \"note\": \"same base and batches in both legs; the gap is incremental \
         maintenance vs a full artifact rebuild on every append\",\n",
    );
    out.push_str(&format!("  \"delta\": {},\n", leg_json(&m.delta)));
    out.push_str(&format!("  \"rebuild\": {},\n", leg_json(&m.rebuild)));
    out.push_str(&format!(
        "  \"append_speedup_delta_vs_rebuild\": {:.3},\n",
        m.append_speedup()
    ));
    out.push_str("  \"closure\": [\n");
    for (i, p) in m.closure.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shape\": \"{}\", \"n_nodes\": {}, \"base_edges\": {}, \
             \"delta_edges\": {}, \"n_batches\": {}, \"delta_mean_secs\": {:.9}, \
             \"full_mean_secs\": {:.9}, \"speedup\": {:.3}}}{}\n",
            p.shape,
            p.n_nodes,
            p.base_edges,
            p.delta_edges,
            p.n_batches,
            p.delta_mean_secs,
            p.full_mean_secs,
            p.speedup(),
            if i + 1 < m.closure.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the measurement to `path` and return the rendered table.
pub fn run_and_record(full: bool, path: &str) -> std::io::Result<Table> {
    let m = measure(full);
    std::fs::write(path, to_json(&m))?;
    Ok(table(&m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_measurement_proves_both_maintenance_paths() {
        let m = measure(false);
        // The strategy knob did its job: the rebuild leg rebuilt on
        // every append, the delta leg never fell back.
        assert_eq!(m.rebuild.rebuilds as usize, m.n_batches);
        assert_eq!(m.delta.rebuilds, 0);
        assert!(m.delta.total_secs > 0.0 && m.rebuild.total_secs > 0.0);
        assert_eq!(m.closure.len(), 3);
        for p in &m.closure {
            assert!(p.delta_mean_secs > 0.0 && p.full_mean_secs > 0.0);
            assert!(p.n_batches > 0 && p.delta_edges > 0);
        }
        let json = to_json(&m);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"append_speedup_delta_vs_rebuild\""));
        assert!(table(&m).render().contains("store delta"));
    }
}
