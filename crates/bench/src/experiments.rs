//! One experiment per figure of the paper's Section V.
//!
//! Every function takes a [`Scale`] so the same code serves the full
//! paper-scale sweep (`repro` binary) and quick smoke/criterion runs.
//! Returned [`Table`]s print paper-style rows; EXPERIMENTS.md records
//! the paper-vs-measured comparison.

use crate::datasets::Dataset;
use crate::timing::{fmt_secs, time_avg_secs, time_stats_secs, Table};
use rpq_automata::{compile_minimal_dfa, Regex};
use rpq_baselines::{ifq_symbols, G1, G2, G3};
use rpq_core::{all_pairs_filtered, all_pairs_nested, plan_query};
use rpq_labeling::NodeId;
use rpq_workloads::{runs, synthetic, QueryGen, SynthParams};

/// Sweep scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale parameters (minutes of wall time).
    Full,
    /// Reduced parameters for smoke tests and Criterion.
    Quick,
}

impl Scale {
    fn reps(self) -> usize {
        match self {
            Scale::Full => 5, // the paper averages 5 runs per setting
            Scale::Quick => 2,
        }
    }
}

/// Pick `n` IFQs over the dataset's safe pool with the requested `k`.
fn safe_pool_ifqs(d: &Dataset, k: usize, n: usize, seed: u64) -> Vec<Regex> {
    let mut qg = QueryGen::new(d.spec(), seed);
    (0..n).map(|_| qg.ifq_over(&d.real.pool_tags, k)).collect()
}

// ---------------------------------------------------------------------
// Fig. 13a — safety-check overhead vs grammar size.
// ---------------------------------------------------------------------

/// Average/worst planning overhead of 20 IFQs (k = 3) over synthetic
/// grammars of increasing size (10 grammars per size bucket).
pub fn fig13a(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig 13a: time overhead vs grammar size (IFQ k=3)",
        &["grammar size", "avg", "worst"],
    );
    let (buckets, per_bucket, n_queries): (Vec<usize>, usize, usize) = match scale {
        Scale::Full => (vec![400, 600, 800, 1000, 1200], 10, 20),
        Scale::Quick => (vec![400, 800], 2, 5),
    };
    for target_size in buckets {
        // Scale composite/atomic counts to hit the size bucket; bodies
        // average ~6.5 nodes → size ≈ 7.5 · productions.
        let n_composite = (target_size / 10).max(4);
        let n_self = (n_composite / 4).max(1);
        let mut avg_total = 0.0;
        let mut worst: f64 = 0.0;
        let mut n_measured = 0;
        let mut actual_size = 0usize;
        for g in 0..per_bucket {
            let s = synthetic::generate(&SynthParams {
                n_atomic: n_composite * 2,
                n_composite,
                n_self_cycles: n_self,
                n_two_cycles: 0,
                body_nodes: (4, 8),
                extra_edge_prob: 0.2,
                composite_ref_prob: 0.0,
                n_tags: 20,
                alt_production_per_mille: 0,
                seed: 0xF13A + g as u64,
            });
            actual_size += s.spec.size();
            let mut qg = QueryGen::new(&s.spec, g as u64);
            for _ in 0..n_queries {
                let q = qg.ifq_over(&s.pool_tags, 3);
                // Time the raw planner: a session's plan cache would
                // turn every repetition after the first into a hit.
                let t = time_avg_secs(
                    || {
                        std::hint::black_box(plan_query(&s.spec, &q).unwrap());
                    },
                    scale.reps(),
                );
                avg_total += t;
                worst = worst.max(t);
                n_measured += 1;
            }
        }
        table.row(vec![
            format!("{}", actual_size / per_bucket),
            fmt_secs(avg_total / n_measured as f64),
            fmt_secs(worst),
        ]);
    }
    table
}

// ---------------------------------------------------------------------
// Fig. 13b — overhead vs query size on BioAID / QBLast.
// ---------------------------------------------------------------------

/// Planning overhead of IFQs with k = 0..10 on both datasets.
pub fn fig13b(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig 13b: time overhead vs query size k",
        &[
            "k",
            "BioAID avg",
            "BioAID worst",
            "QBLast avg",
            "QBLast worst",
        ],
    );
    let ks: Vec<usize> = match scale {
        Scale::Full => (0..=10).collect(),
        Scale::Quick => vec![0, 4, 10],
    };
    let datasets = [Dataset::bioaid(), Dataset::qblast()];
    for k in ks {
        let mut cells = vec![format!("{k}")];
        for d in &datasets {
            let queries = safe_pool_ifqs(d, k, if scale == Scale::Full { 20 } else { 4 }, k as u64);
            let mut avg = 0.0;
            let mut worst: f64 = 0.0;
            for q in &queries {
                let t = time_avg_secs(
                    || {
                        std::hint::black_box(plan_query(d.spec(), q).unwrap());
                    },
                    scale.reps(),
                );
                avg += t;
                worst = worst.max(t);
            }
            cells.push(fmt_secs(avg / queries.len() as f64));
            cells.push(fmt_secs(worst));
        }
        table.row(cells);
    }
    table
}

// ---------------------------------------------------------------------
// Fig. 13c — pairwise query time vs run size (RPL vs G3 vs G2).
// ---------------------------------------------------------------------

/// Per-pair query time of a safe IFQ (k = 3) on BioAID runs of growing
/// size, over `n_pairs` random node pairs. RPL's time includes the plan
/// overhead amortized over the pairs, as in the paper.
pub fn fig13c(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig 13c: pairwise query time vs run size (BioAID, IFQ k=3, per pair)",
        &["run edges", "RPL", "G3", "G2"],
    );
    let d = Dataset::bioaid();
    let (sizes, n_pairs): (Vec<usize>, usize) = match scale {
        Scale::Full => (vec![1000, 2000, 4000, 8000], 10_000),
        Scale::Quick => (vec![500, 1000], 500),
    };
    let q = safe_pool_ifqs(&d, 3, 1, 99).pop().expect("one query");
    let syms = ifq_symbols(&q).expect("IFQ shape");
    for edges in sizes {
        let run = d.run(edges, 42);
        let index = d.index(&run);
        let session = d.session();
        let pairs: Vec<(NodeId, NodeId)> = {
            let l1 = runs::sample_nodes(&run, n_pairs, 1);
            let l2 = runs::sample_nodes(&run, n_pairs, 2);
            l1.into_iter()
                .cycle()
                .zip(l2.into_iter().cycle().skip(3))
                .take(n_pairs)
                .collect()
        };

        // RPL: plan once + decode per pair.
        let rpl = {
            let start = std::time::Instant::now();
            let plan = session.plan_safe(&q).expect("pool IFQs are safe");
            let mut hits = 0usize;
            for &(u, v) in &pairs {
                hits += usize::from(plan.pairwise(&run, u, v));
            }
            std::hint::black_box(hits);
            start.elapsed().as_secs_f64() / pairs.len() as f64
        };

        // G3: index + reachability labels.
        let g3 = {
            let g3 = G3::new(d.spec(), &run, &index);
            let start = std::time::Instant::now();
            let mut hits = 0usize;
            for &(u, v) in &pairs {
                hits += usize::from(g3.pairwise(&syms, u, v));
            }
            std::hint::black_box(hits);
            start.elapsed().as_secs_f64() / pairs.len() as f64
        };

        // G2: product BFS per pair (cap pair count — it is linear in run
        // size per pair and dominates wall time).
        let g2 = {
            let g2 = G2::new(&run, &index);
            let dfa = compile_minimal_dfa(&q, d.spec().n_tags());
            let capped = &pairs[..pairs
                .len()
                .min(if scale == Scale::Full { 500 } else { 100 })];
            let start = std::time::Instant::now();
            let mut hits = 0usize;
            for &(u, v) in capped {
                hits += usize::from(g2.pairwise(&dfa, u, v));
            }
            std::hint::black_box(hits);
            start.elapsed().as_secs_f64() / capped.len() as f64
        };

        table.row(vec![
            format!("{}", run.n_edges()),
            fmt_secs(rpl),
            fmt_secs(g3),
            fmt_secs(g2),
        ]);
    }
    table
}

// ---------------------------------------------------------------------
// Fig. 13d — pairwise query time vs query size.
// ---------------------------------------------------------------------

/// Per-pair query time vs IFQ size k on a 2K-edge BioAID run.
pub fn fig13d(scale: Scale) -> Table {
    let mut table = Table::new(
        "Fig 13d: pairwise query time vs query size (BioAID, run 2K, per pair)",
        &["k", "RPL", "G3", "G2"],
    );
    let d = Dataset::bioaid();
    let (ks, n_pairs): (Vec<usize>, usize) = match scale {
        Scale::Full => ((0..=10).collect(), 10_000),
        Scale::Quick => (vec![0, 3, 8], 300),
    };
    let edges = if scale == Scale::Full { 2000 } else { 800 };
    let run = d.run(edges, 42);
    let index = d.index(&run);
    let session = d.session();
    let pairs: Vec<(NodeId, NodeId)> = {
        let l1 = runs::sample_nodes(&run, n_pairs, 1);
        let l2 = runs::sample_nodes(&run, n_pairs, 2);
        l1.into_iter()
            .cycle()
            .zip(l2.into_iter().cycle().skip(3))
            .take(n_pairs)
            .collect()
    };
    for k in ks {
        let q = safe_pool_ifqs(&d, k, 1, 7 + k as u64).pop().expect("query");
        let syms = ifq_symbols(&q).expect("IFQ shape");

        let rpl = {
            let start = std::time::Instant::now();
            let plan = session.plan_safe(&q).expect("pool IFQs are safe");
            let mut hits = 0;
            for &(u, v) in &pairs {
                hits += usize::from(plan.pairwise(&run, u, v));
            }
            std::hint::black_box(hits);
            start.elapsed().as_secs_f64() / pairs.len() as f64
        };
        let g3 = {
            let g3 = G3::new(d.spec(), &run, &index);
            let start = std::time::Instant::now();
            let mut hits = 0;
            for &(u, v) in &pairs {
                hits += usize::from(g3.pairwise(&syms, u, v));
            }
            std::hint::black_box(hits);
            start.elapsed().as_secs_f64() / pairs.len() as f64
        };
        let g2 = {
            let g2 = G2::new(&run, &index);
            let dfa = compile_minimal_dfa(&q, d.spec().n_tags());
            let capped = &pairs[..pairs
                .len()
                .min(if scale == Scale::Full { 500 } else { 100 })];
            let start = std::time::Instant::now();
            let mut hits = 0;
            for &(u, v) in capped {
                hits += usize::from(g2.pairwise(&dfa, u, v));
            }
            std::hint::black_box(hits);
            start.elapsed().as_secs_f64() / capped.len() as f64
        };
        table.row(vec![
            format!("{k}"),
            fmt_secs(rpl),
            fmt_secs(g3),
            fmt_secs(g2),
        ]);
    }
    table
}

// ---------------------------------------------------------------------
// Fig. 13e/13f — all-pairs IFQs by selectivity.
// ---------------------------------------------------------------------

/// All-pairs time of 8 IFQs (k = 3): 4 highly selective + 4 lowly
/// selective, comparing Baseline (G3), RPL (S1) and optRPL (S2).
pub fn fig13ef(d: &Dataset, scale: Scale) -> Table {
    let mut table = Table::new(
        &format!(
            "Fig 13e/f: all-pairs IFQ k=3 by selectivity ({}, run 2K)",
            d.name()
        ),
        &[
            "query",
            "selectivity",
            "matches",
            "Baseline(G3)",
            "RPL(S1)",
            "optRPL(S2)",
        ],
    );
    let edges = if scale == Scale::Full { 2000 } else { 600 };
    let run = d.run(edges, 42);
    let index = d.index(&run);
    let session = d.session();
    let all: Vec<NodeId> = match scale {
        Scale::Full => run.node_ids().collect(),
        Scale::Quick => runs::sample_nodes(&run, 250, 5),
    };
    let per_class = if scale == Scale::Full { 4 } else { 2 };

    let mut qg = QueryGen::new(d.spec(), 31);
    let mut queries: Vec<(Regex, &str)> = Vec::new();
    let mut tries = 0;
    while queries.iter().filter(|(_, s)| *s == "high").count() < per_class && tries < 200 {
        let q = qg.ifq_by_selectivity(3, &index, true);
        if session.is_safe(&q) {
            queries.push((q, "high"));
        }
        tries += 1;
    }
    tries = 0;
    while queries.iter().filter(|(_, s)| *s == "low").count() < per_class && tries < 200 {
        let q = qg.ifq_by_selectivity(3, &index, false);
        if session.is_safe(&q) {
            queries.push((q, "low"));
        }
        tries += 1;
    }

    for (i, (q, sel)) in queries.iter().enumerate() {
        let syms = ifq_symbols(q).expect("IFQ shape");
        let g3 = G3::new(d.spec(), &run, &index);
        let plan = session.plan_safe(q).expect("selected safe queries");
        let matches = g3.all_pairs(&syms, &all, &all).len();

        let t_g3 = time_avg_secs(
            || {
                std::hint::black_box(g3.all_pairs(&syms, &all, &all));
            },
            scale.reps(),
        );
        let t_s1 = time_avg_secs(
            || {
                std::hint::black_box(all_pairs_nested(&plan, &run, &all, &all));
            },
            scale.reps(),
        );
        let t_s2 = time_avg_secs(
            || {
                std::hint::black_box(all_pairs_filtered(&plan, d.spec(), &run, &all, &all));
            },
            scale.reps(),
        );
        table.row(vec![
            format!("Q{}", i + 1),
            (*sel).to_owned(),
            format!("{matches}"),
            fmt_secs(t_g3),
            fmt_secs(t_s1),
            fmt_secs(t_s2),
        ]);
    }
    table
}

// ---------------------------------------------------------------------
// Fig. 13g/13h — Kleene star over fork recursion.
// ---------------------------------------------------------------------

/// All-pairs `a*` (a = the first cycle's chain tag) on fork-heavy runs
/// of growing size: Baseline (G1 fixpoint) vs RPL vs optRPL.
pub fn fig13gh(d: &Dataset, scale: Scale) -> Table {
    let mut table = Table::new(
        &format!("Fig 13g/h: all-pairs a* vs run size ({})", d.name()),
        &[
            "run edges",
            "matches",
            "Baseline(G1)",
            "RPL(S1)",
            "optRPL(S2)",
        ],
    );
    let sizes: Vec<usize> = match scale {
        Scale::Full => vec![1000, 2000, 4000, 8000, 16_000],
        Scale::Quick => vec![500, 1000],
    };
    let session = d.session();
    let qg = QueryGen::new(d.spec(), 0);
    let q = qg.kleene_star(d.star_tag()).expect("cycle tag exists");
    for edges in sizes {
        let run = d.fork_run(edges, 42);
        let index = d.index(&run);
        // Lists capped at 2500 sampled nodes: the S1 nested loop is
        // Θ(|l1|·|l2|) by design, and uncapped 16K-node lists would take
        // ~10 minutes per repetition without changing the shape.
        let all: Vec<NodeId> = match scale {
            Scale::Full => runs::sample_nodes(&run, 2500, 5),
            Scale::Quick => runs::sample_nodes(&run, 300, 5),
        };

        let g1 = G1::new(&index);
        let matches = g1.all_pairs(&q, &all, &all).len();
        let t_g1 = time_avg_secs(
            || {
                std::hint::black_box(g1.all_pairs(&q, &all, &all));
            },
            scale.reps(),
        );
        let plan = session.plan_safe(&q).expect("chain-tag star is safe");
        let t_s1 = time_avg_secs(
            || {
                std::hint::black_box(all_pairs_nested(&plan, &run, &all, &all));
            },
            scale.reps(),
        );
        let t_s2 = time_avg_secs(
            || {
                std::hint::black_box(all_pairs_filtered(&plan, d.spec(), &run, &all, &all));
            },
            scale.reps(),
        );
        table.row(vec![
            format!("{}", run.n_edges()),
            format!("{matches}"),
            fmt_secs(t_g1),
            fmt_secs(t_s1),
            fmt_secs(t_s2),
        ]);
    }
    table
}

// ---------------------------------------------------------------------
// Fig. 15a/15b — improvement of optRPL on unsafe general queries.
// ---------------------------------------------------------------------

/// Generate random queries, keep the unsafe ones, and report the
/// improvement of the decomposing planner (optRPL) over baseline G1,
/// sorted descending as in the paper's bar charts.
pub fn fig15(d: &Dataset, scale: Scale) -> Table {
    let mut table = Table::new(
        &format!(
            "Fig 15: improvement over G1 on unsafe queries ({}) — optRPL = always-labels (the paper), costRPL = cost-based (our extension)",
            d.name()
        ),
        &["query", "safe parts", "matches", "G1", "optRPL", "impr", "costRPL", "impr"],
    );
    let edges = if scale == Scale::Full { 2000 } else { 600 };
    let n_queries = if scale == Scale::Full { 40 } else { 10 };
    let run = d.run(edges, 42);
    let session = d.session();
    // One index for this run: G1 borrows the session's cached copy, so
    // `Session::all_pairs` below does not build a second one.
    let (index, _) = session.index_for(&run);
    let all: Vec<NodeId> = match scale {
        Scale::Full => run.node_ids().collect(),
        Scale::Quick => runs::sample_nodes(&run, 250, 5),
    };

    let mut qg = QueryGen::new(d.spec(), 1234);
    let mut unsafe_queries = Vec::new();
    let mut tries = 0;
    while unsafe_queries.len() < n_queries && tries < n_queries * 60 {
        let q = qg.random_query(6);
        tries += 1;
        let dfa = compile_minimal_dfa(&q, d.spec().n_tags());
        if dfa.n_states() > 64 {
            continue;
        }
        if !session.is_safe(&q) {
            unsafe_queries.push(q);
        }
    }

    let mut rows: Vec<(f64, Vec<String>)> = Vec::new();
    for (i, q) in unsafe_queries.iter().enumerate() {
        use rpq_core::SubqueryPolicy;
        let plan_labels = session
            .prepare_regex_with(q, SubqueryPolicy::AlwaysLabels)
            .expect("plan compiles");
        let plan_cost = session
            .prepare_regex_with(q, SubqueryPolicy::CostBased)
            .expect("plan compiles");
        let g1 = G1::new(&index);
        let reference = g1.all_pairs(q, &all, &all);
        let ours = session.all_pairs(&plan_labels, &run, &all, &all);
        assert_eq!(reference, ours, "correctness cross-check (labels)");
        let ours_cost = session.all_pairs(&plan_cost, &run, &all, &all);
        assert_eq!(reference, ours_cost, "correctness cross-check (cost)");

        let (t_g1, _) = time_stats_secs(
            || {
                std::hint::black_box(g1.all_pairs(q, &all, &all));
            },
            scale.reps(),
        );
        let (t_labels, _) = time_stats_secs(
            || {
                std::hint::black_box(session.all_pairs(&plan_labels, &run, &all, &all));
            },
            scale.reps(),
        );
        let (t_cost, _) = time_stats_secs(
            || {
                std::hint::black_box(session.all_pairs(&plan_cost, &run, &all, &all));
            },
            scale.reps(),
        );
        let impr_labels = 100.0 * (t_g1 - t_labels) / t_g1;
        let impr_cost = 100.0 * (t_g1 - t_cost) / t_g1;
        rows.push((
            impr_labels,
            vec![
                format!("U{}", i + 1),
                format!("{}", plan_labels.stats().n_safe_subqueries),
                format!("{}", reference.len()),
                fmt_secs(t_g1),
                fmt_secs(t_labels),
                format!("{impr_labels:.1}%"),
                fmt_secs(t_cost),
                format!("{impr_cost:.1}%"),
            ],
        ));
    }
    rows.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    for (_, cells) in rows {
        table.row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke tests: every experiment runs at Quick scale and produces
    // plausible tables. These keep the harness from rotting.

    #[test]
    fn fig13a_smoke() {
        let t = fig13a(Scale::Quick);
        assert!(t.render().contains("Fig 13a"));
    }

    #[test]
    fn fig13b_smoke() {
        let t = fig13b(Scale::Quick);
        assert!(t.render().lines().count() >= 5);
    }

    #[test]
    fn fig13c_smoke() {
        let t = fig13c(Scale::Quick);
        assert!(t.render().contains("RPL"));
    }

    #[test]
    fn fig13d_smoke() {
        let t = fig13d(Scale::Quick);
        assert!(t.render().contains("G3"));
    }

    #[test]
    fn fig13ef_smoke() {
        let t = fig13ef(&Dataset::qblast(), Scale::Quick);
        let rendered = t.render();
        assert!(
            rendered.contains("high") && rendered.contains("low"),
            "{rendered}"
        );
    }

    #[test]
    fn fig13gh_smoke() {
        let t = fig13gh(&Dataset::qblast(), Scale::Quick);
        assert!(t.render().contains("Baseline(G1)"));
    }

    #[test]
    fn fig15_smoke() {
        let t = fig15(&Dataset::qblast(), Scale::Quick);
        assert!(t.render().contains("improvement"));
    }
}
