//! Shared dataset handles for the experiments.

use rpq_core::Session;
use rpq_grammar::Specification;
use rpq_labeling::Run;
use rpq_relalg::TagIndex;
use rpq_workloads::{bioaid_like, qblast_like, runs, RealisticSpec};

/// A named dataset: specification, a query [`Session`] over it, and
/// run/index helpers.
pub struct Dataset {
    /// The realistic specification bundle.
    pub real: RealisticSpec,
    session: Session,
}

impl Dataset {
    fn new(real: RealisticSpec) -> Dataset {
        Dataset {
            session: Session::from_spec(real.spec.clone()),
            real,
        }
    }

    /// The BioAID-like dataset ("deep").
    pub fn bioaid() -> Dataset {
        Dataset::new(bioaid_like())
    }

    /// The QBLast-like dataset ("branchy").
    pub fn qblast() -> Dataset {
        Dataset::new(qblast_like())
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.real.name
    }

    /// The specification.
    pub fn spec(&self) -> &Specification {
        &self.real.spec
    }

    /// The dataset's query session (plan + per-run index caches).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Simulate a run of roughly `edges` edges (random production
    /// firing, seeded).
    pub fn run(&self, edges: usize, seed: u64) -> Run {
        runs::simulate(self.spec(), edges, seed).expect("realistic specs derive")
    }

    /// Simulate a fork-heavy run unfolding the first cycle.
    pub fn fork_run(&self, edges: usize, seed: u64) -> Run {
        runs::simulate_fork(self.spec(), 0, edges, seed).expect("realistic specs derive")
    }

    /// Build the per-run tag index (the paper's stored inverted index).
    pub fn index(&self, run: &Run) -> TagIndex {
        TagIndex::build(run, self.spec().n_tags())
    }

    /// The tag name targeted by the Kleene-star experiments: the chain
    /// tag of the first cycle.
    pub fn star_tag(&self) -> &str {
        &self.real.cycle_tags[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_materialize() {
        for d in [Dataset::bioaid(), Dataset::qblast()] {
            let run = d.run(500, 1);
            assert!(run.n_edges() >= 500);
            let fork = d.fork_run(500, 1);
            let tag = d.spec().tag_by_name(d.star_tag()).unwrap();
            let star_edges = fork.edges().iter().filter(|e| e.tag == tag).count();
            assert!(star_edges > 50, "{}: {star_edges} star edges", d.name());
        }
    }
}
