//! Section-wise maintenance of `BENCH_serve.json`.
//!
//! The file holds two independently refreshed measurements — the
//! backend loopback sweep (`serve_loopback`, from `repro -- serve`)
//! and the router-tier sweep (`router_fleet`, from `repro -- router`).
//! The workspace's offline `serde_json` shim has no generic value
//! type, so re-running one sweep preserves the other by extracting its
//! section textually: every section is a balanced-brace object whose
//! strings (all written by this crate) contain no braces.

use std::io;
use std::path::Path;

/// Extract the balanced `{...}` object following `"key":` in `text`.
fn extract_section(text: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let start = text.find(&marker)? + marker.len();
    let open = start + text[start..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in text[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(text[open..=open + i].to_owned());
                }
            }
            _ => {}
        }
    }
    None
}

/// Read `path` and pull out an existing section body, accepting both
/// the combined layout and the legacy serve-only file (a bare
/// `serve_loopback` document at top level).
fn existing_section(text: &str, key: &str) -> Option<String> {
    if let Some(body) = extract_section(text, key) {
        return Some(body);
    }
    if key == "serve_loopback" && text.contains("\"bench\": \"serve_loopback\"") {
        return Some(text.trim().to_owned());
    }
    None
}

/// Replace (or add) one section of the combined benchmark file,
/// preserving the other section byte-for-byte.
pub fn update_section(path: impl AsRef<Path>, key: &str, body: &str) -> io::Result<()> {
    let text = std::fs::read_to_string(&path).unwrap_or_default();
    let mut sections: Vec<(&str, String)> = Vec::new();
    for k in ["serve_loopback", "router_fleet"] {
        let section = if k == key {
            Some(body.trim().to_owned())
        } else {
            existing_section(&text, k)
        };
        if let Some(section) = section {
            sections.push((k, section));
        }
    }
    let mut out = String::from("{\n  \"bench\": \"serve_and_router\",\n");
    for (i, (k, section)) in sections.iter().enumerate() {
        out.push_str(&format!("  \"{k}\": {section}"));
        out.push_str(if i + 1 < sections.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rpq_benchfile_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.json", std::process::id()))
    }

    #[test]
    fn sections_survive_each_others_updates() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        update_section(&path, "serve_loopback", "{\"a\": {\"b\": 1}}").unwrap();
        update_section(&path, "router_fleet", "{\"c\": 2}").unwrap();
        update_section(&path, "serve_loopback", "{\"a\": 3}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            extract_section(&text, "serve_loopback").as_deref(),
            Some("{\"a\": 3}")
        );
        assert_eq!(
            extract_section(&text, "router_fleet").as_deref(),
            Some("{\"c\": 2}")
        );
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_legacy_serve_only_file_is_adopted_as_a_section() {
        let path = tmp("legacy");
        std::fs::write(
            &path,
            "{\n  \"bench\": \"serve_loopback\",\n  \"points\": [{\"workers\": 1}]\n}\n",
        )
        .unwrap();
        update_section(&path, "router_fleet", "{\"c\": 2}").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let serve = extract_section(&text, "serve_loopback").unwrap();
        assert!(serve.contains("\"points\""), "{serve}");
        assert!(extract_section(&text, "router_fleet").is_some());
        let _ = std::fs::remove_file(&path);
    }
}
