//! Lazy-vs-materialized strategy A/B at the session level: the same
//! prepared composite query over the same cached CSR arena, answered
//! once by the on-the-fly DFA×graph product search and once by the
//! materialized relational pipeline — plus the `Auto` cost model,
//! which must track whichever side wins.
//!
//! The sweep rides along with the kernel A/B in `BENCH_relalg.json`
//! (section `strategy_sweep`, from `repro -- relalg`). Workloads are
//! the realistic fork-heavy runs at ≥4096 nodes — large and sparse,
//! which is exactly the regime where a frontier-bound product search
//! beats materializing closures: `Pairwise` stops at the first
//! accepting hit and `Reachable` is one search, while the relational
//! pipeline pays for the whole relation either way. Full-universe
//! `AllPairs` is the converse case — one product search per source —
//! where `Auto` must keep picking the materialized side.

use crate::datasets::Dataset;
use crate::timing::{fmt_secs, time_avg_secs, Table};
use rpq_core::{EvalStrategy, QueryRequest, Session};
use rpq_labeling::{NodeId, Run};

/// One strategy A/B timing for a single request mode.
#[derive(Debug, Clone)]
pub struct StrategyMeasurement {
    /// Dataset name (`bioaid` / `qblast`).
    pub dataset: &'static str,
    /// Query text.
    pub query: String,
    /// Request mode (`pairwise` / `reachable` / `all_pairs`).
    pub mode: &'static str,
    /// Run size.
    pub n_nodes: usize,
    /// Run edges.
    pub n_edges: usize,
    /// Forced-lazy seconds per call.
    pub lazy_secs: f64,
    /// Forced-materialized seconds per call.
    pub materialized_secs: f64,
    /// `Auto` seconds per call.
    pub auto_secs: f64,
    /// The strategy `Auto` resolved to.
    pub auto_picked: &'static str,
}

impl StrategyMeasurement {
    /// Materialized-over-lazy speedup (>1 means lazy wins).
    pub fn lazy_speedup(&self) -> f64 {
        self.materialized_secs / self.lazy_secs
    }

    /// `Auto` time relative to the faster forced strategy (1.0 is a
    /// perfect pick; the cost model should stay within ~1.1).
    pub fn auto_vs_best(&self) -> f64 {
        self.auto_secs / self.lazy_secs.min(self.materialized_secs)
    }
}

fn measure_request(
    dataset: &'static str,
    session: &Session,
    query_text: &str,
    run: &Run,
    mode: &'static str,
    request: &QueryRequest,
    reps: usize,
) -> StrategyMeasurement {
    let query = session.prepare(query_text).expect("query prepares");
    // Warm every per-run artifact (tag index and CSR arena) and
    // cross-check the strategies before timing anything.
    let lazy = session.evaluate_with_strategy(&query, run, request, EvalStrategy::Lazy);
    let materialized =
        session.evaluate_with_strategy(&query, run, request, EvalStrategy::Materialized);
    assert_eq!(
        lazy.result, materialized.result,
        "strategies disagree on {query_text} ({mode})"
    );
    let auto = session.evaluate_with_strategy(&query, run, request, EvalStrategy::Auto);
    let auto_picked = auto.meta.strategy.name();

    let time = |strategy: EvalStrategy| {
        time_avg_secs(
            || {
                std::hint::black_box(
                    session.evaluate_with_strategy(&query, run, request, strategy),
                );
            },
            reps,
        )
    };
    StrategyMeasurement {
        dataset,
        query: query_text.to_owned(),
        mode,
        n_nodes: run.n_nodes(),
        n_edges: run.n_edges(),
        lazy_secs: time(EvalStrategy::Lazy),
        materialized_secs: time(EvalStrategy::Materialized),
        auto_secs: time(EvalStrategy::Auto),
        auto_picked,
    }
}

/// Run the sweep. `full` adds the large (≥4096-node) tier the
/// baseline's speedup claims are about.
pub fn measure(full: bool) -> Vec<StrategyMeasurement> {
    let edge_targets: &[usize] = if full { &[1536, 6144] } else { &[1024] };
    let reps = if full { 3 } else { 2 };
    let mut out = Vec::new();
    for dataset in [Dataset::bioaid(), Dataset::qblast()] {
        for &edges in edge_targets {
            let run = dataset.fork_run(edges, 7);
            let session = dataset.session();
            // A decomposed composite query through the star tag: both
            // strategies run over the CSR arena, so the A/B isolates
            // product search vs relational materialization.
            let query = format!("_* {} _*", dataset.star_tag());
            let all: Vec<NodeId> = run.node_ids().collect();
            for (mode, request) in [
                ("pairwise", QueryRequest::pairwise(run.entry(), run.exit())),
                ("reachable", QueryRequest::reachable(run.entry())),
                (
                    "all_pairs",
                    QueryRequest::all_pairs(all.clone(), all.clone()),
                ),
            ] {
                out.push(measure_request(
                    dataset.name(),
                    session,
                    &query,
                    &run,
                    mode,
                    &request,
                    reps,
                ));
            }
        }
    }
    out
}

/// Paper-style table of the sweep.
pub fn table(measurements: &[StrategyMeasurement]) -> Table {
    let mut table = Table::new(
        "evaluation strategy A/B: lazy product search vs materialized pipeline",
        &[
            "dataset",
            "query",
            "mode",
            "nodes",
            "edges",
            "lazy",
            "materialized",
            "auto",
            "mat/lazy",
            "auto/best",
            "auto picks",
        ],
    );
    for m in measurements {
        table.row(vec![
            m.dataset.to_owned(),
            m.query.clone(),
            m.mode.to_owned(),
            format!("{}", m.n_nodes),
            format!("{}", m.n_edges),
            fmt_secs(m.lazy_secs),
            fmt_secs(m.materialized_secs),
            fmt_secs(m.auto_secs),
            format!("{:.1}x", m.lazy_speedup()),
            format!("{:.2}", m.auto_vs_best()),
            m.auto_picked.to_owned(),
        ]);
    }
    table
}

/// The `strategy_sweep` JSON section of `BENCH_relalg.json`.
pub fn to_json(measurements: &[StrategyMeasurement]) -> String {
    let mut out = String::from("[\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"query\": \"{}\", \"mode\": \"{}\", \
             \"n_nodes\": {}, \"n_edges\": {}, \"lazy_secs\": {:.9}, \
             \"materialized_secs\": {:.9}, \"auto_secs\": {:.9}, \
             \"lazy_speedup\": {:.3}, \"auto_vs_best\": {:.3}, \"auto_picked\": \"{}\"}}{}\n",
            m.dataset,
            m.query,
            m.mode,
            m.n_nodes,
            m.n_edges,
            m.lazy_secs,
            m.materialized_secs,
            m.auto_secs,
            m.lazy_speedup(),
            m.auto_vs_best(),
            m.auto_picked,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_consistent() {
        let measurements = measure(false);
        assert!(!measurements.is_empty());
        for m in &measurements {
            assert!(m.lazy_secs > 0.0 && m.materialized_secs > 0.0 && m.auto_secs > 0.0);
            assert!(matches!(m.auto_picked, "lazy" | "materialized"));
        }
        let json = to_json(&measurements);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(table(&measurements).render().contains("auto/best"));
    }
}
