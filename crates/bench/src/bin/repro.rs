//! Paper-figure reproduction harness.
//!
//! ```text
//! cargo run -p rpq-bench --release --bin repro            # all figures
//! cargo run -p rpq-bench --release --bin repro -- fig13c  # one figure
//! cargo run -p rpq-bench --release --bin repro -- --quick # smoke scale
//! ```

use rpq_bench::experiments::{self, Scale};
use rpq_bench::Dataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let figures: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    let want = |name: &str| figures.is_empty() || figures.iter().any(|f| f == name);

    println!("rpq paper-figure reproduction (scale: {scale:?})");
    println!("Huang, Bao, Davidson, Milo, Yuan — ICDE 2015\n");

    if want("fig13a") {
        println!("{}", experiments::fig13a(scale).render());
    }
    if want("fig13b") {
        println!("{}", experiments::fig13b(scale).render());
    }
    if want("fig13c") {
        println!("{}", experiments::fig13c(scale).render());
    }
    if want("fig13d") {
        println!("{}", experiments::fig13d(scale).render());
    }
    if want("fig13e") {
        println!(
            "{}",
            experiments::fig13ef(&Dataset::bioaid(), scale).render()
        );
    }
    if want("fig13f") {
        println!(
            "{}",
            experiments::fig13ef(&Dataset::qblast(), scale).render()
        );
    }
    if want("fig13g") {
        println!(
            "{}",
            experiments::fig13gh(&Dataset::bioaid(), scale).render()
        );
    }
    if want("fig13h") {
        println!(
            "{}",
            experiments::fig13gh(&Dataset::qblast(), scale).render()
        );
    }
    if want("fig15a") {
        println!("{}", experiments::fig15(&Dataset::bioaid(), scale).render());
    }
    if want("fig15b") {
        println!("{}", experiments::fig15(&Dataset::qblast(), scale).render());
    }
    if want("relalg") {
        // Not a paper figure: the pairs-vs-bits kernel A/B of
        // rpq-relalg plus the lazy-vs-materialized strategy A/B,
        // recorded together as the repo's perf baseline.
        let path = "BENCH_relalg.json";
        match rpq_bench::kernelbench::run_and_record(scale == Scale::Full, path) {
            Ok(tables) => {
                for t in tables {
                    println!("{}", t.render());
                }
                println!("baseline written to {path}\n");
            }
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
    if want("batch") {
        // Not a paper figure either: the run-store batch executor —
        // sequential vs parallel fan-out and cold vs warm store.
        let path = "BENCH_batch.json";
        match rpq_bench::batchbench::run_and_record(scale == Scale::Full, path) {
            Ok(table) => {
                println!("{}", table.render());
                println!("baseline written to {path}\n");
            }
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
    if want("ingest") {
        // The live-ingestion layer: delta index maintenance vs a full
        // rebuild on every append, at the store and at the closure
        // kernel underneath.
        let path = "BENCH_ingest.json";
        match rpq_bench::ingestbench::run_and_record(scale == Scale::Full, path) {
            Ok(table) => {
                println!("{}", table.render());
                println!("baseline written to {path}\n");
            }
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
    if want("serve") {
        // The network layer: open- and closed-loop load over loopback
        // against `rpq-serve`, swept across worker counts.
        let path = "BENCH_serve.json";
        match rpq_bench::servebench::run_and_record(scale == Scale::Full, path) {
            Ok(table) => {
                println!("{}", table.render());
                println!("baseline written to {path}\n");
            }
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
    if want("router") {
        // The routing tier: closed-loop load through `rpq-router`
        // across shard counts, plus a kill-a-backend failover leg.
        let path = "BENCH_serve.json";
        match rpq_bench::routerbench::run_and_record(scale == Scale::Full, path) {
            Ok(table) => {
                println!("{}", table.render());
                println!("baseline written to {path}\n");
            }
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
}
