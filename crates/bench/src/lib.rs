#![warn(missing_docs)]

//! Benchmark harness regenerating every figure of the paper's
//! evaluation (Section V).
//!
//! Two front ends share this library:
//!
//! * `cargo run -p rpq-bench --release --bin repro [-- FIG]` — full
//!   parameter sweeps printing paper-style tables (the source of
//!   EXPERIMENTS.md);
//! * `cargo bench -p rpq-bench` — Criterion micro-benchmarks, one bench
//!   target per figure, on reduced parameter sets.
//!
//! Method labels follow the paper:
//! **RPL** = pairwise label decoding / nested-loop all-pairs (Option S1);
//! **optRPL** = Algorithm 2 tree merge with reachability filtering
//! (Option S2); **G1/G2/G3** = the baselines of Section IV-B.

pub mod batchbench;
pub mod benchfile;
pub mod datasets;
pub mod experiments;
pub mod ingestbench;
pub mod kernelbench;
pub mod lazybench;
pub mod routerbench;
pub mod servebench;
pub mod timing;

pub use datasets::Dataset;
pub use timing::{time_avg_secs, Table};
