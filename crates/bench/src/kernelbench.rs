//! A/B measurement of the `rpq-relalg` kernels: sorted-pair/hash vs
//! CSR + blocked-bitset, on transitive closure and composition.
//!
//! This is the source of `BENCH_relalg.json`, the recorded perf
//! baseline the roadmap asks for: the `repro` binary (figure name
//! `relalg`) prints the table and writes the JSON next to the working
//! directory; `cargo bench -p rpq-bench --bench relalg_kernel` runs the
//! same workloads under Criterion.

use crate::timing::{fmt_secs, time_avg_secs, Table};
use rpq_labeling::NodeId;
use rpq_relalg::{
    compose_pairs_bits, compose_pairs_kernel, transitive_closure_bits, transitive_closure_pairs,
    NodePairSet,
};

/// SplitMix64 — deterministic workload generation without a rand dep.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A layered DAG over `n_nodes` nodes (`width` nodes per layer, each
/// wired to `fanout` random nodes of the next layer) — the shape of
/// fork-heavy provenance runs, whose closures are deep and dense.
pub fn layered_relation(n_nodes: usize, width: usize, fanout: usize, seed: u64) -> NodePairSet {
    let mut rng = seed;
    let mut pairs = Vec::new();
    let layers = n_nodes.div_ceil(width);
    for layer in 0..layers.saturating_sub(1) {
        let base = layer * width;
        let next_base = (layer + 1) * width;
        let next_width = width.min(n_nodes.saturating_sub(next_base));
        if next_width == 0 {
            break;
        }
        for u in base..(base + width).min(n_nodes) {
            for _ in 0..fanout {
                let v = next_base + (splitmix(&mut rng) as usize % next_width);
                pairs.push((NodeId(u as u32), NodeId(v as u32)));
            }
        }
    }
    NodePairSet::from_pairs(pairs)
}

/// A uniformly random relation with `n_pairs` pairs over `n_nodes`.
pub fn random_relation(n_nodes: usize, n_pairs: usize, seed: u64) -> NodePairSet {
    let mut rng = seed;
    let pairs = (0..n_pairs)
        .map(|_| {
            let u = splitmix(&mut rng) as usize % n_nodes;
            let v = splitmix(&mut rng) as usize % n_nodes;
            (NodeId(u as u32), NodeId(v as u32))
        })
        .collect();
    NodePairSet::from_pairs(pairs)
}

/// One pairs-vs-bits timing.
#[derive(Debug, Clone)]
pub struct KernelMeasurement {
    /// `transitive_closure` or `compose`.
    pub op: &'static str,
    /// Universe size.
    pub n_nodes: usize,
    /// Input pair count (left operand for compose).
    pub n_pairs: usize,
    /// Output pair count (both kernels agree; cross-checked).
    pub out_pairs: usize,
    /// Pair-kernel seconds per call.
    pub pairs_secs: f64,
    /// Bit-kernel seconds per call.
    pub bits_secs: f64,
}

impl KernelMeasurement {
    /// How many times faster the bit kernel ran.
    pub fn speedup(&self) -> f64 {
        self.pairs_secs / self.bits_secs.max(1e-12)
    }
}

/// Run the kernel sweep. `full` widens the size range and the rep
/// count (the `repro` default); quick mode still covers the ≥ 512-node
/// sizes the acceptance bar measures.
pub fn measure(full: bool) -> Vec<KernelMeasurement> {
    let sizes: &[usize] = if full {
        &[128, 512, 1024, 2048, 4096]
    } else {
        &[128, 512, 1024]
    };
    let reps = if full { 5 } else { 3 };
    let mut out = Vec::new();

    for &n in sizes {
        // Closure over a fork-shaped layered DAG (width n/16, fanout 2).
        let base = layered_relation(n, (n / 16).max(2), 2, 0xC105 + n as u64);
        let referee = transitive_closure_pairs(&base);
        let bits_result = transitive_closure_bits(&base, n);
        assert_eq!(referee, bits_result, "kernels disagree on closure");
        let pairs_secs = time_avg_secs(
            || {
                std::hint::black_box(transitive_closure_pairs(&base));
            },
            reps,
        );
        let bits_secs = time_avg_secs(
            || {
                std::hint::black_box(transitive_closure_bits(&base, n));
            },
            reps,
        );
        out.push(KernelMeasurement {
            op: "transitive_closure",
            n_nodes: n,
            n_pairs: base.len(),
            out_pairs: referee.len(),
            pairs_secs,
            bits_secs,
        });

        // Composition of two random relations of 4n pairs each.
        let a = random_relation(n, 4 * n, 0xA11CE + n as u64);
        let b = random_relation(n, 4 * n, 0xB0B + n as u64);
        let referee = compose_pairs_kernel(&a, &b);
        assert_eq!(
            referee,
            compose_pairs_bits(&a, &b, n),
            "kernels disagree on compose"
        );
        let pairs_secs = time_avg_secs(
            || {
                std::hint::black_box(compose_pairs_kernel(&a, &b));
            },
            reps,
        );
        let bits_secs = time_avg_secs(
            || {
                std::hint::black_box(compose_pairs_bits(&a, &b, n));
            },
            reps,
        );
        out.push(KernelMeasurement {
            op: "compose",
            n_nodes: n,
            n_pairs: a.len(),
            out_pairs: referee.len(),
            pairs_secs,
            bits_secs,
        });
    }
    out
}

/// Paper-style table of a sweep.
pub fn table(measurements: &[KernelMeasurement]) -> Table {
    let mut table = Table::new(
        "relalg kernel A/B: pairs vs blocked bitsets",
        &[
            "op",
            "nodes",
            "in pairs",
            "out pairs",
            "pairs",
            "bits",
            "speedup",
        ],
    );
    for m in measurements {
        table.row(vec![
            m.op.to_owned(),
            format!("{}", m.n_nodes),
            format!("{}", m.n_pairs),
            format!("{}", m.out_pairs),
            fmt_secs(m.pairs_secs),
            fmt_secs(m.bits_secs),
            format!("{:.1}x", m.speedup()),
        ]);
    }
    table
}

/// The JSON baseline record (`BENCH_relalg.json`).
pub fn to_json(measurements: &[KernelMeasurement]) -> String {
    let mut out = String::from("{\n  \"bench\": \"relalg_kernel\",\n  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"n_nodes\": {}, \"n_pairs\": {}, \"out_pairs\": {}, \
             \"pairs_secs\": {:.9}, \"bits_secs\": {:.9}, \"speedup\": {:.3}}}{}\n",
            m.op,
            m.n_nodes,
            m.n_pairs,
            m.out_pairs,
            m.pairs_secs,
            m.bits_secs,
            m.speedup(),
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the sweep to `path` and return the rendered table.
pub fn run_and_record(full: bool, path: &str) -> std::io::Result<Table> {
    let measurements = measure(full);
    std::fs::write(path, to_json(&measurements))?;
    Ok(table(&measurements))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_bounded() {
        let a = layered_relation(256, 16, 2, 7);
        assert_eq!(a, layered_relation(256, 16, 2, 7));
        assert!(a.iter().all(|(u, v)| u.index() < 256 && v.index() < 256));
        let r = random_relation(100, 300, 7);
        assert!(r.iter().all(|(u, v)| u.index() < 100 && v.index() < 100));
        assert!(!r.is_empty());
    }

    #[test]
    fn json_is_well_formed() {
        let m = vec![
            KernelMeasurement {
                op: "compose",
                n_nodes: 10,
                n_pairs: 3,
                out_pairs: 2,
                pairs_secs: 1e-6,
                bits_secs: 5e-7,
            };
            2
        ];
        let json = to_json(&m);
        assert!(json.contains("\"speedup\": 2.000"));
        // Balanced braces/brackets and a trailing-comma-free list.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }
}
