//! A/B/C measurement of the `rpq-relalg` kernels: sorted-pair/hash vs
//! CSR + blocked-bitset vs Tarjan condensation, on transitive closure
//! (all three) and composition (the two join kernels).
//!
//! This is the source of `BENCH_relalg.json`, the recorded perf
//! baseline the roadmap asks for: the `repro` binary (figure name
//! `relalg`) prints the table and writes the JSON next to the working
//! directory; `cargo bench -p rpq-bench --bench relalg_kernel` runs the
//! same workloads under Criterion.
//!
//! Closure workloads cover the shapes that separate the kernels:
//! **deep chains** (maximal semi-naive round counts — condensation's
//! best case), **wide layered DAGs** (fork-heavy provenance runs,
//! deep *and* dense closures) and **cyclic cores** (the paper's
//! workflow regime: a DAG run with one loop). The generators live in
//! `rpq_workloads::runs` and are shared with the three-way closure
//! proptests.

use crate::timing::{fmt_secs, time_avg_secs, Table};
use rpq_relalg::{
    compose_pairs_bits, compose_pairs_kernel, transitive_closure_bits, transitive_closure_csr,
    transitive_closure_csr_shared, transitive_closure_pairs, transitive_closure_scc,
    CondensationCache, CsrRelation, NodePairSet, RowOpsMode,
};
use rpq_workloads::runs::{cyclic_core_relation, deep_chain_relation, wide_dag_relation};

/// A layered DAG over `n_nodes` nodes (`width` nodes per layer, each
/// wired to `fanout` random nodes of the next layer) — kept as a thin
/// alias over the shared workloads generator for the Criterion bench.
pub fn layered_relation(n_nodes: usize, width: usize, fanout: usize, seed: u64) -> NodePairSet {
    wide_dag_relation(n_nodes, width, fanout, seed)
}

/// A uniformly random relation with `n_pairs` pairs over `n_nodes` —
/// alias over the shared workloads generator, like [`layered_relation`].
pub fn random_relation(n_nodes: usize, n_pairs: usize, seed: u64) -> NodePairSet {
    rpq_workloads::runs::random_relation(n_nodes, n_pairs, seed)
}

/// One kernel A/B/C timing.
#[derive(Debug, Clone)]
pub struct KernelMeasurement {
    /// `transitive_closure` or `compose`.
    pub op: &'static str,
    /// Workload shape (`deep_chain` / `layered` / `cyclic_core` /
    /// `random`).
    pub workload: &'static str,
    /// Universe size.
    pub n_nodes: usize,
    /// Input pair count (left operand for compose).
    pub n_pairs: usize,
    /// Output pair count (all kernels agree; cross-checked).
    pub out_pairs: usize,
    /// Pair-kernel seconds per call.
    pub pairs_secs: f64,
    /// Bit-kernel seconds per call.
    pub bits_secs: f64,
    /// Condensation-kernel seconds per call (closure ops only).
    pub scc_secs: Option<f64>,
}

impl KernelMeasurement {
    /// How many times faster the bit kernel ran than the pair kernel.
    pub fn speedup(&self) -> f64 {
        self.pairs_secs / self.bits_secs.max(1e-12)
    }

    /// How many times faster the condensation pass ran than the
    /// semi-naive bit closure (the scc acceptance metric).
    pub fn scc_speedup_vs_bits(&self) -> Option<f64> {
        self.scc_secs.map(|scc| self.bits_secs / scc.max(1e-12))
    }
}

/// Time one closure workload through all three kernels.
fn measure_closure(
    workload: &'static str,
    base: NodePairSet,
    n: usize,
    reps: usize,
) -> KernelMeasurement {
    let referee = transitive_closure_pairs(&base);
    assert_eq!(
        referee,
        transitive_closure_bits(&base, n),
        "kernels disagree on closure ({workload})"
    );
    assert_eq!(
        referee,
        transitive_closure_scc(&base, n),
        "condensation disagrees on closure ({workload})"
    );
    let pairs_secs = time_avg_secs(
        || {
            std::hint::black_box(transitive_closure_pairs(&base));
        },
        reps,
    );
    let bits_secs = time_avg_secs(
        || {
            std::hint::black_box(transitive_closure_bits(&base, n));
        },
        reps,
    );
    let scc_secs = time_avg_secs(
        || {
            std::hint::black_box(transitive_closure_scc(&base, n));
        },
        reps,
    );
    KernelMeasurement {
        op: "transitive_closure",
        workload,
        n_nodes: n,
        n_pairs: base.len(),
        out_pairs: referee.len(),
        pairs_secs,
        bits_secs,
        scc_secs: Some(scc_secs),
    }
}

/// Run the kernel sweep. `full` widens the size range and the rep
/// count (the `repro` default); quick mode still covers the ≥ 1024-node
/// sizes the acceptance bar measures.
pub fn measure(full: bool) -> Vec<KernelMeasurement> {
    let sizes: &[usize] = if full {
        &[128, 512, 1024, 2048, 4096]
    } else {
        &[128, 512, 1024]
    };
    let reps = if full { 5 } else { 3 };
    let mut out = Vec::new();

    for &n in sizes {
        // Closure over a fork-shaped layered DAG (width n/16, fanout 2).
        out.push(measure_closure(
            "layered",
            layered_relation(n, (n / 16).max(2), 2, 0xC105 + n as u64),
            n,
            reps,
        ));
        // Closure over one deep chain: n-1 edges, n rounds, O(n²)
        // closure pairs — the semi-naive worst case.
        out.push(measure_closure(
            "deep_chain",
            deep_chain_relation(n, 0xDC + n as u64),
            n,
            reps,
        ));
        // Closure over a chain with an n/8-node cyclic core mid-way.
        out.push(measure_closure(
            "cyclic_core",
            cyclic_core_relation(n, (n / 8).max(2), 0xCC + n as u64),
            n,
            reps,
        ));

        // Composition of two random relations of 4n pairs each (the
        // join kernels; condensation does not apply).
        let a = random_relation(n, 4 * n, 0xA11CE + n as u64);
        let b = random_relation(n, 4 * n, 0xB0B + n as u64);
        let referee = compose_pairs_kernel(&a, &b);
        assert_eq!(
            referee,
            compose_pairs_bits(&a, &b, n),
            "kernels disagree on compose"
        );
        let pairs_secs = time_avg_secs(
            || {
                std::hint::black_box(compose_pairs_kernel(&a, &b));
            },
            reps,
        );
        let bits_secs = time_avg_secs(
            || {
                std::hint::black_box(compose_pairs_bits(&a, &b, n));
            },
            reps,
        );
        out.push(KernelMeasurement {
            op: "compose",
            workload: "random",
            n_nodes: n,
            n_pairs: a.len(),
            out_pairs: referee.len(),
            pairs_secs,
            bits_secs,
            scc_secs: None,
        });
    }
    out
}

/// One row-ops A/B timing: the same bit-kernel operator under the
/// blocked (4×u64) word loops vs the scalar referee loops
/// (`RPQ_RELALG_ROWOPS`). Both modes compute identical results (pinned
/// by proptest); the sweep records what the unroll is worth.
#[derive(Debug, Clone)]
pub struct RowOpsMeasurement {
    /// `transitive_closure` or `compose`.
    pub op: &'static str,
    /// Workload shape (`deep_chain` / `layered` / `random`).
    pub workload: &'static str,
    /// Universe size.
    pub n_nodes: usize,
    /// Input pair count (left operand for compose).
    pub n_pairs: usize,
    /// Seconds per call with the blocked loops forced.
    pub blocked_secs: f64,
    /// Seconds per call with the scalar loops forced.
    pub scalar_secs: f64,
}

impl RowOpsMeasurement {
    /// How many times faster the blocked loops ran than the scalar
    /// loops (the row-ops acceptance metric: ≥ 1.0 means the unroll
    /// never loses).
    pub fn blocked_speedup(&self) -> f64 {
        self.scalar_secs / self.blocked_secs.max(1e-12)
    }
}

/// Time one op under both forced row-ops modes. The modes alternate
/// rep by rep (rather than one mode's block after the other's) and the
/// best rep per mode is kept, so clock drift over a long sweep cannot
/// masquerade as a kernel difference.
fn measure_rowops_one(
    op: &'static str,
    workload: &'static str,
    n: usize,
    n_pairs: usize,
    reps: usize,
    mut body: impl FnMut(),
) -> RowOpsMeasurement {
    let mut scalar_secs = f64::INFINITY;
    let mut blocked_secs = f64::INFINITY;
    for _ in 0..reps.max(1) {
        rpq_relalg::set_row_ops_mode(RowOpsMode::Scalar);
        scalar_secs = scalar_secs.min(time_avg_secs(&mut body, 1));
        rpq_relalg::set_row_ops_mode(RowOpsMode::Blocked);
        blocked_secs = blocked_secs.min(time_avg_secs(&mut body, 1));
    }
    RowOpsMeasurement {
        op,
        workload,
        n_nodes: n,
        n_pairs,
        blocked_secs,
        scalar_secs,
    }
}

/// The blocked-vs-scalar row-ops sweep over the closure and compose
/// shapes whose inner loops the rowops module carries.
pub fn measure_rowops(full: bool) -> Vec<RowOpsMeasurement> {
    let sizes: &[usize] = if full {
        &[1024, 2048, 4096]
    } else {
        &[1024, 2048]
    };
    let reps = if full { 5 } else { 3 };
    let before = rpq_relalg::row_ops_mode();
    let mut out = Vec::new();
    for &n in sizes {
        let chain = deep_chain_relation(n, 0xDC + n as u64);
        out.push(measure_rowops_one(
            "transitive_closure",
            "deep_chain",
            n,
            chain.len(),
            reps,
            || {
                std::hint::black_box(transitive_closure_bits(&chain, n));
            },
        ));
        // Narrower layers than the kernel A/B/C sweep (n/64 per layer,
        // so ~64 semi-naive rounds): more rounds per closure weights
        // the fixpoint writeback (`claim_new`) — the primitive the
        // blocked spelling accelerates — against the memory-bound row
        // gather, matching the deep-provenance regime.
        let layered = layered_relation(n, (n / 64).max(2), 2, 0xC105 + n as u64);
        // Layered closures finish in tens of milliseconds — like the
        // compose rows below, triple the interleaved reps so best-of
        // sits below the container's timing jitter.
        out.push(measure_rowops_one(
            "transitive_closure",
            "layered",
            n,
            layered.len(),
            reps * 3,
            || {
                std::hint::black_box(transitive_closure_bits(&layered, n));
            },
        ));
        let a = random_relation(n, 4 * n, 0xA11CE + n as u64);
        let b = random_relation(n, 4 * n, 0xB0B + n as u64);
        // Time the row-OR gather itself (`BitRelation::compose_csr`),
        // with the pair↔CSR/bitset conversions hoisted out of the
        // body: the conversions cost the same in both modes and would
        // dilute the loop ratio this sweep exists to record. Compose
        // calls are ~1000× cheaper than the closures above, so triple
        // the interleaved reps as well.
        let a_csr = CsrRelation::from_pairs(&a, n);
        let b_bits = rpq_relalg::BitRelation::from_pairs(&b, n);
        out.push(measure_rowops_one(
            "compose",
            "random",
            n,
            a.len(),
            reps * 3,
            || {
                std::hint::black_box(rpq_relalg::BitRelation::compose_csr(&a_csr, &b_bits));
            },
        ));
    }
    rpq_relalg::set_row_ops_mode(before);
    out
}

/// Paper-style table of the row-ops sweep.
pub fn rowops_table(measurements: &[RowOpsMeasurement]) -> Table {
    let mut table = Table::new(
        "row-ops A/B: blocked 4xu64 loops vs scalar referee (bit kernel)",
        &[
            "op",
            "workload",
            "nodes",
            "in pairs",
            "blocked",
            "scalar",
            "blocked/scalar",
        ],
    );
    for m in measurements {
        table.row(vec![
            m.op.to_owned(),
            m.workload.to_owned(),
            format!("{}", m.n_nodes),
            format!("{}", m.n_pairs),
            fmt_secs(m.blocked_secs),
            fmt_secs(m.scalar_secs),
            format!("{:.2}x", m.blocked_speedup()),
        ]);
    }
    table
}

/// The `rowops_sweep` JSON section of `BENCH_relalg.json`.
pub fn rowops_to_json(measurements: &[RowOpsMeasurement]) -> String {
    let mut out = String::from("[\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"workload\": \"{}\", \"n_nodes\": {}, \"n_pairs\": {}, \
             \"blocked_secs\": {:.9}, \"scalar_secs\": {:.9}, \"blocked_speedup\": {:.3}}}{}\n",
            m.op,
            m.workload,
            m.n_nodes,
            m.n_pairs,
            m.blocked_secs,
            m.scalar_secs,
            m.blocked_speedup(),
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]");
    out
}

/// One condensation-reuse timing: a k-closure evaluation's SCC-kernel
/// work with a Tarjan walk per closure (the pre-sharing behavior) vs
/// one walk over the run's full adjacency reused by every closure
/// ([`CondensationCache`], the `EvalCtx` path).
#[derive(Debug, Clone)]
pub struct CondensationMeasurement {
    /// Universe size.
    pub n_nodes: usize,
    /// Closures per evaluation (= per-tag sub-relations).
    pub n_closures: usize,
    /// Edges per per-tag sub-relation.
    pub tag_edges: usize,
    /// Seconds per evaluation condensing once per *closure*.
    pub fresh_secs: f64,
    /// Seconds per evaluation condensing once per *evaluation*.
    pub shared_secs: f64,
}

impl CondensationMeasurement {
    /// How many times faster the shared-condensation evaluation ran
    /// (the reuse acceptance metric: ≥ 1.5 on k ≥ 4 closures).
    pub fn reuse_speedup(&self) -> f64 {
        self.fresh_secs / self.shared_secs.max(1e-12)
    }
}

/// The condensation-reuse sweep: k sparse per-tag relations over one
/// shared universe — the shape of a multi-closure composite plan over
/// a provenance run — closed through the SCC kernel with and without
/// the evaluation-scoped condensation cache.
pub fn measure_condensation(full: bool) -> Vec<CondensationMeasurement> {
    let sizes: &[usize] = if full {
        &[1024, 2048, 4096, 8192]
    } else {
        &[1024, 2048]
    };
    let reps = if full { 5 } else { 3 };
    let n_closures = 6;
    let before = rpq_relalg::kernel_mode();
    rpq_relalg::set_kernel_mode(rpq_relalg::KernelMode::ForceScc);
    let mut out = Vec::new();
    for &n in sizes {
        // Sparse per-tag bases (≤ n/2 edges each), DAG-oriented like
        // the provenance runs this models (workflow runs are DAGs with
        // at most small cyclic cores): the per-closure Tarjan walk plus
        // the full-matrix component pass are the dominant costs the
        // shared schedule removes — its sweep skips source-less rows
        // and scales with the base, not the universe.
        let tag_edges = n / 2;
        let bases: Vec<CsrRelation> = (0..n_closures)
            .map(|i| {
                let pairs: NodePairSet = random_relation(n, tag_edges, 0x7A6 + (n * 31 + i) as u64)
                    .iter()
                    .filter(|(a, b)| a != b)
                    .map(|(a, b)| if a.0 < b.0 { (a, b) } else { (b, a) })
                    .collect();
                CsrRelation::from_pairs(&pairs, n)
            })
            .collect();
        let whole: NodePairSet = bases
            .iter()
            .flat_map(|b| b.to_pairs().iter().collect::<Vec<_>>())
            .collect();
        let whole = CsrRelation::from_pairs(&whole, n);
        // The two schedules must agree before they race.
        for base in &bases {
            let cache = CondensationCache::new();
            assert_eq!(
                transitive_closure_csr(base),
                transitive_closure_csr_shared(base, &whole, &cache),
                "shared condensation disagrees with the per-closure walk"
            );
        }
        // Interleave the two schedules rep by rep and keep the best of
        // each (same drift-proofing as the row-ops A/B).
        let mut fresh_secs = f64::INFINITY;
        let mut shared_secs = f64::INFINITY;
        for _ in 0..reps.max(1) {
            fresh_secs = fresh_secs.min(time_avg_secs(
                || {
                    for base in &bases {
                        std::hint::black_box(transitive_closure_csr(base));
                    }
                },
                1,
            ));
            shared_secs = shared_secs.min(time_avg_secs(
                || {
                    let cache = CondensationCache::new();
                    for base in &bases {
                        std::hint::black_box(transitive_closure_csr_shared(base, &whole, &cache));
                    }
                },
                1,
            ));
        }
        out.push(CondensationMeasurement {
            n_nodes: n,
            n_closures,
            tag_edges,
            fresh_secs,
            shared_secs,
        });
    }
    rpq_relalg::set_kernel_mode(before);
    out
}

/// Paper-style table of the condensation-reuse sweep.
pub fn condensation_table(measurements: &[CondensationMeasurement]) -> Table {
    let mut table = Table::new(
        "condensation reuse: Tarjan per closure vs once per evaluation (scc kernel)",
        &[
            "nodes",
            "closures",
            "tag edges",
            "fresh",
            "shared",
            "fresh/shared",
        ],
    );
    for m in measurements {
        table.row(vec![
            format!("{}", m.n_nodes),
            format!("{}", m.n_closures),
            format!("{}", m.tag_edges),
            fmt_secs(m.fresh_secs),
            fmt_secs(m.shared_secs),
            format!("{:.2}x", m.reuse_speedup()),
        ]);
    }
    table
}

/// The `condensation_sweep` JSON section of `BENCH_relalg.json`.
pub fn condensation_to_json(measurements: &[CondensationMeasurement]) -> String {
    let mut out = String::from("[\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n_nodes\": {}, \"n_closures\": {}, \"tag_edges\": {}, \
             \"fresh_secs\": {:.9}, \"shared_secs\": {:.9}, \"reuse_speedup\": {:.3}}}{}\n",
            m.n_nodes,
            m.n_closures,
            m.tag_edges,
            m.fresh_secs,
            m.shared_secs,
            m.reuse_speedup(),
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]");
    out
}

/// Paper-style table of a sweep.
pub fn table(measurements: &[KernelMeasurement]) -> Table {
    let mut table = Table::new(
        "relalg kernel A/B/C: pairs vs blocked bitsets vs condensation",
        &[
            "op",
            "workload",
            "nodes",
            "in pairs",
            "out pairs",
            "pairs",
            "bits",
            "scc",
            "bits/pairs",
            "scc/bits",
        ],
    );
    for m in measurements {
        table.row(vec![
            m.op.to_owned(),
            m.workload.to_owned(),
            format!("{}", m.n_nodes),
            format!("{}", m.n_pairs),
            format!("{}", m.out_pairs),
            fmt_secs(m.pairs_secs),
            fmt_secs(m.bits_secs),
            m.scc_secs.map_or_else(|| "—".to_owned(), fmt_secs),
            format!("{:.1}x", m.speedup()),
            m.scc_speedup_vs_bits()
                .map_or_else(|| "—".to_owned(), |s| format!("{s:.1}x")),
        ]);
    }
    table
}

/// The JSON baseline record (`BENCH_relalg.json`). The kernel A/B/C
/// lands under `results`; [`run_and_record`] appends the session-level
/// lazy-vs-materialized sweep as a sibling `strategy_sweep` section.
pub fn to_json(measurements: &[KernelMeasurement]) -> String {
    let mut out = String::from("{\n  \"bench\": \"relalg_kernel\",\n  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let scc_fields = match (m.scc_secs, m.scc_speedup_vs_bits()) {
            (Some(secs), Some(speedup)) => {
                format!(", \"scc_secs\": {secs:.9}, \"scc_speedup_vs_bits\": {speedup:.3}")
            }
            _ => String::new(),
        };
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"workload\": \"{}\", \"n_nodes\": {}, \"n_pairs\": {}, \
             \"out_pairs\": {}, \"pairs_secs\": {:.9}, \"bits_secs\": {:.9}, \
             \"speedup\": {:.3}{}}}{}\n",
            m.op,
            m.workload,
            m.n_nodes,
            m.n_pairs,
            m.out_pairs,
            m.pairs_secs,
            m.bits_secs,
            m.speedup(),
            scc_fields,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run every sweep — the kernel A/B/C, the blocked-vs-scalar row-ops
/// A/B, the condensation-reuse A/B and the session-level strategy A/B —
/// write the combined baseline to `path`, and return the rendered
/// tables (kernels first, in sweep order).
pub fn run_and_record(full: bool, path: &str) -> std::io::Result<Vec<Table>> {
    let measurements = measure(full);
    let rowops = measure_rowops(full);
    let condensations = measure_condensation(full);
    let strategies = crate::lazybench::measure(full);
    let mut json = to_json(&measurements);
    let closer = "  ]\n}\n";
    debug_assert!(json.ends_with(closer));
    json.truncate(json.len() - closer.len());
    json.push_str(&format!(
        "  ],\n  \"rowops_sweep\": {},\n  \"condensation_sweep\": {},\n  \
         \"strategy_sweep\": {}\n}}\n",
        rowops_to_json(&rowops),
        condensation_to_json(&condensations),
        crate::lazybench::to_json(&strategies)
    ));
    std::fs::write(path, json)?;
    Ok(vec![
        table(&measurements),
        rowops_table(&rowops),
        condensation_table(&condensations),
        crate::lazybench::table(&strategies),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_bounded() {
        let a = layered_relation(256, 16, 2, 7);
        assert_eq!(a, layered_relation(256, 16, 2, 7));
        assert!(a.iter().all(|(u, v)| u.index() < 256 && v.index() < 256));
        let r = random_relation(100, 300, 7);
        assert!(r.iter().all(|(u, v)| u.index() < 100 && v.index() < 100));
        assert!(!r.is_empty());
    }

    #[test]
    fn json_is_well_formed() {
        let m = vec![
            KernelMeasurement {
                op: "compose",
                workload: "random",
                n_nodes: 10,
                n_pairs: 3,
                out_pairs: 2,
                pairs_secs: 1e-6,
                bits_secs: 5e-7,
                scc_secs: None,
            },
            KernelMeasurement {
                op: "transitive_closure",
                workload: "deep_chain",
                n_nodes: 10,
                n_pairs: 9,
                out_pairs: 45,
                pairs_secs: 1e-6,
                bits_secs: 5e-7,
                scc_secs: Some(1e-7),
            },
        ];
        let json = to_json(&m);
        assert!(json.contains("\"speedup\": 2.000"));
        assert!(json.contains("\"scc_speedup_vs_bits\": 5.000"));
        assert!(json.contains("\"workload\": \"deep_chain\""));
        // Compose rows carry no scc fields.
        assert!(!json
            .lines()
            .any(|l| l.contains("compose") && l.contains("scc")));
        // Balanced braces/brackets and a trailing-comma-free list.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn rowops_and_condensation_json_sections_are_well_formed() {
        let rowops = vec![RowOpsMeasurement {
            op: "compose",
            workload: "random",
            n_nodes: 10,
            n_pairs: 40,
            blocked_secs: 5e-7,
            scalar_secs: 1e-6,
        }];
        let json = rowops_to_json(&rowops);
        assert!(json.contains("\"blocked_speedup\": 2.000"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let conds = vec![CondensationMeasurement {
            n_nodes: 10,
            n_closures: 6,
            tag_edges: 5,
            fresh_secs: 3e-6,
            shared_secs: 1e-6,
        }];
        let json = condensation_to_json(&conds);
        assert!(json.contains("\"reuse_speedup\": 3.000"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn rowops_sweep_restores_the_process_mode() {
        let before = rpq_relalg::row_ops_mode();
        let m = measure_rowops_one("compose", "random", 64, 10, 1, || {
            std::hint::black_box(0u64);
        });
        assert!(m.blocked_secs > 0.0 && m.scalar_secs > 0.0);
        assert_eq!(rpq_relalg::row_ops_mode(), RowOpsMode::Blocked);
        rpq_relalg::set_row_ops_mode(before);
    }

    #[test]
    fn condensation_sweep_cross_checks_and_reports() {
        // One tiny size through the real measurement loop.
        let before = rpq_relalg::kernel_mode();
        rpq_relalg::set_kernel_mode(rpq_relalg::KernelMode::ForceScc);
        let bases: Vec<CsrRelation> = (0..4)
            .map(|i| CsrRelation::from_pairs(&random_relation(64, 32, i), 64))
            .collect();
        let whole: NodePairSet = bases
            .iter()
            .flat_map(|b| b.to_pairs().iter().collect::<Vec<_>>())
            .collect();
        let whole = CsrRelation::from_pairs(&whole, 64);
        let cache = CondensationCache::new();
        for base in &bases {
            assert_eq!(
                transitive_closure_csr(base),
                transitive_closure_csr_shared(base, &whole, &cache)
            );
        }
        rpq_relalg::set_kernel_mode(before);
    }

    #[test]
    fn quick_sweep_has_an_scc_leg_per_closure_workload() {
        // Tiny smoke of the real measurement loop (reps=1, one size).
        let m = measure_closure("deep_chain", deep_chain_relation(128, 1), 128, 1);
        assert_eq!(m.out_pairs, 128 * 127 / 2);
        assert!(m.scc_secs.is_some());
        assert!(m.scc_speedup_vs_bits().unwrap() > 0.0);
    }
}
