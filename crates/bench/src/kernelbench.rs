//! A/B/C measurement of the `rpq-relalg` kernels: sorted-pair/hash vs
//! CSR + blocked-bitset vs Tarjan condensation, on transitive closure
//! (all three) and composition (the two join kernels).
//!
//! This is the source of `BENCH_relalg.json`, the recorded perf
//! baseline the roadmap asks for: the `repro` binary (figure name
//! `relalg`) prints the table and writes the JSON next to the working
//! directory; `cargo bench -p rpq-bench --bench relalg_kernel` runs the
//! same workloads under Criterion.
//!
//! Closure workloads cover the shapes that separate the kernels:
//! **deep chains** (maximal semi-naive round counts — condensation's
//! best case), **wide layered DAGs** (fork-heavy provenance runs,
//! deep *and* dense closures) and **cyclic cores** (the paper's
//! workflow regime: a DAG run with one loop). The generators live in
//! `rpq_workloads::runs` and are shared with the three-way closure
//! proptests.

use crate::timing::{fmt_secs, time_avg_secs, Table};
use rpq_relalg::{
    compose_pairs_bits, compose_pairs_kernel, transitive_closure_bits, transitive_closure_pairs,
    transitive_closure_scc, NodePairSet,
};
use rpq_workloads::runs::{cyclic_core_relation, deep_chain_relation, wide_dag_relation};

/// A layered DAG over `n_nodes` nodes (`width` nodes per layer, each
/// wired to `fanout` random nodes of the next layer) — kept as a thin
/// alias over the shared workloads generator for the Criterion bench.
pub fn layered_relation(n_nodes: usize, width: usize, fanout: usize, seed: u64) -> NodePairSet {
    wide_dag_relation(n_nodes, width, fanout, seed)
}

/// A uniformly random relation with `n_pairs` pairs over `n_nodes` —
/// alias over the shared workloads generator, like [`layered_relation`].
pub fn random_relation(n_nodes: usize, n_pairs: usize, seed: u64) -> NodePairSet {
    rpq_workloads::runs::random_relation(n_nodes, n_pairs, seed)
}

/// One kernel A/B/C timing.
#[derive(Debug, Clone)]
pub struct KernelMeasurement {
    /// `transitive_closure` or `compose`.
    pub op: &'static str,
    /// Workload shape (`deep_chain` / `layered` / `cyclic_core` /
    /// `random`).
    pub workload: &'static str,
    /// Universe size.
    pub n_nodes: usize,
    /// Input pair count (left operand for compose).
    pub n_pairs: usize,
    /// Output pair count (all kernels agree; cross-checked).
    pub out_pairs: usize,
    /// Pair-kernel seconds per call.
    pub pairs_secs: f64,
    /// Bit-kernel seconds per call.
    pub bits_secs: f64,
    /// Condensation-kernel seconds per call (closure ops only).
    pub scc_secs: Option<f64>,
}

impl KernelMeasurement {
    /// How many times faster the bit kernel ran than the pair kernel.
    pub fn speedup(&self) -> f64 {
        self.pairs_secs / self.bits_secs.max(1e-12)
    }

    /// How many times faster the condensation pass ran than the
    /// semi-naive bit closure (the scc acceptance metric).
    pub fn scc_speedup_vs_bits(&self) -> Option<f64> {
        self.scc_secs.map(|scc| self.bits_secs / scc.max(1e-12))
    }
}

/// Time one closure workload through all three kernels.
fn measure_closure(
    workload: &'static str,
    base: NodePairSet,
    n: usize,
    reps: usize,
) -> KernelMeasurement {
    let referee = transitive_closure_pairs(&base);
    assert_eq!(
        referee,
        transitive_closure_bits(&base, n),
        "kernels disagree on closure ({workload})"
    );
    assert_eq!(
        referee,
        transitive_closure_scc(&base, n),
        "condensation disagrees on closure ({workload})"
    );
    let pairs_secs = time_avg_secs(
        || {
            std::hint::black_box(transitive_closure_pairs(&base));
        },
        reps,
    );
    let bits_secs = time_avg_secs(
        || {
            std::hint::black_box(transitive_closure_bits(&base, n));
        },
        reps,
    );
    let scc_secs = time_avg_secs(
        || {
            std::hint::black_box(transitive_closure_scc(&base, n));
        },
        reps,
    );
    KernelMeasurement {
        op: "transitive_closure",
        workload,
        n_nodes: n,
        n_pairs: base.len(),
        out_pairs: referee.len(),
        pairs_secs,
        bits_secs,
        scc_secs: Some(scc_secs),
    }
}

/// Run the kernel sweep. `full` widens the size range and the rep
/// count (the `repro` default); quick mode still covers the ≥ 1024-node
/// sizes the acceptance bar measures.
pub fn measure(full: bool) -> Vec<KernelMeasurement> {
    let sizes: &[usize] = if full {
        &[128, 512, 1024, 2048, 4096]
    } else {
        &[128, 512, 1024]
    };
    let reps = if full { 5 } else { 3 };
    let mut out = Vec::new();

    for &n in sizes {
        // Closure over a fork-shaped layered DAG (width n/16, fanout 2).
        out.push(measure_closure(
            "layered",
            layered_relation(n, (n / 16).max(2), 2, 0xC105 + n as u64),
            n,
            reps,
        ));
        // Closure over one deep chain: n-1 edges, n rounds, O(n²)
        // closure pairs — the semi-naive worst case.
        out.push(measure_closure(
            "deep_chain",
            deep_chain_relation(n, 0xDC + n as u64),
            n,
            reps,
        ));
        // Closure over a chain with an n/8-node cyclic core mid-way.
        out.push(measure_closure(
            "cyclic_core",
            cyclic_core_relation(n, (n / 8).max(2), 0xCC + n as u64),
            n,
            reps,
        ));

        // Composition of two random relations of 4n pairs each (the
        // join kernels; condensation does not apply).
        let a = random_relation(n, 4 * n, 0xA11CE + n as u64);
        let b = random_relation(n, 4 * n, 0xB0B + n as u64);
        let referee = compose_pairs_kernel(&a, &b);
        assert_eq!(
            referee,
            compose_pairs_bits(&a, &b, n),
            "kernels disagree on compose"
        );
        let pairs_secs = time_avg_secs(
            || {
                std::hint::black_box(compose_pairs_kernel(&a, &b));
            },
            reps,
        );
        let bits_secs = time_avg_secs(
            || {
                std::hint::black_box(compose_pairs_bits(&a, &b, n));
            },
            reps,
        );
        out.push(KernelMeasurement {
            op: "compose",
            workload: "random",
            n_nodes: n,
            n_pairs: a.len(),
            out_pairs: referee.len(),
            pairs_secs,
            bits_secs,
            scc_secs: None,
        });
    }
    out
}

/// Paper-style table of a sweep.
pub fn table(measurements: &[KernelMeasurement]) -> Table {
    let mut table = Table::new(
        "relalg kernel A/B/C: pairs vs blocked bitsets vs condensation",
        &[
            "op",
            "workload",
            "nodes",
            "in pairs",
            "out pairs",
            "pairs",
            "bits",
            "scc",
            "bits/pairs",
            "scc/bits",
        ],
    );
    for m in measurements {
        table.row(vec![
            m.op.to_owned(),
            m.workload.to_owned(),
            format!("{}", m.n_nodes),
            format!("{}", m.n_pairs),
            format!("{}", m.out_pairs),
            fmt_secs(m.pairs_secs),
            fmt_secs(m.bits_secs),
            m.scc_secs.map_or_else(|| "—".to_owned(), fmt_secs),
            format!("{:.1}x", m.speedup()),
            m.scc_speedup_vs_bits()
                .map_or_else(|| "—".to_owned(), |s| format!("{s:.1}x")),
        ]);
    }
    table
}

/// The JSON baseline record (`BENCH_relalg.json`). The kernel A/B/C
/// lands under `results`; [`run_and_record`] appends the session-level
/// lazy-vs-materialized sweep as a sibling `strategy_sweep` section.
pub fn to_json(measurements: &[KernelMeasurement]) -> String {
    let mut out = String::from("{\n  \"bench\": \"relalg_kernel\",\n  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let scc_fields = match (m.scc_secs, m.scc_speedup_vs_bits()) {
            (Some(secs), Some(speedup)) => {
                format!(", \"scc_secs\": {secs:.9}, \"scc_speedup_vs_bits\": {speedup:.3}")
            }
            _ => String::new(),
        };
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"workload\": \"{}\", \"n_nodes\": {}, \"n_pairs\": {}, \
             \"out_pairs\": {}, \"pairs_secs\": {:.9}, \"bits_secs\": {:.9}, \
             \"speedup\": {:.3}{}}}{}\n",
            m.op,
            m.workload,
            m.n_nodes,
            m.n_pairs,
            m.out_pairs,
            m.pairs_secs,
            m.bits_secs,
            m.speedup(),
            scc_fields,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run both sweeps — the kernel A/B/C and the session-level strategy
/// A/B — write the combined baseline to `path`, and return the two
/// rendered tables (kernels first).
pub fn run_and_record(full: bool, path: &str) -> std::io::Result<(Table, Table)> {
    let measurements = measure(full);
    let strategies = crate::lazybench::measure(full);
    let mut json = to_json(&measurements);
    let closer = "  ]\n}\n";
    debug_assert!(json.ends_with(closer));
    json.truncate(json.len() - closer.len());
    json.push_str(&format!(
        "  ],\n  \"strategy_sweep\": {}\n}}\n",
        crate::lazybench::to_json(&strategies)
    ));
    std::fs::write(path, json)?;
    Ok((table(&measurements), crate::lazybench::table(&strategies)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_bounded() {
        let a = layered_relation(256, 16, 2, 7);
        assert_eq!(a, layered_relation(256, 16, 2, 7));
        assert!(a.iter().all(|(u, v)| u.index() < 256 && v.index() < 256));
        let r = random_relation(100, 300, 7);
        assert!(r.iter().all(|(u, v)| u.index() < 100 && v.index() < 100));
        assert!(!r.is_empty());
    }

    #[test]
    fn json_is_well_formed() {
        let m = vec![
            KernelMeasurement {
                op: "compose",
                workload: "random",
                n_nodes: 10,
                n_pairs: 3,
                out_pairs: 2,
                pairs_secs: 1e-6,
                bits_secs: 5e-7,
                scc_secs: None,
            },
            KernelMeasurement {
                op: "transitive_closure",
                workload: "deep_chain",
                n_nodes: 10,
                n_pairs: 9,
                out_pairs: 45,
                pairs_secs: 1e-6,
                bits_secs: 5e-7,
                scc_secs: Some(1e-7),
            },
        ];
        let json = to_json(&m);
        assert!(json.contains("\"speedup\": 2.000"));
        assert!(json.contains("\"scc_speedup_vs_bits\": 5.000"));
        assert!(json.contains("\"workload\": \"deep_chain\""));
        // Compose rows carry no scc fields.
        assert!(!json
            .lines()
            .any(|l| l.contains("compose") && l.contains("scc")));
        // Balanced braces/brackets and a trailing-comma-free list.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn quick_sweep_has_an_scc_leg_per_closure_workload() {
        // Tiny smoke of the real measurement loop (reps=1, one size).
        let m = measure_closure("deep_chain", deep_chain_relation(128, 1), 128, 1);
        assert_eq!(m.out_pairs, 128 * 127 / 2);
        assert!(m.scc_secs.is_some());
        assert!(m.scc_speedup_vs_bits().unwrap() > 0.0);
    }
}
