//! Loopback load generation against `rpq-serve`: the source of
//! `BENCH_serve.json`.
//!
//! For each worker count, a fresh server is bound on an ephemeral
//! loopback port over the same warm store and driven two ways:
//!
//! * **closed loop** — one connection per client thread, each issuing
//!   requests back-to-back: measures the service's saturated
//!   throughput and the latency it sustains at full pipeline depth;
//! * **open loop** — up to 4 connections issue requests on a fixed
//!   arrival schedule at ~30% of the closed-loop throughput (capped at
//!   2k/s), with latency measured from the *scheduled* send time:
//!   queueing delay from a lagging server shows up in the tail instead
//!   of silently slowing the offered load (the coordinated-omission
//!   trap).
//!
//! The request mix is entry→exit evaluations of one index-answered
//! query over runs chosen round-robin — cheap per request, so the
//! sweep measures the serving machinery (framing, admission, shared
//! session contention) rather than raw evaluation.  Quantiles are
//! exact (sorted samples), not histogram estimates.

use crate::timing::Table;
use rpq_serve::protocol::{QuerySpec, RunAddr, WireMode, WireRequest, WireResponse};
use rpq_serve::{ServeClient, ServeConfig, Server};
use rpq_store::RunStore;
use rpq_workloads::{bioaid_like, runs};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency/throughput aggregate of one load loop.
#[derive(Debug, Clone)]
pub struct LoopStats {
    /// `"closed"` or `"open"`.
    pub loop_kind: &'static str,
    /// Client threads (= connections).
    pub clients: usize,
    /// Offered arrival rate (requests/s); 0 for closed loops.
    pub offered_rps: f64,
    /// Requests completed successfully.
    pub requests: u64,
    /// Requests that failed (transport or server error).
    pub errors: u64,
    /// Wall-clock seconds of the loop.
    pub wall_secs: f64,
    /// Achieved throughput (successful requests / wall).
    pub throughput_rps: f64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Worst observed latency, microseconds.
    pub max_us: f64,
}

/// One worker-count sweep point: the same store served with `workers`
/// in-flight slots, driven closed- then open-loop.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Server worker threads.
    pub workers: usize,
    /// Saturated (closed-loop) measurement.
    pub closed: LoopStats,
    /// Paced (open-loop) measurement.
    pub open: LoopStats,
}

/// Observability-overhead guard: request slices alternating between a
/// metrics/tracing-armed server and a dark one, paired per round.
#[derive(Debug, Clone)]
pub struct ObsGuard {
    /// Worker threads (= client connections) in both arms.
    pub workers: usize,
    /// Alternating slice pairs measured (medians taken).
    pub runs_per_arm: usize,
    /// Median slice throughput with metrics + span recording on.
    pub on_rps: f64,
    /// Median slice throughput with metrics + span recording off.
    pub off_rps: f64,
    /// Median of per-pair `(off − on) / off · 100` deltas — the
    /// throughput the instrumentation costs; negative values mean the
    /// armed arm measured faster (noise).
    pub overhead_pct: f64,
}

/// The full measurement.
#[derive(Debug, Clone)]
pub struct ServeMeasurement {
    /// Corpus size (runs).
    pub n_runs: usize,
    /// Smallest target edge count in the corpus.
    pub target_edges: usize,
    /// The query every request evaluates (entry→exit).
    pub query: String,
    /// CPUs the host exposed while measuring.
    pub available_parallelism: usize,
    /// Requests per client in the closed loop.
    pub requests_per_client: usize,
    /// The sweep.
    pub points: Vec<LoadPoint>,
    /// Metrics-on vs metrics-off delta.
    pub obs_guard: ObsGuard,
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir()
        .join("rpq_bench_serve")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quantile_us(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

pub(crate) fn aggregate(
    loop_kind: &'static str,
    clients: usize,
    offered_rps: f64,
    mut latencies_us: Vec<f64>,
    errors: u64,
    wall_secs: f64,
) -> LoopStats {
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let requests = latencies_us.len() as u64;
    LoopStats {
        loop_kind,
        clients,
        offered_rps,
        requests,
        errors,
        wall_secs,
        throughput_rps: requests as f64 / wall_secs.max(1e-9),
        p50_us: quantile_us(&latencies_us, 0.50),
        p99_us: quantile_us(&latencies_us, 0.99),
        max_us: latencies_us.last().copied().unwrap_or(0.0),
    }
}

/// One request against the server; returns the client-observed latency.
fn issue(client: &mut ServeClient, query: &str, run_index: u64, since: Instant) -> Result<f64, ()> {
    let request = WireRequest::Query(QuerySpec {
        query: query.to_owned(),
        policy: String::new(),
        strategy: String::new(),
        stages: false,
        run: RunAddr::Index(run_index),
        mode: WireMode::EntryExit,
    });
    match client.request(&request) {
        Ok(WireResponse::Outcome(_)) => Ok(since.elapsed().as_secs_f64() * 1e6),
        _ => Err(()),
    }
}

/// Closed loop: `clients` threads, each its own connection, requests
/// back-to-back.
fn closed_loop(
    addr: std::net::SocketAddr,
    query: &str,
    n_runs: usize,
    clients: usize,
    per_client: usize,
) -> LoopStats {
    let started = Instant::now();
    let all: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = ServeClient::connect_with_retry(addr, Duration::from_secs(5))
                        .expect("bench client connects");
                    let mut latencies = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let t0 = Instant::now();
                        if let Ok(us) = issue(&mut client, query, ((c + i) % n_runs) as u64, t0) {
                            latencies.push(us);
                        }
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench client"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    let latencies: Vec<f64> = all.iter().flatten().copied().collect();
    let errors = (clients * per_client) as u64 - latencies.len() as u64;
    aggregate("closed", clients, 0.0, latencies, errors, wall)
}

/// Open loop at a fixed offered rate: client `c` owns the arrivals
/// `i·clients + c`, each scheduled at `t₀ + arrival/rate`; latency runs
/// from the *schedule*, so server lag accumulates into the tail.
fn open_loop(
    addr: std::net::SocketAddr,
    query: &str,
    n_runs: usize,
    clients: usize,
    offered_rps: f64,
    duration: Duration,
) -> LoopStats {
    let per_client = ((offered_rps * duration.as_secs_f64()) / clients as f64).max(1.0) as usize;
    let started = Instant::now();
    let all: Vec<(Vec<f64>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = ServeClient::connect_with_retry(addr, Duration::from_secs(5))
                        .expect("bench client connects");
                    let mut latencies = Vec::with_capacity(per_client);
                    let mut errors = 0u64;
                    let t0 = Instant::now();
                    for i in 0..per_client {
                        let arrival = (i * clients + c) as f64 / offered_rps;
                        let scheduled = Duration::from_secs_f64(arrival);
                        if let Some(wait) = scheduled.checked_sub(t0.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        // Latency from the scheduled arrival, not the
                        // (possibly late) actual send.
                        let since = t0 + scheduled;
                        match issue(&mut client, query, ((c + i) % n_runs) as u64, since) {
                            Ok(us) => latencies.push(us),
                            Err(()) => errors += 1,
                        }
                    }
                    (latencies, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench client"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    let latencies: Vec<f64> = all.iter().flat_map(|(l, _)| l.iter().copied()).collect();
    let errors = all.iter().map(|(_, e)| *e).sum();
    aggregate("open", clients, offered_rps, latencies, errors, wall)
}

/// Bind one single-worker server over the scratch store with the
/// observability plane armed or disarmed, for the guard below.
fn obs_server(dir: &std::path::Path, on: bool) -> Server {
    let store = RunStore::open(dir).expect("reopen scratch store");
    // One worker: the sweep above already measures contention, and on
    // a shared CPU the single-threaded loop is the only configuration
    // quiet enough to resolve a few-percent delta.
    let server = Server::bind(
        store,
        &ServeConfig {
            workers: 1,
            queue: 256,
            observe: on,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback server");
    server.warm().expect("warm artifacts");
    server
}

/// Issue `per_slice` back-to-back requests on a standing connection;
/// returns the slice's throughput.
fn obs_slice(
    client: &mut ServeClient,
    query: &str,
    n_runs: usize,
    per_slice: usize,
    on: bool,
) -> f64 {
    // Span recording is process-global; arm it to match the server
    // this slice talks to (the dark server never opens a frame, but
    // the session inside it would still trace with recording left on).
    rpq_obs::set_enabled(on);
    let t0 = Instant::now();
    for i in 0..per_slice {
        let since = Instant::now();
        issue(client, query, (i % n_runs) as u64, since).expect("guard request");
    }
    per_slice as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Measure the observability overhead: an instrumented and a dark
/// server stand side by side over the same artifacts, and one client
/// thread alternates short request slices between them on standing
/// connections. Both arms therefore sample the same few milliseconds
/// of a shared host — co-tenant bursts and frequency shifts hit the
/// adjacent slices of *both* arms — and the median of per-pair deltas
/// discards the pairs a burst still managed to split. (Whole-run
/// arms measured back to back swing tens of percent here, dwarfing
/// the few-percent effect.) Leaves span recording enabled (the
/// process default) on return.
fn measure_obs_guard(
    dir: &std::path::Path,
    query: &str,
    n_runs: usize,
    per_slice: usize,
    pairs: usize,
) -> ObsGuard {
    let server_on = obs_server(dir, true);
    let server_off = obs_server(dir, false);
    let addr_on = server_on.local_addr().expect("bound address");
    let addr_off = server_off.local_addr().expect("bound address");
    let handle_on = server_on.shutdown_handle();
    let handle_off = server_off.shutdown_handle();
    let serving_on = std::thread::spawn(move || server_on.run(None));
    let serving_off = std::thread::spawn(move || server_off.run(None));
    let mut client_on =
        ServeClient::connect_with_retry(addr_on, Duration::from_secs(5)).expect("guard client");
    let mut client_off =
        ServeClient::connect_with_retry(addr_off, Duration::from_secs(5)).expect("guard client");
    // Warm both paths (unrecorded): page cache, allocator growth,
    // plan/artifact caches, branch history.
    obs_slice(&mut client_on, query, n_runs, per_slice, true);
    obs_slice(&mut client_off, query, n_runs, per_slice, false);
    let mut on_slices = Vec::with_capacity(pairs);
    let mut off_slices = Vec::with_capacity(pairs);
    for round in 0..pairs {
        // Alternate which arm leads so ordering bias cancels too.
        if round % 2 == 0 {
            on_slices.push(obs_slice(&mut client_on, query, n_runs, per_slice, true));
            off_slices.push(obs_slice(&mut client_off, query, n_runs, per_slice, false));
        } else {
            off_slices.push(obs_slice(&mut client_off, query, n_runs, per_slice, false));
            on_slices.push(obs_slice(&mut client_on, query, n_runs, per_slice, true));
        }
    }
    rpq_obs::set_enabled(true);
    handle_on.shutdown();
    handle_off.shutdown();
    serving_on.join().expect("server thread");
    serving_off.join().expect("server thread");
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite throughput"));
        v[v.len() / 2]
    };
    let deltas: Vec<f64> = on_slices
        .iter()
        .zip(&off_slices)
        .map(|(&on, &off)| (off - on) / off.max(1e-9) * 100.0)
        .collect();
    if std::env::var_os("RPQ_OBS_GUARD_DEBUG").is_some() {
        eprintln!("obs_guard on:  {on_slices:.0?}");
        eprintln!("obs_guard off: {off_slices:.0?}");
        eprintln!("obs_guard deltas: {deltas:.1?}");
    }
    ObsGuard {
        workers: 1,
        runs_per_arm: pairs,
        on_rps: median(on_slices),
        off_rps: median(off_slices),
        overhead_pct: median(deltas),
    }
}

/// Run the sweep. `full` widens the corpus, client counts and request
/// budget; quick mode keeps CI fast.
pub fn measure(full: bool) -> ServeMeasurement {
    let (n_runs, target_edges, per_client, worker_counts): (usize, usize, usize, &[usize]) = if full
    {
        (12, 800, 500, &[1, 2, 4, 8])
    } else {
        (6, 300, 120, &[1, 2, 4])
    };
    let real = bioaid_like();
    let spec = Arc::new(real.spec.clone());
    // An index-answered single-symbol query: evaluation is a warm
    // lookup, so the sweep stresses the serving machinery.
    let query = real.pool_tags[0].clone();

    let dir = scratch_dir();
    {
        let store = RunStore::create(&dir, Arc::clone(&spec)).expect("create scratch store");
        for run in runs::corpus(&spec, n_runs, target_edges, 0x5E12).expect("bioaid derives") {
            store.ingest(&run).expect("ingest corpus run");
        }
        store
            .materialize_artifacts()
            .expect("materialize artifacts");
        assert_eq!(store.len(), n_runs, "corpus must not self-deduplicate");
    }

    let mut points = Vec::new();
    for &workers in worker_counts {
        let store = RunStore::open(&dir).expect("reopen scratch store");
        let server = Server::bind(
            store,
            &ServeConfig {
                workers,
                queue: 256,
                ..ServeConfig::default()
            },
        )
        .expect("bind loopback server");
        server.warm().expect("warm artifacts");
        let addr = server.local_addr().expect("bound address");
        let handle = server.shutdown_handle();
        let serving = std::thread::spawn(move || server.run(None));

        // One connection per worker: the protocol is request/response
        // over persistent connections and workers are the in-flight
        // bound, so extra connections would serialize whole sessions
        // behind the queue instead of adding pipeline depth.
        let clients = workers;
        let closed = closed_loop(addr, &query, n_runs, clients, per_client);
        // Pace the open loop at ~30% of what the closed loop achieved,
        // capped at 2k/s over at most 4 connections: below saturation,
        // so the tail reflects jitter rather than meltdown — and within
        // what timer-driven client threads can actually offer when they
        // share the CPUs with the server (each wakeup pays a runqueue
        // delay, so an oversubscribed generator melts its own schedule
        // long before the server is the bottleneck).
        let open_clients = clients.min(4);
        let offered = (closed.throughput_rps * 0.3).clamp(50.0, 2_000.0);
        let open = open_loop(
            addr,
            &query,
            n_runs,
            open_clients,
            offered,
            Duration::from_millis(if full { 2000 } else { 800 }),
        );
        handle.shutdown();
        serving.join().expect("server thread");
        points.push(LoadPoint {
            workers,
            closed,
            open,
        });
    }

    // Longer windows than the sweep's: each arm run must dwarf the
    // container's scheduling jitter for a few-percent delta to resolve.
    // Slices short enough (tens of ms) that co-tenant bursts straddle
    // a pair instead of swallowing one arm; enough pairs for a stable
    // median.
    let (guard_per_slice, guard_pairs) = if full { (1_500, 31) } else { (300, 3) };
    let obs_guard = measure_obs_guard(&dir, &query, n_runs, guard_per_slice, guard_pairs);

    let _ = std::fs::remove_dir_all(&dir);
    ServeMeasurement {
        n_runs,
        target_edges,
        query,
        available_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        requests_per_client: per_client,
        points,
        obs_guard,
    }
}

/// Paper-style table of a measurement.
pub fn table(m: &ServeMeasurement) -> Table {
    let mut table = Table::new(
        &format!(
            "serve loopback: {} runs (≥{} edges), query {:?}, {} CPU(s)",
            m.n_runs, m.target_edges, m.query, m.available_parallelism
        ),
        &["workers", "loop", "rps", "p50", "p99", "errors"],
    );
    for point in &m.points {
        for leg in [&point.closed, &point.open] {
            table.row(vec![
                format!("{}", point.workers),
                if leg.loop_kind == "open" {
                    format!("open@{:.0}/s", leg.offered_rps)
                } else {
                    leg.loop_kind.to_owned()
                },
                format!("{:.0}", leg.throughput_rps),
                format!("{:.0} µs", leg.p50_us),
                format!("{:.0} µs", leg.p99_us),
                format!("{}", leg.errors),
            ]);
        }
    }
    table.row(vec![
        format!("{}", m.obs_guard.workers),
        "obs on/off".to_owned(),
        format!("{:.0}/{:.0}", m.obs_guard.on_rps, m.obs_guard.off_rps),
        String::new(),
        String::new(),
        format!("{:+.1}%", m.obs_guard.overhead_pct),
    ]);
    table
}

fn leg_json(leg: &LoopStats) -> String {
    format!(
        "{{\"loop\": \"{}\", \"clients\": {}, \"offered_rps\": {:.1}, \
         \"requests\": {}, \"errors\": {}, \"wall_secs\": {:.6}, \
         \"throughput_rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
         \"max_us\": {:.1}}}",
        leg.loop_kind,
        leg.clients,
        leg.offered_rps,
        leg.requests,
        leg.errors,
        leg.wall_secs,
        leg.throughput_rps,
        leg.p50_us,
        leg.p99_us,
        leg.max_us,
    )
}

/// The JSON baseline record (`BENCH_serve.json`).
pub fn to_json(m: &ServeMeasurement) -> String {
    let mut out = String::from("{\n  \"bench\": \"serve_loopback\",\n");
    out.push_str(&format!(
        "  \"dataset\": \"bioaid\",\n  \"n_runs\": {},\n  \"target_edges\": {},\n  \
         \"query\": \"{}\",\n  \"requests_per_client\": {},\n  \
         \"available_parallelism\": {},\n",
        m.n_runs, m.target_edges, m.query, m.requests_per_client, m.available_parallelism
    ));
    out.push_str(
        "  \"note\": \"closed loop saturates the worker pool; the open loop offers ~30% of \
         the measured closed throughput (capped at 2k/s over at most 4 connections) with \
         latency clocked from scheduled arrivals. Worker scaling is bounded by \
         available_parallelism — on a 1-CPU host expect parity-or-worse across worker \
         counts (more workers only add contention) and scheduling-delay-dominated open-\
         loop tails; rerun `repro -- serve` on multicore hardware for the real curve.\",\n",
    );
    out.push_str("  \"points\": [\n");
    for (i, point) in m.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"closed\": {}, \"open\": {}}}{}\n",
            point.workers,
            leg_json(&point.closed),
            leg_json(&point.open),
            if i + 1 < m.points.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"obs_guard\": {{\"workers\": {}, \"runs_per_arm\": {}, \
         \"metrics_on_rps\": {:.1}, \"metrics_off_rps\": {:.1}, \
         \"overhead_pct\": {:.2}}}\n",
        m.obs_guard.workers,
        m.obs_guard.runs_per_arm,
        m.obs_guard.on_rps,
        m.obs_guard.off_rps,
        m.obs_guard.overhead_pct,
    ));
    out.push_str("}\n");
    out
}

/// Refresh the `serve_loopback` section of the benchmark file at
/// `path` (preserving any router section) and return the rendered
/// table.
pub fn run_and_record(full: bool, path: &str) -> std::io::Result<Table> {
    let m = measure(full);
    crate::benchfile::update_section(path, "serve_loopback", &to_json(&m))?;
    Ok(table(&m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_measurement_produces_sound_numbers() {
        let m = measure(false);
        assert_eq!(m.points.len(), 3);
        for point in &m.points {
            for leg in [&point.closed, &point.open] {
                assert!(leg.requests > 0, "{leg:?}");
                assert_eq!(leg.errors, 0, "{leg:?}");
                assert!(leg.throughput_rps > 0.0, "{leg:?}");
                assert!(leg.p50_us > 0.0 && leg.p50_us <= leg.p99_us, "{leg:?}");
                assert!(leg.p99_us <= leg.max_us, "{leg:?}");
            }
            assert!(point.open.offered_rps > 0.0);
        }
        assert!(m.obs_guard.on_rps > 0.0 && m.obs_guard.off_rps > 0.0);
        assert!(m.obs_guard.overhead_pct.is_finite());
        assert!(rpq_obs::enabled(), "guard must restore span recording");
        let json = to_json(&m);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"p99_us\""));
        assert!(json.contains("\"obs_guard\""));
        assert!(table(&m).render().contains("obs on/off"));
        assert!(table(&m).render().contains("closed"));
    }
}
