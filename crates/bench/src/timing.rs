//! Minimal timing and table-rendering utilities for the repro harness.

use std::time::Instant;

/// Average seconds per invocation over `reps` runs (the paper reports
/// "averages of 5 sample runs per setting").
pub fn time_avg_secs<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let reps = reps.max(1);
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Best (minimum) and average seconds over `reps` runs.
pub fn time_stats_secs<F: FnMut()>(mut f: F, reps: usize) -> (f64, f64) {
    let reps = reps.max(1);
    let mut total = 0.0;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        let t = start.elapsed().as_secs_f64();
        total += t;
        best = best.min(t);
    }
    (best, total / reps as f64)
}

/// A plain-text table printer with aligned columns.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a figure title.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.2}ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Fig Test", &["x", "value"]);
        t.row(vec!["1".into(), "10.0us".into()]);
        t.row(vec!["1000".into(), "7ms".into()]);
        let s = t.render();
        assert!(s.contains("== Fig Test =="));
        assert!(s.contains("1000"));
    }

    #[test]
    fn fmt_units() {
        assert!(fmt_secs(5e-9).ends_with("ns"));
        assert!(fmt_secs(5e-6).ends_with("us"));
        assert!(fmt_secs(5e-3).ends_with("ms"));
        assert!(fmt_secs(5.0).ends_with('s'));
    }

    #[test]
    fn timing_is_positive() {
        let t = time_avg_secs(
            || {
                std::hint::black_box(1 + 1);
            },
            10,
        );
        assert!(t >= 0.0);
        let (best, avg) = time_stats_secs(
            || {
                std::hint::black_box(1 + 1);
            },
            5,
        );
        assert!(best <= avg + 1e-12);
    }
}
