//! Router-tier load generation: the `router_fleet` section of
//! `BENCH_serve.json`.
//!
//! Two measurements, both loopback and in-process:
//!
//! * **shard sweep** — the same corpus served by 1/2/4 backends with a
//!   router in front, driven closed-loop by a fixed client count:
//!   throughput and tail latency of the extra tier as the fleet
//!   scales (every backend holds the full corpus, so the sweep
//!   isolates routing cost from data placement);
//! * **failover leg** — a free-running closed loop against the widest
//!   fleet while one backend is killed mid-run: latency and error
//!   counts split into before / spike (the first second after the
//!   kill, while failed attempts burn the per-attempt deadline and
//!   the breaker ejects the corpse) / recovered (the rest).
//!
//! Requests address runs by fingerprint — the router's fast path; the
//! positional path adds a fleet inventory scan per request and is not
//! what a load balancer would be fed.

use crate::servebench::{aggregate, LoopStats};
use crate::timing::Table;
use rpq_labeling::Run;
use rpq_router::{Router, RouterConfig};
use rpq_serve::protocol::{QuerySpec, RunAddr, WireMode, WireRequest, WireResponse};
use rpq_serve::{RetryPolicy, ServeClient, ServeConfig, Server};
use rpq_store::RunStore;
use rpq_workloads::{bioaid_like, runs};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One shard-count sweep point.
#[derive(Debug, Clone)]
pub struct RouterPoint {
    /// Backend count behind the router.
    pub shards: usize,
    /// Saturated closed-loop measurement through the router.
    pub closed: LoopStats,
}

/// The kill-a-backend leg: one continuous closed loop, phase-split at
/// the kill instant.
#[derive(Debug, Clone)]
pub struct FailoverLeg {
    /// Backend count (the widest sweep point).
    pub shards: usize,
    /// Seconds into the loop the backend was killed.
    pub kill_at_secs: f64,
    /// Samples before the kill.
    pub before: LoopStats,
    /// The first second after the kill: failover spike.
    pub spike: LoopStats,
    /// The remainder: post-ejection recovery.
    pub recovered: LoopStats,
}

/// The full router-tier measurement.
#[derive(Debug, Clone)]
pub struct RouterMeasurement {
    /// Corpus size (runs).
    pub n_runs: usize,
    /// Smallest target edge count in the corpus.
    pub target_edges: usize,
    /// The query every request evaluates (entry→exit, by fingerprint).
    pub query: String,
    /// CPUs the host exposed while measuring.
    pub available_parallelism: usize,
    /// Requests per client in each closed sweep loop.
    pub requests_per_client: usize,
    /// Client threads (= connections) per loop.
    pub clients: usize,
    /// The shard sweep.
    pub points: Vec<RouterPoint>,
    /// The kill-a-backend leg.
    pub failover: FailoverLeg,
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("rpq_bench_router")
        .join(format!("{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fleet of `shards` warm backends, each over the full corpus, with
/// a router in front.
struct Fleet {
    router: std::net::SocketAddr,
    router_handle: rpq_router::ShutdownHandle,
    backend_handles: Vec<rpq_serve::ShutdownHandle>,
    threads: Vec<std::thread::JoinHandle<()>>,
    dirs: Vec<PathBuf>,
}

impl Fleet {
    fn start(
        tag: &str,
        shards: usize,
        spec: &Arc<rpq_grammar::Specification>,
        corpus: &[Run],
    ) -> Fleet {
        let mut backends = Vec::new();
        let mut backend_handles = Vec::new();
        let mut threads = Vec::new();
        let mut dirs = Vec::new();
        for b in 0..shards {
            let dir = scratch_dir(&format!("{tag}_b{b}"));
            let store = RunStore::create(&dir, Arc::clone(spec)).expect("create scratch store");
            for run in corpus {
                store.ingest(run).expect("ingest corpus run");
            }
            store
                .materialize_artifacts()
                .expect("materialize artifacts");
            let server = Server::bind(
                store,
                &ServeConfig {
                    workers: 2,
                    queue: 256,
                    ..ServeConfig::default()
                },
            )
            .expect("bind backend");
            server.warm().expect("warm artifacts");
            backends.push(server.local_addr().expect("backend address"));
            backend_handles.push(server.shutdown_handle());
            threads.push(std::thread::spawn(move || {
                server.run(None);
            }));
            dirs.push(dir);
        }
        let router = Router::bind(&RouterConfig {
            backends,
            replication: 2.min(shards),
            workers: 4,
            queue: 256,
            deadline: Duration::from_secs(2),
            retry: RetryPolicy::fixed(Duration::from_millis(2), Duration::from_millis(10)),
            eject_after: 2,
            cooldown: Duration::from_millis(300),
            probe_interval: Duration::from_millis(100),
            // Every backend already holds everything; the syncer would
            // only add inventory-scan noise to the measurement.
            sync_interval: None,
            ..RouterConfig::default()
        })
        .expect("bind router");
        let addr = router.local_addr().expect("router address");
        let router_handle = router.shutdown_handle();
        threads.push(std::thread::spawn(move || {
            router.run(None);
        }));
        Fleet {
            router: addr,
            router_handle,
            backend_handles,
            threads,
            dirs,
        }
    }

    fn stop(mut self) {
        self.router_handle.shutdown();
        for handle in &self.backend_handles {
            handle.shutdown();
        }
        for thread in self.threads.drain(..) {
            thread.join().expect("fleet thread");
        }
        for dir in &self.dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// One fingerprint-addressed request; returns the observed latency.
fn issue_fp(
    client: &mut ServeClient,
    query: &str,
    fp: (u64, u64),
    since: Instant,
) -> Result<f64, ()> {
    let request = WireRequest::Query(QuerySpec {
        query: query.to_owned(),
        policy: String::new(),
        strategy: String::new(),
        stages: false,
        run: RunAddr::Fingerprint(fp.0, fp.1),
        mode: WireMode::EntryExit,
    });
    match client.request(&request) {
        Ok(WireResponse::Outcome(_)) => Ok(since.elapsed().as_secs_f64() * 1e6),
        _ => Err(()),
    }
}

/// Closed loop through the router: `clients` connections, requests
/// back-to-back over the corpus round-robin.
fn closed_loop(
    addr: std::net::SocketAddr,
    query: &str,
    fps: &[(u64, u64)],
    clients: usize,
    per_client: usize,
) -> LoopStats {
    let started = Instant::now();
    let all: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = ServeClient::connect_with_retry(addr, Duration::from_secs(5))
                        .expect("bench client connects");
                    let mut latencies = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let t0 = Instant::now();
                        if let Ok(us) = issue_fp(&mut client, query, fps[(c + i) % fps.len()], t0) {
                            latencies.push(us);
                        }
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench client"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    let latencies: Vec<f64> = all.iter().flatten().copied().collect();
    let errors = (clients * per_client) as u64 - latencies.len() as u64;
    aggregate("closed", clients, 0.0, latencies, errors, wall)
}

/// The failover loop: free-running clients for `duration`, one backend
/// killed at `kill_at`; each sample is (send-offset, latency, ok).
fn failover_loop(
    fleet: &Fleet,
    query: &str,
    fps: &[(u64, u64)],
    clients: usize,
    duration: Duration,
    kill_at: Duration,
    victim: usize,
) -> (Vec<(f64, f64, bool)>, f64) {
    let started = Instant::now();
    let addr = fleet.router;
    let victim_handle = &fleet.backend_handles[victim];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = ServeClient::connect_with_retry(addr, Duration::from_secs(5))
                        .expect("bench client connects");
                    let mut samples = Vec::new();
                    let mut i = 0usize;
                    while started.elapsed() < duration {
                        let at = started.elapsed().as_secs_f64();
                        let t0 = Instant::now();
                        let ok = issue_fp(&mut client, query, fps[(c + i) % fps.len()], t0);
                        samples.push((
                            at,
                            ok.unwrap_or_else(|()| t0.elapsed().as_secs_f64() * 1e6),
                            ok.is_ok(),
                        ));
                        i += 1;
                    }
                    samples
                })
            })
            .collect();
        std::thread::sleep(kill_at.saturating_sub(started.elapsed()));
        let killed_at = started.elapsed().as_secs_f64();
        victim_handle.shutdown();
        let samples = handles
            .into_iter()
            .flat_map(|h| h.join().expect("bench client"))
            .collect();
        (samples, killed_at)
    })
}

fn phase(
    loop_kind: &'static str,
    clients: usize,
    samples: &[(f64, f64, bool)],
    from: f64,
    to: f64,
    wall: f64,
) -> LoopStats {
    let in_phase: Vec<&(f64, f64, bool)> = samples
        .iter()
        .filter(|(at, _, _)| *at >= from && *at < to)
        .collect();
    let latencies: Vec<f64> = in_phase
        .iter()
        .filter(|(_, _, ok)| *ok)
        .map(|(_, us, _)| *us)
        .collect();
    let errors = (in_phase.len() - latencies.len()) as u64;
    aggregate(loop_kind, clients, 0.0, latencies, errors, wall)
}

/// Run the sweep. `full` widens the corpus, request budget and fleet.
pub fn measure(full: bool) -> RouterMeasurement {
    let (n_runs, target_edges, per_client, shard_counts, fail_secs): (
        usize,
        usize,
        usize,
        &[usize],
        f64,
    ) = if full {
        (8, 400, 400, &[1, 2, 4], 3.0)
    } else {
        (4, 200, 100, &[1, 2], 1.2)
    };
    let clients = 4;
    let real = bioaid_like();
    let spec = Arc::new(real.spec.clone());
    let query = real.pool_tags[0].clone();
    let corpus = runs::corpus(&spec, n_runs, target_edges, 0x5E12).expect("bioaid derives");
    let fps: Vec<(u64, u64)> = corpus.iter().map(|run| run.fingerprint()).collect();

    let mut points = Vec::new();
    for &shards in shard_counts {
        let fleet = Fleet::start(&format!("s{shards}"), shards, &spec, &corpus);
        let closed = closed_loop(fleet.router, &query, &fps, clients, per_client);
        fleet.stop();
        points.push(RouterPoint { shards, closed });
    }

    // Failover: the widest fleet, one backend killed mid-loop. With
    // every backend holding the corpus and R=2, the router's retry
    // path absorbs the kill; the spike window shows its price.
    let shards = *shard_counts.last().expect("non-empty sweep");
    let fleet = Fleet::start("failover", shards, &spec, &corpus);
    let duration = Duration::from_secs_f64(fail_secs);
    let kill_at = Duration::from_secs_f64(fail_secs * 0.4);
    let (samples, killed_at) =
        failover_loop(&fleet, &query, &fps, clients, duration, kill_at, shards - 1);
    fleet.stop();
    let spike_end = killed_at + 1.0;
    let failover = FailoverLeg {
        shards,
        kill_at_secs: killed_at,
        before: phase("before", clients, &samples, 0.0, killed_at, killed_at),
        spike: phase(
            "spike",
            clients,
            &samples,
            killed_at,
            spike_end,
            (fail_secs - killed_at).min(1.0),
        ),
        recovered: phase(
            "recovered",
            clients,
            &samples,
            spike_end,
            f64::INFINITY,
            (fail_secs - spike_end).max(1e-9),
        ),
    };

    RouterMeasurement {
        n_runs,
        target_edges,
        query,
        available_parallelism: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        requests_per_client: per_client,
        clients,
        points,
        failover,
    }
}

/// Paper-style table of a measurement.
pub fn table(m: &RouterMeasurement) -> Table {
    let mut table = Table::new(
        &format!(
            "router fleet: {} runs (≥{} edges), query {:?}, {} client(s), {} CPU(s)",
            m.n_runs, m.target_edges, m.query, m.clients, m.available_parallelism
        ),
        &["shards", "leg", "rps", "p50", "p99", "errors"],
    );
    for point in &m.points {
        table.row(vec![
            format!("{}", point.shards),
            "closed".to_owned(),
            format!("{:.0}", point.closed.throughput_rps),
            format!("{:.0} µs", point.closed.p50_us),
            format!("{:.0} µs", point.closed.p99_us),
            format!("{}", point.closed.errors),
        ]);
    }
    for leg in [&m.failover.before, &m.failover.spike, &m.failover.recovered] {
        table.row(vec![
            format!("{}", m.failover.shards),
            format!("kill:{}", leg.loop_kind),
            format!("{:.0}", leg.throughput_rps),
            format!("{:.0} µs", leg.p50_us),
            format!("{:.0} µs", leg.p99_us),
            format!("{}", leg.errors),
        ]);
    }
    table
}

fn leg_json(leg: &LoopStats) -> String {
    format!(
        "{{\"leg\": \"{}\", \"clients\": {}, \"requests\": {}, \"errors\": {}, \
         \"throughput_rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}}}",
        leg.loop_kind,
        leg.clients,
        leg.requests,
        leg.errors,
        leg.throughput_rps,
        leg.p50_us,
        leg.p99_us,
        leg.max_us,
    )
}

/// The JSON section body for `BENCH_serve.json`.
pub fn to_json(m: &RouterMeasurement) -> String {
    let mut out = String::from("{\n    \"bench\": \"router_fleet\",\n");
    out.push_str(&format!(
        "    \"dataset\": \"bioaid\",\n    \"n_runs\": {},\n    \"target_edges\": {},\n    \
         \"query\": \"{}\",\n    \"requests_per_client\": {},\n    \"clients\": {},\n    \
         \"available_parallelism\": {},\n",
        m.n_runs,
        m.target_edges,
        m.query,
        m.requests_per_client,
        m.clients,
        m.available_parallelism
    ));
    out.push_str(
        "    \"note\": \"closed loops through the router, runs addressed by fingerprint, \
         every backend holding the full corpus with R=2. The failover leg kills one backend \
         mid-loop: the spike window is the first second after the kill, while failed \
         attempts burn the per-attempt deadline until the breaker ejects the corpse; errors \
         stay 0 because the router retries the surviving replica. Single-CPU hosts serialize \
         router, backends and clients, so shard scaling reads as overhead there.\",\n",
    );
    out.push_str("    \"points\": [\n");
    for (i, point) in m.points.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"shards\": {}, \"closed\": {}}}{}\n",
            point.shards,
            leg_json(&point.closed),
            if i + 1 < m.points.len() { "," } else { "" },
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"failover\": {{\"shards\": {}, \"kill_at_secs\": {:.3},\n      \
         \"before\": {},\n      \"spike\": {},\n      \"recovered\": {}}}\n",
        m.failover.shards,
        m.failover.kill_at_secs,
        leg_json(&m.failover.before),
        leg_json(&m.failover.spike),
        leg_json(&m.failover.recovered),
    ));
    out.push_str("  }");
    out
}

/// Refresh the `router_fleet` section of the benchmark file at `path`
/// (preserving the serve section) and return the rendered table.
pub fn run_and_record(full: bool, path: &str) -> std::io::Result<Table> {
    let m = measure(full);
    crate::benchfile::update_section(path, "router_fleet", &to_json(&m))?;
    Ok(table(&m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_measurement_produces_sound_numbers() {
        let m = measure(false);
        assert_eq!(m.points.len(), 2);
        for point in &m.points {
            assert!(point.closed.requests > 0, "{point:?}");
            assert_eq!(point.closed.errors, 0, "{point:?}");
            assert!(point.closed.p50_us > 0.0, "{point:?}");
            assert!(point.closed.p50_us <= point.closed.p99_us, "{point:?}");
        }
        // The kill is absorbed: phases on both sides of it answered
        // requests, and nothing surfaced as a client-visible error.
        assert!(m.failover.before.requests > 0, "{:?}", m.failover);
        assert!(m.failover.spike.requests + m.failover.recovered.requests > 0);
        assert_eq!(m.failover.before.errors, 0, "{:?}", m.failover);
        assert_eq!(
            m.failover.spike.errors + m.failover.recovered.errors,
            0,
            "{:?}",
            m.failover
        );
        let json = to_json(&m);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"failover\""));
        assert!(table(&m).render().contains("kill:spike"));
    }
}
