//! Compact binary codec over the serde shim's [`Value`] data model.
//!
//! The run store persists runs and their derived indexes as binary
//! files rather than JSON: a 2K-edge run's JSON rendering repeats every
//! struct field name per edge, while this codec interns strings on
//! first sight (later occurrences are one- or two-byte table
//! references) and LEB128-encodes every integer. Encoded sizes land at
//! roughly a quarter of the JSON text for typical runs, and decoding
//! does no UTF-8 re-validation of repeated keys.
//!
//! Format: a 5-byte header (magic `RPQB` + version), then one value,
//! recursively:
//!
//! | tag  | payload                                             |
//! |------|-----------------------------------------------------|
//! | 0x00 | null                                                |
//! | 0x01 | false                                               |
//! | 0x02 | true                                                |
//! | 0x03 | unsigned int — varint                               |
//! | 0x04 | signed int — zigzag varint                          |
//! | 0x05 | float — 8 bytes little-endian IEEE 754              |
//! | 0x06 | string literal — varint length + UTF-8, interned    |
//! | 0x07 | string back-reference — varint intern-table index   |
//! | 0x08 | sequence — varint count + values                    |
//! | 0x09 | map — varint count + (string, value) pairs          |
//! | 0x0a | byte buffer — varint length + raw bytes             |
//!
//! Both sides maintain the intern table implicitly: every literal
//! string (tag 0x06), wherever it appears, is appended; tag 0x07
//! refers to it by table position. Map keys use the same two string
//! forms, without a value tag of their own.

use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fmt;

/// File magic (`RPQB`) + format version.
const MAGIC: [u8; 4] = *b"RPQB";
const VERSION: u8 = 1;

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_UINT: u8 = 0x03;
const TAG_INT: u8 = 0x04;
const TAG_FLOAT: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_STR_REF: u8 = 0x07;
const TAG_SEQ: u8 = 0x08;
const TAG_MAP: u8 = 0x09;
const TAG_BYTES: u8 = 0x0a;

/// A decode failure (truncated, corrupt or version-mismatched bytes).
#[derive(Debug, Clone)]
pub struct CodecError(String);

impl CodecError {
    fn new(message: impl Into<String>) -> CodecError {
        CodecError(message.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CodecError {}

impl From<DeError> for CodecError {
    fn from(e: DeError) -> CodecError {
        CodecError(e.0)
    }
}

/// Encode any serializable value to the binary format.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut enc = Encoder {
        out: Vec::with_capacity(256),
        interned: HashMap::new(),
    };
    enc.out.extend_from_slice(&MAGIC);
    enc.out.push(VERSION);
    enc.value(&value.to_value());
    enc.out
}

/// Decode a value encoded by [`to_bytes`].
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut dec = Decoder {
        bytes,
        pos: 0,
        table: Vec::new(),
    };
    if bytes.len() < 5 || bytes[..4] != MAGIC {
        return Err(CodecError::new("not an rpq binary file (bad magic)"));
    }
    if bytes[4] != VERSION {
        return Err(CodecError::new(format!(
            "unsupported rpq binary version {} (this build reads {VERSION})",
            bytes[4]
        )));
    }
    dec.pos = 5;
    let value = dec.value()?;
    if dec.pos != dec.bytes.len() {
        return Err(CodecError::new(format!(
            "trailing bytes at offset {}",
            dec.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Encoder.
// ---------------------------------------------------------------------

struct Encoder {
    out: Vec<u8>,
    interned: HashMap<String, u64>,
}

impl Encoder {
    fn value(&mut self, value: &Value) {
        match value {
            Value::Null => self.out.push(TAG_NULL),
            Value::Bool(false) => self.out.push(TAG_FALSE),
            Value::Bool(true) => self.out.push(TAG_TRUE),
            Value::UInt(n) => {
                self.out.push(TAG_UINT);
                put_varint(&mut self.out, *n);
            }
            Value::Int(n) => {
                self.out.push(TAG_INT);
                put_varint(&mut self.out, zigzag(*n));
            }
            Value::Float(x) => {
                self.out.push(TAG_FLOAT);
                self.out.extend_from_slice(&x.to_le_bytes());
            }
            Value::Str(s) => self.string(s),
            Value::Bytes(bytes) => {
                self.out.push(TAG_BYTES);
                put_varint(&mut self.out, bytes.len() as u64);
                self.out.extend_from_slice(bytes);
            }
            Value::Seq(items) => {
                self.out.push(TAG_SEQ);
                put_varint(&mut self.out, items.len() as u64);
                for item in items {
                    self.value(item);
                }
            }
            Value::Map(entries) => {
                self.out.push(TAG_MAP);
                put_varint(&mut self.out, entries.len() as u64);
                for (key, item) in entries {
                    self.string(key);
                    self.value(item);
                }
            }
        }
    }

    fn string(&mut self, s: &str) {
        if let Some(&index) = self.interned.get(s) {
            self.out.push(TAG_STR_REF);
            put_varint(&mut self.out, index);
            return;
        }
        let index = self.interned.len() as u64;
        self.interned.insert(s.to_owned(), index);
        self.out.push(TAG_STR);
        put_varint(&mut self.out, s.len() as u64);
        self.out.extend_from_slice(s.as_bytes());
    }
}

// ---------------------------------------------------------------------
// Decoder.
// ---------------------------------------------------------------------

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    table: Vec<String>,
}

impl Decoder<'_> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn byte(&mut self) -> Result<u8, CodecError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| CodecError::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            let payload = u64::from(b & 0x7f);
            // The 10th byte carries only u64 bit 63: any higher payload
            // bit (or an 11th byte) must error, not silently truncate
            // to a plausible wrong value.
            if shift >= 64 || (shift == 63 && payload > 1) {
                return Err(CodecError::new("varint overflows u64"));
            }
            v |= payload << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// A count prefix sanity-checked against the remaining bytes (each
    /// element takes at least one), so a corrupt prefix cannot drive a
    /// multi-gigabyte allocation.
    fn count(&mut self, per_element: usize) -> Result<usize, CodecError> {
        let n = self.varint()?;
        let limit = (self.remaining() / per_element.max(1)) as u64;
        if n > limit {
            return Err(CodecError::new(format!(
                "count {n} exceeds remaining input"
            )));
        }
        Ok(n as usize)
    }

    fn value(&mut self) -> Result<Value, CodecError> {
        match self.byte()? {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_UINT => Ok(Value::UInt(self.varint()?)),
            TAG_INT => Ok(Value::Int(unzigzag(self.varint()?))),
            TAG_FLOAT => {
                if self.remaining() < 8 {
                    return Err(CodecError::new("truncated float"));
                }
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&self.bytes[self.pos..self.pos + 8]);
                self.pos += 8;
                Ok(Value::Float(f64::from_le_bytes(raw)))
            }
            TAG_STR | TAG_STR_REF => {
                // Re-dispatch through the shared string reader.
                self.pos -= 1;
                self.string().map(Value::Str)
            }
            TAG_BYTES => {
                let len = self.count(1)?;
                let bytes = self.bytes[self.pos..self.pos + len].to_vec();
                self.pos += len;
                Ok(Value::Bytes(bytes))
            }
            TAG_SEQ => {
                let n = self.count(1)?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value()?);
                }
                Ok(Value::Seq(items))
            }
            TAG_MAP => {
                let n = self.count(2)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = self.string()?;
                    entries.push((key, self.value()?));
                }
                Ok(Value::Map(entries))
            }
            other => Err(CodecError::new(format!(
                "unknown value tag {other:#04x} at offset {}",
                self.pos - 1
            ))),
        }
    }

    fn string(&mut self) -> Result<String, CodecError> {
        match self.byte()? {
            TAG_STR => {
                let len = self.count(1)?;
                let raw = &self.bytes[self.pos..self.pos + len];
                let s = std::str::from_utf8(raw)
                    .map_err(|_| CodecError::new("string is not UTF-8"))?
                    .to_owned();
                self.pos += len;
                self.table.push(s.clone());
                Ok(s)
            }
            TAG_STR_REF => {
                let index = self.varint()? as usize;
                self.table.get(index).cloned().ok_or_else(|| {
                    CodecError::new(format!("string back-reference {index} out of range"))
                })
            }
            other => Err(CodecError::new(format!(
                "expected string, found tag {other:#04x}"
            ))),
        }
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: Value) {
        let mut enc = Encoder {
            out: Vec::new(),
            interned: HashMap::new(),
        };
        enc.out.extend_from_slice(&MAGIC);
        enc.out.push(VERSION);
        enc.value(&value);
        let bytes = enc.out;
        let mut dec = Decoder {
            bytes: &bytes,
            pos: 5,
            table: Vec::new(),
        };
        let back = dec.value().unwrap();
        assert_eq!(dec.pos, bytes.len());
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(Value::Null);
        round_trip(Value::Bool(true));
        round_trip(Value::Bool(false));
        for n in [0u64, 1, 127, 128, 300, u64::MAX] {
            round_trip(Value::UInt(n));
        }
        for n in [0i64, -1, 1, -300, i64::MIN, i64::MAX] {
            round_trip(Value::Int(n));
        }
        for x in [0.0f64, -1.5, 1e300, f64::MIN_POSITIVE] {
            round_trip(Value::Float(x));
        }
        round_trip(Value::Str("héllo \"wörld\"\n".to_owned()));
        round_trip(Value::Bytes(vec![]));
        round_trip(Value::Bytes((0..=255).collect()));
    }

    #[test]
    fn structures_round_trip_with_interning() {
        let edge = |s: u64, d: u64| {
            Value::Map(vec![
                ("src".to_owned(), Value::UInt(s)),
                ("dst".to_owned(), Value::UInt(d)),
                ("tag".to_owned(), Value::UInt(0)),
            ])
        };
        let many: Vec<Value> = (0..200).map(|i| edge(i, i + 1)).collect();
        let value = Value::Map(vec![
            ("edges".to_owned(), Value::Seq(many)),
            ("name".to_owned(), Value::Str("edges".to_owned())),
        ]);
        let bytes = to_bytes_of(&value);
        // 200 edges × 3 field names: interning keeps the field names
        // from being re-encoded (4-byte literal each) every time.
        // "src"/"dst"/"tag" appear literally once each.
        let text = String::from_utf8_lossy(&bytes);
        assert_eq!(text.matches("src").count(), 1);
        assert_eq!(text.matches("dst").count(), 1);
        round_trip(value);
    }

    fn to_bytes_of(value: &Value) -> Vec<u8> {
        let mut enc = Encoder {
            out: Vec::new(),
            interned: HashMap::new(),
        };
        enc.out.extend_from_slice(&MAGIC);
        enc.out.push(VERSION);
        enc.value(value);
        enc.out
    }

    #[test]
    fn header_and_corruption_are_rejected() {
        let good = to_bytes(&42u64);
        assert!(from_bytes::<u64>(&good).is_ok());
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(from_bytes::<u64>(&bad).is_err());
        // Bad version.
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(from_bytes::<u64>(&bad).is_err());
        // Truncation at every prefix must error, never panic.
        for cut in 0..good.len() {
            assert!(from_bytes::<u64>(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut bad = good;
        bad.push(0);
        assert!(from_bytes::<u64>(&bad).is_err());
        // A count prefix that promises more elements than bytes remain.
        let mut huge = Vec::new();
        huge.extend_from_slice(&MAGIC);
        huge.push(VERSION);
        huge.push(TAG_SEQ);
        put_varint(&mut huge, u64::MAX / 2);
        assert!(from_bytes::<Vec<u64>>(&huge).is_err());
        // An overlong varint must error, not truncate: ten continuation
        // bytes put the final payload past u64 bit 63.
        let mut overlong = Vec::new();
        overlong.extend_from_slice(&MAGIC);
        overlong.push(VERSION);
        overlong.push(TAG_UINT);
        overlong.extend_from_slice(&[0xff; 9]);
        overlong.push(0x7e); // bits 1–6 of the 10th byte don't fit
        assert!(from_bytes::<u64>(&overlong).is_err());
        // The canonical u64::MAX encoding (10th byte = 0x01) is fine.
        let max = to_bytes(&u64::MAX);
        assert_eq!(from_bytes::<u64>(&max).unwrap(), u64::MAX);
    }

    #[test]
    fn zigzag_is_its_own_inverse() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small encodings.
        assert!(zigzag(-1) < 8);
        assert!(zigzag(3) < 8);
    }

    #[test]
    fn typed_round_trip_through_the_public_api() {
        let value: Vec<(u32, String)> = vec![(1, "a".into()), (2, "a".into()), (3, "b".into())];
        let bytes = to_bytes(&value);
        let back: Vec<(u32, String)> = from_bytes(&bytes).unwrap();
        assert_eq!(back, value);
    }
}
