#![warn(missing_docs)]

//! A persistent multi-run provenance store.
//!
//! The paper's headline workload is *stored-index* evaluation: a
//! compiled query served against many workflow runs whose inverted
//! indexes were built ahead of time (Section V-A "for each run, an
//! index maps an edge tag γ to a list of node pairs"). [`RunStore`]
//! makes that a durable subsystem instead of a per-process cache:
//!
//! * **Catalog** — runs are ingested from generators or files,
//!   deduplicated by their structural fingerprint, and persisted under
//!   a store directory ([`RunStore::ingest`]);
//! * **Artifacts** — each run's derived [`TagIndex`] and [`CsrIndex`]
//!   are persisted beside it (lazily on first use, or eagerly via
//!   [`RunStore::materialize_artifacts`]) with a compact binary codec
//!   ([`codec`]), so a restarted process reloads warm indexes instead
//!   of rebuilding them;
//! * **Batch execution** — a store is a
//!   [`RunSource`]: `Session::evaluate_batch`
//!   fans one prepared query across the whole corpus on a thread pool,
//!   seeding the session's caches with the store's warm artifacts;
//! * **Live ingestion** — a stored run opened for streaming
//!   ([`RunStore::open_run`]) receives event batches whose persisted
//!   artifacts are maintained *incrementally* rather than rebuilt
//!   ([`live`]), with a monotonic catalog epoch exposing every
//!   mutation to clients.
//!
//! Directory layout (all paths relative to the store root):
//!
//! ```text
//! spec.json               the workflow specification (JSON, human-readable)
//! catalog.json            catalog manifest: version, next id, epoch, shard bits
//! catalog/shard-XX.json   catalog rows, sharded by fingerprint prefix
//! runs/run-<id>.bin       each ingested run (binary codec)
//! index/tag-<id>.bin      persisted TagIndex artifact
//! index/csr-<id>.bin      persisted CsrIndex artifact
//! ```
//!
//! The catalog rows shard across `catalog/shard-XX.json` by the top
//! bits of each run's fingerprint, so one mutation rewrites one small
//! shard instead of the whole corpus — a flat single-file catalog stops
//! scaling well before the 10⁵-run corpora the serving fleet targets.
//! Stores persisted by older builds (one monolithic `catalog.json`)
//! open transparently and migrate to the sharded layout on their first
//! mutation.
//!
//! Counters ([`RunStore::stats`]) distinguish *reloads* (artifact
//! decoded from disk — the warm path) from *rebuilds* (artifact
//! re-derived from the run because no valid file existed — the cold
//! path); `repro -- batch` records the cold/warm gap in
//! `BENCH_batch.json`.

pub mod codec;
pub mod live;

pub use live::{Appended, LiveSnapshot, OpenRun};

use rpq_core::{PlanStore, RpqError, RunRef, RunSource, SafeQueryPlan, SubqueryPolicy};
use rpq_grammar::Specification;
use rpq_labeling::Run;
use rpq_relalg::{CsrIndex, TagIndex};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of a run inside one store (stable across reopenings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RunId(pub u64);

impl std::fmt::Display for RunId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The outcome of one [`RunStore::ingest`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ingested {
    /// The id of the run inside the store (pre-existing when deduped).
    pub id: RunId,
    /// `true` when the run's fingerprint matched an already-stored run
    /// and nothing was written.
    pub deduplicated: bool,
}

/// Monotonic counters of a [`RunStore`] (snapshot via
/// [`RunStore::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Runs written by `ingest`.
    pub ingested: u64,
    /// Ingest calls answered by fingerprint deduplication.
    pub deduplicated: u64,
    /// Runs decoded from disk (cold reads; cached thereafter).
    pub run_loads: u64,
    /// Tag indexes decoded from persisted artifacts (the warm path).
    pub tag_reloads: u64,
    /// CSR arenas decoded from persisted artifacts (the warm path).
    pub csr_reloads: u64,
    /// Tag indexes re-derived from their run (no valid artifact — the
    /// cold path; the rebuilt artifact is persisted for next time).
    pub tag_rebuilds: u64,
    /// CSR arenas re-derived likewise.
    pub csr_rebuilds: u64,
    /// Runs evicted from the catalog by [`RunStore::remove_run`].
    pub removed: u64,
    /// Stray files deleted by [`RunStore::prune_orphans`].
    pub orphans_pruned: u64,
    /// Event batches applied to open runs ([`OpenRun::append_events`]).
    pub appended: u64,
    /// Appends whose churn exceeded the threshold, forcing a full
    /// artifact rebuild instead of the incremental delta path.
    pub append_rebuilds: u64,
    /// Compiled safe plans decoded from persisted artifacts (the warm
    /// path: a restarted process reuses plans a previous one compiled).
    pub plan_reloads: u64,
    /// Safe plans compiled cold (no valid persisted artifact; the
    /// fresh plan is persisted for next time).
    pub plan_rebuilds: u64,
    /// The catalog epoch: a monotonic mutation counter bumped (and
    /// persisted) on every catalog-visible change — ingest, append,
    /// removal, orphan pruning. Clients cache against it: an unchanged
    /// epoch guarantees an unchanged corpus.
    pub epoch: u64,
}

impl StoreStats {
    /// Counter movement since an `earlier` snapshot.
    pub fn since(self, earlier: StoreStats) -> StoreStats {
        StoreStats {
            ingested: self.ingested - earlier.ingested,
            deduplicated: self.deduplicated - earlier.deduplicated,
            run_loads: self.run_loads - earlier.run_loads,
            tag_reloads: self.tag_reloads - earlier.tag_reloads,
            csr_reloads: self.csr_reloads - earlier.csr_reloads,
            tag_rebuilds: self.tag_rebuilds - earlier.tag_rebuilds,
            csr_rebuilds: self.csr_rebuilds - earlier.csr_rebuilds,
            removed: self.removed - earlier.removed,
            orphans_pruned: self.orphans_pruned - earlier.orphans_pruned,
            appended: self.appended - earlier.appended,
            append_rebuilds: self.append_rebuilds - earlier.append_rebuilds,
            plan_reloads: self.plan_reloads - earlier.plan_reloads,
            plan_rebuilds: self.plan_rebuilds - earlier.plan_rebuilds,
            // The epoch is a level, not a rate, but it is monotonic, so
            // the difference reads as "catalog mutations since".
            epoch: self.epoch - earlier.epoch,
        }
    }
}

/// One catalog row.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CatalogEntry {
    id: u64,
    fp_hi: u64,
    fp_lo: u64,
    n_nodes: u64,
    n_edges: u64,
}

/// The in-memory catalog. Entries are kept in ascending-id order —
/// ids are assigned monotonically and never reused, so that order is
/// exactly ingestion order, which positional addressing
/// ([`RunStore::id_at`]) depends on.
#[derive(Debug, Clone)]
struct Catalog {
    next_id: u64,
    /// Monotonic mutation counter; see [`StoreStats::epoch`].
    epoch: u64,
    entries: Vec<CatalogEntry>,
}

/// The persisted catalog manifest (`catalog.json`, version 3): scalar
/// state only. The rows live in `catalog/shard-XX.json`, selected by
/// the top `shard_bits` bits of each run's `fp_hi`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CatalogManifest {
    version: u32,
    next_id: u64,
    epoch: u64,
    shard_bits: u32,
}

/// One shard file's payload. Every row carries the catalog epoch it
/// was written at: an append that moves a run between shards (its
/// fingerprint changes) writes the new shard *before* scrubbing the
/// old one, so a crash between the two leaves the id in both — the
/// loader keeps the higher stamp, which is always the newer row.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CatalogShard {
    entries: Vec<ShardEntry>,
}

/// One stamped shard row.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ShardEntry {
    stamp: u64,
    entry: CatalogEntry,
}

/// The version-2 monolithic shape (`catalog.json` carrying the rows
/// inline), decoded as a fallback and migrated to the sharded layout
/// on the store's first persisted mutation.
#[derive(Debug, Clone, Deserialize)]
struct CatalogV2 {
    version: u32,
    next_id: u64,
    epoch: u64,
    entries: Vec<CatalogEntry>,
}

/// The version-1 shape: monolithic and lacking the epoch field too;
/// upgraded in memory with `epoch = 0`.
#[derive(Debug, Clone, Deserialize)]
struct CatalogV1 {
    version: u32,
    next_id: u64,
    entries: Vec<CatalogEntry>,
}

const CATALOG_VERSION: u32 = 3;

/// Shard-count exponent for newly created (and migrated) stores:
/// 2⁴ = 16 shard files.
const SHARD_BITS: u32 = 4;

/// Upper bound on the exponent accepted from a manifest — bounds the
/// shard scan a corrupt `shard_bits` could otherwise demand.
const MAX_SHARD_BITS: u32 = 8;

/// Which catalog shard a fingerprint's row lives in.
fn shard_of(fp_hi: u64, shard_bits: u32) -> usize {
    if shard_bits == 0 {
        0
    } else {
        (fp_hi >> (64 - shard_bits)) as usize
    }
}

/// A shard file's name inside `catalog/`.
fn shard_name(shard: usize) -> String {
    format!("shard-{shard:02x}.json")
}

/// Fingerprint key for deduplication — same composition as the
/// session's run-cache key (fingerprint + sizes as collision guard).
type FpKey = (u64, u64, u64, u64);

/// A run's cached artifact pair: its tag index and CSR arena.
type ArtifactPair = (Arc<TagIndex>, Arc<CsrIndex>);

fn fp_key(run: &Run) -> FpKey {
    let (hi, lo) = run.fingerprint();
    (hi, lo, run.n_nodes() as u64, run.n_edges() as u64)
}

struct CatalogState {
    catalog: Catalog,
    by_fingerprint: HashMap<FpKey, RunId>,
    /// Is the on-disk layout already the sharded v3 one? Stores opened
    /// from a legacy monolithic `catalog.json` migrate wholesale on
    /// their first persisted mutation.
    sharded: bool,
    shard_bits: u32,
}

/// A size-bounded LRU over the store's in-memory caches, mirroring the
/// session's per-run cache bound: without it, `--cache` would bound
/// the session while the store quietly retained every run and artifact
/// pair for the whole corpus. Unbounded by default. Eviction scans for
/// the minimum tick — O(len) per eviction, fine for the capacities a
/// working set wants (tens to thousands); a heap would pay off only
/// far beyond that.
struct BoundedCache<V> {
    entries: HashMap<RunId, (V, u64)>,
    tick: u64,
    capacity: usize,
}

impl<V: Clone> BoundedCache<V> {
    fn new() -> BoundedCache<V> {
        BoundedCache {
            entries: HashMap::new(),
            tick: 0,
            capacity: usize::MAX,
        }
    }

    fn get(&mut self, id: &RunId) -> Option<V> {
        let tick = self.tick + 1;
        let (value, last_used) = self.entries.get_mut(id)?;
        self.tick = tick;
        *last_used = tick;
        Some(value.clone())
    }

    /// Insert (keeping any racing entry) and trim to capacity.
    fn insert_or_keep(&mut self, id: RunId, value: V) -> V {
        self.tick += 1;
        let entry = self.entries.entry(id).or_insert((value, self.tick));
        entry.1 = self.tick;
        let kept = entry.0.clone();
        self.trim();
        kept
    }

    fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.trim();
    }

    fn remove(&mut self, id: &RunId) {
        self.entries.remove(id);
    }

    fn trim(&mut self) {
        while self.entries.len() > self.capacity {
            let stalest = self
                .entries
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(id, _)| *id)
                .expect("len > capacity >= 0 implies non-empty");
            self.entries.remove(&stalest);
        }
    }
}

/// A directory-backed catalog of runs and their derived artifacts.
///
/// The store is `Send + Sync`: the catalog and both in-memory caches
/// sit behind mutexes, so a batch executor's worker threads can load
/// runs and artifacts concurrently.
pub struct RunStore {
    dir: PathBuf,
    spec: Arc<Specification>,
    state: Mutex<CatalogState>,
    runs: Mutex<BoundedCache<Arc<Run>>>,
    artifacts: Mutex<BoundedCache<ArtifactPair>>,
    /// Live handles of runs open for streaming appends, one per run:
    /// reopening an already-open run must share its handle, or two
    /// live states would race on the same files.
    open_runs: Mutex<HashMap<RunId, std::sync::Weak<OpenRun>>>,
    ingested: AtomicU64,
    deduplicated: AtomicU64,
    run_loads: AtomicU64,
    tag_reloads: AtomicU64,
    csr_reloads: AtomicU64,
    tag_rebuilds: AtomicU64,
    csr_rebuilds: AtomicU64,
    removed: AtomicU64,
    orphans_pruned: AtomicU64,
    appended: AtomicU64,
    append_rebuilds: AtomicU64,
    plan_reloads: AtomicU64,
    plan_rebuilds: AtomicU64,
    /// FNV-1a of the spec's JSON rendering: binds persisted plans to
    /// *this* store's specification (see [`PersistedPlan::spec_fp`]).
    spec_fp: u64,
}

/// One run's catalog row, as exposed to clients ([`RunStore::metas`]):
/// how a query service addresses stored runs by fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunMeta {
    /// The run's id inside this store.
    pub id: RunId,
    /// High half of the structural fingerprint.
    pub fp_hi: u64,
    /// Low half of the structural fingerprint.
    pub fp_lo: u64,
    /// Node count at ingestion.
    pub n_nodes: u64,
    /// Edge count at ingestion.
    pub n_edges: u64,
}

impl RunStore {
    // -- opening -------------------------------------------------------

    /// Create a new store at `dir` (created if absent) for `spec`.
    /// Fails if the directory already holds a store.
    pub fn create(dir: impl Into<PathBuf>, spec: Arc<Specification>) -> Result<RunStore, RpqError> {
        let dir = dir.into();
        if dir.join("catalog.json").exists() {
            return Err(RpqError::invalid(format!(
                "directory {dir:?} already holds a run store; use open"
            )));
        }
        for sub in ["runs", "index", "catalog", "plans"] {
            std::fs::create_dir_all(dir.join(sub))
                .map_err(|e| RpqError::io(format!("cannot create store directory {dir:?}"), e))?;
        }
        let spec_json = serde_json::to_string(spec.as_ref())
            .map_err(|e| RpqError::invalid(format!("cannot serialize specification: {e}")))?;
        write_atomic(&dir.join("spec.json"), spec_json.as_bytes())?;
        let store = RunStore::assemble(
            dir,
            spec,
            Catalog {
                next_id: 0,
                epoch: 0,
                entries: Vec::new(),
            },
            true,
            SHARD_BITS,
        );
        {
            let mut state = store.state.lock().expect("catalog lock");
            store.persist_catalog(&mut state, Some(&[]))?;
        }
        Ok(store)
    }

    /// Open an existing store, loading its specification and catalog.
    pub fn open(dir: impl Into<PathBuf>) -> Result<RunStore, RpqError> {
        let dir = dir.into();
        let spec_text = std::fs::read_to_string(dir.join("spec.json"))
            .map_err(|e| RpqError::io(format!("cannot read {dir:?}/spec.json"), e))?;
        let spec: Specification = serde_json::from_str(&spec_text)
            .map_err(|e| RpqError::invalid(format!("corrupt spec.json in {dir:?}: {e}")))?;
        let catalog_text = std::fs::read_to_string(dir.join("catalog.json"))
            .map_err(|e| RpqError::io(format!("cannot read {dir:?}/catalog.json"), e))?;
        // Current stores keep a slim manifest in catalog.json and the
        // rows in per-prefix shard files; legacy monolithic catalogs
        // (v1/v2, rows inline) decode through the fallback shapes —
        // each shape has a field the others lack, so the first
        // successful decode identifies the layout.
        if let Ok(manifest) = serde_json::from_str::<CatalogManifest>(&catalog_text) {
            if manifest.version != CATALOG_VERSION {
                return Err(RpqError::invalid(format!(
                    "store {dir:?} has catalog version {} (this build reads up to \
                     {CATALOG_VERSION})",
                    manifest.version
                )));
            }
            if manifest.shard_bits > MAX_SHARD_BITS {
                return Err(RpqError::invalid(format!(
                    "corrupt catalog.json in {dir:?}: shard_bits {} exceeds {MAX_SHARD_BITS}",
                    manifest.shard_bits
                )));
            }
            let mut by_id: HashMap<u64, ShardEntry> = HashMap::new();
            for shard in 0..(1usize << manifest.shard_bits) {
                let path = dir.join("catalog").join(shard_name(shard));
                let text = match std::fs::read_to_string(&path) {
                    Ok(text) => text,
                    // A missing shard file is an empty shard.
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                    Err(e) => return Err(RpqError::io(format!("cannot read {path:?}"), e)),
                };
                let shard: CatalogShard = serde_json::from_str(&text).map_err(|e| {
                    RpqError::invalid(format!("corrupt catalog shard {path:?}: {e}"))
                })?;
                for row in shard.entries {
                    // An id present in two shards is an interrupted
                    // cross-shard move; the higher stamp is the newer row.
                    match by_id.get(&row.entry.id) {
                        Some(kept) if kept.stamp >= row.stamp => {}
                        _ => {
                            by_id.insert(row.entry.id, row);
                        }
                    }
                }
            }
            let mut entries: Vec<CatalogEntry> = by_id.into_values().map(|row| row.entry).collect();
            entries.sort_by_key(|e| e.id);
            let catalog = Catalog {
                next_id: manifest.next_id,
                epoch: manifest.epoch,
                entries,
            };
            return Ok(RunStore::assemble(
                dir,
                Arc::new(spec),
                catalog,
                true,
                manifest.shard_bits,
            ));
        }
        let catalog = match serde_json::from_str::<CatalogV2>(&catalog_text) {
            Ok(v2) if (1..=2).contains(&v2.version) => Catalog {
                next_id: v2.next_id,
                epoch: v2.epoch,
                entries: v2.entries,
            },
            Ok(v2) => {
                return Err(RpqError::invalid(format!(
                    "store {dir:?} has catalog version {} (this build reads up to \
                     {CATALOG_VERSION})",
                    v2.version
                )))
            }
            Err(_) => {
                let v1: CatalogV1 = serde_json::from_str(&catalog_text).map_err(|e| {
                    RpqError::invalid(format!("corrupt catalog.json in {dir:?}: {e}"))
                })?;
                if v1.version != 1 {
                    return Err(RpqError::invalid(format!(
                        "store {dir:?} has catalog version {} (this build reads up to \
                         {CATALOG_VERSION})",
                        v1.version
                    )));
                }
                Catalog {
                    next_id: v1.next_id,
                    epoch: 0,
                    entries: v1.entries,
                }
            }
        };
        Ok(RunStore::assemble(
            dir,
            Arc::new(spec),
            catalog,
            false,
            SHARD_BITS,
        ))
    }

    /// Open the store at `dir` when one exists (verifying it was built
    /// for `spec`), create it otherwise.
    pub fn open_or_create(
        dir: impl Into<PathBuf>,
        spec: Arc<Specification>,
    ) -> Result<RunStore, RpqError> {
        let dir = dir.into();
        if dir.join("catalog.json").exists() {
            let store = RunStore::open(&dir)?;
            if *store.spec != *spec {
                return Err(RpqError::invalid(format!(
                    "store {dir:?} was built for a different specification"
                )));
            }
            Ok(store)
        } else {
            RunStore::create(dir, spec)
        }
    }

    /// Bound the in-memory run and artifact caches to at most
    /// `capacity` runs each (LRU). Pairs with
    /// `Session::with_cache_capacity`: bounding only the session would
    /// leave this store retaining the whole corpus anyway. Persisted
    /// files are unaffected — evicted entries reload from disk.
    pub fn with_cache_capacity(self, capacity: usize) -> RunStore {
        self.runs
            .lock()
            .expect("run cache lock")
            .set_capacity(capacity);
        self.artifacts
            .lock()
            .expect("artifact cache lock")
            .set_capacity(capacity);
        self
    }

    fn assemble(
        dir: PathBuf,
        spec: Arc<Specification>,
        catalog: Catalog,
        sharded: bool,
        shard_bits: u32,
    ) -> RunStore {
        // The spec's serialized form is deterministic (ordered field
        // maps), so its hash is a stable cross-process fingerprint.
        let spec_fp = serde_json::to_string(spec.as_ref())
            .map(|json| fnv1a(json.as_bytes()))
            .unwrap_or(0);
        let by_fingerprint = catalog
            .entries
            .iter()
            .map(|e| ((e.fp_hi, e.fp_lo, e.n_nodes, e.n_edges), RunId(e.id)))
            .collect();
        RunStore {
            dir,
            spec,
            state: Mutex::new(CatalogState {
                catalog,
                by_fingerprint,
                sharded,
                shard_bits,
            }),
            runs: Mutex::new(BoundedCache::new()),
            artifacts: Mutex::new(BoundedCache::new()),
            open_runs: Mutex::new(HashMap::new()),
            ingested: AtomicU64::new(0),
            deduplicated: AtomicU64::new(0),
            run_loads: AtomicU64::new(0),
            tag_reloads: AtomicU64::new(0),
            csr_reloads: AtomicU64::new(0),
            tag_rebuilds: AtomicU64::new(0),
            csr_rebuilds: AtomicU64::new(0),
            removed: AtomicU64::new(0),
            orphans_pruned: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            append_rebuilds: AtomicU64::new(0),
            plan_reloads: AtomicU64::new(0),
            plan_rebuilds: AtomicU64::new(0),
            spec_fp,
        }
    }

    // -- accessors -----------------------------------------------------

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The specification every stored run derives from.
    pub fn spec(&self) -> &Specification {
        &self.spec
    }

    /// A shared handle to the specification — open sessions over it so
    /// prepared queries and stored runs always agree.
    pub fn spec_arc(&self) -> Arc<Specification> {
        Arc::clone(&self.spec)
    }

    /// Number of stored runs.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("catalog lock")
            .catalog
            .entries
            .len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids of all stored runs, in catalog (ingestion) order.
    pub fn ids(&self) -> Vec<RunId> {
        self.state
            .lock()
            .expect("catalog lock")
            .catalog
            .entries
            .iter()
            .map(|e| RunId(e.id))
            .collect()
    }

    /// The id at catalog position `i` — the allocation-free lookup the
    /// batch executor uses per run (a full [`RunStore::ids`] snapshot
    /// per run would make an `n`-run batch quadratic).
    pub fn id_at(&self, i: usize) -> Option<RunId> {
        self.state
            .lock()
            .expect("catalog lock")
            .catalog
            .entries
            .get(i)
            .map(|e| RunId(e.id))
    }

    /// Catalog rows of every stored run, in ingestion order — the
    /// inventory a query service hands to clients so they can address
    /// runs by fingerprint.
    pub fn metas(&self) -> Vec<RunMeta> {
        self.state
            .lock()
            .expect("catalog lock")
            .catalog
            .entries
            .iter()
            .map(|e| RunMeta {
                id: RunId(e.id),
                fp_hi: e.fp_hi,
                fp_lo: e.fp_lo,
                n_nodes: e.n_nodes,
                n_edges: e.n_edges,
            })
            .collect()
    }

    /// Resolve a run by its structural fingerprint (the sizes stored
    /// beside it disambiguate nothing here: two runs sharing 128
    /// fingerprint bits *and* differing in size would have collided at
    /// ingestion already).
    pub fn find_by_fingerprint(&self, fp_hi: u64, fp_lo: u64) -> Option<RunId> {
        self.state
            .lock()
            .expect("catalog lock")
            .catalog
            .entries
            .iter()
            .find(|e| e.fp_hi == fp_hi && e.fp_lo == fp_lo)
            .map(|e| RunId(e.id))
    }

    /// The current catalog epoch — bumped (and persisted) on every
    /// catalog-visible mutation: ingest, append, removal, pruning.
    pub fn epoch(&self) -> u64 {
        self.state.lock().expect("catalog lock").catalog.epoch
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            ingested: self.ingested.load(Ordering::Relaxed),
            deduplicated: self.deduplicated.load(Ordering::Relaxed),
            run_loads: self.run_loads.load(Ordering::Relaxed),
            tag_reloads: self.tag_reloads.load(Ordering::Relaxed),
            csr_reloads: self.csr_reloads.load(Ordering::Relaxed),
            tag_rebuilds: self.tag_rebuilds.load(Ordering::Relaxed),
            csr_rebuilds: self.csr_rebuilds.load(Ordering::Relaxed),
            removed: self.removed.load(Ordering::Relaxed),
            orphans_pruned: self.orphans_pruned.load(Ordering::Relaxed),
            appended: self.appended.load(Ordering::Relaxed),
            append_rebuilds: self.append_rebuilds.load(Ordering::Relaxed),
            plan_reloads: self.plan_reloads.load(Ordering::Relaxed),
            plan_rebuilds: self.plan_rebuilds.load(Ordering::Relaxed),
            epoch: self.epoch(),
        }
    }

    // -- ingestion -----------------------------------------------------

    /// Ingest one run: validate it against the store's specification,
    /// deduplicate by structural fingerprint, and persist it. Artifacts
    /// are *not* built here — they materialize on first use (or all at
    /// once via [`RunStore::materialize_artifacts`]), so ingestion
    /// stays cheap.
    pub fn ingest(&self, run: &Run) -> Result<Ingested, RpqError> {
        run.validate_against(&self.spec)
            .map_err(|e| RpqError::invalid(format!("run does not match the store spec: {e}")))?;
        let key = fp_key(run);
        // The catalog lock is held across the file writes: ingestion is
        // rare next to queries, and serializing it keeps the
        // id-assignment / catalog-write pair atomic without a journal.
        let mut state = self.state.lock().expect("catalog lock");
        if let Some(&id) = state.by_fingerprint.get(&key) {
            self.deduplicated.fetch_add(1, Ordering::Relaxed);
            return Ok(Ingested {
                id,
                deduplicated: true,
            });
        }
        let id = RunId(state.catalog.next_id);
        write_atomic(&self.run_path(id), &codec::to_bytes(run))?;
        state.catalog.next_id += 1;
        state.catalog.entries.push(CatalogEntry {
            id: id.0,
            fp_hi: key.0,
            fp_lo: key.1,
            n_nodes: key.2,
            n_edges: key.3,
        });
        state.by_fingerprint.insert(key, id);
        state.catalog.epoch += 1;
        let dirty = [shard_of(key.0, state.shard_bits)];
        if let Err(e) = self.persist_catalog(&mut state, Some(&dirty)) {
            // Keep memory and disk consistent: a run whose catalog row
            // never landed must not look ingested (a later retry would
            // dedupe against a row that does not exist on disk). The
            // already-written run file is a harmless orphan.
            state.catalog.entries.pop();
            state.by_fingerprint.remove(&key);
            state.catalog.next_id -= 1;
            state.catalog.epoch -= 1;
            return Err(e);
        }
        drop(state);
        self.ingested.fetch_add(1, Ordering::Relaxed);
        self.runs
            .lock()
            .expect("run cache lock")
            .insert_or_keep(id, Arc::new(run.clone()));
        Ok(Ingested {
            id,
            deduplicated: false,
        })
    }

    /// Ingest a run serialized as JSON (e.g. by `rpq simulate --out`).
    pub fn ingest_json_file(&self, path: impl AsRef<Path>) -> Result<Ingested, RpqError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| RpqError::io(format!("cannot read run {path:?}"), e))?;
        let run: Run = serde_json::from_str(&text)
            .map_err(|e| RpqError::invalid(format!("cannot parse run {path:?}: {e}")))?;
        self.ingest(&run)
    }

    /// Build and persist the artifacts of every run that lacks them —
    /// shipping the store warm instead of paying rebuilds at first
    /// query. Returns how many runs were materialized.
    pub fn materialize_artifacts(&self) -> Result<usize, RpqError> {
        let mut materialized = 0;
        for id in self.ids() {
            if self.tag_path(id).exists() && self.csr_path(id).exists() {
                continue;
            }
            let (tag, csr) = self.artifacts(id)?;
            // artifacts() persists only when it rebuilt; a pair served
            // from the in-memory cache leaves missing files missing,
            // and "materialized" must mean "on disk".
            if !self.tag_path(id).exists() {
                write_atomic(&self.tag_path(id), &codec::to_bytes(tag.as_ref()))?;
            }
            if !self.csr_path(id).exists() {
                write_atomic(&self.csr_path(id), &codec::to_bytes(csr.as_ref()))?;
            }
            materialized += 1;
        }
        Ok(materialized)
    }

    // -- garbage collection --------------------------------------------

    /// Evict the run with the given structural fingerprint from the
    /// store: its catalog row is dropped (and the shrunken catalog
    /// persisted) before any file is touched, so a crash mid-removal
    /// leaves orphaned binaries — cleaned by [`RunStore::prune_orphans`]
    /// — never a catalog row pointing at deleted bytes. If persisting
    /// the shrunken catalog fails, the in-memory state rolls back and
    /// the store is unchanged. Returns the evicted id, or `None` when
    /// no stored run has that fingerprint.
    pub fn remove_run(&self, fingerprint: (u64, u64)) -> Result<Option<RunId>, RpqError> {
        let (fp_hi, fp_lo) = fingerprint;
        let mut state = self.state.lock().expect("catalog lock");
        let Some(position) = state
            .catalog
            .entries
            .iter()
            .position(|e| e.fp_hi == fp_hi && e.fp_lo == fp_lo)
        else {
            return Ok(None);
        };
        let entry = state.catalog.entries.remove(position);
        let id = RunId(entry.id);
        let key = (entry.fp_hi, entry.fp_lo, entry.n_nodes, entry.n_edges);
        state.by_fingerprint.remove(&key);
        state.catalog.epoch += 1;
        let dirty = [shard_of(entry.fp_hi, state.shard_bits)];
        if let Err(e) = self.persist_catalog(&mut state, Some(&dirty)) {
            // Roll back: a run whose catalog row is still on disk must
            // stay addressable (and deduplicable) in memory too.
            state.catalog.entries.insert(position, entry);
            state.by_fingerprint.insert(key, id);
            state.catalog.epoch -= 1;
            return Err(e);
        }
        drop(state);
        self.runs.lock().expect("run cache lock").remove(&id);
        self.artifacts
            .lock()
            .expect("artifact cache lock")
            .remove(&id);
        // File deletion is best-effort: the catalog no longer references
        // them, so a failed unlink merely leaves an orphan for the next
        // prune pass.
        for path in [self.run_path(id), self.tag_path(id), self.csr_path(id)] {
            let _ = std::fs::remove_file(path);
        }
        self.removed.fetch_add(1, Ordering::Relaxed);
        Ok(Some(id))
    }

    /// [`RunStore::remove_run`] addressed by store id instead of
    /// fingerprint.
    pub fn remove_run_by_id(&self, id: RunId) -> Result<bool, RpqError> {
        let fingerprint = {
            let state = self.state.lock().expect("catalog lock");
            state
                .catalog
                .entries
                .iter()
                .find(|e| e.id == id.0)
                .map(|e| (e.fp_hi, e.fp_lo))
        };
        match fingerprint {
            Some(fp) => Ok(self.remove_run(fp)?.is_some()),
            None => Ok(false),
        }
    }

    /// Delete every file under `runs/` and `index/` that no catalog row
    /// references: leftovers of interrupted removals, tmp files of
    /// crashed atomic writes, artifacts of runs evicted while their
    /// unlink failed. Returns how many files were deleted. The catalog
    /// rows are never touched; a pass that deleted anything bumps the
    /// epoch (files under the store changed) and re-persists.
    pub fn prune_orphans(&self) -> Result<usize, RpqError> {
        // The catalog lock is held across the whole scan-and-delete:
        // ingestion also serializes on it, so a run being ingested
        // concurrently can never be mistaken for an orphan off a stale
        // id snapshot. GC is rare; blocking ingest for its duration is
        // the cheap end of that trade.
        let mut state = self.state.lock().expect("catalog lock");
        let live: std::collections::HashSet<u64> =
            state.catalog.entries.iter().map(|e| e.id).collect();
        let expected = |sub: &str, name: &str| -> bool {
            let stem = if sub == "runs" {
                name.strip_prefix("run-")
            } else {
                name.strip_prefix("tag-")
                    .or_else(|| name.strip_prefix("csr-"))
            };
            stem.and_then(|s| s.strip_suffix(".bin"))
                .and_then(|s| s.parse::<u64>().ok())
                .is_some_and(|id| live.contains(&id))
        };
        // Artifact writes happen outside the catalog lock, so a *young*
        // tmp file may be a live run's artifact persist in flight —
        // deleting it would fail that writer's rename. Old tmp files
        // are crash leftovers and safe to reap.
        let tmp_grace = std::time::Duration::from_secs(60);
        let is_fresh_tmp = |entry: &std::fs::DirEntry, name: &str| -> bool {
            name.contains(".tmp.")
                && entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok())
                    .is_some_and(|age| age < tmp_grace)
        };
        let mut pruned = 0;
        for sub in ["runs", "index"] {
            let dir = self.dir.join(sub);
            let entries = std::fs::read_dir(&dir)
                .map_err(|e| RpqError::io(format!("cannot list store directory {dir:?}"), e))?;
            for entry in entries {
                let entry =
                    entry.map_err(|e| RpqError::io(format!("cannot list {dir:?} entry"), e))?;
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if expected(sub, &name) || is_fresh_tmp(&entry, &name) {
                    continue;
                }
                std::fs::remove_file(entry.path()).map_err(|e| {
                    RpqError::io(format!("cannot delete orphan {:?}", entry.path()), e)
                })?;
                pruned += 1;
            }
        }
        if pruned > 0 {
            state.catalog.epoch += 1;
            // No rows changed — only the manifest's epoch (and, on a
            // legacy store, the one-time shard migration) needs writing.
            if let Err(e) = self.persist_catalog(&mut state, Some(&[])) {
                state.catalog.epoch -= 1;
                return Err(e);
            }
        }
        drop(state);
        self.orphans_pruned
            .fetch_add(pruned as u64, Ordering::Relaxed);
        Ok(pruned)
    }

    // -- loading -------------------------------------------------------

    /// The stored run with `id`, decoded at most once per process.
    pub fn run(&self, id: RunId) -> Result<Arc<Run>, RpqError> {
        let _span = rpq_obs::Trace::span("store_load");
        if let Some(run) = self.runs.lock().expect("run cache lock").get(&id) {
            return Ok(run);
        }
        let path = self.run_path(id);
        let bytes = std::fs::read(&path)
            .map_err(|e| RpqError::io(format!("cannot read stored run {path:?}"), e))?;
        let run: Run = codec::from_bytes(&bytes)
            .map_err(|e| RpqError::invalid(format!("corrupt stored run {path:?}: {e}")))?;
        run.validate_against(&self.spec).map_err(|e| {
            RpqError::invalid(format!(
                "stored run {path:?} does not match the store spec: {e}"
            ))
        })?;
        self.run_loads.fetch_add(1, Ordering::Relaxed);
        Ok(self
            .runs
            .lock()
            .expect("run cache lock")
            .insert_or_keep(id, Arc::new(run)))
    }

    /// The catalog dimensions of `id` — the (n_nodes, n_edges) the
    /// run was ingested with, used to bind artifact files to *their*
    /// run.
    fn catalog_dims(&self, id: RunId) -> Result<(usize, usize), RpqError> {
        let state = self.state.lock().expect("catalog lock");
        state
            .catalog
            .entries
            .iter()
            .find(|e| e.id == id.0)
            .map(|e| (e.n_nodes as usize, e.n_edges as usize))
            .ok_or_else(|| RpqError::invalid(format!("no run {id} in this store")))
    }

    /// The run's derived artifacts — decoded from their persisted files
    /// when present, well-formed *and* matching the run's cataloged
    /// dimensions (counted as *reloads*), re-derived from the run and
    /// persisted otherwise (counted as *rebuilds*). The dimension check
    /// matters: a well-formed artifact belonging to a *different* run
    /// (a mis-restored backup, a copied file) must fall back to rebuild
    /// rather than silently answer for the wrong graph.
    pub fn artifacts(&self, id: RunId) -> Result<ArtifactPair, RpqError> {
        let _span = rpq_obs::Trace::span("store_load");
        if let Some(pair) = self.artifacts.lock().expect("artifact cache lock").get(&id) {
            return Ok(pair);
        }
        let n_tags = self.spec.n_tags();
        let (n_nodes, n_edges) = self.catalog_dims(id)?;

        let tag = match self.decode_artifact::<TagIndex>(&self.tag_path(id)) {
            // Pair-set dedup of parallel same-tag edges means the
            // indexed pair count may undershoot the run's edge count,
            // never exceed it.
            Some(index)
                if index.is_well_formed(n_tags)
                    && index.n_nodes() == n_nodes
                    && index.all_edges().len() <= n_edges =>
            {
                self.tag_reloads.fetch_add(1, Ordering::Relaxed);
                Arc::new(index)
            }
            _ => {
                let run = self.run(id)?;
                let index = TagIndex::build(&run, n_tags);
                write_atomic(&self.tag_path(id), &codec::to_bytes(&index))?;
                self.tag_rebuilds.fetch_add(1, Ordering::Relaxed);
                Arc::new(index)
            }
        };

        let csr = match self.decode_artifact::<CsrIndex>(&self.csr_path(id)) {
            Some(csr)
                if csr.is_well_formed(n_tags)
                    && csr.n_nodes() == tag.n_nodes()
                    && csr.all().n_edges() == tag.all_edges().len() =>
            {
                self.csr_reloads.fetch_add(1, Ordering::Relaxed);
                Arc::new(csr)
            }
            _ => {
                let csr = CsrIndex::build(&tag);
                write_atomic(&self.csr_path(id), &codec::to_bytes(&csr))?;
                self.csr_rebuilds.fetch_add(1, Ordering::Relaxed);
                Arc::new(csr)
            }
        };

        Ok(self
            .artifacts
            .lock()
            .expect("artifact cache lock")
            .insert_or_keep(id, (tag, csr)))
    }

    /// Decode one artifact file; any failure (missing, truncated,
    /// tampered) falls back to `None` so the caller rebuilds.
    fn decode_artifact<T: serde::Deserialize>(&self, path: &Path) -> Option<T> {
        let bytes = std::fs::read(path).ok()?;
        codec::from_bytes(&bytes).ok()
    }

    // -- plan cache ----------------------------------------------------

    /// Every valid persisted plan's `(query source, policy)` — what a
    /// service warms its session with at startup: re-preparing each
    /// pair pulls the persisted plan through [`PlanStore::load`] into
    /// the session's in-memory cache without recompiling. Unreadable,
    /// outdated or foreign-spec files are skipped silently (they fall
    /// back to recompile-on-demand, never an error).
    pub fn persisted_plans(&self) -> Vec<(String, SubqueryPolicy)> {
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(self.plans_dir()) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.starts_with("plan-") || !name.ends_with(".bin") {
                continue;
            }
            let Ok(bytes) = std::fs::read(entry.path()) else {
                continue;
            };
            let Ok(persisted) = codec::from_bytes::<PersistedPlan>(&bytes) else {
                continue;
            };
            if persisted.version != PLAN_VERSION || persisted.spec_fp != self.spec_fp {
                continue;
            }
            if let Some(policy) = SubqueryPolicy::from_cli_name(&persisted.policy) {
                out.push((persisted.source, policy));
            }
        }
        // Directory order is filesystem-dependent; warm deterministically.
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn plans_dir(&self) -> PathBuf {
        self.dir.join("plans")
    }

    /// One file per (canonical query, policy, spec) key. The filename
    /// is the key's hash; the full key is stored inside the file and
    /// re-checked on load, so a hash collision (or a copied file)
    /// degrades to a recompile, never a wrong plan.
    fn plan_path(&self, canon: &str, policy: SubqueryPolicy) -> PathBuf {
        let mut h = fnv1a(canon.as_bytes());
        h ^= fnv1a(policy.cli_name().as_bytes()).rotate_left(1);
        h ^= self.spec_fp.rotate_left(2);
        self.plans_dir().join(format!("plan-{h:016x}.bin"))
    }

    // -- paths & persistence -------------------------------------------

    fn run_path(&self, id: RunId) -> PathBuf {
        self.dir.join("runs").join(format!("run-{}.bin", id.0))
    }

    fn tag_path(&self, id: RunId) -> PathBuf {
        self.dir.join("index").join(format!("tag-{}.bin", id.0))
    }

    fn csr_path(&self, id: RunId) -> PathBuf {
        self.dir.join("index").join(format!("csr-{}.bin", id.0))
    }

    /// Persist the catalog: the slim manifest in `catalog.json` plus
    /// the shard files named in `dirty` (each a prefix index from
    /// [`shard_of`]). `None` — or a store still on the legacy
    /// monolithic layout — rewrites every shard.
    ///
    /// Write ordering carries the crash-consistency argument. Normal
    /// mutations write the manifest *first*: a crash before the dirty
    /// shard lands loses the newest row but persists the advanced
    /// `next_id`/`epoch`, so a reopened store can never hand out a
    /// colliding id or falsely report an old epoch as current. The
    /// one-time migration off a legacy monolithic catalog inverts
    /// that — all shards first, manifest *last* — so a crash mid-way
    /// leaves the legacy file authoritative and the partial shards
    /// inert until a later complete pass.
    fn persist_catalog(
        &self,
        state: &mut CatalogState,
        dirty: Option<&[usize]>,
    ) -> Result<(), RpqError> {
        let manifest = CatalogManifest {
            version: CATALOG_VERSION,
            next_id: state.catalog.next_id,
            epoch: state.catalog.epoch,
            shard_bits: state.shard_bits,
        };
        let json = serde_json::to_string(&manifest)
            .map_err(|e| RpqError::invalid(format!("cannot serialize catalog: {e}")))?;
        let manifest_path = self.dir.join("catalog.json");
        if state.sharded {
            if let Some(dirty) = dirty {
                write_atomic(&manifest_path, json.as_bytes())?;
                for &shard in dirty {
                    self.persist_shard(state, shard)?;
                }
                return Ok(());
            }
        }
        // Full pass: migration off a legacy catalog, or an explicit
        // rewrite of every shard.
        let shard_dir = self.dir.join("catalog");
        std::fs::create_dir_all(&shard_dir)
            .map_err(|e| RpqError::io(format!("cannot create {shard_dir:?}"), e))?;
        for shard in 0..(1usize << state.shard_bits) {
            self.persist_shard(state, shard)?;
        }
        write_atomic(&manifest_path, json.as_bytes())?;
        state.sharded = true;
        Ok(())
    }

    /// Write one shard file: every catalog row whose fingerprint prefix
    /// maps to `shard`, stamped with the current epoch so duplicate ids
    /// from an interrupted cross-shard move resolve to the newer row.
    fn persist_shard(&self, state: &CatalogState, shard: usize) -> Result<(), RpqError> {
        let rows = CatalogShard {
            entries: state
                .catalog
                .entries
                .iter()
                .filter(|e| shard_of(e.fp_hi, state.shard_bits) == shard)
                .map(|e| ShardEntry {
                    stamp: state.catalog.epoch,
                    entry: e.clone(),
                })
                .collect(),
        };
        let json = serde_json::to_string(&rows)
            .map_err(|e| RpqError::invalid(format!("cannot serialize catalog shard: {e}")))?;
        write_atomic(
            &self.dir.join("catalog").join(shard_name(shard)),
            json.as_bytes(),
        )
    }
}

/// Persisted-plan schema version; files with another version fall back
/// to recompile.
const PLAN_VERSION: u32 = 1;

/// The persisted form of one compiled safe plan (`plans/plan-*.bin`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PersistedPlan {
    version: u32,
    /// Normalized-AST rendering — the cache key ([`Session`] plan-cache
    /// keying uses the same canonicalization).
    canon: String,
    /// Re-parseable display rendering, for warm-at-startup.
    source: String,
    /// The subquery policy's CLI name.
    policy: String,
    /// Fingerprint of the owning store's specification: a plan file
    /// copied between stores of different specs must fail key
    /// validation rather than decode for the wrong grammar.
    spec_fp: u64,
    plan: SafeQueryPlan,
}

/// The durable safe-plan tier ([`rpq_core::PlanStore`]): compiled plans
/// persist beside the index artifacts, keyed by (normalized query,
/// policy, spec fingerprint), with the same tamper-fallback-to-rebuild
/// contract the CSR artifacts have. Attach with
/// `Session::with_plan_store` to make prepared safe plans survive
/// process restarts.
impl PlanStore for RunStore {
    fn load(&self, canon: &str, policy: SubqueryPolicy) -> Option<SafeQueryPlan> {
        let _span = rpq_obs::Trace::span("store_load");
        let bytes = std::fs::read(self.plan_path(canon, policy)).ok()?;
        let persisted: PersistedPlan = codec::from_bytes(&bytes).ok()?;
        if persisted.version != PLAN_VERSION
            || persisted.canon != canon
            || persisted.policy != policy.cli_name()
            || persisted.spec_fp != self.spec_fp
        {
            return None;
        }
        // Restore validates every structural invariant against the
        // spec and rebuilds the skipped power tables; a tampered or
        // truncated payload fails here and recompiles.
        let plan = persisted.plan.restore(&self.spec).ok()?;
        self.plan_reloads.fetch_add(1, Ordering::Relaxed);
        Some(plan)
    }

    fn store(&self, canon: &str, source: &str, policy: SubqueryPolicy, plan: &SafeQueryPlan) {
        // The compile already happened — that is what the rebuild
        // counter measures; persistence is best-effort on top.
        self.plan_rebuilds.fetch_add(1, Ordering::Relaxed);
        let persisted = PersistedPlan {
            version: PLAN_VERSION,
            canon: canon.to_owned(),
            source: source.to_owned(),
            policy: policy.cli_name().to_owned(),
            spec_fp: self.spec_fp,
            plan: plan.clone(),
        };
        // Stores created by older builds lack `plans/`.
        let _ = std::fs::create_dir_all(self.plans_dir());
        let _ = write_atomic(&self.plan_path(canon, policy), &codec::to_bytes(&persisted));
    }
}

/// 64-bit FNV-1a: key hashing for plan files and the spec fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Write-then-rename so readers never observe a torn file: the catalog
/// is rewritten on every ingest, and run/artifact binaries must either
/// fully exist or not at all (a half-written artifact would just be
/// rebuilt, but a half-written catalog would lose the store).
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), RpqError> {
    // Unique per process *and* per call: two threads re-persisting the
    // same artifact must not interleave writes into one tmp file and
    // rename torn bytes into place.
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, bytes).map_err(|e| RpqError::io(format!("cannot write {tmp:?}"), e))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| RpqError::io(format!("cannot move {tmp:?} into place"), e))
}

impl RunSource for RunStore {
    fn n_runs(&self) -> usize {
        self.len()
    }

    fn run(&self, i: usize) -> Result<RunRef<'_>, RpqError> {
        let id = self.id_at(i).ok_or_else(|| {
            RpqError::invalid(format!(
                "run #{i} out of range for a {}-run store",
                self.len()
            ))
        })?;
        RunStore::run(self, id).map(RunRef::Shared)
    }

    fn warm_artifacts(&self, i: usize) -> Option<(Arc<TagIndex>, Arc<CsrIndex>)> {
        self.artifacts(self.id_at(i)?).ok()
    }
}

impl std::fmt::Debug for RunStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunStore")
            .field("dir", &self.dir)
            .field("runs", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_labeling::RunBuilder;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("rpq_store_unit")
            .join(format!("{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> Specification {
        rpq_workloads::paper_examples::fig2_spec()
    }

    fn run_of(spec: &Specification, seed: u64) -> Run {
        // Distinct target sizes per seed: small grammars can derive
        // structurally identical runs from different seeds at one
        // size, which would (correctly) deduplicate.
        RunBuilder::new(spec)
            .seed(seed)
            .target_edges(60 + 15 * seed as usize)
            .build()
            .unwrap()
    }

    #[test]
    fn ingest_dedupes_by_fingerprint_and_survives_reopen() {
        let dir = temp_dir("dedupe");
        let spec = Arc::new(spec());
        let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
        let a = run_of(&spec, 1);
        let b = run_of(&spec, 2);

        let ia = store.ingest(&a).unwrap();
        let ib = store.ingest(&b).unwrap();
        assert!(!ia.deduplicated && !ib.deduplicated);
        assert_ne!(ia.id, ib.id);
        // Same structure again → deduplicated onto the same id, even
        // through a serialization round-trip.
        let a_copy: Run = serde_json::from_str(&serde_json::to_string(&a).unwrap()).unwrap();
        let again = store.ingest(&a_copy).unwrap();
        assert!(again.deduplicated);
        assert_eq!(again.id, ia.id);
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().ingested, 2);
        assert_eq!(store.stats().deduplicated, 1);

        // Reopen: catalog, dedupe map and run bytes all persist.
        drop(store);
        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.ingest(&a).unwrap().deduplicated);
        let loaded = store.run(ia.id).unwrap();
        assert_eq!(loaded.n_edges(), a.n_edges());
        assert_eq!(loaded.fingerprint(), a.fingerprint());
        assert_eq!(store.stats().run_loads, 1);
        // Loaded once, cached thereafter.
        store.run(ia.id).unwrap();
        assert_eq!(store.stats().run_loads, 1);
    }

    #[test]
    fn artifacts_rebuild_cold_and_reload_warm() {
        let dir = temp_dir("artifacts");
        let spec = Arc::new(spec());
        let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
        let id = store.ingest(&run_of(&spec, 3)).unwrap().id;

        // Cold: no artifact files yet → rebuilt (and persisted).
        let (tag1, csr1) = store.artifacts(id).unwrap();
        assert_eq!(store.stats().tag_rebuilds, 1);
        assert_eq!(store.stats().tag_reloads, 0);
        assert!(store.tag_path(id).exists() && store.csr_path(id).exists());
        // Second call in-process: cache, no new counters.
        store.artifacts(id).unwrap();
        assert_eq!(store.stats().tag_rebuilds, 1);

        // Warm: a fresh store instance decodes the persisted files.
        let reopened = RunStore::open(&dir).unwrap();
        let (tag2, csr2) = reopened.artifacts(id).unwrap();
        assert_eq!(reopened.stats().tag_reloads, 1);
        assert_eq!(reopened.stats().csr_reloads, 1);
        assert_eq!(reopened.stats().tag_rebuilds, 0);
        assert_eq!(reopened.stats().csr_rebuilds, 0);
        assert_eq!(*tag2, *tag1);
        assert_eq!(*csr2, *csr1);

        // Tampered artifact: falls back to rebuild instead of erroring.
        std::fs::write(reopened.tag_path(id), b"garbage").unwrap();
        let tampered = RunStore::open(&dir).unwrap();
        tampered.artifacts(id).unwrap();
        assert_eq!(tampered.stats().tag_rebuilds, 1);
        assert_eq!(tampered.stats().csr_reloads, 1);
    }

    #[test]
    fn plans_persist_reload_and_fall_back_on_tamper() {
        let dir = temp_dir("plans");
        let spec = Arc::new(spec());
        let store = Arc::new(RunStore::create(&dir, Arc::clone(&spec)).unwrap());
        let session = rpq_core::Session::new(store.spec_arc())
            .with_plan_store(Arc::clone(&store) as Arc<dyn PlanStore>);

        // Cold: the safe plan compiles and persists.
        let q = session.prepare("_* e _*").unwrap();
        assert!(q.plan().is_safe());
        assert_eq!(store.stats().plan_rebuilds, 1);
        assert_eq!(store.stats().plan_reloads, 0);
        // Session cache hit: no further store traffic, any spelling.
        session.prepare("_*  e  _*").unwrap();
        assert_eq!(store.stats().plan_rebuilds, 1);
        // Composite (unsafe) and leaf queries bypass the durable tier.
        assert!(!session.prepare("_* a _*").unwrap().plan().is_safe());
        session.prepare("e").unwrap();
        assert_eq!(store.stats().plan_rebuilds, 1);
        assert_eq!(
            store.persisted_plans(),
            vec![("_* e _*".to_owned(), SubqueryPolicy::CostBased)]
        );

        // Restart: a fresh store + session reload instead of recompiling.
        let store2 = Arc::new(RunStore::open(&dir).unwrap());
        let session2 = rpq_core::Session::new(store2.spec_arc())
            .with_plan_store(Arc::clone(&store2) as Arc<dyn PlanStore>);
        let q2 = session2.prepare("_* e _*").unwrap();
        assert_eq!(store2.stats().plan_reloads, 1);
        assert_eq!(store2.stats().plan_rebuilds, 0);
        // The reloaded plan (rebuilt power tables included) answers
        // exactly like the freshly compiled one on a deep-recursion run.
        let run = run_of(&spec, 5);
        let (fresh, reloaded) = (q.safe_plan().unwrap(), q2.safe_plan().unwrap());
        for u in run.node_ids() {
            for v in run.node_ids() {
                assert_eq!(fresh.pairwise(&run, u, v), reloaded.pairwise(&run, u, v));
            }
        }

        // Tampered plan files fall back to recompile, never an error.
        for entry in std::fs::read_dir(store.dir().join("plans")).unwrap() {
            std::fs::write(entry.unwrap().path(), b"garbage").unwrap();
        }
        let store3 = Arc::new(RunStore::open(&dir).unwrap());
        assert!(store3.persisted_plans().is_empty());
        let session3 = rpq_core::Session::new(store3.spec_arc())
            .with_plan_store(Arc::clone(&store3) as Arc<dyn PlanStore>);
        assert!(session3.prepare("_* e _*").unwrap().plan().is_safe());
        assert_eq!(store3.stats().plan_reloads, 0);
        assert_eq!(store3.stats().plan_rebuilds, 1);
    }

    #[test]
    fn materialize_makes_every_artifact_warm() {
        let dir = temp_dir("materialize");
        let spec = Arc::new(spec());
        let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
        for seed in 10..14 {
            store.ingest(&run_of(&spec, seed)).unwrap();
        }
        assert_eq!(store.materialize_artifacts().unwrap(), 4);
        assert_eq!(store.materialize_artifacts().unwrap(), 0);
        let reopened = RunStore::open(&dir).unwrap();
        for id in reopened.ids() {
            reopened.artifacts(id).unwrap();
        }
        assert_eq!(reopened.stats().tag_reloads, 4);
        assert_eq!(reopened.stats().csr_reloads, 4);
        assert_eq!(
            reopened.stats().tag_rebuilds + reopened.stats().csr_rebuilds,
            0
        );
    }

    #[test]
    fn bounded_caches_refetch_evicted_entries_from_disk() {
        let dir = temp_dir("bounded");
        let spec = Arc::new(spec());
        let store = RunStore::create(&dir, Arc::clone(&spec))
            .unwrap()
            .with_cache_capacity(1);
        let ids: Vec<RunId> = (30..34)
            .map(|seed| store.ingest(&run_of(&spec, seed)).unwrap().id)
            .collect();
        // Touch every run and artifact pair; the 1-entry caches force
        // disk reads beyond the first sighting, not unbounded growth.
        for &id in &ids {
            store.run(id).unwrap();
            store.artifacts(id).unwrap();
        }
        for &id in &ids {
            store.run(id).unwrap();
        }
        // 4 ingests kept only 1 cached; 3 of the first sweep's loads
        // were evicted by the time the second sweep re-read them.
        assert!(store.stats().run_loads >= 3, "{:?}", store.stats());
        // Evicted artifact pairs reload from their persisted files.
        let before = store.stats();
        store.artifacts(ids[0]).unwrap();
        let delta = store.stats().since(before);
        assert_eq!(delta.tag_reloads, 1);
        assert_eq!(delta.tag_rebuilds, 0);
    }

    #[test]
    fn materialize_persists_even_when_the_pair_is_cached_in_memory() {
        let dir = temp_dir("rematerialize");
        let spec = Arc::new(spec());
        let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
        let id = store.ingest(&run_of(&spec, 40)).unwrap().id;
        store.artifacts(id).unwrap(); // built, persisted, cached
        std::fs::remove_file(store.tag_path(id)).unwrap();
        std::fs::remove_file(store.csr_path(id)).unwrap();
        // The cached pair must be written back out, not just counted.
        assert_eq!(store.materialize_artifacts().unwrap(), 1);
        assert!(store.tag_path(id).exists() && store.csr_path(id).exists());
        let reopened = RunStore::open(&dir).unwrap();
        reopened.artifacts(id).unwrap();
        assert_eq!(reopened.stats().tag_reloads, 1);
        assert_eq!(reopened.stats().tag_rebuilds, 0);
    }

    #[test]
    fn remove_run_evicts_catalog_row_and_files() {
        let dir = temp_dir("remove");
        let spec = Arc::new(spec());
        let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
        let victim = run_of(&spec, 50);
        let keeper = run_of(&spec, 51);
        let victim_id = store.ingest(&victim).unwrap().id;
        let keeper_id = store.ingest(&keeper).unwrap().id;
        store.materialize_artifacts().unwrap();
        assert!(store.tag_path(victim_id).exists());

        // Unknown fingerprints are a no-op, not an error.
        assert_eq!(store.remove_run((1, 2)).unwrap(), None);

        let fp = victim.fingerprint();
        assert_eq!(store.find_by_fingerprint(fp.0, fp.1), Some(victim_id));
        assert_eq!(store.remove_run(fp).unwrap(), Some(victim_id));
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().removed, 1);
        assert!(store.find_by_fingerprint(fp.0, fp.1).is_none());
        assert!(!store.run_path(victim_id).exists());
        assert!(!store.tag_path(victim_id).exists());
        assert!(!store.csr_path(victim_id).exists());
        assert!(store.run(victim_id).is_err());
        // The survivor is untouched, and re-ingesting the victim is a
        // fresh ingest (its dedupe row is gone) under a new id.
        store.run(keeper_id).unwrap();
        let again = store.ingest(&victim).unwrap();
        assert!(!again.deduplicated);
        assert_ne!(again.id, victim_id);

        // The removal survives reopening.
        store.remove_run(victim.fingerprint()).unwrap();
        drop(store);
        let reopened = RunStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.ids(), vec![keeper_id]);
    }

    #[test]
    fn remove_run_rolls_back_when_the_catalog_cannot_persist() {
        let dir = temp_dir("remove_rollback");
        let spec = Arc::new(spec());
        let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
        let run = run_of(&spec, 60);
        let id = store.ingest(&run).unwrap().id;

        // Make the catalog unpersistable: a directory squatting on its
        // path defeats the write-then-rename (rename onto a directory
        // fails), which permission bits would not under root.
        let catalog_path = dir.join("catalog.json");
        let saved = std::fs::read(&catalog_path).unwrap();
        std::fs::remove_file(&catalog_path).unwrap();
        std::fs::create_dir(&catalog_path).unwrap();
        assert!(store.remove_run(run.fingerprint()).is_err());

        // Rolled back: still cataloged, still addressable, still deduped.
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.find_by_fingerprint(run.fingerprint().0, run.fingerprint().1),
            Some(id)
        );
        assert!(store.ingest(&run).unwrap().deduplicated);
        assert!(store.run_path(id).exists());

        // Restore the catalog file: the removal now goes through.
        std::fs::remove_dir(&catalog_path).unwrap();
        std::fs::write(&catalog_path, saved).unwrap();
        assert_eq!(store.remove_run(run.fingerprint()).unwrap(), Some(id));
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn prune_orphans_deletes_only_uncataloged_files() {
        let dir = temp_dir("prune");
        let spec = Arc::new(spec());
        let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
        let id = store.ingest(&run_of(&spec, 70)).unwrap().id;
        store.materialize_artifacts().unwrap();

        // Plant orphans: artifacts of a never-cataloged run, a fresh
        // tmp file (a possibly in-flight atomic write), and an
        // unparseable name.
        std::fs::write(dir.join("runs").join("run-999.bin"), b"x").unwrap();
        std::fs::write(dir.join("index").join("tag-999.bin"), b"x").unwrap();
        std::fs::write(dir.join("index").join("csr-1.tmp.123.0"), b"x").unwrap();
        std::fs::write(dir.join("runs").join("notes.txt"), b"x").unwrap();

        // The fresh tmp file is within the in-flight grace period and
        // must be left alone (it could be a live artifact persist).
        assert_eq!(store.prune_orphans().unwrap(), 3);
        assert_eq!(store.stats().orphans_pruned, 3);
        assert!(dir.join("index").join("csr-1.tmp.123.0").exists());
        // Live files survive and stay warm.
        assert!(store.run_path(id).exists());
        assert!(store.tag_path(id).exists());
        assert!(store.csr_path(id).exists());
        let reopened = RunStore::open(&dir).unwrap();
        reopened.artifacts(id).unwrap();
        assert_eq!(reopened.stats().tag_reloads, 1);
        // A second pass finds nothing new (the tmp file is still young).
        assert_eq!(store.prune_orphans().unwrap(), 0);
    }

    #[test]
    fn epoch_bumps_on_every_catalog_mutation_and_persists() {
        let dir = temp_dir("epoch");
        let spec = Arc::new(spec());
        let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
        assert_eq!(store.epoch(), 0);
        let a = run_of(&spec, 1);
        store.ingest(&a).unwrap();
        assert_eq!(store.epoch(), 1);
        // Deduplicated ingests mutate nothing.
        store.ingest(&a).unwrap();
        assert_eq!(store.epoch(), 1);
        store.ingest(&run_of(&spec, 2)).unwrap();
        assert_eq!(store.epoch(), 2);
        store.remove_run(a.fingerprint()).unwrap();
        assert_eq!(store.epoch(), 3);
        // Pruning bumps only when it actually deleted something.
        assert_eq!(store.prune_orphans().unwrap(), 0);
        assert_eq!(store.epoch(), 3);
        std::fs::write(dir.join("runs").join("run-77.bin"), b"x").unwrap();
        assert_eq!(store.prune_orphans().unwrap(), 1);
        assert_eq!(store.epoch(), 4);
        assert_eq!(store.stats().epoch, 4);

        // The epoch is persisted, not recomputed.
        drop(store);
        let reopened = RunStore::open(&dir).unwrap();
        assert_eq!(reopened.epoch(), 4);
        reopened.ingest(&a).unwrap();
        assert_eq!(reopened.epoch(), 5);
    }

    /// Serialize one catalog row the way legacy (pre-shard) builds
    /// wrote it inline.
    fn legacy_row(id: u64, run: &Run) -> String {
        let (fp_hi, fp_lo) = run.fingerprint();
        format!(
            "{{\"id\":{id},\"fp_hi\":{fp_hi},\"fp_lo\":{fp_lo},\"n_nodes\":{},\"n_edges\":{}}}",
            run.n_nodes(),
            run.n_edges()
        )
    }

    /// Reset `dir` to a legacy monolithic catalog: the handwritten
    /// `catalog.json` becomes the whole catalog and the shard files of
    /// the current layout are removed.
    fn write_legacy_catalog(dir: &Path, text: &str) {
        let _ = std::fs::remove_dir_all(dir.join("catalog"));
        std::fs::write(dir.join("catalog.json"), text).unwrap();
    }

    #[test]
    fn legacy_catalogs_upgrade_on_open_and_migrate_on_first_mutation() {
        let dir = temp_dir("catalog_legacy");
        let spec = Arc::new(spec());
        let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
        let a = run_of(&spec, 1);
        store.ingest(&a).unwrap();
        drop(store);

        // Version-1 shape: inline entries, no epoch field — what a
        // pre-epoch build would have left behind.
        let path = dir.join("catalog.json");
        write_legacy_catalog(
            &dir,
            &format!(
                "{{\"version\":1,\"next_id\":1,\"entries\":[{}]}}",
                legacy_row(0, &a)
            ),
        );
        let upgraded = RunStore::open(&dir).unwrap();
        assert_eq!(upgraded.epoch(), 0);
        assert_eq!(upgraded.len(), 1);
        assert!(upgraded.ingest(&a).unwrap().deduplicated);
        // The first mutation migrates to the sharded layout: manifest
        // in catalog.json, rows in catalog/shard-XX.json.
        upgraded.ingest(&run_of(&spec, 2)).unwrap();
        assert_eq!(upgraded.epoch(), 1);
        drop(upgraded);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"version\":3"), "{text}");
        assert!(text.contains("\"shard_bits\""), "{text}");
        assert!(!text.contains("\"entries\""), "{text}");
        let reopened = RunStore::open(&dir).unwrap();
        assert_eq!(reopened.epoch(), 1);
        assert_eq!(reopened.len(), 2);
        drop(reopened);

        // Version-2 shape: inline entries plus an epoch — keeps its
        // epoch through the upgrade.
        write_legacy_catalog(
            &dir,
            &format!(
                "{{\"version\":2,\"next_id\":1,\"epoch\":7,\"entries\":[{}]}}",
                legacy_row(0, &a)
            ),
        );
        let upgraded = RunStore::open(&dir).unwrap();
        assert_eq!(upgraded.epoch(), 7);
        assert_eq!(upgraded.len(), 1);
        assert!(upgraded.ingest(&a).unwrap().deduplicated);
        drop(upgraded);

        // Catalogs from the future are refused, not misread — in both
        // the manifest and the legacy inline shapes.
        std::fs::write(
            &path,
            "{\"version\":9,\"next_id\":1,\"epoch\":7,\"shard_bits\":4}",
        )
        .unwrap();
        assert!(RunStore::open(&dir).is_err());
        write_legacy_catalog(
            &dir,
            &format!(
                "{{\"version\":9,\"next_id\":1,\"epoch\":7,\"entries\":[{}]}}",
                legacy_row(0, &a)
            ),
        );
        assert!(RunStore::open(&dir).is_err());
    }

    #[test]
    fn catalogs_shard_by_fingerprint_prefix() {
        let dir = temp_dir("catalog_shards");
        let spec = Arc::new(spec());
        let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
        let runs: Vec<Run> = (1..=4).map(|seed| run_of(&spec, seed)).collect();
        for run in &runs {
            store.ingest(run).unwrap();
        }
        // Fresh stores persist the sharded layout directly: a slim
        // manifest plus one row file per populated prefix.
        let manifest = std::fs::read_to_string(dir.join("catalog.json")).unwrap();
        assert!(manifest.contains("\"version\":3"), "{manifest}");
        assert!(!manifest.contains("\"entries\""), "{manifest}");
        let mut populated = 0;
        for shard in 0..(1usize << SHARD_BITS) {
            let path = dir.join("catalog").join(shard_name(shard));
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            let rows: CatalogShard = serde_json::from_str(&text).unwrap();
            for row in &rows.entries {
                assert_eq!(shard_of(row.entry.fp_hi, SHARD_BITS), shard);
            }
            populated += rows.entries.len();
        }
        assert_eq!(populated, 4);

        // Reopen merges the shards back into ingestion (id) order.
        let metas = store.metas();
        drop(store);
        let reopened = RunStore::open(&dir).unwrap();
        assert_eq!(reopened.metas(), metas);
        for run in &runs {
            assert!(reopened.ingest(run).unwrap().deduplicated);
        }
    }

    #[test]
    fn duplicate_ids_across_shards_resolve_to_the_newer_stamp() {
        let dir = temp_dir("catalog_stamps");
        let spec = Arc::new(spec());
        let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
        let a = run_of(&spec, 1);
        store.ingest(&a).unwrap();
        let (fp_hi, fp_lo) = a.fingerprint();
        drop(store);

        // Simulate a crash between the two shard writes of a
        // cross-shard move: the same id also sits in another shard,
        // under an older stamp and the pre-move fingerprint.
        let stale_hi = fp_hi ^ (0xff << 56);
        let stale_shard = shard_of(stale_hi, SHARD_BITS);
        assert_ne!(stale_shard, shard_of(fp_hi, SHARD_BITS));
        std::fs::write(
            dir.join("catalog").join(shard_name(stale_shard)),
            format!(
                "{{\"entries\":[{{\"stamp\":0,\"entry\":{{\"id\":0,\"fp_hi\":{stale_hi},\
                 \"fp_lo\":{fp_lo},\"n_nodes\":1,\"n_edges\":1}}}}]}}"
            ),
        )
        .unwrap();

        let reopened = RunStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        let meta = &reopened.metas()[0];
        assert_eq!((meta.fp_hi, meta.fp_lo), (fp_hi, fp_lo));
        assert!(reopened.ingest(&a).unwrap().deduplicated);
    }

    #[test]
    fn metas_expose_fingerprints() {
        let dir = temp_dir("metas");
        let spec = Arc::new(spec());
        let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
        let a = run_of(&spec, 80);
        let id = store.ingest(&a).unwrap().id;
        let metas = store.metas();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].id, id);
        assert_eq!((metas[0].fp_hi, metas[0].fp_lo), a.fingerprint());
        assert_eq!(metas[0].n_nodes as usize, a.n_nodes());
        assert_eq!(metas[0].n_edges as usize, a.n_edges());
    }

    #[test]
    fn wrong_spec_and_wrong_runs_are_rejected() {
        let dir = temp_dir("wrongspec");
        let fig2 = Arc::new(spec());
        let store = RunStore::create(&dir, Arc::clone(&fig2)).unwrap();
        // A run of a different specification fails validation.
        let fork = rpq_workloads::paper_examples::fork_spec();
        let foreign = RunBuilder::new(&fork)
            .seed(1)
            .target_edges(60)
            .build()
            .unwrap();
        assert!(store.ingest(&foreign).is_err());
        // Reopening under a different spec is refused.
        drop(store);
        assert!(RunStore::open_or_create(&dir, Arc::new(fork)).is_err());
        assert!(RunStore::open_or_create(&dir, fig2).is_ok());
        // Creating over an existing store is refused.
        assert!(RunStore::create(&dir, Arc::new(spec())).is_err());
    }
}
