//! Live ingestion: streaming appends with incremental artifact
//! maintenance.
//!
//! A stored run opened via [`RunStore::open_run`] becomes an
//! [`OpenRun`]: batches of new nodes and edges land through
//! [`OpenRun::append_events`], and the run's persisted artifacts are
//! maintained *incrementally* instead of rebuilt — each touched tag's
//! pair set is merged in place (`TagIndex::extend`), only the CSR
//! mirrors of touched tags are refreshed (`CsrIndex::extend`), and the
//! warm wildcard reachability closure is extended by a semi-naive
//! delta round seeded from the genuinely new edges
//! (`BitRelation::extend_closure`) rather than refixpointed from
//! scratch. Because every maintained structure is a pure function of
//! its pair sets, the incremental result is byte-identical to
//! re-ingesting the grown run (pinned by the `live_equivalence`
//! property suite).
//!
//! Past a configurable churn threshold the delta path stops paying off
//! and the append falls back to a full rebuild, counted in
//! [`StoreStats::append_rebuilds`](crate::StoreStats::append_rebuilds).
//!
//! Appends are durable: the catalog row (fingerprint, sizes) and epoch
//! are updated first, then the run and artifact files are rewritten
//! atomically, so reopening the store resumes from the grown run with
//! warm indexes. Subscribers follow the per-run monotonic sequence
//! number via [`OpenRun::wait_newer`] — the mechanism `rpq serve`'s
//! standing queries block on between pushes.

use crate::{codec, fp_key, write_atomic, RunId, RunStore};
use rpq_core::RpqError;
use rpq_grammar::Tag;
use rpq_labeling::{EventBatch, NodeId, Run};
use rpq_relalg::{kernel, BitRelation, CsrIndex, NodePairSet, TagIndex};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Default churn threshold: a batch whose genuinely new edges exceed
/// this percentage of the already-indexed edge count triggers a full
/// artifact rebuild instead of the delta path (`0` forces a rebuild on
/// every non-duplicate append — the benchmark's referee mode).
pub const DEFAULT_CHURN_PERCENT: u32 = 25;

/// The mutable state of one open run, swapped wholesale under its
/// mutex on every successful append.
struct LiveState {
    run: Arc<Run>,
    tag: Arc<TagIndex>,
    csr: Arc<CsrIndex>,
    /// Maintained transitive closure of the wildcard relation — the
    /// structure the delta rounds extend. `None` once the run outgrows
    /// the bit-kernel universe bound.
    reach: Option<Arc<BitRelation>>,
    /// Bumped once per applied batch; subscribers wait on it.
    seq: u64,
}

/// A stored run opened for streaming appends (see [`RunStore::open_run`]).
///
/// The handle is shared: opening the same run twice yields the same
/// `Arc`, so concurrent appenders and subscribers serialize on one
/// live state instead of racing on the run's files.
pub struct OpenRun {
    store: Arc<RunStore>,
    id: RunId,
    churn_percent: AtomicU32,
    state: Mutex<LiveState>,
    grown: Condvar,
}

/// The outcome of one [`OpenRun::append_events`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Appended {
    /// The run's sequence number after this batch (monotonic per open
    /// run; an empty batch leaves it unchanged).
    pub seq: u64,
    /// The store's catalog epoch after this batch.
    pub epoch: u64,
    /// Nodes carried by the batch.
    pub new_nodes: usize,
    /// Edges carried by the batch (duplicates included).
    pub new_edges: usize,
    /// `true` when churn forced a full artifact rebuild instead of the
    /// incremental delta path.
    pub rebuilt: bool,
    /// Node count of the grown run.
    pub n_nodes: usize,
    /// Edge count of the grown run.
    pub n_edges: usize,
    /// Structural fingerprint of the grown run (its new catalog
    /// identity).
    pub fingerprint: (u64, u64),
}

/// A consistent view of an open run at one sequence number: the grown
/// run, its maintained artifacts, and (while the universe fits the bit
/// kernel) the maintained wildcard reachability closure.
#[derive(Clone)]
pub struct LiveSnapshot {
    /// Sequence number this snapshot was taken at.
    pub seq: u64,
    /// The run as of `seq`.
    pub run: Arc<Run>,
    /// Its maintained tag index.
    pub tag: Arc<TagIndex>,
    /// Its maintained CSR mirror.
    pub csr: Arc<CsrIndex>,
    /// Its maintained wildcard closure, when bit-representable.
    pub reach: Option<Arc<BitRelation>>,
}

fn snapshot_of(live: &LiveState) -> LiveSnapshot {
    LiveSnapshot {
        seq: live.seq,
        run: Arc::clone(&live.run),
        tag: Arc::clone(&live.tag),
        csr: Arc::clone(&live.csr),
        reach: live.reach.clone(),
    }
}

impl RunStore {
    /// Open a stored run for streaming appends. The run's artifacts
    /// are loaded (or built) warm, and its wildcard closure is
    /// fixpointed once so later appends only pay delta rounds.
    /// Opening an already-open run returns the existing shared handle.
    pub fn open_run(self: &Arc<Self>, id: RunId) -> Result<Arc<OpenRun>, RpqError> {
        let mut open = self.open_runs.lock().expect("open-run registry lock");
        if let Some(existing) = open.get(&id).and_then(std::sync::Weak::upgrade) {
            return Ok(existing);
        }
        let run = self.run(id)?;
        let (tag, csr) = self.artifacts(id)?;
        let n = run.n_nodes();
        // Kernel-dispatched warm fixpoint: an auto-eligible run
        // condenses here instead of paying the semi-naive rounds.
        let reach = kernel::bits_representable(n)
            .then(|| Arc::new(rpq_relalg::transitive_closure_bitrel(tag.all_edges(), n)));
        let handle = Arc::new(OpenRun {
            store: Arc::clone(self),
            id,
            churn_percent: AtomicU32::new(DEFAULT_CHURN_PERCENT),
            state: Mutex::new(LiveState {
                run,
                tag,
                csr,
                reach,
                seq: 0,
            }),
            grown: Condvar::new(),
        });
        open.insert(id, Arc::downgrade(&handle));
        Ok(handle)
    }
}

impl OpenRun {
    /// The run's id inside its store.
    pub fn id(&self) -> RunId {
        self.id
    }

    /// The store this run lives in.
    pub fn store(&self) -> &Arc<RunStore> {
        &self.store
    }

    /// Override the churn threshold (see [`DEFAULT_CHURN_PERCENT`]).
    pub fn set_churn_percent(&self, percent: u32) {
        self.churn_percent.store(percent, Ordering::Relaxed);
    }

    /// The current live view of the run.
    pub fn snapshot(&self) -> LiveSnapshot {
        snapshot_of(&self.state.lock().expect("live run lock"))
    }

    /// Block until the run grows past `last_seen` (returning the new
    /// snapshot) or `timeout` elapses (returning `None`). Standing
    /// queries alternate this with their client socket so a quiet run
    /// never pins a worker in a busy loop.
    pub fn wait_newer(&self, last_seen: u64, timeout: Duration) -> Option<LiveSnapshot> {
        let live = self.state.lock().expect("live run lock");
        let (live, _) = self
            .grown
            .wait_timeout_while(live, timeout, |s| s.seq <= last_seen)
            .expect("live run lock");
        (live.seq > last_seen).then(|| snapshot_of(&live))
    }

    /// Apply one event batch: grow the run, maintain its artifacts
    /// (incrementally below the churn threshold, by full rebuild
    /// above it), persist everything, and wake subscribers. An empty
    /// batch is a no-op that reports the current state.
    ///
    /// Ordering on failure: the catalog row is updated (and persisted)
    /// before the run and artifact files are rewritten, and the live
    /// in-memory state advances only after every write landed — so an
    /// errored append leaves the live state unchanged and a retry of
    /// the same batch converges.
    pub fn append_events(&self, batch: &EventBatch) -> Result<Appended, RpqError> {
        let mut live = self.state.lock().expect("live run lock");
        if batch.is_empty() {
            return Ok(Appended {
                seq: live.seq,
                epoch: self.store.epoch(),
                new_nodes: 0,
                new_edges: 0,
                rebuilt: false,
                n_nodes: live.run.n_nodes(),
                n_edges: live.run.n_edges(),
                fingerprint: live.run.fingerprint(),
            });
        }
        let run = live.run.apply_events(batch).map_err(|e| {
            RpqError::invalid(format!("cannot apply event batch to {}: {e}", self.id))
        })?;
        run.validate_against(self.store.spec()).map_err(|e| {
            RpqError::invalid(format!(
                "grown run {} no longer matches the store spec: {e}",
                self.id
            ))
        })?;
        let n_nodes = run.n_nodes();

        // Genuinely new wildcard pairs: duplicates of already-indexed
        // edges extend nothing and must not seed the closure delta.
        let delta: NodePairSet = batch
            .edges
            .iter()
            .map(|e| (e.src, e.dst))
            .filter(|&(u, v)| !live.tag.all_edges().contains(u, v))
            .collect();
        let existing = live.tag.all_edges().len();
        let percent = self.churn_percent.load(Ordering::Relaxed);
        let rebuilt = (delta.len() as u128) * 100 > (existing as u128) * (percent as u128);

        let (tag, csr, reach) = if rebuilt {
            let tag = TagIndex::build(&run, self.store.spec().n_tags());
            // A churn-triggered rebuild refixpoints from scratch, so it
            // goes through the same `choose_closure` dispatch as
            // evaluation-time closures rather than hardcoding the
            // semi-naive path.
            let reach = kernel::bits_representable(n_nodes).then(|| {
                Arc::new(rpq_relalg::transitive_closure_bitrel(
                    tag.all_edges(),
                    n_nodes,
                ))
            });
            let csr = CsrIndex::build(&tag);
            (Arc::new(tag), Arc::new(csr), reach)
        } else {
            let mut tag = (*live.tag).clone();
            let batch_edges: Vec<(Tag, NodeId, NodeId)> =
                batch.edges.iter().map(|e| (e.tag, e.src, e.dst)).collect();
            let touched = tag.extend(&batch_edges, n_nodes);
            let mut csr = (*live.csr).clone();
            csr.extend(&tag, &touched);
            let reach = if kernel::bits_representable(n_nodes) {
                live.reach.as_ref().map(|old| {
                    let base = BitRelation::from_pairs(tag.all_edges(), n_nodes);
                    Arc::new(old.grow(n_nodes).extend_closure(&base, &delta))
                })
            } else {
                // The run outgrew the bit-kernel universe bound; stop
                // maintaining the closure rather than paying quadratic
                // space past the dispatch cutoff.
                None
            };
            (Arc::new(tag), Arc::new(csr), reach)
        };

        // Catalog first: the row's fingerprint and sizes become the
        // grown run's, under the same lock discipline as ingest.
        let key = fp_key(&run);
        let epoch = {
            let mut state = self.store.state.lock().expect("catalog lock");
            if let Some(&other) = state.by_fingerprint.get(&key) {
                if other != self.id {
                    return Err(RpqError::invalid(format!(
                        "append makes {} structurally identical to stored run {other}",
                        self.id
                    )));
                }
            }
            let position = state
                .catalog
                .entries
                .iter()
                .position(|e| e.id == self.id.0)
                .ok_or_else(|| {
                    RpqError::invalid(format!("run {} was removed while open", self.id))
                })?;
            let old = state.catalog.entries[position].clone();
            let old_key = (old.fp_hi, old.fp_lo, old.n_nodes, old.n_edges);
            let entry = &mut state.catalog.entries[position];
            entry.fp_hi = key.0;
            entry.fp_lo = key.1;
            entry.n_nodes = key.2;
            entry.n_edges = key.3;
            state.by_fingerprint.remove(&old_key);
            state.by_fingerprint.insert(key, self.id);
            state.catalog.epoch += 1;
            // A fingerprint change can move the row between catalog
            // shards. New shard first: a crash between the two writes
            // leaves the id in both, and the loader keeps the
            // higher-stamped (newer) row.
            let new_shard = crate::shard_of(key.0, state.shard_bits);
            let old_shard = crate::shard_of(old.fp_hi, state.shard_bits);
            let dirty: Vec<usize> = if new_shard == old_shard {
                vec![new_shard]
            } else {
                vec![new_shard, old_shard]
            };
            if let Err(e) = self.store.persist_catalog(&mut state, Some(&dirty)) {
                state.catalog.entries[position] = old;
                state.by_fingerprint.remove(&key);
                state.by_fingerprint.insert(old_key, self.id);
                state.catalog.epoch -= 1;
                return Err(e);
            }
            state.catalog.epoch
        };

        write_atomic(&self.store.run_path(self.id), &codec::to_bytes(&run))?;
        write_atomic(
            &self.store.tag_path(self.id),
            &codec::to_bytes(tag.as_ref()),
        )?;
        write_atomic(
            &self.store.csr_path(self.id),
            &codec::to_bytes(csr.as_ref()),
        )?;

        // Refresh the store caches: stale entries would answer for the
        // pre-append run.
        let run = Arc::new(run);
        {
            let mut cache = self.store.runs.lock().expect("run cache lock");
            cache.remove(&self.id);
            cache.insert_or_keep(self.id, Arc::clone(&run));
        }
        {
            let mut cache = self.store.artifacts.lock().expect("artifact cache lock");
            cache.remove(&self.id);
            cache.insert_or_keep(self.id, (Arc::clone(&tag), Arc::clone(&csr)));
        }
        self.store.appended.fetch_add(1, Ordering::Relaxed);
        if rebuilt {
            self.store.append_rebuilds.fetch_add(1, Ordering::Relaxed);
        }

        let out = Appended {
            seq: live.seq + 1,
            epoch,
            new_nodes: batch.nodes.len(),
            new_edges: batch.edges.len(),
            rebuilt,
            n_nodes,
            n_edges: run.n_edges(),
            fingerprint: run.fingerprint(),
        };
        live.run = run;
        live.tag = tag;
        live.csr = csr;
        live.reach = reach;
        live.seq += 1;
        drop(live);
        self.grown.notify_all();
        Ok(out)
    }
}

impl std::fmt::Debug for OpenRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let live = self.state.lock().expect("live run lock");
        f.debug_struct("OpenRun")
            .field("id", &self.id)
            .field("seq", &live.seq)
            .field("n_nodes", &live.run.n_nodes())
            .field("n_edges", &live.run.n_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_labeling::RunBuilder;
    use rpq_workloads::runs::event_stream;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("rpq_live_unit")
            .join(format!("{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> rpq_grammar::Specification {
        rpq_workloads::paper_examples::fig2_spec()
    }

    fn run_of(spec: &rpq_grammar::Specification, seed: u64, target: usize) -> Run {
        RunBuilder::new(spec)
            .seed(seed)
            .target_edges(target)
            .build()
            .unwrap()
    }

    #[test]
    fn incremental_appends_match_reingesting_the_grown_run() {
        let dir = temp_dir("delta_equals_rebuild");
        let spec = Arc::new(spec());
        let full = run_of(&spec, 7, 90);
        let (base, batches) = event_stream(&full, 4).unwrap();

        let store = Arc::new(RunStore::create(&dir, Arc::clone(&spec)).unwrap());
        let id = store.ingest(&base).unwrap().id;
        let open = store.open_run(id).unwrap();
        let mut last_seq = 0;
        for batch in &batches {
            let out = open.append_events(batch).unwrap();
            assert!(out.seq >= last_seq);
            last_seq = out.seq;
        }

        // The maintained artifacts equal a from-scratch build of the
        // replayed run — in memory and as persisted bytes.
        let snap = open.snapshot();
        let mut replayed = base.clone();
        for batch in &batches {
            replayed = replayed.apply_events(batch).unwrap();
        }
        let fresh_tag = TagIndex::build(&replayed, spec.n_tags());
        let fresh_csr = CsrIndex::build(&fresh_tag);
        assert_eq!(*snap.tag, fresh_tag);
        assert_eq!(*snap.csr, fresh_csr);
        assert_eq!(
            std::fs::read(store.tag_path(id)).unwrap(),
            codec::to_bytes(&fresh_tag)
        );
        assert_eq!(
            std::fs::read(store.csr_path(id)).unwrap(),
            codec::to_bytes(&fresh_csr)
        );
        // The maintained closure equals a full refixpoint.
        let n = replayed.n_nodes();
        let referee = BitRelation::from_pairs(fresh_tag.all_edges(), n).transitive_closure();
        assert_eq!(*snap.reach.as_ref().unwrap().as_ref(), referee);

        // The catalog row follows the grown run: fingerprint lookup
        // finds it, and re-ingesting the replayed run deduplicates.
        let fp = replayed.fingerprint();
        assert_eq!(store.find_by_fingerprint(fp.0, fp.1), Some(id));
        assert!(store.ingest(&replayed).unwrap().deduplicated);

        // Reopening the store resumes from the grown run, warm.
        drop(open);
        drop(store);
        let reopened = RunStore::open(&dir).unwrap();
        assert_eq!(reopened.run(id).unwrap().fingerprint(), fp);
        reopened.artifacts(id).unwrap();
        assert_eq!(reopened.stats().tag_reloads, 1);
        assert_eq!(reopened.stats().tag_rebuilds, 0);
    }

    #[test]
    fn churn_threshold_picks_rebuild_or_delta() {
        let dir = temp_dir("churn");
        let spec = Arc::new(spec());
        let full = run_of(&spec, 11, 80);
        let (base, batches) = event_stream(&full, 3).unwrap();
        let store = Arc::new(RunStore::create(&dir, Arc::clone(&spec)).unwrap());
        let id = store.ingest(&base).unwrap().id;
        let open = store.open_run(id).unwrap();

        // Threshold 0: every batch with at least one new pair rebuilds.
        open.set_churn_percent(0);
        let out = open.append_events(&batches[0]).unwrap();
        assert!(out.rebuilt);
        assert_eq!(store.stats().append_rebuilds, 1);
        // A generous threshold routes small batches down the delta path.
        open.set_churn_percent(10_000);
        let out = open.append_events(&batches[1]).unwrap();
        assert!(!out.rebuilt);
        assert_eq!(store.stats().append_rebuilds, 1);
        assert_eq!(store.stats().appended, 2);

        // An empty batch changes nothing at all.
        let epoch = store.epoch();
        let out = open.append_events(&EventBatch::default()).unwrap();
        assert_eq!(out.new_nodes + out.new_edges, 0);
        assert_eq!(out.seq, 2);
        assert_eq!(store.epoch(), epoch);
        assert_eq!(store.stats().appended, 2);
    }

    #[test]
    fn rebuilds_route_the_closure_through_kernel_dispatch() {
        // Regression: the open-time warm fixpoint and the
        // churn-triggered rebuild both hardcoded the semi-naive bit
        // fixpoint, so an SCC-eligible run never condensed on the
        // live path. Both now go through `choose_closure`; under a
        // forced-scc mode the closure counters must say so.
        let dir = temp_dir("rebuild_dispatch");
        let spec = Arc::new(spec());
        let full = run_of(&spec, 13, 90);
        let (base, batches) = event_stream(&full, 2).unwrap();
        let store = Arc::new(RunStore::create(&dir, Arc::clone(&spec)).unwrap());
        let id = store.ingest(&base).unwrap().id;

        let mode_before = rpq_relalg::kernel_mode();
        rpq_relalg::set_kernel_mode(rpq_relalg::KernelMode::ForceScc);
        let before = rpq_relalg::thread_closure_counts();
        let open = store.open_run(id).unwrap();
        let opened = rpq_relalg::thread_closure_counts().since(before);
        assert_eq!(
            opened.scc, 1,
            "open-time fixpoint must dispatch: {opened:?}"
        );
        assert_eq!(opened.bits, 0, "{opened:?}");

        // Churn threshold 0: the append rebuilds, and the rebuilt
        // closure dispatches too.
        open.set_churn_percent(0);
        let before = rpq_relalg::thread_closure_counts();
        let out = open.append_events(&batches[0]).unwrap();
        assert!(out.rebuilt);
        let rebuilt = rpq_relalg::thread_closure_counts().since(before);
        assert_eq!(rebuilt.scc, 1, "rebuild must dispatch: {rebuilt:?}");
        assert_eq!(rebuilt.bits, 0, "{rebuilt:?}");

        // Same closure as a semi-naive refixpoint, algorithm aside.
        let snap = open.snapshot();
        let referee =
            BitRelation::from_pairs(snap.tag.all_edges(), snap.run.n_nodes()).transitive_closure();
        assert_eq!(*snap.reach.as_ref().unwrap().as_ref(), referee);
        rpq_relalg::set_kernel_mode(mode_before);
    }

    #[test]
    fn open_run_handles_are_shared() {
        let dir = temp_dir("shared_handle");
        let spec = Arc::new(spec());
        let store = Arc::new(RunStore::create(&dir, Arc::clone(&spec)).unwrap());
        let id = store.ingest(&run_of(&spec, 3, 60)).unwrap().id;
        let a = store.open_run(id).unwrap();
        let b = store.open_run(id).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // Dropping every handle releases the registry slot; a later
        // open starts fresh from the persisted (grown) state.
        drop(a);
        drop(b);
        let c = store.open_run(id).unwrap();
        assert_eq!(c.snapshot().seq, 0);
        assert!(store.open_run(RunId(999)).is_err());
    }

    #[test]
    fn wait_newer_wakes_on_append_and_times_out_when_quiet() {
        let dir = temp_dir("wait_newer");
        let spec = Arc::new(spec());
        let full = run_of(&spec, 5, 70);
        let (base, batches) = event_stream(&full, 1).unwrap();
        let store = Arc::new(RunStore::create(&dir, Arc::clone(&spec)).unwrap());
        let id = store.ingest(&base).unwrap().id;
        let open = store.open_run(id).unwrap();

        // Quiet run: the wait times out empty-handed.
        assert!(open.wait_newer(0, Duration::from_millis(20)).is_none());

        let watcher = {
            let open = Arc::clone(&open);
            std::thread::spawn(move || open.wait_newer(0, Duration::from_secs(30)))
        };
        open.append_events(&batches[0]).unwrap();
        let snap = watcher.join().unwrap().expect("watcher saw the append");
        assert_eq!(snap.seq, 1);
        assert_eq!(snap.run.n_nodes(), full.n_nodes());
        // A stale cursor returns immediately with the current state.
        assert!(open.wait_newer(0, Duration::from_secs(30)).is_some());
    }
}
