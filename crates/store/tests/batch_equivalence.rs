//! Property tests pinning the batch executor to the sequential
//! referee: for any corpus, any request mode and any thread count,
//! `Session::evaluate_batch` answers exactly what per-run
//! `Session::evaluate` answers — through an in-memory source and
//! through a persisted store alike.

use proptest::prelude::*;
use rpq_core::{BatchOptions, QueryRequest, Session};
use rpq_labeling::Run;
use rpq_store::RunStore;
use rpq_workloads::paper_examples;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// The paper's Fig. 2 queries spanning safe, composite and star plans.
const QUERIES: &[&str] = &["_* e _*", "_* a _*", "a+", "b", "_* d _* a _*"];

fn scratch_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("rpq_store_prop").join(format!(
        "{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A corpus of 1–4 distinct-size runs (distinct sizes guarantee
/// distinct fingerprints even on this small grammar).
fn corpus_strategy() -> impl Strategy<Value = Vec<Run>> {
    (1usize..5, 0u64..1000).prop_map(|(n_runs, seed)| {
        let spec = paper_examples::fig2_spec();
        (0..n_runs)
            .map(|i| {
                rpq_labeling::RunBuilder::new(&spec)
                    .seed(seed + i as u64)
                    .target_edges(40 + 25 * i)
                    .build()
                    .expect("fig2 derives")
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn batch_equals_sequential_for_any_thread_count(
        runs in corpus_strategy(),
        threads in 1usize..9,
        query_index in 0usize..QUERIES.len(),
    ) {
        let query_text = QUERIES[query_index];
        let request = QueryRequest::entry_exit();

        // Sequential referee on its own session.
        let referee = Session::from_spec(paper_examples::fig2_spec());
        let referee_query = referee.prepare(query_text).unwrap();
        let expected: Vec<bool> = runs
            .iter()
            .map(|run| {
                referee
                    .evaluate(&referee_query, run, &request)
                    .as_bool()
                    .expect("entry-exit is pairwise")
            })
            .collect();

        // Batch over the in-memory source.
        let session = Session::from_spec(paper_examples::fig2_spec());
        let query = session.prepare(query_text).unwrap();
        let outcome = session.evaluate_batch(
            &query,
            runs.as_slice(),
            &request,
            &BatchOptions::threads(threads),
        );
        prop_assert_eq!(outcome.items.len(), runs.len());
        for (item, expected) in outcome.items.iter().zip(&expected) {
            let got = item.outcome.as_ref().expect("in-memory source").as_bool();
            prop_assert_eq!(got, Some(*expected), "{} on run {}", query_text, item.index);
        }

        // Batch through a persisted store: identical again, and the
        // warm artifacts mean the session never built an index itself.
        let dir = scratch_dir();
        let store = RunStore::create(&dir, session.spec_arc()).unwrap();
        for run in &runs {
            prop_assert!(!store.ingest(run).unwrap().deduplicated);
        }
        let store_session = Session::new(store.spec_arc());
        let store_query = store_session.prepare(query_text).unwrap();
        let outcome = store_session.evaluate_batch(
            &store_query,
            &store,
            &request,
            &BatchOptions::threads(threads),
        );
        for (item, expected) in outcome.items.iter().zip(&expected) {
            let got = item.outcome.as_ref().expect("store source").as_bool();
            prop_assert_eq!(got, Some(*expected), "store: {}", query_text);
        }
        prop_assert_eq!(outcome.stats.index_misses, 0,
            "store artifacts must pre-empt session index builds");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_star_requests_agree_with_sequential(
        runs in corpus_strategy(),
        threads in 1usize..5,
    ) {
        // A node id present in every corpus run (entry is always 0's
        // id only by construction order — use the smallest universe).
        let min_nodes = runs.iter().map(Run::n_nodes).min().unwrap();
        let probe = rpq_labeling::NodeId((min_nodes as u32) / 2);
        let request = QueryRequest::source_star(probe);

        let referee = Session::from_spec(paper_examples::fig2_spec());
        let referee_query = referee.prepare("a+").unwrap();
        let session = Session::from_spec(paper_examples::fig2_spec());
        let query = session.prepare("a+").unwrap();
        let outcome = session.evaluate_batch(
            &query,
            runs.as_slice(),
            &request,
            &BatchOptions::threads(threads),
        );
        for item in &outcome.items {
            let got = item.outcome.as_ref().expect("in-memory source");
            let fresh = referee.evaluate(&referee_query, &runs[item.index], &request);
            prop_assert_eq!(&got.result, &fresh.result, "run {}", item.index);
        }
    }
}
