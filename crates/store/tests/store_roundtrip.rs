//! Persistence round-trip: a store written by one process instance and
//! reopened by another answers queries identically, and the reload
//! counters prove the indexes came back warm instead of being
//! re-derived.

use rpq_core::{BatchOptions, QueryRequest, Session};
use rpq_store::RunStore;
use rpq_workloads::{paper_examples, runs};
use std::path::PathBuf;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("rpq_store_roundtrip")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn persist_reload_identical_outcomes_and_warm_counters() {
    // Pin the kernel dispatch: under a forced-pairs environment (the
    // CI kernel matrix) the warm CSR arena would legitimately never be
    // consumed, which is not what this test pins down.
    let kernel_before = rpq_relalg::kernel_mode();
    rpq_relalg::set_kernel_mode(rpq_relalg::KernelMode::Auto);
    let dir = scratch_dir("warm");
    let spec = paper_examples::fig2_spec();
    let corpus = runs::corpus(&spec, 5, 60, 11).unwrap();

    // ---- first process instance: ingest, materialize, evaluate ----
    let (first_outcomes, ids) = {
        let store = RunStore::create(&dir, std::sync::Arc::new(spec)).unwrap();
        for run in &corpus {
            store.ingest(run).unwrap();
        }
        assert_eq!(store.materialize_artifacts().unwrap(), 5);
        let session = Session::new(store.spec_arc());
        let query = session.prepare("_* a _*").unwrap();
        let outcome = session.evaluate_batch(
            &query,
            &store,
            &QueryRequest::entry_exit(),
            &BatchOptions::threads(2),
        );
        assert_eq!(outcome.n_err(), 0);
        let verdicts: Vec<bool> = outcome
            .items
            .iter()
            .map(|i| i.outcome.as_ref().unwrap().as_bool().unwrap())
            .collect();
        (verdicts, store.ids())
    };

    // ---- "restarted process": fresh store + session over the dir ----
    let store = RunStore::open(&dir).unwrap();
    assert_eq!(store.ids(), ids, "catalog order is stable across reopen");
    let session = Session::new(store.spec_arc());
    let query = session.prepare("_* a _*").unwrap();
    let outcome = session.evaluate_batch(
        &query,
        &store,
        &QueryRequest::entry_exit(),
        &BatchOptions::threads(3),
    );
    let second_outcomes: Vec<bool> = outcome
        .items
        .iter()
        .map(|i| i.outcome.as_ref().unwrap().as_bool().unwrap())
        .collect();
    assert_eq!(second_outcomes, first_outcomes, "identical QueryOutcomes");

    // Reload counters prove the indexes came back warm: every tag
    // index and CSR arena was decoded from its persisted artifact...
    let stats = store.stats();
    assert_eq!(stats.tag_reloads, 5);
    assert_eq!(stats.csr_reloads, 5);
    assert_eq!(stats.tag_rebuilds, 0);
    assert_eq!(stats.csr_rebuilds, 0);
    // ...and the session consumed them instead of building its own:
    // its caches were seeded, so evaluations hit. Whichever evaluation
    // strategy the session resolves to, the composite plan closes over
    // the warm CSR arena (the lazy product search reads it directly
    // and skips the tag index entirely, so only csr_hits is pinned)
    // and nothing was ever derived session-side.
    assert!(
        outcome.stats.csr_hits > 0,
        "warm CSR arenas must be consumed"
    );
    assert_eq!(outcome.stats.index_misses, 0);
    assert_eq!(outcome.stats.csr_misses, 0);

    let _ = std::fs::remove_dir_all(&dir);
    rpq_relalg::set_kernel_mode(kernel_before);
}

#[test]
fn single_run_queries_agree_between_loaded_and_original_runs() {
    let dir = scratch_dir("single");
    let spec = paper_examples::fig2_spec();
    let corpus = runs::corpus(&spec, 3, 70, 23).unwrap();
    let store = RunStore::create(&dir, std::sync::Arc::new(spec)).unwrap();
    let ids: Vec<_> = corpus.iter().map(|r| store.ingest(r).unwrap().id).collect();

    // Reopen and compare full all-pairs result sets per run.
    let store = RunStore::open(&dir).unwrap();
    let session = Session::new(store.spec_arc());
    let query = session.prepare("_* e _*").unwrap();
    for (run, &id) in corpus.iter().zip(&ids) {
        let loaded = store.run(id).unwrap();
        assert_eq!(loaded.fingerprint(), run.fingerprint());
        let all: Vec<rpq_labeling::NodeId> = run.node_ids().collect();
        let expected = session.evaluate(
            &query,
            run,
            &QueryRequest::all_pairs(all.clone(), all.clone()),
        );
        let got = session.evaluate(&query, &loaded, &QueryRequest::all_pairs(all.clone(), all));
        assert_eq!(got.result, expected.result, "{id}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
