//! Property tests pinning incremental index maintenance to the
//! from-scratch referee: for any base run and any append schedule, the
//! `TagIndex`/`CsrIndex` a live [`OpenRun`](rpq_store::OpenRun)
//! maintains — and persists — are byte-identical to the artifacts a
//! fresh store derives from re-ingesting the final run, and every
//! query outcome over the seeded artifacts agrees. Runs under whatever
//! kernel `RPQ_RELALG_KERNEL` forces, so the CI kernel matrix covers
//! all three fixpoint engines.

use proptest::prelude::*;
use rpq_core::{QueryRequest, Session};
use rpq_labeling::RunBuilder;
use rpq_store::{codec, RunStore};
use rpq_workloads::paper_examples;
use rpq_workloads::runs::event_stream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Safe, composite and star plans over the Fig. 2 grammar.
const QUERIES: &[&str] = &["_*", "_* e _*", "_* a _*", "a+", "_* d _* a _*"];

fn scratch_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("rpq_live_prop").join(format!(
        "{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn maintained_artifacts_match_fresh_ingest_of_the_final_run(
        seed in 0u64..500,
        edges in 60usize..140,
        n_batches in 1usize..5,
        // 0 forces a full rebuild on every append, 100 keeps the delta
        // path for all but the wildest batches, 25 is the default mix.
        churn_choice in 0usize..3,
    ) {
        let churn: u32 = [0, 25, 100][churn_choice];
        let spec = Arc::new(paper_examples::fig2_spec());
        let full = RunBuilder::new(&spec)
            .seed(seed)
            .target_edges(edges)
            .build()
            .expect("fig2 derives");
        let (base, batches) = event_stream(&full, n_batches).expect("streamable");

        // Maintained path: ingest the base, then append every batch
        // through the live handle, replaying in memory alongside.
        let dir_live = scratch_dir();
        let live_store = Arc::new(RunStore::create(&dir_live, Arc::clone(&spec)).unwrap());
        let ingested = live_store.ingest(&base).unwrap();
        let open = live_store.open_run(ingested.id).unwrap();
        open.set_churn_percent(churn);
        let mut replayed = base;
        for batch in &batches {
            let receipt = open.append_events(batch).unwrap();
            replayed = replayed.apply_events(batch).unwrap();
            prop_assert_eq!(receipt.n_nodes, replayed.n_nodes());
            prop_assert_eq!(receipt.n_edges, replayed.n_edges());
            prop_assert_eq!(receipt.fingerprint, replayed.fingerprint());
        }
        let stats = live_store.stats();
        prop_assert_eq!(stats.appended, batches.len() as u64);
        if churn == 0 {
            // Zero tolerance: every append takes the rebuild fallback.
            prop_assert_eq!(stats.append_rebuilds, batches.len() as u64);
        }
        // Epoch: one bump for the ingest, one per append.
        prop_assert_eq!(live_store.epoch(), 1 + batches.len() as u64);

        // Referee: one fresh ingest of the final run.
        let dir_fresh = scratch_dir();
        let fresh_store = RunStore::create(&dir_fresh, Arc::clone(&spec)).unwrap();
        let fresh_id = fresh_store.ingest(&replayed).unwrap().id;
        let (fresh_tag, fresh_csr) = fresh_store.artifacts(fresh_id).unwrap();

        // Cold re-open: the run and artifacts the live path *persisted*
        // must decode warm (no rebuild fallback) and match the fresh
        // derivation byte for byte.
        drop(open);
        drop(live_store);
        let reopened = RunStore::open(&dir_live).unwrap();
        let id = reopened.ids()[0];
        let stored_run = reopened.run(id).unwrap();
        prop_assert_eq!(codec::to_bytes(&*stored_run), codec::to_bytes(&replayed));
        let (live_tag, live_csr) = reopened.artifacts(id).unwrap();
        let after = reopened.stats();
        prop_assert_eq!(after.tag_rebuilds, 0);
        prop_assert_eq!(after.csr_rebuilds, 0);
        prop_assert_eq!(codec::to_bytes(&*live_tag), codec::to_bytes(&*fresh_tag));
        prop_assert_eq!(codec::to_bytes(&*live_csr), codec::to_bytes(&*fresh_csr));

        // Every query outcome over the maintained artifacts agrees
        // with the fresh ones (sessions seeded so evaluation really
        // consumes each side's artifacts, not a rebuilt index).
        let live_session = Session::new(Arc::clone(&spec));
        live_session.seed_run_cache(&stored_run, live_tag, Some(live_csr));
        let fresh_session = Session::new(Arc::clone(&spec));
        fresh_session.seed_run_cache(&replayed, fresh_tag, Some(fresh_csr));
        let all: Vec<_> = replayed.node_ids().collect();
        for query_text in QUERIES {
            let live_query = live_session.prepare(query_text).unwrap();
            let fresh_query = fresh_session.prepare(query_text).unwrap();
            let request = QueryRequest::all_pairs(all.clone(), all.clone());
            let live_pairs = live_session
                .evaluate(&live_query, &stored_run, &request)
                .as_pairs()
                .expect("all-pairs")
                .iter()
                .collect::<Vec<_>>();
            let fresh_pairs = fresh_session
                .evaluate(&fresh_query, &replayed, &request)
                .as_pairs()
                .expect("all-pairs")
                .iter()
                .collect::<Vec<_>>();
            prop_assert_eq!(live_pairs, fresh_pairs, "{} disagrees", query_text);
            let entry_exit = QueryRequest::entry_exit();
            prop_assert_eq!(
                live_session
                    .evaluate(&live_query, &stored_run, &entry_exit)
                    .as_bool(),
                fresh_session
                    .evaluate(&fresh_query, &replayed, &entry_exit)
                    .as_bool(),
                "{} entry-exit disagrees",
                query_text
            );
        }

        let _ = std::fs::remove_dir_all(&dir_live);
        let _ = std::fs::remove_dir_all(&dir_fresh);
    }
}
