//! Decode-robustness fuzz: arbitrary, truncated and bit-flipped byte
//! buffers fed to `rpq_store::codec::from_bytes` must fail cleanly —
//! never panic, never allocate past the existing remaining-input caps.
//!
//! Three mutation families, each seeded from valid frames:
//!
//! * **arbitrary** — random buffers (almost surely bad magic): always
//!   `Err`;
//! * **truncated** — every strict prefix of a valid frame: always
//!   `Err` (the decoder requires exactly one value covering the whole
//!   buffer);
//! * **bit-flipped** — one flipped bit in a valid frame: must not
//!   panic; when the flip happens to decode (e.g. an integer payload
//!   bit), the decoded value must re-encode and decode consistently.

use proptest::prelude::*;
use rpq_store::codec::{from_bytes, to_bytes};

/// The valid seed corpus: one frame per interesting shape (scalars,
/// strings with interning back-references, sequences, maps, packed
/// byte buffers via the relalg types).
fn seed_frames() -> Vec<Vec<u8>> {
    use rpq_labeling::NodeId;
    let pairs = rpq_relalg::NodePairSet::from_pairs(vec![
        (NodeId(0), NodeId(1)),
        (NodeId(1), NodeId(2)),
        (NodeId(2), NodeId(0)),
    ]);
    vec![
        to_bytes(&42u64),
        to_bytes(&u64::MAX),
        to_bytes(&(-7i64)),
        to_bytes(&"interned strings — once each".to_owned()),
        to_bytes(&vec![1u32, 2, 3, 4, 5]),
        to_bytes(&vec![
            (1u32, "a".to_owned()),
            (2, "a".to_owned()),
            (3, "b".to_owned()),
        ]),
        to_bytes(&pairs),
        to_bytes(&rpq_relalg::CsrRelation::from_pairs(&pairs, 3)),
    ]
}

/// Decoding must return *some* `Result` without panicking, for every
/// target type we persist. Returns whether any target decoded.
fn decode_all_targets(bytes: &[u8]) -> bool {
    let mut any_ok = false;
    any_ok |= from_bytes::<u64>(bytes).is_ok();
    any_ok |= from_bytes::<i64>(bytes).is_ok();
    any_ok |= from_bytes::<String>(bytes).is_ok();
    any_ok |= from_bytes::<Vec<u32>>(bytes).is_ok();
    any_ok |= from_bytes::<Vec<(u32, String)>>(bytes).is_ok();
    any_ok |= from_bytes::<rpq_relalg::NodePairSet>(bytes).is_ok();
    any_ok |= from_bytes::<rpq_relalg::CsrRelation>(bytes).is_ok();
    any_ok
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_buffers_error_cleanly(bytes in prop::collection::vec(0u8..=255, 0..200)) {
        // A random buffer opening with the exact 5-byte header is a
        // ~2^-40 event; anything else must be rejected at the header.
        if bytes.len() < 5 || &bytes[..4] != b"RPQB" || bytes[4] != 1 {
            prop_assert!(from_bytes::<u64>(&bytes).is_err());
            prop_assert!(from_bytes::<rpq_relalg::CsrRelation>(&bytes).is_err());
        }
        // Header or not: no decode may panic.
        decode_all_targets(&bytes);
    }

    #[test]
    fn valid_headers_with_random_payloads_never_panic(
        payload in prop::collection::vec(0u8..=255, 0..160),
    ) {
        let mut bytes = b"RPQB\x01".to_vec();
        bytes.extend_from_slice(&payload);
        decode_all_targets(&bytes);
    }

    #[test]
    fn truncations_of_valid_frames_error(
        frame_index in 0usize..8,
        cut_seed in 0u64..10_000,
    ) {
        let frames = seed_frames();
        let frame = &frames[frame_index % frames.len()];
        let cut = (cut_seed as usize) % frame.len();
        let prefix = &frame[..cut];
        // Every strict prefix must be an error in every target type —
        // the decoder demands one complete value covering the buffer.
        prop_assert!(!decode_all_targets(prefix), "cut {cut} of {} decoded", frame.len());
    }

    #[test]
    fn bit_flips_never_panic_and_stay_consistent(
        frame_index in 0usize..8,
        flip_seed in 0u64..100_000,
    ) {
        let frames = seed_frames();
        let mut frame = frames[frame_index % frames.len()].clone();
        let bit = (flip_seed as usize) % (frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);
        // Must not panic; a flip that still decodes (payload integer
        // bits can) must round-trip consistently.
        if let Ok(v) = from_bytes::<u64>(&frame) {
            let re = to_bytes(&v);
            prop_assert_eq!(from_bytes::<u64>(&re).unwrap(), v);
        }
        if let Ok(pairs) = from_bytes::<rpq_relalg::NodePairSet>(&frame) {
            let re = to_bytes(&pairs);
            prop_assert_eq!(from_bytes::<rpq_relalg::NodePairSet>(&re).unwrap(), pairs);
        }
        decode_all_targets(&frame);
    }

    #[test]
    fn corrupt_count_prefixes_cannot_drive_huge_allocations(
        count in 0u64..u64::MAX,
    ) {
        // A sequence header promising `count` elements with no bytes
        // behind it: the remaining-input cap must reject it without
        // reserving `count` slots.
        let mut bytes = b"RPQB\x01\x08".to_vec(); // TAG_SEQ
        let mut v = count;
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                bytes.push(byte);
                break;
            }
            bytes.push(byte | 0x80);
        }
        if count > 0 {
            prop_assert!(from_bytes::<Vec<u64>>(&bytes).is_err());
        }
    }
}
