//! Label entries and labels (`ψV`).
//!
//! A node's label is the concatenation of compressed-parse-tree edge
//! labels from the root to the node (Section II-B):
//!
//! * `(k, i)` — [`LabelEntry::Prod`]: the parent fired production `k` and
//!   this child is the `i`-th node of its body;
//! * `(s, t, i)` — [`LabelEntry::Rec`]: the parent is a recursion node of
//!   cycle `s` whose unfolding starts at phase `t`, and this child is the
//!   `i`-th module execution of the chain (1-based, outermost first).
//!
//! Because production bodies are topologically ordered and recursion
//! children are ordered by unfolding depth, lexicographic order on labels
//! equals left-to-right (document) order of the compressed parse tree's
//! leaves — the order Algorithm 2 requires its input lists sorted in.

use rpq_grammar::ProductionId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One compressed-parse-tree edge label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LabelEntry {
    /// `(k, i)`: the `i`-th body node of production `k`.
    Prod {
        /// Production fired by the parent execution.
        production: ProductionId,
        /// Body position of this child.
        pos: u32,
    },
    /// `(s, t, i)`: the `i`-th child of a recursion node for cycle `s`
    /// starting at phase `t`.
    Rec {
        /// Cycle index in the specification's canonical cycle list.
        cycle: u16,
        /// Phase of the first child's module within the cycle.
        start_phase: u16,
        /// 1-based unfolding index.
        idx: u32,
    },
}

impl LabelEntry {
    /// Total order: within one tree node all children are either all
    /// `Prod` (same production) or all `Rec` (same cycle and phase), so
    /// ordering by position / unfolding index yields document order.
    fn sort_key(&self) -> (u8, u32, u32) {
        match *self {
            LabelEntry::Prod { production, pos } => (0, production.0, pos),
            LabelEntry::Rec {
                cycle,
                start_phase,
                idx,
            } => (1, ((cycle as u32) << 16) | start_phase as u32, idx),
        }
    }
}

impl PartialOrd for LabelEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LabelEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sort_key().cmp(&other.sort_key())
    }
}

impl fmt::Display for LabelEntry {
    /// Paper notation: 1-based `(k,i)` and `(s,t,i)` tuples.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LabelEntry::Prod { production, pos } => {
                write!(f, "({},{})", production.0 + 1, pos + 1)
            }
            LabelEntry::Rec {
                cycle,
                start_phase,
                idx,
            } => write!(f, "({},{},{})", cycle + 1, start_phase + 1, idx),
        }
    }
}

/// A node label `ψV(v)`: the path of entries from the root.
///
/// Shared immutably (`Arc`) because sibling labels share long prefixes
/// conceptually; materialized flat for O(1) indexing during decoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Label(Arc<[LabelEntry]>);

impl Serialize for Label {
    fn to_value(&self) -> serde::Value {
        self.0.as_ref().to_value()
    }
}

impl Deserialize for Label {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Label::from_entries(Vec::<LabelEntry>::from_value(value)?))
    }
}

impl Label {
    /// The root's (empty) label.
    pub fn root() -> Label {
        Label(Arc::from(Vec::new()))
    }

    /// Build from entries.
    pub fn from_entries(entries: Vec<LabelEntry>) -> Label {
        Label(Arc::from(entries))
    }

    /// Extend with one entry (copying; labels are short).
    pub fn child(&self, entry: LabelEntry) -> Label {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(entry);
        Label(Arc::from(v))
    }

    /// Replace the last entry (used when a recursion child's sibling label
    /// is derived from the previous unfolding).
    pub fn with_last(&self, entry: LabelEntry) -> Label {
        let mut v = self.0.to_vec();
        *v.last_mut().expect("with_last on empty label") = entry;
        Label(Arc::from(v))
    }

    /// Entries, root-first.
    pub fn entries(&self) -> &[LabelEntry] {
        &self.0
    }

    /// Tree depth of the node.
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Is this a prefix of `other`?
    pub fn is_prefix_of(&self, other: &Label) -> bool {
        other.0.len() >= self.0.len() && self.0[..] == other.0[..self.0.len()]
    }

    /// Length of the longest common prefix with `other` — the depth of
    /// the lowest common ancestor in the compressed parse tree.
    pub fn common_prefix_len(&self, other: &Label) -> usize {
        self.0
            .iter()
            .zip(other.0.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }
}

impl PartialOrd for Label {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Label {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.iter().cmp(other.0.iter())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "(root)");
        }
        for e in self.0.iter() {
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prod(k: u32, i: u32) -> LabelEntry {
        LabelEntry::Prod {
            production: ProductionId(k),
            pos: i,
        }
    }

    fn rec(s: u16, t: u16, i: u32) -> LabelEntry {
        LabelEntry::Rec {
            cycle: s,
            start_phase: t,
            idx: i,
        }
    }

    #[test]
    fn child_appends() {
        let l = Label::root().child(prod(0, 1)).child(rec(0, 0, 1));
        assert_eq!(l.entries(), &[prod(0, 1), rec(0, 0, 1)]);
        assert_eq!(l.depth(), 2);
    }

    #[test]
    fn with_last_swaps_tail() {
        let l = Label::root().child(prod(0, 1)).child(rec(0, 0, 1));
        let sib = l.with_last(rec(0, 0, 2));
        assert_eq!(sib.entries(), &[prod(0, 1), rec(0, 0, 2)]);
    }

    #[test]
    fn prefix_and_lca() {
        let a = Label::from_entries(vec![prod(0, 1), rec(0, 0, 1), prod(1, 0)]);
        let b = Label::from_entries(vec![prod(0, 1), rec(0, 0, 2), prod(1, 2)]);
        assert_eq!(a.common_prefix_len(&b), 1);
        let p = Label::from_entries(vec![prod(0, 1)]);
        assert!(p.is_prefix_of(&a));
        assert!(!a.is_prefix_of(&p));
        assert!(p.is_prefix_of(&p.clone()));
    }

    #[test]
    fn ordering_is_document_order() {
        // Siblings under the same production: ordered by position.
        let a = Label::from_entries(vec![prod(0, 0)]);
        let b = Label::from_entries(vec![prod(0, 2)]);
        assert!(a < b);
        // Recursion children ordered by unfolding index.
        let r1 = Label::from_entries(vec![prod(0, 1), rec(0, 0, 1)]);
        let r2 = Label::from_entries(vec![prod(0, 1), rec(0, 0, 2)]);
        assert!(r1 < r2);
        // A node deeper below r1 still precedes r2's subtree.
        let r1_deep = Label::from_entries(vec![prod(0, 1), rec(0, 0, 1), prod(1, 5)]);
        assert!(r1_deep < r2);
        assert!(r1 < r1_deep);
    }

    #[test]
    fn display_matches_paper_notation() {
        // The paper writes ψV(b:2) = (1,3)(4,1) with 1-based numbering.
        let l = Label::from_entries(vec![prod(0, 2), prod(3, 0)]);
        assert_eq!(l.to_string(), "(1,3)(4,1)");
        let r = Label::from_entries(vec![prod(0, 1), rec(0, 0, 2)]);
        assert_eq!(r.to_string(), "(1,2)(1,1,2)");
        assert_eq!(Label::root().to_string(), "(root)");
    }
}
