#![warn(missing_docs)]

//! Runs, derivation and derivation-based reachability labels.
//!
//! This crate is the substrate the paper borrows from Bao, Davidson, Milo
//! (PVLDB 2012, the paper's ref \[4\]): executions of a workflow
//! specification are derived by node replacement, and every node is
//! labeled **as it is created** with the sequence of derivation steps that
//! produced it — the edge labels of the *compressed parse tree* from the
//! root down to the node (Section II-B of Huang et al., ICDE 2015).
//!
//! Contents:
//!
//! * [`label`] — label entries `(k, i)` / `(s, t, i)` and [`Label`]s;
//! * [`run`] — the provenance DAG ([`Run`]) produced by a derivation;
//! * [`mod@derive`] — the node-replacement engine with pluggable production
//!   policies ([`RunBuilder`]);
//! * [`parse_tree`] — explicit compressed parse trees (diagnostics and
//!   property tests; query evaluation never materializes them);
//! * [`list_tree`] — the trie ("tree representation of a list of nodes",
//!   Fig. 12) that Algorithm 2 merges;
//! * [`codec`] — compact binary label encoding, demonstrating the
//!   logarithmic label size the scheme guarantees;
//! * [`stats`] — run/label statistics used by the experiment harness.

pub mod codec;
pub mod derive;
pub mod label;
pub mod list_tree;
pub mod parse_tree;
pub mod run;
pub mod stats;

pub use derive::{
    DeriveError, ForkFocus, MinSizes, PolicyContext, ProductionPolicy, RandomGrowth, RunBuilder,
    Scripted, UniformRandom,
};
pub use label::{Label, LabelEntry};
pub use list_tree::{ListTree, ListTreeNode};
pub use parse_tree::ParseTree;
pub use run::{EventBatch, NodeId, Run, RunEdge, RunNode};
pub use stats::RunStats;
