//! Run and label statistics for the experiment harness.

use crate::codec::encoded_len;
use crate::parse_tree::ParseTree;
use crate::run::Run;

/// Aggregate statistics of a labeled run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Node count.
    pub n_nodes: usize,
    /// Edge count (the paper's run-size parameter).
    pub n_edges: usize,
    /// Compressed parse tree depth.
    pub tree_depth: usize,
    /// Total encoded label bytes.
    pub label_bytes_total: usize,
    /// Mean encoded label size in bytes.
    pub label_bytes_avg: f64,
    /// Largest encoded label in bytes.
    pub label_bytes_max: usize,
}

impl RunStats {
    /// Measure a run.
    pub fn measure(run: &Run) -> RunStats {
        let mut total = 0usize;
        let mut max = 0usize;
        for id in run.node_ids() {
            let len = encoded_len(run.label(id));
            total += len;
            max = max.max(len);
        }
        let tree_depth = ParseTree::from_run(run).depth();
        RunStats {
            n_nodes: run.n_nodes(),
            n_edges: run.n_edges(),
            tree_depth,
            label_bytes_total: total,
            label_bytes_avg: total as f64 / run.n_nodes().max(1) as f64,
            label_bytes_max: max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::RunBuilder;
    use rpq_grammar::SpecificationBuilder;

    #[test]
    fn label_sizes_stay_logarithmic_as_runs_grow() {
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("t");
            let s = w.node("S");
            let y = w.node("t");
            w.edge_named(x, s, "go");
            w.edge_named(s, y, "go");
        });
        b.production("S", |w| {
            w.node("t");
        });
        b.start("S");
        let spec = b.build().unwrap();

        let small = RunStats::measure(
            &RunBuilder::new(&spec)
                .seed(1)
                .target_edges(100)
                .build()
                .unwrap(),
        );
        let large = RunStats::measure(
            &RunBuilder::new(&spec)
                .seed(1)
                .target_edges(10_000)
                .build()
                .unwrap(),
        );
        // A 100x larger run must not have 100x larger labels; varint
        // recursion indices keep growth logarithmic.
        assert!(large.n_edges >= 50 * small.n_edges.min(200));
        assert!(
            large.label_bytes_max <= small.label_bytes_max + 16,
            "labels grew too fast: {} -> {}",
            small.label_bytes_max,
            large.label_bytes_max
        );
        // Tree depth is independent of run size for this grammar.
        assert_eq!(small.tree_depth, large.tree_depth);
    }
}
