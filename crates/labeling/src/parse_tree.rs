//! Explicit compressed parse trees (diagnostics and property tests).
//!
//! Query evaluation never materializes the parse tree — that is the whole
//! point of label decoding — but tests need it to verify the depth bound
//! ("the depth of a compressed parse tree is bounded by the size of the
//! specification") and to render trees like the paper's Fig. 7.

use crate::label::{Label, LabelEntry};
use crate::run::{NodeId, Run};
use std::collections::BTreeMap;

/// A reconstructed compressed parse tree.
#[derive(Debug)]
pub struct ParseTree {
    root: PtNode,
}

/// One tree node: interior nodes are module executions or recursion
/// nodes, leaves are run nodes.
#[derive(Debug, Default)]
pub struct PtNode {
    /// Children keyed by their edge label (BTreeMap keeps document order).
    children: BTreeMap<LabelEntry, PtNode>,
    /// Set when this node is a leaf (an atomic execution).
    pub leaf: Option<NodeId>,
}

impl ParseTree {
    /// Rebuild the tree from all node labels of a run.
    pub fn from_run(run: &Run) -> ParseTree {
        let mut root = PtNode::default();
        for (id, node) in run.nodes() {
            let mut cur = &mut root;
            for &e in node.label.entries() {
                cur = cur.children.entry(e).or_default();
            }
            debug_assert!(cur.leaf.is_none(), "duplicate label {}", node.label);
            cur.leaf = Some(id);
        }
        ParseTree { root }
    }

    /// The root node.
    pub fn root(&self) -> &PtNode {
        &self.root
    }

    /// Maximum depth (edges on the longest root-leaf path).
    pub fn depth(&self) -> usize {
        fn go(n: &PtNode) -> usize {
            n.children.values().map(|c| 1 + go(c)).max().unwrap_or(0)
        }
        go(&self.root)
    }

    /// Total number of tree nodes (including interior ones).
    pub fn n_nodes(&self) -> usize {
        fn go(n: &PtNode) -> usize {
            1 + n.children.values().map(go).sum::<usize>()
        }
        go(&self.root)
    }

    /// Leaves in document order; must equal the run's label order.
    pub fn leaves(&self) -> Vec<NodeId> {
        fn go(n: &PtNode, out: &mut Vec<NodeId>) {
            if let Some(id) = n.leaf {
                out.push(id);
            }
            for c in n.children.values() {
                go(c, out);
            }
        }
        let mut out = Vec::new();
        go(&self.root, &mut out);
        out
    }

    /// Find the subtree at a label prefix.
    pub fn descend(&self, label: &Label) -> Option<&PtNode> {
        let mut cur = &self.root;
        for e in label.entries() {
            cur = cur.children.get(e)?;
        }
        Some(cur)
    }
}

impl PtNode {
    /// Children in document order.
    pub fn children(&self) -> impl Iterator<Item = (&LabelEntry, &PtNode)> {
        self.children.iter()
    }

    /// Number of children.
    pub fn n_children(&self) -> usize {
        self.children.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::{RunBuilder, Scripted};
    use rpq_grammar::{ProductionId, Specification, SpecificationBuilder};

    fn fig2() -> Specification {
        let mut b = SpecificationBuilder::new();
        for m in ["a", "b", "c", "d", "e"] {
            b.atomic(m);
        }
        for m in ["S", "A", "B"] {
            b.composite(m);
        }
        b.production("S", |w| {
            let c = w.node("c");
            let a = w.node("A");
            let bb = w.node("B");
            let b2 = w.node("b");
            // W1 is a diamond: c feeds both A and B, which both feed b
            // (the only shape consistent with Examples 3.1 and 3.2).
            w.edge(c, a);
            w.edge(c, bb);
            w.edge(a, b2);
            w.edge(bb, b2);
        });
        b.production("A", |w| {
            let a = w.node("a");
            let aa = w.node("A");
            let d = w.node("d");
            w.edge(a, aa);
            w.edge(aa, d);
        });
        b.production("A", |w| {
            let e1 = w.node("e");
            let e2 = w.node("e");
            w.edge(e1, e2);
        });
        b.production("B", |w| {
            let b1 = w.node("b");
            let b2 = w.node("b");
            w.edge(b1, b2);
        });
        b.start("S");
        b.build().unwrap()
    }

    #[test]
    fn fig7_tree_shape() {
        let spec = fig2();
        let run = RunBuilder::new(&spec)
            .policy(Scripted::new([
                ProductionId(0),
                ProductionId(1),
                ProductionId(1),
                ProductionId(2),
                ProductionId(3),
            ]))
            .build()
            .unwrap();
        let tree = ParseTree::from_run(&run);
        // Root S:1 has 4 children: c:1, R:1, B:1, b:1.
        assert_eq!(tree.root().n_children(), 4);
        // The recursion node R:1 (at S's body position 1) has 3 children.
        let r_label = crate::label::Label::from_entries(vec![LabelEntry::Prod {
            production: ProductionId(0),
            pos: 1,
        }]);
        let r = tree.descend(&r_label).unwrap();
        assert_eq!(r.n_children(), 3);
        // Depth: root -> R -> A:i -> leaf = 3.
        assert_eq!(tree.depth(), 3);
        assert_eq!(tree.leaves().len(), run.n_nodes());
    }

    #[test]
    fn depth_is_bounded_by_spec_size_even_for_huge_runs() {
        let spec = fig2();
        for (seed, target) in [(1u64, 500usize), (2, 2000), (3, 8000)] {
            let run = RunBuilder::new(&spec)
                .seed(seed)
                .target_edges(target)
                .build()
                .unwrap();
            let tree = ParseTree::from_run(&run);
            // The structural bound: every root-leaf path alternates
            // between production levels and (at most one per cycle)
            // recursion levels.
            assert!(
                tree.depth() <= 2 * spec.size(),
                "depth {} too large for spec size {}",
                tree.depth(),
                spec.size()
            );
        }
    }

    #[test]
    fn leaves_in_document_order_match_label_sort() {
        let spec = fig2();
        let run = RunBuilder::new(&spec)
            .seed(4)
            .target_edges(400)
            .build()
            .unwrap();
        let tree = ParseTree::from_run(&run);
        assert_eq!(tree.leaves(), run.nodes_in_document_order());
    }
}
