//! The derivation engine: node replacement with on-the-fly labeling.
//!
//! Derivation (Definition 4) starts from the start module and repeatedly
//! replaces a composite node by the body of one of its productions.
//! Incoming edges of the replaced node are redirected to the body's source
//! instance, outgoing edges to its sink instance; edge tags are inherited
//! unchanged. We expand depth-first with an explicit stack, creating run
//! nodes (and their labels) exactly when they are derived — labels never
//! change afterwards, matching the dynamic labeling requirement of the
//! paper ("a label is assigned to each node as soon as it is executed").
//!
//! ## Labeling rules (compressed parse tree, Section II-B)
//!
//! When an execution with tree label `L` fires production `k`:
//!
//! * an **atomic** child at body position `i` gets label `L · (k, i)`;
//! * a **composite, non-recursive** child at position `i` gets
//!   `L · (k, i)`;
//! * a **composite, recursive** child (module on cycle `s`, phase `t`) at
//!   a position that is *not* the cycle continuation opens a fresh
//!   recursion node `R` at `L · (k, i)`; the child execution becomes R's
//!   first child with label `L · (k, i) · (s, t, 1)`;
//! * the child at the **cycle-continuation position** of a cycle
//!   production becomes the next sibling under the enclosing recursion
//!   node: label `ψ(R) · (s, t, idx+1)`.
//!
//! Strict linearity guarantees each cycle is entered at most once per
//! root-leaf path, so tree depth stays `O(|G|)` while recursion chains
//! grow in breadth — the property that keeps labels logarithmic in run
//! size.

use crate::label::{Label, LabelEntry};
use crate::run::{NodeId, Run, RunEdge, RunNode};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rpq_grammar::{ModuleId, ProductionId, Specification};
use std::collections::VecDeque;
use std::fmt;

/// Why derivation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeriveError {
    /// The specification is not strictly linear-recursive, so the compact
    /// labeling scheme is undefined (Section II-B constraint 1).
    NotStrictlyLinear,
}

impl fmt::Display for DeriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeriveError::NotStrictlyLinear => {
                write!(f, "specification is not strictly linear-recursive")
            }
        }
    }
}

impl std::error::Error for DeriveError {}

/// Minimal-completion sizes per module, used to steer run growth and to
/// guarantee termination once a size budget is exhausted.
#[derive(Debug, Clone)]
pub struct MinSizes {
    /// Minimum number of run edges an execution of each module produces.
    pub min_edges: Vec<u64>,
    /// A production achieving the minimum (None for atomic modules).
    pub min_production: Vec<Option<ProductionId>>,
}

impl MinSizes {
    /// Fixpoint computation; terminates because validated specifications
    /// are productive.
    pub fn compute(spec: &Specification) -> MinSizes {
        let n = spec.n_modules();
        let mut min_edges = vec![u64::MAX; n];
        let mut min_production = vec![None; n];
        for (i, m) in spec.modules().iter().enumerate() {
            if m.kind == rpq_grammar::ModuleKind::Atomic {
                min_edges[i] = 0;
            }
        }
        loop {
            let mut changed = false;
            for (pi, p) in spec.productions().iter().enumerate() {
                let mut total = p.body.edges().len() as u64;
                let mut ok = true;
                for &m in p.body.nodes() {
                    if min_edges[m.index()] == u64::MAX {
                        ok = false;
                        break;
                    }
                    total = total.saturating_add(min_edges[m.index()]);
                }
                if ok && total < min_edges[p.head.index()] {
                    min_edges[p.head.index()] = total;
                    min_production[p.head.index()] = Some(ProductionId(pi as u32));
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        MinSizes {
            min_edges,
            min_production,
        }
    }

    /// The cheapest production of `module`.
    pub fn minimal_production(&self, module: ModuleId) -> ProductionId {
        self.min_production[module.index()].expect("composite module has a minimal production")
    }
}

/// Derivation-time information offered to policies.
#[derive(Debug)]
pub struct PolicyContext<'a> {
    /// Edges materialized so far plus the minimal completion of all
    /// pending composite work — an accurate lower bound on the final size.
    pub estimated_edges: u64,
    /// The requested run size (edges).
    pub target_edges: u64,
    /// Number of production firings so far.
    pub expansions: u64,
    /// Minimal-completion table.
    pub min_sizes: &'a MinSizes,
}

/// Chooses which production a composite execution fires.
pub trait ProductionPolicy {
    /// Pick one of `spec.productions_of(module)`.
    fn choose(
        &mut self,
        spec: &Specification,
        module: ModuleId,
        ctx: &PolicyContext<'_>,
    ) -> ProductionId;
}

/// The paper's run simulator: apply productions until the size budget is
/// met, then complete minimally.
///
/// To reliably hit the requested run size (the paper sweeps 1K–16K
/// edges), recursive modules *continue* their cycle while the estimated
/// size is under budget; all other choice points (which exit production,
/// which implementation of a non-recursive composite) are uniformly
/// random. A pure uniform policy ([`UniformRandom`]) is also provided for
/// fuzzing, but cannot guarantee a size.
#[derive(Debug)]
pub struct RandomGrowth {
    rng: SmallRng,
}

impl RandomGrowth {
    /// Seeded random policy.
    pub fn new(seed: u64) -> RandomGrowth {
        RandomGrowth {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl ProductionPolicy for RandomGrowth {
    fn choose(
        &mut self,
        spec: &Specification,
        module: ModuleId,
        ctx: &PolicyContext<'_>,
    ) -> ProductionId {
        // Safety valve: even if growth keeps firing recursive productions
        // with zero-edge bodies, cap total expansions.
        let over_budget = ctx.estimated_edges >= ctx.target_edges
            || ctx.expansions > 64 * ctx.target_edges + 4096;
        match spec.recursion().cycle_of_module(module) {
            Some((cycle, phase)) => {
                let continue_prod =
                    spec.recursion().cycles[cycle as usize].edges[phase as usize].production;
                if !over_budget {
                    return continue_prod;
                }
                // Exit productions never continue any cycle (strict
                // linearity makes non-cycle production-graph edges a
                // DAG), so picking one at random still terminates.
                let exits: Vec<ProductionId> = spec
                    .productions_of(module)
                    .iter()
                    .copied()
                    .filter(|&p| p != continue_prod)
                    .collect();
                if exits.is_empty() {
                    // The base case lives on another module of the cycle.
                    return continue_prod;
                }
                exits[self.rng.gen_range(0..exits.len())]
            }
            None => {
                if over_budget {
                    return ctx.min_sizes.minimal_production(module);
                }
                let prods = spec.productions_of(module);
                prods[self.rng.gen_range(0..prods.len())]
            }
        }
    }
}

/// Uniformly random production choice — Definition 4 taken literally.
/// Run sizes are whatever the random walk yields (with a termination
/// cap), so this policy is meant for property tests, not benchmarks.
#[derive(Debug)]
pub struct UniformRandom {
    rng: SmallRng,
}

impl UniformRandom {
    /// Seeded uniform policy.
    pub fn new(seed: u64) -> UniformRandom {
        UniformRandom {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl ProductionPolicy for UniformRandom {
    fn choose(
        &mut self,
        spec: &Specification,
        module: ModuleId,
        ctx: &PolicyContext<'_>,
    ) -> ProductionId {
        if ctx.estimated_edges >= ctx.target_edges || ctx.expansions > 64 * ctx.target_edges + 4096
        {
            return ctx.min_sizes.minimal_production(module);
        }
        let prods = spec.productions_of(module);
        prods[self.rng.gen_range(0..prods.len())]
    }
}

/// Fork-heavy policy for the Kleene-star experiments (Fig. 13g/13h):
/// fire one designated cycle `unfoldings` times, every other cycle once,
/// everything else minimally.
#[derive(Debug)]
pub struct ForkFocus {
    target_cycle: usize,
    unfoldings: u64,
    fired_target: u64,
    fired_other: Vec<u64>,
    rng: SmallRng,
}

impl ForkFocus {
    /// `target_cycle` indexes the specification's canonical cycle list.
    pub fn new(target_cycle: usize, unfoldings: u64, seed: u64) -> ForkFocus {
        ForkFocus {
            target_cycle,
            unfoldings,
            fired_target: 0,
            fired_other: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl ProductionPolicy for ForkFocus {
    fn choose(
        &mut self,
        spec: &Specification,
        module: ModuleId,
        ctx: &PolicyContext<'_>,
    ) -> ProductionId {
        let rec = spec.recursion();
        self.fired_other.resize(rec.cycles.len().max(1), 0);
        if let Some((cycle, phase)) = rec.cycle_of_module(module) {
            let cycle = cycle as usize;
            let continue_prod = rec.cycles[cycle].edges[phase as usize].production;
            if cycle == self.target_cycle {
                if self.fired_target < self.unfoldings {
                    self.fired_target += 1;
                    return continue_prod;
                }
            } else if self.fired_other[cycle] < 1 {
                self.fired_other[cycle] += 1;
                return continue_prod;
            }
            // Exit the cycle as cheaply as possible.
            let exits: Vec<ProductionId> = spec
                .productions_of(module)
                .iter()
                .copied()
                .filter(|&p| p != continue_prod)
                .collect();
            if exits.is_empty() {
                return continue_prod;
            }
            return exits[self.rng.gen_range(0..exits.len())];
        }
        let _ = ctx;
        let prods = spec.productions_of(module);
        prods[self.rng.gen_range(0..prods.len())]
    }
}

/// Replays an explicit production sequence (depth-first, body-position
/// order); falls back to minimal completion when exhausted. Used to
/// reproduce the paper's worked derivations exactly.
#[derive(Debug)]
pub struct Scripted {
    script: VecDeque<ProductionId>,
}

impl Scripted {
    /// Productions will be consumed in depth-first expansion order.
    pub fn new(script: impl IntoIterator<Item = ProductionId>) -> Scripted {
        Scripted {
            script: script.into_iter().collect(),
        }
    }
}

impl ProductionPolicy for Scripted {
    fn choose(
        &mut self,
        spec: &Specification,
        module: ModuleId,
        ctx: &PolicyContext<'_>,
    ) -> ProductionId {
        match self.script.pop_front() {
            Some(p) => {
                assert_eq!(
                    spec.production(p).head,
                    module,
                    "scripted production {p:?} does not produce module {:?}",
                    spec.module_name(module)
                );
                p
            }
            None => ctx.min_sizes.minimal_production(module),
        }
    }
}

/// Builder for labeled runs.
///
/// ```
/// use rpq_grammar::SpecificationBuilder;
/// use rpq_labeling::RunBuilder;
///
/// let mut b = SpecificationBuilder::new();
/// b.atomic("t");
/// b.composite("S");
/// b.production("S", |w| {
///     let x = w.node("t");
///     let s = w.node("S");
///     let y = w.node("t");
///     w.edge_named(x, s, "go");
///     w.edge_named(s, y, "go");
/// });
/// b.production("S", |w| { w.node("t"); });
/// b.start("S");
/// let spec = b.build().unwrap();
///
/// let run = RunBuilder::new(&spec).seed(7).target_edges(100).build().unwrap();
/// assert!(run.n_edges() >= 100);
/// assert!(run.is_acyclic());
/// ```
pub struct RunBuilder<'a> {
    spec: &'a Specification,
    seed: u64,
    target_edges: u64,
    policy: Option<Box<dyn ProductionPolicy>>,
}

impl<'a> RunBuilder<'a> {
    /// Start building a run of `spec`.
    pub fn new(spec: &'a Specification) -> RunBuilder<'a> {
        RunBuilder {
            spec,
            seed: 0,
            target_edges: 64,
            policy: None,
        }
    }

    /// RNG seed for the default [`RandomGrowth`] policy.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Approximate run size in edges (the paper's 1K–16K parameter).
    pub fn target_edges(mut self, edges: usize) -> Self {
        self.target_edges = edges as u64;
        self
    }

    /// Override the production policy.
    pub fn policy(mut self, policy: impl ProductionPolicy + 'static) -> Self {
        self.policy = Some(Box::new(policy));
        self
    }

    /// Derive and label the run.
    pub fn build(self) -> Result<Run, DeriveError> {
        if !self.spec.is_strictly_linear() {
            return Err(DeriveError::NotStrictlyLinear);
        }
        let mut policy = self
            .policy
            .unwrap_or_else(|| Box::new(RandomGrowth::new(self.seed)));
        let engine = Engine::new(self.spec, self.target_edges);
        Ok(engine.run(policy.as_mut()))
    }
}

/// Recursion context of a composite execution: which recursion node it
/// hangs under and at which unfolding index.
#[derive(Clone)]
struct RecCtx {
    cycle: u16,
    start_phase: u16,
    idx: u32,
    /// Label of the recursion node itself.
    r_label: Label,
}

struct Frame {
    production: ProductionId,
    /// Tree label of this composite execution.
    label: Label,
    rec_ctx: Option<RecCtx>,
    /// (entry, exit) of each expanded body position.
    results: Vec<Option<(NodeId, NodeId)>>,
    next_pos: usize,
    /// Slot in the parent frame to deposit this sub-run's interface into.
    parent_slot: Option<(usize, usize)>,
}

struct Engine<'a> {
    spec: &'a Specification,
    min_sizes: MinSizes,
    target_edges: u64,
    nodes: Vec<RunNode>,
    edges: Vec<RunEdge>,
    occurrences: Vec<u32>,
    estimated_edges: u64,
    expansions: u64,
}

impl<'a> Engine<'a> {
    fn new(spec: &'a Specification, target_edges: u64) -> Engine<'a> {
        let min_sizes = MinSizes::compute(spec);
        let estimated_edges = min_sizes.min_edges[spec.start().index()];
        Engine {
            spec,
            min_sizes,
            target_edges,
            nodes: Vec::new(),
            edges: Vec::new(),
            occurrences: vec![0; spec.n_modules()],
            estimated_edges,
            expansions: 0,
        }
    }

    fn ctx(&self) -> PolicyContext<'_> {
        PolicyContext {
            estimated_edges: self.estimated_edges,
            target_edges: self.target_edges,
            expansions: self.expansions,
            min_sizes: &self.min_sizes,
        }
    }

    fn new_node(&mut self, module: ModuleId, label: Label) -> NodeId {
        self.occurrences[module.index()] += 1;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(RunNode {
            module,
            occurrence: self.occurrences[module.index()],
            label,
        });
        id
    }

    /// Label and recursion context for a *fresh* (non-continuation)
    /// execution of `module` at tree position `position_label`.
    fn fresh_execution(&self, module: ModuleId, position_label: Label) -> (Label, Option<RecCtx>) {
        match self.spec.recursion().cycle_of_module(module) {
            Some((cycle, phase)) => {
                let exec = position_label.child(LabelEntry::Rec {
                    cycle,
                    start_phase: phase,
                    idx: 1,
                });
                (
                    exec,
                    Some(RecCtx {
                        cycle,
                        start_phase: phase,
                        idx: 1,
                        r_label: position_label,
                    }),
                )
            }
            None => (position_label, None),
        }
    }

    /// Account for firing production `p` on a composite: its minimal
    /// completion is replaced by the body's own minimal completion.
    fn account_expansion(&mut self, head: ModuleId, p: ProductionId) {
        self.expansions += 1;
        let body = &self.spec.production(p).body;
        let mut body_min = body.edges().len() as u64;
        for &m in body.nodes() {
            body_min = body_min.saturating_add(self.min_sizes.min_edges[m.index()]);
        }
        self.estimated_edges = self
            .estimated_edges
            .saturating_sub(self.min_sizes.min_edges[head.index()])
            .saturating_add(body_min);
    }

    /// Create a frame for an execution firing `production`, materializing
    /// all *atomic* body nodes immediately — the paper numbers
    /// occurrences by node-replacement order (the whole body appears when
    /// the production fires, cf. Fig. 2c), not by depth-first traversal.
    fn make_frame(
        &mut self,
        production: ProductionId,
        label: Label,
        rec_ctx: Option<RecCtx>,
        parent_slot: Option<(usize, usize)>,
    ) -> Frame {
        let body = &self.spec.production(production).body;
        let n = body.n_nodes();
        let mut results: Vec<Option<(NodeId, NodeId)>> = vec![None; n];
        for (pos, slot) in results.iter_mut().enumerate() {
            let m = body.node(pos);
            if !self.spec.is_composite(m) {
                let node_label = label.child(LabelEntry::Prod {
                    production,
                    pos: pos as u32,
                });
                let id = self.new_node(m, node_label);
                *slot = Some((id, id));
            }
        }
        Frame {
            production,
            label,
            rec_ctx,
            results,
            next_pos: 0,
            parent_slot,
        }
    }

    fn run(mut self, policy: &mut dyn ProductionPolicy) -> Run {
        let start = self.spec.start();
        if !self.spec.is_composite(start) {
            let id = self.new_node(start, Label::root());
            let _ = id;
            return Run::from_parts(self.nodes, self.edges);
        }

        let (root_label, root_ctx) = self.fresh_execution(start, Label::root());
        let root_prod = policy.choose(self.spec, start, &self.ctx());
        self.account_expansion(start, root_prod);
        let root = self.make_frame(root_prod, root_label, root_ctx, None);
        let mut stack: Vec<Frame> = vec![root];
        let mut final_interface: Option<(NodeId, NodeId)> = None;

        while let Some(top) = stack.last() {
            let frame_idx = stack.len() - 1;
            let prod_id = top.production;
            let body = &self.spec.production(prod_id).body;

            if top.next_pos < body.n_nodes() {
                let pos = top.next_pos;
                stack[frame_idx].next_pos += 1;
                if stack[frame_idx].results[pos].is_some() {
                    continue; // atomic node, already materialized
                }
                let child_module = body.node(pos);

                // Composite child: continuation of the enclosing recursion
                // or a fresh execution?
                let rec = self.spec.recursion();
                let continuation = rec
                    .cycle_of_production(prod_id)
                    .filter(|&(_, rec_pos)| rec_pos as usize == pos);
                let (child_label, child_ctx) = match continuation {
                    Some((cycle, _)) => {
                        let rc = stack[frame_idx]
                            .rec_ctx
                            .clone()
                            .expect("cycle production fired outside a recursion context");
                        debug_assert_eq!(rc.cycle, cycle);
                        let label = rc.r_label.child(LabelEntry::Rec {
                            cycle: rc.cycle,
                            start_phase: rc.start_phase,
                            idx: rc.idx + 1,
                        });
                        let ctx = RecCtx {
                            idx: rc.idx + 1,
                            ..rc
                        };
                        (label, Some(ctx))
                    }
                    None => {
                        let position_label = stack[frame_idx].label.child(LabelEntry::Prod {
                            production: prod_id,
                            pos: pos as u32,
                        });
                        self.fresh_execution(child_module, position_label)
                    }
                };
                let child_prod = policy.choose(self.spec, child_module, &self.ctx());
                debug_assert_eq!(self.spec.production(child_prod).head, child_module);
                self.account_expansion(child_module, child_prod);
                let frame =
                    self.make_frame(child_prod, child_label, child_ctx, Some((frame_idx, pos)));
                stack.push(frame);
            } else {
                // Body fully expanded: materialize its internal edges and
                // report the interface upward.
                let frame = stack.pop().expect("non-empty stack");
                let body = &self.spec.production(frame.production).body;
                for e in body.edges() {
                    let (_, src_exit) = frame.results[e.src as usize].expect("expanded");
                    let (dst_entry, _) = frame.results[e.dst as usize].expect("expanded");
                    self.edges.push(RunEdge {
                        src: src_exit,
                        dst: dst_entry,
                        tag: e.tag,
                    });
                }
                let (entry, _) = frame.results[body.source()].expect("expanded");
                let (_, exit) = frame.results[body.sink()].expect("expanded");
                match frame.parent_slot {
                    Some((pframe, slot)) => {
                        stack[pframe].results[slot] = Some((entry, exit));
                    }
                    None => final_interface = Some((entry, exit)),
                }
            }
        }

        debug_assert!(final_interface.is_some());
        Run::from_parts(self.nodes, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_grammar::SpecificationBuilder;

    /// The paper's Fig. 2a specification.
    fn fig2() -> Specification {
        let mut b = SpecificationBuilder::new();
        for m in ["a", "b", "c", "d", "e"] {
            b.atomic(m);
        }
        for m in ["S", "A", "B"] {
            b.composite(m);
        }
        b.production("S", |w| {
            let c = w.node("c");
            let a = w.node("A");
            let bb = w.node("B");
            let b2 = w.node("b");
            // W1 is a diamond: c feeds both A and B, which both feed b
            // (the only shape consistent with Examples 3.1 and 3.2).
            w.edge(c, a);
            w.edge(c, bb);
            w.edge(a, b2);
            w.edge(bb, b2);
        });
        b.production("A", |w| {
            let a = w.node("a");
            let aa = w.node("A");
            let d = w.node("d");
            w.edge(a, aa);
            w.edge(aa, d);
        });
        b.production("A", |w| {
            let e1 = w.node("e");
            let e2 = w.node("e");
            w.edge(e1, e2);
        });
        b.production("B", |w| {
            let b1 = w.node("b");
            let b2 = w.node("b");
            w.edge(b1, b2);
        });
        b.start("S");
        b.build().unwrap()
    }

    /// The Fig. 2b run: S fires W1; A recurses twice (W2, W2) then exits
    /// with W3; B fires W4.
    fn fig2_run(spec: &Specification) -> Run {
        RunBuilder::new(spec)
            .policy(Scripted::new([
                ProductionId(0),
                ProductionId(1),
                ProductionId(1),
                ProductionId(2),
                ProductionId(3),
            ]))
            .build()
            .unwrap()
    }

    #[test]
    fn min_sizes_of_fig2() {
        let spec = fig2();
        let ms = MinSizes::compute(&spec);
        let a = spec.module_by_name("A").unwrap();
        let s = spec.module_by_name("S").unwrap();
        // A's cheapest completion is W3 (e -> e): 1 edge.
        assert_eq!(ms.min_edges[a.index()], 1);
        assert_eq!(ms.minimal_production(a), ProductionId(2));
        // S: W1 has 4 edges + A(1) + B(1) = 6.
        assert_eq!(ms.min_edges[s.index()], 6);
    }

    #[test]
    fn fig2b_run_structure() {
        let spec = fig2();
        let run = fig2_run(&spec);
        // Nodes: c, a, a, e, e, d, d, b, b, b = 10.
        assert_eq!(run.n_nodes(), 10);
        assert!(run.is_acyclic());
        // Unique entry c:1 and unique exit b:1 (last node of W1).
        assert_eq!(run.node_name(&spec, run.entry()), "c:1");
        let a1 = run.node_by_name(&spec, "a:1").unwrap();
        assert_eq!(run.node(a1).occurrence, 1);
    }

    #[test]
    fn fig7_labels_match_the_paper() {
        // The paper's compressed parse tree (Fig. 7) assigns:
        //   ψV(c:1) = (1,1)
        //   ψV(a:1) = (1,2)(1,1,1)(2,1)
        //   ψV(d:1) = (1,2)(1,1,1)(2,3)
        //   ψV(a:2) = (1,2)(1,1,2)(2,1)
        //   ψV(e:1) = (1,2)(1,1,3)(3,1)
        //   ψV(b:2) = (1,3)(4,1)
        //   ψV(b:1) = (1,4)
        let spec = fig2();
        let run = fig2_run(&spec);
        let label_of = |name: &str| {
            let id = run.node_by_name(&spec, name).expect(name);
            run.label(id).to_string()
        };
        assert_eq!(label_of("c:1"), "(1,1)");
        assert_eq!(label_of("a:1"), "(1,2)(1,1,1)(2,1)");
        assert_eq!(label_of("d:1"), "(1,2)(1,1,1)(2,3)");
        assert_eq!(label_of("a:2"), "(1,2)(1,1,2)(2,1)");
        assert_eq!(label_of("d:2"), "(1,2)(1,1,2)(2,3)");
        assert_eq!(label_of("e:1"), "(1,2)(1,1,3)(3,1)");
        assert_eq!(label_of("e:2"), "(1,2)(1,1,3)(3,2)");
        assert_eq!(label_of("b:2"), "(1,3)(4,1)");
        assert_eq!(label_of("b:3"), "(1,3)(4,2)");
        assert_eq!(label_of("b:1"), "(1,4)");
    }

    #[test]
    fn fig2b_edges() {
        let spec = fig2();
        let run = fig2_run(&spec);
        // W1 contributes 4 edges, two firings of W2 contribute 2 each,
        // W3 and W4 contribute 1 each.
        assert_eq!(run.n_edges(), 10);
        let n = |name: &str| run.node_by_name(&spec, name).unwrap();
        let has_edge = |s: &str, d: &str| run.out_edges(n(s)).iter().any(|&(to, _)| to == n(d));
        // The A branch: c feeds A's expansion a:1 a:2 e:1 e:2 d:2 d:1.
        assert!(has_edge("c:1", "a:1"));
        assert!(has_edge("a:1", "a:2"));
        assert!(has_edge("a:2", "e:1"));
        assert!(has_edge("e:1", "e:2"));
        assert!(has_edge("e:2", "d:2"));
        assert!(has_edge("d:2", "d:1"));
        assert!(has_edge("d:1", "b:1"));
        // The B branch: c feeds B's expansion b:2 b:3, which feeds b:1.
        assert!(has_edge("c:1", "b:2"));
        assert!(has_edge("b:2", "b:3"));
        assert!(has_edge("b:3", "b:1"));
    }

    #[test]
    fn random_growth_hits_target_sizes() {
        let spec = fig2();
        for target in [50usize, 200, 1000] {
            let run = RunBuilder::new(&spec)
                .seed(3)
                .target_edges(target)
                .build()
                .unwrap();
            assert!(run.n_edges() >= target, "{} < {target}", run.n_edges());
            // Minimal completion keeps the overshoot bounded by the work
            // in flight; generous factor to stay robust across seeds.
            assert!(run.n_edges() < 4 * target + 64);
            assert!(run.is_acyclic());
        }
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        // A spec with genuine branching (two exit productions for A) so
        // different seeds yield different runs.
        let mut b = SpecificationBuilder::new();
        for m in ["x", "y"] {
            b.atomic(m);
        }
        b.composite("S");
        b.composite("A");
        b.production("S", |w| {
            w.node("A");
        });
        b.production("A", |w| {
            let x = w.node("x");
            let a = w.node("A");
            let y = w.node("y");
            w.edge(x, a);
            w.edge(a, y);
        });
        b.production("A", |w| {
            let x = w.node("x");
            let y = w.node("y");
            w.edge(x, y);
        });
        b.production("A", |w| {
            let y = w.node("y");
            let x = w.node("x");
            w.edge(y, x);
        });
        b.start("S");
        let spec = b.build().unwrap();

        let r1 = RunBuilder::new(&spec)
            .seed(11)
            .target_edges(300)
            .build()
            .unwrap();
        let r2 = RunBuilder::new(&spec)
            .seed(11)
            .target_edges(300)
            .build()
            .unwrap();
        assert_eq!(r1.n_nodes(), r2.n_nodes());
        assert_eq!(r1.edges(), r2.edges());
        let differs = (12..20u64).any(|s| {
            let r3 = RunBuilder::new(&spec)
                .seed(s)
                .target_edges(300)
                .build()
                .unwrap();
            r1.n_nodes() != r3.n_nodes() || r1.edges() != r3.edges()
        });
        assert!(differs, "eight different seeds all produced identical runs");
    }

    #[test]
    fn atomic_start_yields_singleton_run() {
        let mut b = SpecificationBuilder::new();
        b.atomic("only");
        b.start("only");
        let spec = b.build().unwrap();
        let run = RunBuilder::new(&spec).build().unwrap();
        assert_eq!(run.n_nodes(), 1);
        assert_eq!(run.n_edges(), 0);
        assert_eq!(run.entry(), run.exit());
    }

    #[test]
    fn fork_focus_unfolds_target_cycle() {
        let spec = fig2();
        let run = RunBuilder::new(&spec)
            .policy(ForkFocus::new(0, 20, 1))
            .build()
            .unwrap();
        // 20 unfoldings of A produce 20 `a` and 20 `d` executions.
        let a = spec.module_by_name("a").unwrap();
        assert_eq!(run.nodes_of_module(a).len(), 20);
        assert!(run.is_acyclic());
    }

    #[test]
    fn document_order_is_label_order() {
        let spec = fig2();
        let run = RunBuilder::new(&spec)
            .seed(5)
            .target_edges(200)
            .build()
            .unwrap();
        let order = run.nodes_in_document_order();
        for w in order.windows(2) {
            assert!(run.label(w[0]) < run.label(w[1]));
        }
    }

    #[test]
    fn labels_are_unique() {
        let spec = fig2();
        let run = RunBuilder::new(&spec)
            .seed(9)
            .target_edges(500)
            .build()
            .unwrap();
        let mut labels: Vec<&Label> = run.node_ids().map(|id| run.label(id)).collect();
        let before = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), before);
    }
}
