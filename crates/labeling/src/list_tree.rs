//! Tree representation of a list of nodes (Fig. 12).
//!
//! Algorithm 2 represents each input node list as a projection of the
//! compressed parse tree whose leaves are exactly the listed nodes. Since
//! a label is the root-to-leaf entry path, the projection is a trie over
//! labels; with the list sorted in label (document) order the trie is
//! built in linear time by extending the rightmost path.

use crate::label::LabelEntry;
use crate::run::{NodeId, Run};

/// One trie node.
#[derive(Debug, Clone)]
pub struct ListTreeNode {
    /// The edge label from the parent (`None` only for the root).
    pub entry: Option<LabelEntry>,
    /// Child indices into the tree's node arena, in document order.
    pub children: Vec<u32>,
    /// For leaves: the run node.
    pub leaf: Option<NodeId>,
    /// Number of leaves in this subtree (cross-product sizing).
    pub n_leaves: u32,
}

/// A trie over the labels of a node list.
#[derive(Debug, Clone)]
pub struct ListTree {
    /// Arena; index 0 is the root.
    nodes: Vec<ListTreeNode>,
}

impl ListTree {
    /// Build from a list of run nodes. The list is sorted internally by
    /// label (document order); duplicates are collapsed.
    pub fn build(run: &Run, list: &[NodeId]) -> ListTree {
        let mut sorted: Vec<NodeId> = list.to_vec();
        sorted.sort_by(|a, b| run.label(*a).cmp(run.label(*b)));
        sorted.dedup();

        let mut nodes = vec![ListTreeNode {
            entry: None,
            children: Vec::new(),
            leaf: None,
            n_leaves: 0,
        }];
        // Rightmost path through the trie: (node index, depth).
        let mut path: Vec<u32> = vec![0];
        let mut prev: Option<crate::label::Label> = None;

        for &id in &sorted {
            let label = run.label(id);
            let entries = label.entries();
            let prev_entries: &[LabelEntry] = prev.as_ref().map_or(&[], |l| l.entries());
            if prev.is_some() && entries == prev_entries {
                continue; // duplicate label (cannot happen across distinct nodes)
            }
            // Longest common prefix with the previous label.
            let mut lcp = 0;
            while lcp < prev_entries.len()
                && lcp < entries.len()
                && prev_entries[lcp] == entries[lcp]
            {
                lcp += 1;
            }
            debug_assert!(
                lcp < entries.len() || prev.is_none(),
                "one label cannot be a prefix of another distinct leaf's label"
            );
            path.truncate(lcp + 1);
            for &e in &entries[lcp..] {
                let parent = *path.last().expect("path non-empty");
                let idx = nodes.len() as u32;
                nodes.push(ListTreeNode {
                    entry: Some(e),
                    children: Vec::new(),
                    leaf: None,
                    n_leaves: 0,
                });
                nodes[parent as usize].children.push(idx);
                path.push(idx);
            }
            let leaf_idx = *path.last().expect("path non-empty") as usize;
            nodes[leaf_idx].leaf = Some(id);
            prev = Some(label.clone());
        }

        // Leaf counts bottom-up (arena indices are topological: children
        // are created after parents).
        for i in (0..nodes.len()).rev() {
            let mut count = u32::from(nodes[i].leaf.is_some());
            for &c in &nodes[i].children {
                count += nodes[c as usize].n_leaves;
            }
            nodes[i].n_leaves = count;
        }
        ListTree { nodes }
    }

    /// The root node (depth 0; corresponds to the run's root execution).
    pub fn root(&self) -> &ListTreeNode {
        &self.nodes[0]
    }

    /// Node by arena index.
    #[inline]
    pub fn node(&self, idx: u32) -> &ListTreeNode {
        &self.nodes[idx as usize]
    }

    /// Total trie nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Leaves under the subtree rooted at `idx`, in document order.
    pub fn leaves_under(&self, idx: u32) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes[idx as usize].n_leaves as usize);
        let mut stack = vec![idx];
        while let Some(i) = stack.pop() {
            let n = &self.nodes[i as usize];
            if let Some(id) = n.leaf {
                out.push(id);
            }
            // Push children reversed so document order pops first.
            for &c in n.children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Number of leaves in the whole tree.
    pub fn n_leaves(&self) -> usize {
        self.nodes[0].n_leaves as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::RunBuilder;
    use rpq_grammar::{Specification, SpecificationBuilder};

    fn recursive_spec() -> Specification {
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        b.atomic("u");
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("t");
            let s = w.node("S");
            let y = w.node("u");
            w.edge_named(x, s, "in");
            w.edge_named(s, y, "out");
        });
        b.production("S", |w| {
            w.node("t");
        });
        b.start("S");
        b.build().unwrap()
    }

    #[test]
    fn full_list_tree_has_all_leaves_in_order() {
        let spec = recursive_spec();
        let run = RunBuilder::new(&spec)
            .seed(1)
            .target_edges(100)
            .build()
            .unwrap();
        let all: Vec<NodeId> = run.node_ids().collect();
        let tree = ListTree::build(&run, &all);
        assert_eq!(tree.n_leaves(), run.n_nodes());
        let leaves = tree.leaves_under(0);
        assert_eq!(leaves, run.nodes_in_document_order());
    }

    #[test]
    fn subset_tree_projects() {
        let spec = recursive_spec();
        let run = RunBuilder::new(&spec)
            .seed(2)
            .target_edges(60)
            .build()
            .unwrap();
        let t_mod = spec.module_by_name("t").unwrap();
        let subset = run.nodes_of_module(t_mod);
        let tree = ListTree::build(&run, &subset);
        assert_eq!(tree.n_leaves(), subset.len());
        // Every leaf is from the subset.
        let leaves = tree.leaves_under(0);
        for l in &leaves {
            assert!(subset.contains(l));
        }
    }

    #[test]
    fn duplicates_are_collapsed() {
        let spec = recursive_spec();
        let run = RunBuilder::new(&spec)
            .seed(3)
            .target_edges(40)
            .build()
            .unwrap();
        let id = run.entry();
        let tree = ListTree::build(&run, &[id, id, id]);
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn leaf_counts_are_consistent() {
        let spec = recursive_spec();
        let run = RunBuilder::new(&spec)
            .seed(4)
            .target_edges(80)
            .build()
            .unwrap();
        let all: Vec<NodeId> = run.node_ids().collect();
        let tree = ListTree::build(&run, &all);
        for i in 0..tree.n_nodes() as u32 {
            assert_eq!(
                tree.node(i).n_leaves as usize,
                tree.leaves_under(i).len(),
                "node {i}"
            );
        }
    }

    #[test]
    fn empty_list_gives_empty_tree() {
        let spec = recursive_spec();
        let run = RunBuilder::new(&spec)
            .seed(5)
            .target_edges(20)
            .build()
            .unwrap();
        let tree = ListTree::build(&run, &[]);
        assert_eq!(tree.n_leaves(), 0);
        assert_eq!(tree.n_nodes(), 1);
    }
}
