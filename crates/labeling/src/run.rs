//! Provenance runs: edge-tagged DAGs produced by derivation.
//!
//! A run contains only atomic module executions (all composites have been
//! replaced). Node replacement with unique-source/unique-sink bodies
//! guarantees that every run is itself a DAG with a unique entry node and
//! a unique exit node, and — crucially for the labeling approach — that
//! the sub-run derived from any module execution has a unique entry and
//! exit too, so every path crossing its boundary passes through them.

use crate::label::Label;
use rpq_grammar::{ModuleId, Tag};
use serde::{Deserialize, Serialize};

/// Dense run-node id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One atomic module execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunNode {
    /// The atomic module executed.
    pub module: ModuleId,
    /// 1-based occurrence number among executions of the same module
    /// (creation order) — the paper's `a:1`, `a:2`, … notation.
    pub occurrence: u32,
    /// Derivation-based reachability label `ψV`.
    pub label: Label,
}

/// One tagged data edge of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunEdge {
    /// Producer execution.
    pub src: NodeId,
    /// Consumer execution.
    pub dst: NodeId,
    /// Data name, inherited from the production body that introduced the
    /// edge (tags survive node replacement unchanged).
    pub tag: Tag,
}

/// One batch of appended provenance events for a run open in streaming
/// mode: `nodes` are appended densely after the run's existing nodes
/// (the first one receives the next free [`NodeId`]), `edges` may
/// connect any mix of old and new nodes. Applied via
/// [`Run::apply_events`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventBatch {
    /// Newly executed atomic modules, in id order.
    pub nodes: Vec<RunNode>,
    /// Newly observed data edges.
    pub edges: Vec<RunEdge>,
}

impl EventBatch {
    /// Does the batch carry no events at all?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.edges.is_empty()
    }
}

/// A fully derived, labeled run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Run {
    nodes: Vec<RunNode>,
    edges: Vec<RunEdge>,
    /// Outgoing adjacency: `(target, tag)` per node.
    out: Vec<Vec<(NodeId, Tag)>>,
    /// Incoming adjacency: `(source, tag)` per node.
    inc: Vec<Vec<(NodeId, Tag)>>,
    entry: NodeId,
    exit: NodeId,
    /// Lazily computed structural fingerprint (see [`Run::fingerprint`]).
    #[serde(skip)]
    fingerprint: std::sync::OnceLock<(u64, u64)>,
    /// Lazily computed acyclicity verdict (see [`Run::is_acyclic`]).
    /// Derived runs are always DAGs, but streamed event batches can
    /// close cycles, and label-based query plans must know.
    #[serde(skip)]
    acyclic: std::sync::OnceLock<bool>,
    /// Lazily computed distinct-edge count (see
    /// [`Run::n_distinct_edges`]).
    #[serde(skip)]
    distinct_edges: std::sync::OnceLock<usize>,
}

/// Structural equality: two runs are equal iff their event histories
/// (nodes and edges, in order) are — the adjacency lists, entry/exit
/// and fingerprint are all derived from those, and the lazily-filled
/// fingerprint cell must not make a decoded copy compare unequal to
/// its original.
impl PartialEq for Run {
    fn eq(&self, other: &Run) -> bool {
        self.nodes == other.nodes && self.edges == other.edges
    }
}

impl Eq for Run {}

impl Run {
    /// Assemble a run from nodes and edges (crate-internal; use
    /// [`crate::RunBuilder`]).
    pub(crate) fn from_parts(nodes: Vec<RunNode>, edges: Vec<RunEdge>) -> Run {
        let n = nodes.len();
        let mut out: Vec<Vec<(NodeId, Tag)>> = vec![Vec::new(); n];
        let mut inc: Vec<Vec<(NodeId, Tag)>> = vec![Vec::new(); n];
        for e in &edges {
            out[e.src.index()].push((e.dst, e.tag));
            inc[e.dst.index()].push((e.src, e.tag));
        }
        let entry = NodeId(
            inc.iter()
                .position(|v| v.is_empty())
                .expect("run has a unique entry") as u32,
        );
        let exit = NodeId(
            out.iter()
                .rposition(|v| v.is_empty())
                .expect("run has a unique exit") as u32,
        );
        debug_assert_eq!(inc.iter().filter(|v| v.is_empty()).count(), 1);
        debug_assert_eq!(out.iter().filter(|v| v.is_empty()).count(), 1);
        Run {
            nodes,
            edges,
            out,
            inc,
            entry,
            exit,
            fingerprint: std::sync::OnceLock::new(),
            acyclic: std::sync::OnceLock::new(),
            distinct_edges: std::sync::OnceLock::new(),
        }
    }

    /// Assemble a run from explicit nodes and edges under *relaxed*
    /// entry/exit rules: the entry is the first node without incoming
    /// edges and the exit the last node without outgoing ones, with no
    /// uniqueness requirement. Derivation ([`crate::RunBuilder`])
    /// guarantees a unique source and sink, but the id-prefix states a
    /// *streaming* run passes through between event batches generally
    /// have several of each — they are valid provenance graphs whose
    /// derivation simply has not finished. Errors when `nodes` is
    /// empty, an edge endpoint is out of range, or no source/sink
    /// exists (the graph would be entered by a cycle).
    pub fn assemble(nodes: Vec<RunNode>, edges: Vec<RunEdge>) -> Result<Run, String> {
        if nodes.is_empty() {
            return Err("a run needs at least one node".to_owned());
        }
        let n = nodes.len();
        let mut out: Vec<Vec<(NodeId, Tag)>> = vec![Vec::new(); n];
        let mut inc: Vec<Vec<(NodeId, Tag)>> = vec![Vec::new(); n];
        for e in &edges {
            if e.src.index() >= n || e.dst.index() >= n {
                return Err(format!(
                    "edge {} -> {} references a node outside the {n}-node run",
                    e.src.0, e.dst.0
                ));
            }
            out[e.src.index()].push((e.dst, e.tag));
            inc[e.dst.index()].push((e.src, e.tag));
        }
        let entry = inc
            .iter()
            .position(|v| v.is_empty())
            .map(|i| NodeId(i as u32))
            .ok_or("run has no source node (every node has an incoming edge)")?;
        let exit = out
            .iter()
            .rposition(|v| v.is_empty())
            .map(|i| NodeId(i as u32))
            .ok_or("run has no sink node (every node has an outgoing edge)")?;
        Ok(Run {
            nodes,
            edges,
            out,
            inc,
            entry,
            exit,
            fingerprint: std::sync::OnceLock::new(),
            acyclic: std::sync::OnceLock::new(),
            distinct_edges: std::sync::OnceLock::new(),
        })
    }

    /// The run grown by one [`EventBatch`]: batch nodes take the next
    /// free ids in order, batch edges land after the existing ones.
    /// The result is re-assembled from scratch (adjacency, entry/exit,
    /// fingerprint), so it is indistinguishable from a run whose full
    /// node/edge lists arrived at once in the same order.
    pub fn apply_events(&self, batch: &EventBatch) -> Result<Run, String> {
        let mut nodes = self.nodes.clone();
        nodes.extend(batch.nodes.iter().cloned());
        let mut edges = self.edges.clone();
        edges.extend(batch.edges.iter().copied());
        Run::assemble(nodes, edges)
    }

    /// A 128-bit structural fingerprint over size, entry/exit and every
    /// edge, computed once and cached. Re-deserialized copies of the
    /// same run produce the same fingerprint, so it serves as a cheap
    /// run identity for caches (e.g. the session's per-run tag index).
    pub fn fingerprint(&self) -> (u64, u64) {
        *self.fingerprint.get_or_init(|| {
            fn mix(h: &mut u64, v: u64) {
                *h ^= v;
                *h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut a: u64 = 0xcbf2_9ce4_8422_2325;
            let mut b: u64 = 0x6c62_272e_07bb_0142;
            for h in [&mut a, &mut b] {
                mix(h, self.nodes.len() as u64);
                mix(h, self.edges.len() as u64);
                mix(h, u64::from(self.entry.0));
                mix(h, u64::from(self.exit.0));
            }
            for e in &self.edges {
                mix(&mut a, (u64::from(e.src.0) << 32) | u64::from(e.dst.0));
                mix(
                    &mut b,
                    (u64::from(e.tag.0) << 32) | u64::from(e.src.0 ^ e.dst.0),
                );
            }
            (a, b)
        })
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges — the paper's run-size parameter.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Distinct `(src, tag, dst)` triples, computed once and cached —
    /// the edge count of the deduplicated adjacency arenas (per-tag
    /// CSR lists and their transposes) built over this run.
    /// [`Run::n_edges`] counts raw events; histories that re-append an
    /// existing edge (live streams routinely do) inflate it, while the
    /// arenas a product search walks hold each triple exactly once.
    pub fn n_distinct_edges(&self) -> usize {
        *self.distinct_edges.get_or_init(|| {
            let mut triples: Vec<(u32, u32, u32)> = self
                .edges
                .iter()
                .map(|e| (e.src.0, e.tag.0, e.dst.0))
                .collect();
            triples.sort_unstable();
            triples.dedup();
            triples.len()
        })
    }

    /// Node metadata.
    #[inline]
    pub fn node(&self, id: NodeId) -> &RunNode {
        &self.nodes[id.index()]
    }

    /// Node label `ψV(v)`.
    #[inline]
    pub fn label(&self, id: NodeId) -> &Label {
        &self.nodes[id.index()].label
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All nodes with ids.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &RunNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// All edges.
    pub fn edges(&self) -> &[RunEdge] {
        &self.edges
    }

    /// Outgoing `(target, tag)` pairs of `node`.
    #[inline]
    pub fn out_edges(&self, node: NodeId) -> &[(NodeId, Tag)] {
        &self.out[node.index()]
    }

    /// Incoming `(source, tag)` pairs of `node`.
    #[inline]
    pub fn in_edges(&self, node: NodeId) -> &[(NodeId, Tag)] {
        &self.inc[node.index()]
    }

    /// The run's unique entry (source) node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The run's unique exit (sink) node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// Look up a node by the paper's `name:occurrence` notation, e.g.
    /// `"a:2"`. Requires the specification for name resolution.
    pub fn node_by_name(&self, spec: &rpq_grammar::Specification, name: &str) -> Option<NodeId> {
        let (module, occ) = name.rsplit_once(':')?;
        let occ: u32 = occ.parse().ok()?;
        let module = spec.module_by_name(module)?;
        self.nodes
            .iter()
            .position(|n| n.module == module && n.occurrence == occ)
            .map(|i| NodeId(i as u32))
    }

    /// Human-readable node name.
    pub fn node_name(&self, spec: &rpq_grammar::Specification, id: NodeId) -> String {
        let n = self.node(id);
        format!("{}:{}", spec.module_name(n.module), n.occurrence)
    }

    /// Nodes executing `module`, in occurrence order.
    pub fn nodes_of_module(&self, module: ModuleId) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.module == module)
            .map(|(id, _)| id)
            .collect()
    }

    /// Node ids sorted by label (document order) — the input order
    /// Algorithm 2 expects.
    pub fn nodes_in_document_order(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.node_ids().collect();
        ids.sort_by(|a, b| self.label(*a).cmp(self.label(*b)));
        ids
    }

    /// Check that this run is consistent with `spec`: every label entry
    /// references an existing production/body position or cycle, every
    /// node's module matches the position its label points at, and all
    /// modules are atomic.
    ///
    /// Query plans decode labels against the specification without
    /// further checks; pairing a run with the wrong specification would
    /// otherwise fail deep inside the decoder. Call this after loading a
    /// persisted run.
    pub fn validate_against(&self, spec: &rpq_grammar::Specification) -> Result<(), String> {
        let rec = spec.recursion();
        for (id, node) in self.nodes() {
            if node.module.index() >= spec.n_modules() {
                return Err(format!(
                    "node {id:?}: module id {} out of range",
                    node.module.0
                ));
            }
            if spec.is_composite(node.module) {
                return Err(format!("node {id:?} executes a composite module"));
            }
            let entries = node.label.entries();
            let Some(last) = entries.last() else {
                // Only a single-node run of an atomic start has an empty
                // label.
                if self.n_nodes() == 1 && spec.start() == node.module {
                    continue;
                }
                return Err(format!("node {id:?} has an empty label"));
            };
            match *last {
                crate::label::LabelEntry::Prod { production, pos } => {
                    let Some(prod) = spec.productions().get(production.index()) else {
                        return Err(format!(
                            "node {id:?}: production #{} out of range",
                            production.0
                        ));
                    };
                    if pos as usize >= prod.body.n_nodes() {
                        return Err(format!(
                            "node {id:?}: position {pos} outside production #{}",
                            production.0
                        ));
                    }
                    if prod.body.node(pos as usize) != node.module {
                        return Err(format!(
                            "node {id:?}: module mismatch at production #{} position {pos}",
                            production.0
                        ));
                    }
                }
                crate::label::LabelEntry::Rec { .. } => {
                    return Err(format!(
                        "node {id:?}: atomic node label ends with a recursion entry"
                    ));
                }
            }
            for e in entries {
                if let crate::label::LabelEntry::Rec {
                    cycle,
                    start_phase,
                    idx,
                } = *e
                {
                    let Some(c) = rec.cycles.get(cycle as usize) else {
                        return Err(format!("node {id:?}: cycle {cycle} out of range"));
                    };
                    if start_phase as usize >= c.len() {
                        return Err(format!(
                            "node {id:?}: phase {start_phase} outside cycle {cycle}"
                        ));
                    }
                    if idx == 0 {
                        return Err(format!("node {id:?}: recursion index 0 (1-based)"));
                    }
                }
            }
        }
        for e in self.edges() {
            if e.tag.index() >= spec.n_tags() {
                return Err(format!("edge tag {:?} out of range", e.tag));
            }
        }
        Ok(())
    }

    /// Is the run a DAG? Computed once (Kahn's algorithm) and cached:
    /// derived runs always are, but [`Run::apply_events`] can close a
    /// cycle, after which derivation labels no longer describe
    /// reachability and label-based plans must step aside.
    pub fn is_acyclic(&self) -> bool {
        *self.acyclic.get_or_init(|| {
            let n = self.n_nodes();
            let mut indeg: Vec<usize> = (0..n).map(|i| self.inc[i].len()).collect();
            let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
            let mut seen = 0;
            while let Some(v) = queue.pop() {
                seen += 1;
                for &(to, _) in &self.out[v] {
                    indeg[to.index()] -= 1;
                    if indeg[to.index()] == 0 {
                        queue.push(to.index());
                    }
                }
            }
            seen == n
        })
    }
}
