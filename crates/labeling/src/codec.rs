//! Compact binary label encoding.
//!
//! The labeling scheme's headline guarantee is *logarithmic-size labels*:
//! a label has at most `O(|G|)` entries, each of whose components is
//! either bounded by the specification size or — for recursion unfolding
//! indices — by the run size, hence `O(log n)` bits. This codec
//! materializes that bound: entries are LEB128-varint encoded, and
//! [`crate::stats::RunStats`] reports measured label sizes for the
//! overhead experiments.

use crate::label::{Label, LabelEntry};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rpq_grammar::ProductionId;

/// Encode a label into bytes.
pub fn encode(label: &Label) -> Bytes {
    let mut buf = BytesMut::with_capacity(label.depth() * 3 + 1);
    for &e in label.entries() {
        match e {
            LabelEntry::Prod { production, pos } => {
                // Discriminator bit 0 packed into the first varint.
                put_varint(&mut buf, u64::from(production.0) << 1);
                put_varint(&mut buf, u64::from(pos));
            }
            LabelEntry::Rec {
                cycle,
                start_phase,
                idx,
            } => {
                put_varint(&mut buf, (u64::from(cycle) << 1) | 1);
                put_varint(&mut buf, u64::from(start_phase));
                put_varint(&mut buf, u64::from(idx));
            }
        }
    }
    buf.freeze()
}

/// Decode a label from bytes. Returns `None` on malformed input.
pub fn decode(mut bytes: &[u8]) -> Option<Label> {
    let mut entries = Vec::new();
    while bytes.has_remaining() {
        let head = get_varint(&mut bytes)?;
        if head & 1 == 0 {
            let production = ProductionId(u32::try_from(head >> 1).ok()?);
            let pos = u32::try_from(get_varint(&mut bytes)?).ok()?;
            entries.push(LabelEntry::Prod { production, pos });
        } else {
            let cycle = u16::try_from(head >> 1).ok()?;
            let start_phase = u16::try_from(get_varint(&mut bytes)?).ok()?;
            let idx = u32::try_from(get_varint(&mut bytes)?).ok()?;
            entries.push(LabelEntry::Rec {
                cycle,
                start_phase,
                idx,
            });
        }
    }
    Some(Label::from_entries(entries))
}

/// Encoded size in bytes without materializing the buffer.
pub fn encoded_len(label: &Label) -> usize {
    label
        .entries()
        .iter()
        .map(|&e| match e {
            LabelEntry::Prod { production, pos } => {
                varint_len(u64::from(production.0) << 1) + varint_len(u64::from(pos))
            }
            LabelEntry::Rec {
                cycle,
                start_phase,
                idx,
            } => {
                varint_len((u64::from(cycle) << 1) | 1)
                    + varint_len(u64::from(start_phase))
                    + varint_len(u64::from(idx))
            }
        })
        .sum()
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

fn varint_len(v: u64) -> usize {
    (64 - v.leading_zeros()).max(1).div_ceil(7) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prod(k: u32, i: u32) -> LabelEntry {
        LabelEntry::Prod {
            production: ProductionId(k),
            pos: i,
        }
    }

    fn rec(s: u16, t: u16, i: u32) -> LabelEntry {
        LabelEntry::Rec {
            cycle: s,
            start_phase: t,
            idx: i,
        }
    }

    #[test]
    fn round_trip() {
        let labels = [
            Label::root(),
            Label::from_entries(vec![prod(0, 0)]),
            Label::from_entries(vec![prod(3, 12), rec(0, 1, 4096), prod(200, 7)]),
            Label::from_entries(vec![rec(u16::MAX, u16::MAX, u32::MAX)]),
        ];
        for l in &labels {
            let bytes = encode(l);
            assert_eq!(bytes.len(), encoded_len(l));
            let back = decode(&bytes).unwrap();
            assert_eq!(&back, l);
        }
    }

    #[test]
    fn small_entries_take_two_bytes() {
        let l = Label::from_entries(vec![prod(1, 2)]);
        assert_eq!(encoded_len(&l), 2);
    }

    #[test]
    fn recursion_index_grows_logarithmically() {
        // idx = 1 → 3 bytes; idx = 10^6 → still only 5 bytes.
        let small = Label::from_entries(vec![rec(0, 0, 1)]);
        let big = Label::from_entries(vec![rec(0, 0, 1_000_000)]);
        assert_eq!(encoded_len(&small), 3);
        assert_eq!(encoded_len(&big), 5);
    }

    #[test]
    fn malformed_input_is_rejected() {
        // Truncated varint (continuation bit set, no next byte).
        assert!(decode(&[0x80]).is_none());
        // Prod head without the pos varint.
        assert!(decode(&[0x02]).is_none());
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "v = {v}");
        }
    }
}
