//! Property tests: the bit-parallel kernel agrees exactly with the
//! pair-based referee operators on random relations, and all **three**
//! closure kernels (pairs referee, semi-naive bits, Tarjan
//! condensation) are byte-identical on every graph shape — random,
//! DAG, cyclic, multi-SCC — both at the operator level and through the
//! full `Session` composite pipeline.
//!
//! The referee is the seed implementation (`compose_pairs_kernel`,
//! `transitive_closure_pairs`) kept verbatim in `join.rs`; the subject
//! is every bit-kernel entry point plus the density-dispatched `*_in`
//! operators (which must agree with both, whichever kernel they pick).

use proptest::prelude::*;
use rpq_labeling::NodeId;
use rpq_relalg::{
    compose_pairs_bits, compose_pairs_in, compose_pairs_kernel, select_pairs_bits, select_pairs_in,
    select_pairs_kernel, transitive_closure_bits, transitive_closure_in, transitive_closure_pairs,
    transitive_closure_scc, transitive_closure_scc_csr, BitRelation, Condensation, CsrRelation,
    NodePairSet,
};
use rpq_workloads::runs::{
    cyclic_core_relation, deep_chain_relation, multi_scc_relation, wide_dag_relation,
};

/// Random relation over a universe of `n` nodes: up to `max_pairs`
/// arbitrary (possibly duplicate, possibly self-loop) pairs.
fn relation(n: u32, max_pairs: usize) -> impl Strategy<Value = NodePairSet> {
    prop::collection::vec((0..n, 0..n), 0..max_pairs).prop_map(|raw| {
        NodePairSet::from_pairs(
            raw.into_iter()
                .map(|(u, v)| (NodeId(u), NodeId(v)))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn compose_kernels_agree(
        a in relation(90, 120),
        b in relation(90, 120),
    ) {
        let referee = compose_pairs_kernel(&a, &b);
        prop_assert_eq!(&compose_pairs_bits(&a, &b, 90), &referee);
        prop_assert_eq!(&compose_pairs_in(&a, &b, 90), &referee);
    }

    #[test]
    fn closure_kernels_agree(r in relation(70, 100)) {
        let referee = transitive_closure_pairs(&r);
        prop_assert_eq!(&transitive_closure_bits(&r, 70), &referee);
        prop_assert_eq!(&transitive_closure_scc(&r, 70), &referee);
        prop_assert_eq!(&transitive_closure_in(&r, 70), &referee);
        // Closure off the CSR arena takes a different construction path.
        let csr = CsrRelation::from_pairs(&r, 70);
        prop_assert_eq!(&rpq_relalg::transitive_closure_csr(&csr), &referee);
        prop_assert_eq!(&transitive_closure_scc_csr(&csr), &referee);
    }

    // Three-way closure differential over structured corpora: the
    // random-relation test above rarely produces long paths or large
    // cycles, so each SCC-hostile shape gets its own generator —
    // permuted deep chains (maximal semi-naive round counts), layered
    // DAGs (dense closures), chains with a cyclic core (the paper's
    // workflow regime) and multi-SCC tangles with self-loops.
    #[test]
    fn closure_kernels_agree_on_deep_chains(seed in 0u64..40, n in 2usize..120) {
        let r = deep_chain_relation(n, seed);
        let referee = transitive_closure_pairs(&r);
        prop_assert_eq!(&transitive_closure_bits(&r, n), &referee);
        prop_assert_eq!(&transitive_closure_scc(&r, n), &referee);
        prop_assert_eq!(&transitive_closure_in(&r, n), &referee);
    }

    #[test]
    fn closure_kernels_agree_on_wide_dags(
        seed in 0u64..40,
        width in 1usize..12,
        fanout in 1usize..4,
    ) {
        let r = wide_dag_relation(90, width, fanout, seed);
        let referee = transitive_closure_pairs(&r);
        prop_assert_eq!(&transitive_closure_bits(&r, 90), &referee);
        prop_assert_eq!(&transitive_closure_scc(&r, 90), &referee);
    }

    #[test]
    fn closure_kernels_agree_on_cyclic_cores(
        seed in 0u64..40,
        n in 2usize..100,
        core in 1usize..30,
    ) {
        let r = cyclic_core_relation(n, core.min(n), seed);
        let referee = transitive_closure_pairs(&r);
        prop_assert_eq!(&transitive_closure_bits(&r, n), &referee);
        prop_assert_eq!(&transitive_closure_scc(&r, n), &referee);
    }

    #[test]
    fn closure_kernels_agree_on_multi_scc_tangles(
        seed in 0u64..60,
        n_comps in 1usize..12,
        extra in 0usize..60,
    ) {
        let r = multi_scc_relation(80, n_comps, extra, seed);
        let referee = transitive_closure_pairs(&r);
        prop_assert_eq!(&transitive_closure_bits(&r, 80), &referee);
        prop_assert_eq!(&transitive_closure_scc(&r, 80), &referee);
        // The condensation invariant the one-pass closure relies on.
        let csr = CsrRelation::from_pairs(&r, 80);
        prop_assert!(Condensation::of(&csr).is_reverse_topological(&csr));
    }

    #[test]
    fn union_and_difference_agree(
        a in relation(80, 100),
        b in relation(80, 100),
    ) {
        let ab = BitRelation::from_pairs(&a, 80);
        let bb = BitRelation::from_pairs(&b, 80);
        // Pair-set referee for union; filter referee for difference.
        prop_assert_eq!(&ab.union(&bb).to_pairs(), &a.union(&b));
        let diff_referee: NodePairSet =
            a.iter().filter(|&(u, v)| !b.contains(u, v)).collect();
        prop_assert_eq!(&ab.difference(&bb).to_pairs(), &diff_referee);
    }

    #[test]
    fn endpoint_selection_kernels_agree(
        r in relation(90, 400),
        l1 in prop::collection::vec(0..90u32, 0..60),
        l2 in prop::collection::vec(0..90u32, 0..60),
    ) {
        let l1: Vec<NodeId> = l1.into_iter().map(NodeId).collect();
        let l2: Vec<NodeId> = l2.into_iter().map(NodeId).collect();
        // The pair-kernel referee, written out longhand.
        let mut l2s = l2.clone();
        l2s.sort_unstable();
        let referee: NodePairSet = r
            .iter()
            .filter(|(u, v)| l1.contains(u) && l2s.binary_search(v).is_ok())
            .collect();
        prop_assert_eq!(&select_pairs_kernel(&r, &l1, &l2), &referee);
        prop_assert_eq!(&select_pairs_bits(&r, &l1, &l2, 90), &referee);
        prop_assert_eq!(&select_pairs_in(&r, &l1, &l2, 90), &referee);
        prop_assert_eq!(&r.to_bits(90).select_pairs(&l1, &l2), &referee);
    }

    // Incremental closure maintenance (the live-ingestion delta path):
    // growing an old closure to a larger universe and extending it with
    // a random batch of new edges must be byte-identical to refixpointing
    // the union from scratch — including when the delta bridges
    // previously separate components or creates new cycles.
    #[test]
    fn extend_closure_matches_full_refixpoint(
        base in relation(70, 90),
        delta in relation(96, 40),
    ) {
        let old = BitRelation::from_pairs(&base, 70).transitive_closure();
        let merged = base.union(&delta);
        let merged_bits = BitRelation::from_pairs(&merged, 96);
        let maintained = old.grow(96).extend_closure(&merged_bits, &delta);
        prop_assert_eq!(&maintained, &merged_bits.transitive_closure());
    }

    // Row-ops differential: every bit-kernel operator must be
    // byte-identical under the blocked (4×u64) and scalar word loops,
    // and both must match the pairs referee. Covers all six rowops
    // primitives through their real call sites: compose (`or_into`),
    // closure (`claim_new` / `or_into_changed`), union (`or_into`),
    // difference (`andnot_into`) and delta maintenance (`or2_into` /
    // `claim_new_accum`).
    #[test]
    fn row_ops_modes_agree_with_the_pairs_referee(
        a in relation(90, 120),
        b in relation(90, 120),
        delta in relation(96, 40),
    ) {
        let before = rpq_relalg::row_ops_mode();
        let compose_ref = compose_pairs_kernel(&a, &b);
        let closure_ref = transitive_closure_pairs(&a);
        let union_ref = a.union(&b);
        let diff_ref: NodePairSet =
            a.iter().filter(|&(u, v)| !b.contains(u, v)).collect();
        let merged = a.union(&delta);
        for mode in [rpq_relalg::RowOpsMode::Blocked, rpq_relalg::RowOpsMode::Scalar] {
            rpq_relalg::set_row_ops_mode(mode);
            let name = mode.name();
            prop_assert_eq!(
                &compose_pairs_bits(&a, &b, 90), &compose_ref, "compose under {}", name);
            prop_assert_eq!(
                &transitive_closure_bits(&a, 90), &closure_ref, "closure under {}", name);
            let ab = BitRelation::from_pairs(&a, 90);
            let bb = BitRelation::from_pairs(&b, 90);
            prop_assert_eq!(&ab.union(&bb).to_pairs(), &union_ref, "union under {}", name);
            prop_assert_eq!(
                &ab.difference(&bb).to_pairs(), &diff_ref, "difference under {}", name);
            let merged_bits = BitRelation::from_pairs(&merged, 96);
            let maintained = ab
                .transitive_closure()
                .grow(96)
                .extend_closure(&merged_bits, &delta);
            prop_assert_eq!(
                &maintained,
                &merged_bits.transitive_closure(),
                "extend_closure under {}", name
            );
        }
        rpq_relalg::set_row_ops_mode(before);
    }

    #[test]
    fn csr_and_bits_round_trip(r in relation(100, 150)) {
        prop_assert_eq!(&CsrRelation::from_pairs(&r, 100).to_pairs(), &r);
        prop_assert_eq!(&r.to_bits(100).to_pairs(), &r);
        prop_assert_eq!(
            &BitRelation::from_csr(&CsrRelation::from_pairs(&r, 100)).to_pairs(),
            &r
        );
    }
}

// ---------------------------------------------------------------------
// Degenerate closure shapes, pinned three-way.
// ---------------------------------------------------------------------

fn pairs_of(ps: &[(u32, u32)]) -> NodePairSet {
    NodePairSet::from_pairs(ps.iter().map(|&(a, b)| (NodeId(a), NodeId(b))).collect())
}

fn assert_three_way(r: &NodePairSet, n: usize) {
    let referee = transitive_closure_pairs(r);
    assert_eq!(transitive_closure_bits(r, n), referee);
    assert_eq!(transitive_closure_scc(r, n), referee);
    assert_eq!(transitive_closure_in(r, n), referee);
}

#[test]
fn closure_of_empty_graph_is_empty_in_every_kernel() {
    assert_three_way(&NodePairSet::new(), 0);
    assert_three_way(&NodePairSet::new(), 64);
}

#[test]
fn closure_of_one_giant_cycle_is_complete_in_every_kernel() {
    let n = 130; // crosses word blocks
    let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.push((n - 1, 0));
    let r = pairs_of(&edges);
    assert_three_way(&r, n as usize);
    assert_eq!(
        transitive_closure_scc(&r, n as usize).len(),
        (n * n) as usize
    );
}

#[test]
fn closure_of_disconnected_components_in_every_kernel() {
    // Two chains, one 3-cycle, one self-loop, isolated nodes.
    let r = pairs_of(&[
        (0, 1),
        (1, 2),
        (10, 11),
        (20, 21),
        (21, 22),
        (22, 20),
        (30, 30),
    ]);
    assert_three_way(&r, 40);
}

#[test]
fn closure_of_self_loop_forest_in_every_kernel() {
    let r = pairs_of(&[(0, 0), (3, 3), (7, 7), (63, 63), (64, 64)]);
    assert_three_way(&r, 70);
}

// ---------------------------------------------------------------------
// The full composite pipeline: `Session` all-pairs evaluations must be
// identical under every forced kernel mode (the per-operator dispatch
// is invisible in results, only in speed).
// ---------------------------------------------------------------------

#[test]
fn session_composite_all_pairs_agrees_across_kernel_modes() {
    use rpq_core::{QueryRequest, Session, SubqueryPolicy};

    let before = rpq_relalg::kernel_mode();
    let spec = rpq_workloads::paper_examples::fig2_spec();
    let session = Session::from_spec(spec);
    let run = rpq_workloads::runs::simulate(session.spec(), 180, 11).expect("derivable");
    let all: Vec<NodeId> = run.node_ids().collect();

    // Closure-heavy queries, planned relationally so the kernels run.
    for query_text in ["_*", "_* a _*", "(a | e)+", "a* e a*"] {
        let query = session
            .prepare_with(query_text, SubqueryPolicy::AlwaysRelational)
            .expect("prepares");
        let mut outcomes = Vec::new();
        for mode in [
            rpq_relalg::KernelMode::ForcePairs,
            rpq_relalg::KernelMode::ForceBits,
            rpq_relalg::KernelMode::ForceScc,
            rpq_relalg::KernelMode::Auto,
        ] {
            rpq_relalg::set_kernel_mode(mode);
            let outcome = session.evaluate(
                &query,
                &run,
                &QueryRequest::all_pairs(all.clone(), all.clone()),
            );
            outcomes.push((mode.name(), outcome.result));
        }
        for (name, result) in &outcomes[1..] {
            assert_eq!(
                result, &outcomes[0].1,
                "{query_text}: {name} disagrees with {}",
                outcomes[0].0
            );
        }
    }
    rpq_relalg::set_kernel_mode(before);
}
