//! Property tests: the bit-parallel kernel agrees exactly with the
//! pair-based referee operators on random relations.
//!
//! The referee is the seed implementation (`compose_pairs_kernel`,
//! `transitive_closure_pairs`) kept verbatim in `join.rs`; the subject
//! is every bit-kernel entry point plus the density-dispatched `*_in`
//! operators (which must agree with both, whichever kernel they pick).

use proptest::prelude::*;
use rpq_labeling::NodeId;
use rpq_relalg::{
    compose_pairs_bits, compose_pairs_in, compose_pairs_kernel, select_pairs_bits, select_pairs_in,
    select_pairs_kernel, transitive_closure_bits, transitive_closure_in, transitive_closure_pairs,
    BitRelation, CsrRelation, NodePairSet,
};

/// Random relation over a universe of `n` nodes: up to `max_pairs`
/// arbitrary (possibly duplicate, possibly self-loop) pairs.
fn relation(n: u32, max_pairs: usize) -> impl Strategy<Value = NodePairSet> {
    prop::collection::vec((0..n, 0..n), 0..max_pairs).prop_map(|raw| {
        NodePairSet::from_pairs(
            raw.into_iter()
                .map(|(u, v)| (NodeId(u), NodeId(v)))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn compose_kernels_agree(
        a in relation(90, 120),
        b in relation(90, 120),
    ) {
        let referee = compose_pairs_kernel(&a, &b);
        prop_assert_eq!(&compose_pairs_bits(&a, &b, 90), &referee);
        prop_assert_eq!(&compose_pairs_in(&a, &b, 90), &referee);
    }

    #[test]
    fn closure_kernels_agree(r in relation(70, 100)) {
        let referee = transitive_closure_pairs(&r);
        prop_assert_eq!(&transitive_closure_bits(&r, 70), &referee);
        prop_assert_eq!(&transitive_closure_in(&r, 70), &referee);
        // Closure off the CSR arena takes a different construction path.
        let csr = CsrRelation::from_pairs(&r, 70);
        prop_assert_eq!(&rpq_relalg::transitive_closure_csr(&csr), &referee);
    }

    #[test]
    fn union_and_difference_agree(
        a in relation(80, 100),
        b in relation(80, 100),
    ) {
        let ab = BitRelation::from_pairs(&a, 80);
        let bb = BitRelation::from_pairs(&b, 80);
        // Pair-set referee for union; filter referee for difference.
        prop_assert_eq!(&ab.union(&bb).to_pairs(), &a.union(&b));
        let diff_referee: NodePairSet =
            a.iter().filter(|&(u, v)| !b.contains(u, v)).collect();
        prop_assert_eq!(&ab.difference(&bb).to_pairs(), &diff_referee);
    }

    #[test]
    fn endpoint_selection_kernels_agree(
        r in relation(90, 400),
        l1 in prop::collection::vec(0..90u32, 0..60),
        l2 in prop::collection::vec(0..90u32, 0..60),
    ) {
        let l1: Vec<NodeId> = l1.into_iter().map(NodeId).collect();
        let l2: Vec<NodeId> = l2.into_iter().map(NodeId).collect();
        // The pair-kernel referee, written out longhand.
        let mut l2s = l2.clone();
        l2s.sort_unstable();
        let referee: NodePairSet = r
            .iter()
            .filter(|(u, v)| l1.contains(u) && l2s.binary_search(v).is_ok())
            .collect();
        prop_assert_eq!(&select_pairs_kernel(&r, &l1, &l2), &referee);
        prop_assert_eq!(&select_pairs_bits(&r, &l1, &l2, 90), &referee);
        prop_assert_eq!(&select_pairs_in(&r, &l1, &l2, 90), &referee);
        prop_assert_eq!(&r.to_bits(90).select_pairs(&l1, &l2), &referee);
    }

    #[test]
    fn csr_and_bits_round_trip(r in relation(100, 150)) {
        prop_assert_eq!(&CsrRelation::from_pairs(&r, 100).to_pairs(), &r);
        prop_assert_eq!(&r.to_bits(100).to_pairs(), &r);
        prop_assert_eq!(
            &BitRelation::from_csr(&CsrRelation::from_pairs(&r, 100)).to_pairs(),
            &r
        );
    }
}
