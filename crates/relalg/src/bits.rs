//! Blocked-bitset relations: the bit-parallel join/fixpoint kernel.
//!
//! Run nodes are dense `u32`s, so a node-pair relation over an
//! `n`-node run is an `n × n` boolean matrix — the same shape the
//! 64-state `StateMatrix` of `rpq-core` exploits for DFA relations
//! (PAPER.md §III-C), scaled past 64 columns by blocking each row into
//! `⌈n/64⌉` `u64` words. Composition becomes word-wise row ORs and the
//! semi-naive Kleene fixpoint becomes `next = Δ ∘ base; new = next & !seen`
//! on whole words, eliminating the per-pair hashing and per-round `Vec`
//! churn of the pair-based operators.
//!
//! [`BitRelation`] is an internal kernel type: [`NodePairSet`] stays the
//! public boundary, with cheap [`BitRelation::from_pairs`] /
//! [`BitRelation::to_pairs`] converters at the edges.

use crate::csr::CsrRelation;
use crate::relation::NodePairSet;
use crate::rowops;
use rpq_labeling::NodeId;

/// A dense boolean relation over `n` nodes, one blocked bitset row per
/// source node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitRelation {
    n_nodes: usize,
    /// Words per row: `⌈n_nodes/64⌉`.
    words_per_row: usize,
    /// Row-major `n_nodes × words_per_row` words.
    words: Vec<u64>,
}

impl BitRelation {
    /// The empty relation over `n_nodes` nodes.
    pub fn new(n_nodes: usize) -> BitRelation {
        let words_per_row = n_nodes.div_ceil(64);
        BitRelation {
            n_nodes,
            words_per_row,
            words: vec![0; n_nodes * words_per_row],
        }
    }

    /// Build from a pair set. `n_nodes` must bound every node id
    /// (checked in debug builds).
    pub fn from_pairs(pairs: &NodePairSet, n_nodes: usize) -> BitRelation {
        let mut bits = BitRelation::new(n_nodes);
        for (u, v) in pairs.iter() {
            bits.set(u, v);
        }
        bits
    }

    /// Build from a CSR adjacency (the cached per-`(run, tag)` arena).
    pub fn from_csr(csr: &CsrRelation) -> BitRelation {
        let n = csr.n_nodes();
        let mut bits = BitRelation::new(n);
        for u in 0..n as u32 {
            let row = bits.row_index(u as usize);
            for &v in csr.neighbors_raw(u) {
                bits.words[row + (v as usize >> 6)] |= 1 << (v & 63);
            }
        }
        bits
    }

    /// Number of nodes in the universe (row/column count).
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Words per blocked row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    #[inline]
    fn row_index(&self, u: usize) -> usize {
        u * self.words_per_row
    }

    /// The blocked bitset row of source `u`.
    #[inline]
    pub fn row(&self, u: usize) -> &[u64] {
        &self.words[self.row_index(u)..self.row_index(u) + self.words_per_row]
    }

    /// The mutable blocked bitset row of source `u` (the condensation
    /// closure writes whole finished component rows at once).
    #[inline]
    pub(crate) fn row_mut(&mut self, u: usize) -> &mut [u64] {
        let start = self.row_index(u);
        &mut self.words[start..start + self.words_per_row]
    }

    /// Add `(u, v)`.
    #[inline]
    pub fn set(&mut self, u: NodeId, v: NodeId) {
        debug_assert!(u.index() < self.n_nodes && v.index() < self.n_nodes);
        let start = self.row_index(u.index());
        self.words[start + (v.index() >> 6)] |= 1 << (v.index() & 63);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        if u.index() >= self.n_nodes || v.index() >= self.n_nodes {
            return false;
        }
        let start = self.row_index(u.index());
        self.words[start + (v.index() >> 6)] >> (v.index() & 63) & 1 == 1
    }

    /// Number of pairs (popcount over all rows).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Word-wise union, in place. Returns whether `self` changed.
    pub fn union_in_place(&mut self, other: &BitRelation) -> bool {
        debug_assert_eq!(self.n_nodes, other.n_nodes);
        // One flat word-slice OR: rows share a stride, so the whole
        // matrix is a single blocked pass.
        rowops::or_into_changed(&mut self.words, &other.words)
    }

    /// Word-wise union.
    pub fn union(&self, other: &BitRelation) -> BitRelation {
        let mut out = self.clone();
        out.union_in_place(other);
        out
    }

    /// Word-wise difference `self ∖ other`.
    pub fn difference(&self, other: &BitRelation) -> BitRelation {
        debug_assert_eq!(self.n_nodes, other.n_nodes);
        let mut out = self.clone();
        rowops::andnot_into(&mut out.words, &other.words);
        out
    }

    /// Composition `{(u, w) | (u, v) ∈ self, (v, w) ∈ other}`: for each
    /// set bit `v` of a row, OR in `other`'s row of `v` — the blocked
    /// analogue of boolean matrix multiplication.
    pub fn compose(&self, other: &BitRelation) -> BitRelation {
        debug_assert_eq!(self.n_nodes, other.n_nodes);
        let wpr = self.words_per_row;
        let mut out = BitRelation::new(self.n_nodes);
        for u in 0..self.n_nodes {
            let out_start = out.row_index(u);
            for (block, &word) in self.row(u).iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let v = (block << 6) + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let other_start = other.row_index(v);
                    rowops::or_into(
                        &mut out.words[out_start..out_start + wpr],
                        &other.words[other_start..other_start + wpr],
                    );
                }
            }
        }
        out
    }

    /// Composition with a CSR left operand: iterate the sparse adjacency
    /// lists instead of scanning row words — the join kernel for sparse
    /// `A ∘ dense B`.
    pub fn compose_csr(a: &CsrRelation, b: &BitRelation) -> BitRelation {
        debug_assert_eq!(a.n_nodes(), b.n_nodes);
        let wpr = b.words_per_row;
        let mut out = BitRelation::new(b.n_nodes);
        for u in 0..a.n_nodes() as u32 {
            let out_start = out.row_index(u as usize);
            rowops::or_gather_into(
                &mut out.words[out_start..out_start + wpr],
                a.neighbors_raw(u).iter().map(|&v| {
                    let b_start = b.row_index(v as usize);
                    &b.words[b_start..b_start + wpr]
                }),
            );
        }
        out
    }

    /// Transitive closure (Kleene plus) of `self`, semi-naive and fully
    /// word-wise: per round, each non-empty delta row is extended by one
    /// base step (`next = ⋃_{v ∈ Δ[u]} base[v]`) and only the genuinely
    /// new bits (`new = next & !seen`) survive into the next delta.
    /// Every pair enters a delta row exactly once, so total work is
    /// `O(|closure| · n/64)` words — the classic bit-parallel bound,
    /// with no per-pair hashing and no per-round re-sorting.
    pub fn transitive_closure(&self) -> BitRelation {
        let n = self.n_nodes;
        let wpr = self.words_per_row;
        let mut seen = self.clone();
        let mut delta = self.clone();
        let mut next = vec![0u64; wpr];
        // Row starts of the current row's gather sources, batched so
        // the blocked mode can consume them in pairs (one `next` pass
        // per two base rows — see [`rowops::or_gather_into`]).
        let mut gather: Vec<usize> = Vec::new();
        // Worklist of rows whose delta is non-empty: per-round cost is
        // proportional to the rows still growing, not to n (deep sparse
        // graphs would otherwise pay an n-row zero-scan per round).
        let mut active: Vec<usize> = (0..n)
            .filter(|&u| {
                let start = u * wpr;
                delta.words[start..start + wpr].iter().any(|&w| w != 0)
            })
            .collect();
        while !active.is_empty() {
            let mut still_active = Vec::with_capacity(active.len());
            for &u in &active {
                let d_start = delta.row_index(u);
                next.fill(0);
                gather.clear();
                for block in 0..wpr {
                    let mut bits = delta.words[d_start + block];
                    while bits != 0 {
                        let v = (block << 6) + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        gather.push(self.row_index(v));
                    }
                }
                rowops::or_gather_into(
                    &mut next,
                    gather.iter().map(|&base| &self.words[base..base + wpr]),
                );
                // new = next & !seen; seen |= new; delta[u] = new.
                let s_start = seen.row_index(u);
                let row_grew = rowops::claim_new(
                    &next,
                    &mut seen.words[s_start..s_start + wpr],
                    &mut delta.words[d_start..d_start + wpr],
                );
                if row_grew {
                    still_active.push(u);
                }
            }
            active = still_active;
        }
        seen
    }

    /// Relayout into a larger universe: same pairs, `n_nodes` rows of
    /// `⌈n_nodes/64⌉` words. Streaming appends grow the node universe,
    /// which changes the blocked-row stride — a plain word copy would
    /// misalign every row past the first.
    pub fn grow(&self, n_nodes: usize) -> BitRelation {
        assert!(
            n_nodes >= self.n_nodes,
            "grow cannot shrink the universe ({} -> {n_nodes})",
            self.n_nodes
        );
        let mut out = BitRelation::new(n_nodes);
        let old_wpr = self.words_per_row;
        for u in 0..self.n_nodes {
            let src = self.row_index(u);
            let dst = u * out.words_per_row;
            out.words[dst..dst + old_wpr].copy_from_slice(&self.words[src..src + old_wpr]);
        }
        out
    }

    /// Extend a finished transitive closure by a batch of new edges
    /// without refixpointing the whole graph: `self` is the closure of
    /// some edge set `E`, `base` is the grown base `E ∪ Δ`, and `delta`
    /// holds the new edges `Δ` (all three over the same universe —
    /// [`BitRelation::grow`] first when nodes were added).
    ///
    /// The old closure does double duty. Seeding: a new edge `(u, v)`
    /// can only create pairs `(x, y)` with `x ∈ {u} ∪ pred(u)` (read
    /// off column `u` of the old closure) and `y ∈ {v} ∪ succ(v)` (row
    /// `v`), so exactly those rows enter the delta worklist, pre-loaded
    /// with the whole old reach of `v` in one OR. Propagation: the
    /// semi-naive rounds step through `base[w] | closure_old[w]`, so a
    /// round traverses an arbitrarily long stretch of *old* edges at
    /// once and the round count is bounded by the number of Δ-edges on
    /// a path, not the graph diameter. Rows never seeded or reached
    /// stay untouched — the "delta rounds instead of a full refixpoint"
    /// the streaming store relies on.
    pub fn extend_closure(&self, base: &BitRelation, delta: &NodePairSet) -> BitRelation {
        let n = base.n_nodes;
        let wpr = base.words_per_row;
        assert_eq!(self.n_nodes, n, "closure and base universes differ");
        let mut seen = self.clone();
        let mut dl = BitRelation::new(n);
        let mut on_worklist = vec![false; n];
        let mut active: Vec<usize> = Vec::new();

        // Seed one step row per distinct Δ source: the union of {v} and
        // the old closure rows of every new target v of u.
        let mut step = vec![0u64; wpr];
        let dpairs = delta.as_slice();
        let mut i = 0;
        while i < dpairs.len() {
            let u = dpairs[i].0;
            step.fill(0);
            while i < dpairs.len() && dpairs[i].0 == u {
                let v = dpairs[i].1.index();
                step[v >> 6] |= 1 << (v & 63);
                rowops::or_into(&mut step, self.row(v));
                i += 1;
            }
            // Affected sources: u itself plus everything that already
            // reached u (column u of the old closure).
            let u_block = u.index() >> 6;
            let u_bit = 1u64 << (u.index() & 63);
            for (x, on_wl) in on_worklist.iter_mut().enumerate() {
                let reaches_u = x == u.index() || self.words[x * wpr + u_block] & u_bit != 0;
                if !reaches_u {
                    continue;
                }
                let s_start = x * wpr;
                let grew = rowops::claim_new_accum(
                    &step,
                    &mut seen.words[s_start..s_start + wpr],
                    &mut dl.words[s_start..s_start + wpr],
                );
                if grew && !*on_wl {
                    *on_wl = true;
                    active.push(x);
                }
            }
        }

        // Semi-naive rounds over the accelerated step relation
        // `base[w] | closure_old[w]`: any pair it adds is a real path in
        // `E ∪ Δ` (old-closure rows are Δ-free path bundles), and any
        // new pair (x, y) is found — induction on the number of Δ-edges
        // along a witnessing path: the prefix up to the first Δ-edge
        // (u, v) puts x in the seeded set with v's old reach, and each
        // later Δ-edge is crossed by one further round, the old-edge
        // stretches between them collapsing into single closure-row ORs.
        let mut next = vec![0u64; wpr];
        while !active.is_empty() {
            let mut still_active = Vec::with_capacity(active.len());
            for &u in &active {
                on_worklist[u] = false;
                let d_start = u * wpr;
                next.fill(0);
                for block in 0..wpr {
                    let mut bits = dl.words[d_start + block];
                    while bits != 0 {
                        let w = (block << 6) + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let b_start = w * wpr;
                        rowops::or2_into(
                            &mut next,
                            &base.words[b_start..b_start + wpr],
                            &self.words[b_start..b_start + wpr],
                        );
                    }
                }
                let s_start = u * wpr;
                let row_grew = rowops::claim_new(
                    &next,
                    &mut seen.words[s_start..s_start + wpr],
                    &mut dl.words[d_start..d_start + wpr],
                );
                if row_grew {
                    still_active.push(u);
                }
            }
            active = still_active;
        }
        seen
    }

    /// Restrict to `sources × targets` without materializing the
    /// unselected pairs: the target list becomes one blocked mask that
    /// is ANDed into each selected source row as it is scanned, so a
    /// dense relation pays `⌈n/64⌉` word-ANDs per source instead of a
    /// per-pair membership probe (the ROADMAP's "bit-parallel endpoint
    /// selection" follow-up to the PR 2 kernel). Lists may arrive
    /// unsorted and with duplicates; out-of-range ids select nothing.
    pub fn select_pairs(&self, sources: &[NodeId], targets: &[NodeId]) -> NodePairSet {
        let mut mask = vec![0u64; self.words_per_row];
        for &v in targets {
            if v.index() < self.n_nodes {
                mask[v.index() >> 6] |= 1 << (v.index() & 63);
            }
        }
        let mut srcs: Vec<usize> = sources
            .iter()
            .map(|u| u.index())
            .filter(|&u| u < self.n_nodes)
            .collect();
        srcs.sort_unstable();
        srcs.dedup();
        let mut out = Vec::new();
        for u in srcs {
            let start = self.row_index(u);
            for (block, (&row_word, &mask_word)) in self.words[start..start + self.words_per_row]
                .iter()
                .zip(&mask)
                .enumerate()
            {
                let word = row_word & mask_word;
                out.extend(
                    BitIter(word).map(|b| (NodeId(u as u32), NodeId(((block << 6) + b) as u32))),
                );
            }
        }
        // Sources were visited in increasing order and each row scans
        // left to right, so the output is sorted and duplicate-free.
        NodePairSet::from_sorted_unique(out)
    }

    /// Iterate the pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n_nodes).flat_map(move |u| {
            self.row(u).iter().enumerate().flat_map(move |(block, &w)| {
                BitIter(w).map(move |b| (NodeId(u as u32), NodeId(((block << 6) + b) as u32)))
            })
        })
    }

    /// Materialize back into the boundary pair-set type (already sorted
    /// by construction — no sort, no dedup).
    pub fn to_pairs(&self) -> NodePairSet {
        NodePairSet::from_sorted_unique(self.iter().collect())
    }
}

/// Iterator over the set bit positions of one word.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn pairs(ps: &[(u32, u32)]) -> NodePairSet {
        NodePairSet::from_pairs(ps.iter().map(|&(a, b)| (n(a), n(b))).collect())
    }

    #[test]
    fn roundtrip_pairs() {
        let p = pairs(&[(0, 1), (2, 70), (70, 0), (100, 100)]);
        let bits = BitRelation::from_pairs(&p, 101);
        assert_eq!(bits.len(), 4);
        assert!(bits.contains(n(2), n(70)));
        assert!(!bits.contains(n(70), n(2)));
        assert_eq!(bits.to_pairs(), p);
    }

    #[test]
    fn word_ops_match_set_semantics() {
        let a = BitRelation::from_pairs(&pairs(&[(0, 1), (1, 2)]), 80);
        let b = BitRelation::from_pairs(&pairs(&[(1, 2), (2, 79)]), 80);
        assert_eq!(a.union(&b).to_pairs(), pairs(&[(0, 1), (1, 2), (2, 79)]));
        assert_eq!(a.difference(&b).to_pairs(), pairs(&[(0, 1)]));
        assert_eq!(a.compose(&b).to_pairs(), pairs(&[(0, 2), (1, 79)]));
    }

    #[test]
    fn closure_of_long_chain_crosses_word_blocks() {
        let chain: Vec<(u32, u32)> = (0..200).map(|i| (i, i + 1)).collect();
        let bits = BitRelation::from_pairs(&pairs(&chain), 201);
        let tc = bits.transitive_closure();
        assert_eq!(tc.len(), 201 * 200 / 2);
        assert!(tc.contains(n(0), n(200)));
        assert!(!tc.contains(n(200), n(0)));
    }

    #[test]
    fn closure_handles_cycles() {
        let bits = BitRelation::from_pairs(&pairs(&[(0, 1), (1, 0)]), 2);
        assert_eq!(
            bits.transitive_closure().to_pairs(),
            pairs(&[(0, 0), (0, 1), (1, 0), (1, 1)])
        );
    }

    #[test]
    fn select_pairs_masks_rows() {
        let p = pairs(&[(0, 1), (0, 70), (2, 70), (70, 0), (3, 3)]);
        let bits = BitRelation::from_pairs(&p, 80);
        // Unsorted, duplicated lists; out-of-range ids are ignored.
        let sel = bits.select_pairs(
            &[n(2), n(0), n(2), n(3), n(999)],
            &[n(70), n(3), n(70), n(999)],
        );
        assert_eq!(sel, pairs(&[(0, 70), (2, 70), (3, 3)]));
        assert!(bits.select_pairs(&[], &[n(70)]).is_empty());
        assert!(bits.select_pairs(&[n(0)], &[]).is_empty());
    }

    #[test]
    fn empty_relation_closure_is_empty() {
        let bits = BitRelation::new(64);
        assert!(bits.transitive_closure().is_empty());
        assert!(bits.to_pairs().is_empty());
    }

    #[test]
    fn grow_preserves_pairs_across_the_stride_change() {
        // 60 -> 130 nodes crosses a words-per-row boundary (1 -> 3).
        let p = pairs(&[(0, 1), (2, 59), (59, 0)]);
        let bits = BitRelation::from_pairs(&p, 60);
        let grown = bits.grow(130);
        assert_eq!(grown.n_nodes(), 130);
        assert_eq!(grown.to_pairs(), p);
        assert_eq!(bits.grow(60).to_pairs(), p);
    }

    #[test]
    fn extend_closure_matches_refixpoint_on_chains_and_cycles() {
        // Base chain 0→1→2→3, closed; append 3→4 (new node) and 4→0
        // (creates a cycle through the whole chain).
        let base_old = pairs(&[(0, 1), (1, 2), (2, 3)]);
        let closure_old = BitRelation::from_pairs(&base_old, 4).transitive_closure();
        let delta = pairs(&[(3, 4), (4, 0)]);
        let base_new = BitRelation::from_pairs(&base_old.union(&delta), 5);
        let extended = closure_old.grow(5).extend_closure(&base_new, &delta);
        assert_eq!(
            extended.to_pairs(),
            base_new.transitive_closure().to_pairs()
        );
        // The cycle makes every pair reachable, including self-loops.
        assert!(extended.contains(n(2), n(2)));
        assert_eq!(extended.len(), 25);
    }

    #[test]
    fn extend_closure_with_empty_delta_is_identity() {
        let base = pairs(&[(0, 1), (1, 70), (70, 2)]);
        let bits = BitRelation::from_pairs(&base, 80);
        let closure = bits.transitive_closure();
        let extended = closure.extend_closure(&bits, &NodePairSet::new());
        assert_eq!(extended, closure);
    }

    #[test]
    fn extend_closure_chains_multiple_new_edges_in_one_batch() {
        // Two disjoint old chains bridged by two Δ edges in one batch:
        // completeness needs a propagation round per Δ edge on the path.
        let base_old = pairs(&[(0, 1), (1, 2), (10, 11), (11, 12)]);
        let closure_old = BitRelation::from_pairs(&base_old, 20).transitive_closure();
        let delta = pairs(&[(2, 10), (12, 15)]);
        let base_new = BitRelation::from_pairs(&base_old.union(&delta), 20);
        let extended = closure_old.extend_closure(&base_new, &delta);
        assert_eq!(
            extended.to_pairs(),
            base_new.transitive_closure().to_pairs()
        );
        assert!(extended.contains(n(0), n(15)));
    }
}
