//! Node-pair sets and relations with symbolic identity.

use rpq_labeling::NodeId;

/// A sorted, deduplicated set of `(source, target)` node pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodePairSet {
    pairs: Vec<(NodeId, NodeId)>,
}

impl NodePairSet {
    /// Empty set.
    pub fn new() -> NodePairSet {
        NodePairSet::default()
    }

    /// Build from arbitrary pairs (sorts and dedups).
    pub fn from_pairs(mut pairs: Vec<(NodeId, NodeId)>) -> NodePairSet {
        pairs.sort_unstable();
        pairs.dedup();
        NodePairSet { pairs }
    }

    /// Build from pairs already sorted and deduplicated (checked in
    /// debug builds) — the no-cost boundary for kernel outputs that are
    /// sorted by construction (bitset row scans, CSR traversals).
    pub fn from_sorted_unique(pairs: Vec<(NodeId, NodeId)>) -> NodePairSet {
        debug_assert!(pairs.windows(2).all(|w| w[0] < w[1]));
        NodePairSet { pairs }
    }

    /// One past the largest node id mentioned (0 for the empty set) —
    /// the tightest universe the bit kernel must represent when the
    /// caller has no run at hand.
    pub fn universe_bound(&self) -> usize {
        self.pairs
            .iter()
            .map(|&(u, v)| u.index().max(v.index()) + 1)
            .max()
            .unwrap_or(0)
    }

    /// Convert to a blocked-bitset relation over `n_nodes` nodes.
    pub fn to_bits(&self, n_nodes: usize) -> crate::bits::BitRelation {
        crate::bits::BitRelation::from_pairs(self, n_nodes)
    }

    /// Materialize a blocked-bitset relation (sorted by construction).
    pub fn from_bits(bits: &crate::bits::BitRelation) -> NodePairSet {
        bits.to_pairs()
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.pairs.binary_search(&(u, v)).is_ok()
    }

    /// Iterate pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.pairs.iter().copied()
    }

    /// Raw slice access.
    pub fn as_slice(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Set union.
    pub fn union(&self, other: &NodePairSet) -> NodePairSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.pairs.len() && j < other.pairs.len() {
            match self.pairs[i].cmp(&other.pairs[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.pairs[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.pairs[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.pairs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.pairs[i..]);
        out.extend_from_slice(&other.pairs[j..]);
        NodePairSet { pairs: out }
    }

    /// Restrict to pairs whose source is in `sources`.
    ///
    /// Pairs are already sorted by source, so this is a two-pointer
    /// merge — no per-call hash set (sorts a local copy of `sources`
    /// only when the caller passes it unsorted).
    pub fn filter_sources(&self, sources: &[NodeId]) -> NodePairSet {
        let mut out = Vec::new();
        with_sorted(sources, |sorted| {
            self.retain_sources_into(sorted, &mut out);
        });
        NodePairSet { pairs: out }
    }

    /// Restrict to pairs whose target is in `targets` (binary search
    /// per pair against the sorted target list — pairs are not sorted
    /// by target, so no merge is possible).
    pub fn filter_targets(&self, targets: &[NodeId]) -> NodePairSet {
        let mut out = Vec::new();
        with_sorted(targets, |sorted| {
            self.retain_targets_into(sorted, &mut out);
        });
        NodePairSet { pairs: out }
    }

    /// No-allocation variant of [`NodePairSet::filter_sources`] for hot
    /// loops: appends the matching pairs (still sorted) to `out`.
    /// `sources` must be sorted (checked in debug builds).
    pub fn retain_sources_into(&self, sources: &[NodeId], out: &mut Vec<(NodeId, NodeId)>) {
        debug_assert!(sources.windows(2).all(|w| w[0] <= w[1]));
        let mut k = 0;
        for &(u, v) in &self.pairs {
            while k < sources.len() && sources[k] < u {
                k += 1;
            }
            if k == sources.len() {
                break;
            }
            if sources[k] == u {
                out.push((u, v));
            }
        }
    }

    /// No-allocation variant of [`NodePairSet::filter_targets`]:
    /// appends the matching pairs (still sorted) to `out`. `targets`
    /// must be sorted (checked in debug builds).
    pub fn retain_targets_into(&self, targets: &[NodeId], out: &mut Vec<(NodeId, NodeId)>) {
        debug_assert!(targets.windows(2).all(|w| w[0] <= w[1]));
        out.extend(
            self.pairs
                .iter()
                .copied()
                .filter(|(_, v)| targets.binary_search(v).is_ok()),
        );
    }
}

/// Run `f` with a sorted view of `nodes`, copying only when the caller
/// passed them unsorted.
fn with_sorted(nodes: &[NodeId], f: impl FnOnce(&[NodeId])) {
    if nodes.is_sorted() {
        f(nodes);
    } else {
        let mut sorted = nodes.to_vec();
        sorted.sort_unstable();
        f(&sorted);
    }
}

impl FromIterator<(NodeId, NodeId)> for NodePairSet {
    fn from_iter<T: IntoIterator<Item = (NodeId, NodeId)>>(iter: T) -> Self {
        NodePairSet::from_pairs(iter.into_iter().collect())
    }
}

/// Pack dense `u32` data into the data model's byte buffer
/// (little-endian) — an element-wise `Value::Seq` costs an enum
/// construction per number on both ends, which makes decoding a
/// persisted index *slower* than rebuilding it; the packed form
/// decodes at memcpy speed. Shared with the CSR arena's impls.
pub(crate) fn pack_u32s(n_values: usize, values: impl Iterator<Item = u32>) -> serde::Value {
    let mut bytes = Vec::with_capacity(n_values * 4);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    serde::Value::Bytes(bytes)
}

/// Inverse of [`pack_u32s`]. Strictly requires the packed byte shape:
/// accepting an element-wise sequence here would silently mis-decode a
/// JSON round-trip of the packed form (JSON renders `Bytes` as an
/// array of *byte* values, so an element-wise reading would yield one
/// u32 per byte — four times too many, all wrong). Packed index types
/// round-trip through the binary codec only; JSON is one-way display.
pub(crate) fn unpack_u32s(value: &serde::Value) -> Result<Vec<u32>, serde::DeError> {
    match value {
        serde::Value::Bytes(bytes) => {
            if bytes.len() % 4 != 0 {
                return Err(serde::DeError::custom(
                    "packed u32 buffer length is not a multiple of 4",
                ));
            }
            Ok(bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect())
        }
        other => Err(serde::DeError::expected("packed byte buffer", other)),
    }
}

// Persistence (run-store index files): a pair set serializes as its
// pair list packed `u, v, u, v, …`; deserialization goes through
// `from_pairs`, so a tampered or hand-written file can never violate
// the sorted/deduplicated invariant the kernels rely on.
impl serde::Serialize for NodePairSet {
    fn to_value(&self) -> serde::Value {
        pack_u32s(
            self.pairs.len() * 2,
            self.pairs.iter().flat_map(|&(u, v)| [u.0, v.0]),
        )
    }
}

impl serde::Deserialize for NodePairSet {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let flat = unpack_u32s(value)?;
        if flat.len() % 2 != 0 {
            return Err(serde::DeError::custom(
                "pair buffer holds an odd number of node ids",
            ));
        }
        Ok(NodePairSet::from_pairs(
            flat.chunks_exact(2)
                .map(|c| (NodeId(c[0]), NodeId(c[1])))
                .collect(),
        ))
    }
}

/// A relation: explicit pairs plus a symbolic "identity on all nodes"
/// component. `ε` and `e*` contribute the identity; keeping it symbolic
/// avoids materializing `|V|` reflexive pairs in every star.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Relation {
    /// Explicit (non-reflexive-by-construction) pairs.
    pub pairs: NodePairSet,
    /// Whether the identity relation is included.
    pub identity: bool,
}

impl Relation {
    /// The empty relation (∅).
    pub fn empty() -> Relation {
        Relation::default()
    }

    /// The identity relation (ε).
    pub fn epsilon() -> Relation {
        Relation {
            pairs: NodePairSet::new(),
            identity: true,
        }
    }

    /// From explicit pairs.
    pub fn from_pairs(pairs: NodePairSet) -> Relation {
        Relation {
            pairs,
            identity: false,
        }
    }

    /// Union of relations.
    pub fn union(&self, other: &Relation) -> Relation {
        Relation {
            pairs: self.pairs.union(&other.pairs),
            identity: self.identity || other.identity,
        }
    }

    /// Does the relation relate `u` to `v`?
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        (self.identity && u == v) || self.pairs.contains(u, v)
    }

    /// The relation restricted to `l1 × l2` (lists may arrive unsorted
    /// and with duplicates): the pair-kernel selection
    /// ([`crate::join::select_pairs_kernel`]), with the symbolic
    /// identity contributing `(u, u)` for every `u ∈ l1 ∩ l2` — the
    /// shared finale of every all-pairs evaluator over a composite
    /// relation. [`Relation::select_pairs_in`] is the kernel-dispatched
    /// variant for callers that know the universe size.
    pub fn select_pairs(&self, l1: &[NodeId], l2: &[NodeId]) -> NodePairSet {
        self.graft_identity(
            crate::join::select_pairs_kernel(&self.pairs, l1, l2),
            l1,
            l2,
        )
    }

    /// Kernel-dispatched [`Relation::select_pairs`] over an `n_nodes`
    /// universe: dense relations AND a blocked target mask into each
    /// selected source row before materializing
    /// ([`crate::join::select_pairs_in`]), sparse ones take the sorted
    /// merge. The symbolic identity contributes `(u, u)` for every
    /// `u ∈ l1 ∩ l2` either way.
    pub fn select_pairs_in(&self, l1: &[NodeId], l2: &[NodeId], n_nodes: usize) -> NodePairSet {
        self.graft_identity(
            crate::join::select_pairs_in(&self.pairs, l1, l2, n_nodes),
            l1,
            l2,
        )
    }

    /// Add the symbolic identity's `(u, u)` for every `u ∈ l1 ∩ l2` to
    /// an already-selected pair set (no-op for identity-free
    /// relations). The identity pairs come out of the sorted
    /// intersection already ordered, so this is a linear merge with
    /// `selected` — never a re-sort of the (possibly large) selection.
    fn graft_identity(&self, selected: NodePairSet, l1: &[NodeId], l2: &[NodeId]) -> NodePairSet {
        if !self.identity {
            return selected;
        }
        let mut l1s = l1.to_vec();
        l1s.sort_unstable();
        l1s.dedup();
        let mut l2s = l2.to_vec();
        l2s.sort_unstable();
        l2s.dedup();
        let id_pairs: Vec<(NodeId, NodeId)> = l1s
            .iter()
            .filter(|u| l2s.binary_search(u).is_ok())
            .map(|&u| (u, u))
            .collect();
        selected.union(&NodePairSet::from_sorted_unique(id_pairs))
    }

    /// Materialize against an explicit universe (for final answers whose
    /// endpoints are restricted to given lists anyway).
    pub fn materialize(&self, universe: &[NodeId]) -> NodePairSet {
        if !self.identity {
            return self.pairs.clone();
        }
        let mut pairs: Vec<(NodeId, NodeId)> = self.pairs.iter().collect();
        pairs.extend(universe.iter().map(|&n| (n, n)));
        NodePairSet::from_pairs(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let s = NodePairSet::from_pairs(vec![(n(2), n(1)), (n(0), n(5)), (n(2), n(1))]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.as_slice(), &[(n(0), n(5)), (n(2), n(1))]);
        assert!(s.contains(n(2), n(1)));
        assert!(!s.contains(n(1), n(2)));
    }

    #[test]
    fn union_merges() {
        let a = NodePairSet::from_pairs(vec![(n(0), n(1)), (n(2), n(3))]);
        let b = NodePairSet::from_pairs(vec![(n(0), n(1)), (n(4), n(5))]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(u.contains(n(4), n(5)));
    }

    #[test]
    fn filters() {
        let s = NodePairSet::from_pairs(vec![(n(0), n(1)), (n(2), n(3)), (n(0), n(3))]);
        assert_eq!(s.filter_sources(&[n(0)]).len(), 2);
        assert_eq!(s.filter_targets(&[n(3)]).len(), 2);
        assert_eq!(s.filter_sources(&[]).len(), 0);
        // Unsorted and duplicated inputs behave like sets.
        assert_eq!(s.filter_sources(&[n(2), n(0), n(2)]).len(), 3);
        assert_eq!(s.filter_targets(&[n(3), n(1), n(3)]).len(), 3);
    }

    #[test]
    fn retain_into_appends_sorted_matches() {
        let s = NodePairSet::from_pairs(vec![(n(0), n(1)), (n(2), n(3)), (n(5), n(0))]);
        let mut out = Vec::new();
        s.retain_sources_into(&[n(0), n(5)], &mut out);
        assert_eq!(out, vec![(n(0), n(1)), (n(5), n(0))]);
        out.clear();
        s.retain_targets_into(&[n(0), n(3)], &mut out);
        assert_eq!(out, vec![(n(2), n(3)), (n(5), n(0))]);
    }

    #[test]
    fn select_pairs_restricts_and_adds_identity() {
        let r = Relation {
            pairs: NodePairSet::from_pairs(vec![(n(0), n(1)), (n(2), n(3)), (n(5), n(0))]),
            identity: true,
        };
        // Unsorted, duplicated lists; (2,2) comes from the identity,
        // (2,3) from the pairs — self-loop dedup is the boundary's job.
        let s = r.select_pairs(&[n(2), n(0), n(2)], &[n(3), n(1), n(2)]);
        assert_eq!(s.as_slice(), &[(n(0), n(1)), (n(2), n(2)), (n(2), n(3))]);
        let no_id = Relation {
            pairs: r.pairs.clone(),
            identity: false,
        };
        assert_eq!(no_id.select_pairs(&[n(2)], &[n(2), n(3)]).len(), 1);
    }

    #[test]
    fn bits_round_trip_and_universe_bound() {
        let s = NodePairSet::from_pairs(vec![(n(0), n(70)), (n(3), n(2))]);
        assert_eq!(s.universe_bound(), 71);
        assert_eq!(NodePairSet::from_bits(&s.to_bits(71)), s);
        assert_eq!(NodePairSet::new().universe_bound(), 0);
    }

    #[test]
    fn relation_identity_semantics() {
        let r = Relation::epsilon();
        assert!(r.contains(n(7), n(7)));
        assert!(!r.contains(n(7), n(8)));
        let m = r.materialize(&[n(1), n(2)]);
        assert_eq!(m.len(), 2);
        assert!(m.contains(n(1), n(1)));
    }

    #[test]
    fn relation_union_keeps_identity() {
        let a = Relation::from_pairs(NodePairSet::from_pairs(vec![(n(0), n(1))]));
        let b = Relation::epsilon();
        let u = a.union(&b);
        assert!(u.identity);
        assert!(u.contains(n(0), n(1)));
        assert!(u.contains(n(9), n(9)));
    }
}
