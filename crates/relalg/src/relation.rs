//! Node-pair sets and relations with symbolic identity.

use rpq_labeling::NodeId;

/// A sorted, deduplicated set of `(source, target)` node pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodePairSet {
    pairs: Vec<(NodeId, NodeId)>,
}

impl NodePairSet {
    /// Empty set.
    pub fn new() -> NodePairSet {
        NodePairSet::default()
    }

    /// Build from arbitrary pairs (sorts and dedups).
    pub fn from_pairs(mut pairs: Vec<(NodeId, NodeId)>) -> NodePairSet {
        pairs.sort_unstable();
        pairs.dedup();
        NodePairSet { pairs }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.pairs.binary_search(&(u, v)).is_ok()
    }

    /// Iterate pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.pairs.iter().copied()
    }

    /// Raw slice access.
    pub fn as_slice(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Set union.
    pub fn union(&self, other: &NodePairSet) -> NodePairSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.pairs.len() && j < other.pairs.len() {
            match self.pairs[i].cmp(&other.pairs[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.pairs[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.pairs[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.pairs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.pairs[i..]);
        out.extend_from_slice(&other.pairs[j..]);
        NodePairSet { pairs: out }
    }

    /// Restrict to pairs whose source is in `sources` (sorted input).
    pub fn filter_sources(&self, sources: &[NodeId]) -> NodePairSet {
        let set: std::collections::HashSet<NodeId> = sources.iter().copied().collect();
        NodePairSet {
            pairs: self
                .pairs
                .iter()
                .copied()
                .filter(|(u, _)| set.contains(u))
                .collect(),
        }
    }

    /// Restrict to pairs whose target is in `targets`.
    pub fn filter_targets(&self, targets: &[NodeId]) -> NodePairSet {
        let set: std::collections::HashSet<NodeId> = targets.iter().copied().collect();
        NodePairSet {
            pairs: self
                .pairs
                .iter()
                .copied()
                .filter(|(_, v)| set.contains(v))
                .collect(),
        }
    }
}

impl FromIterator<(NodeId, NodeId)> for NodePairSet {
    fn from_iter<T: IntoIterator<Item = (NodeId, NodeId)>>(iter: T) -> Self {
        NodePairSet::from_pairs(iter.into_iter().collect())
    }
}

/// A relation: explicit pairs plus a symbolic "identity on all nodes"
/// component. `ε` and `e*` contribute the identity; keeping it symbolic
/// avoids materializing `|V|` reflexive pairs in every star.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Relation {
    /// Explicit (non-reflexive-by-construction) pairs.
    pub pairs: NodePairSet,
    /// Whether the identity relation is included.
    pub identity: bool,
}

impl Relation {
    /// The empty relation (∅).
    pub fn empty() -> Relation {
        Relation::default()
    }

    /// The identity relation (ε).
    pub fn epsilon() -> Relation {
        Relation {
            pairs: NodePairSet::new(),
            identity: true,
        }
    }

    /// From explicit pairs.
    pub fn from_pairs(pairs: NodePairSet) -> Relation {
        Relation {
            pairs,
            identity: false,
        }
    }

    /// Union of relations.
    pub fn union(&self, other: &Relation) -> Relation {
        Relation {
            pairs: self.pairs.union(&other.pairs),
            identity: self.identity || other.identity,
        }
    }

    /// Does the relation relate `u` to `v`?
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        (self.identity && u == v) || self.pairs.contains(u, v)
    }

    /// Materialize against an explicit universe (for final answers whose
    /// endpoints are restricted to given lists anyway).
    pub fn materialize(&self, universe: &[NodeId]) -> NodePairSet {
        if !self.identity {
            return self.pairs.clone();
        }
        let mut pairs: Vec<(NodeId, NodeId)> = self.pairs.iter().collect();
        pairs.extend(universe.iter().map(|&n| (n, n)));
        NodePairSet::from_pairs(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let s = NodePairSet::from_pairs(vec![(n(2), n(1)), (n(0), n(5)), (n(2), n(1))]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.as_slice(), &[(n(0), n(5)), (n(2), n(1))]);
        assert!(s.contains(n(2), n(1)));
        assert!(!s.contains(n(1), n(2)));
    }

    #[test]
    fn union_merges() {
        let a = NodePairSet::from_pairs(vec![(n(0), n(1)), (n(2), n(3))]);
        let b = NodePairSet::from_pairs(vec![(n(0), n(1)), (n(4), n(5))]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(u.contains(n(4), n(5)));
    }

    #[test]
    fn filters() {
        let s = NodePairSet::from_pairs(vec![(n(0), n(1)), (n(2), n(3)), (n(0), n(3))]);
        assert_eq!(s.filter_sources(&[n(0)]).len(), 2);
        assert_eq!(s.filter_targets(&[n(3)]).len(), 2);
        assert_eq!(s.filter_sources(&[]).len(), 0);
    }

    #[test]
    fn relation_identity_semantics() {
        let r = Relation::epsilon();
        assert!(r.contains(n(7), n(7)));
        assert!(!r.contains(n(7), n(8)));
        let m = r.materialize(&[n(1), n(2)]);
        assert_eq!(m.len(), 2);
        assert!(m.contains(n(1), n(1)));
    }

    #[test]
    fn relation_union_keeps_identity() {
        let a = Relation::from_pairs(NodePairSet::from_pairs(vec![(n(0), n(1))]));
        let b = Relation::epsilon();
        let u = a.union(&b);
        assert!(u.identity);
        assert!(u.contains(n(0), n(1)));
        assert!(u.contains(n(9), n(9)));
    }
}
