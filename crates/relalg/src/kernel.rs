//! Kernel selection: pair-based vs bit-parallel operators.
//!
//! Every dispatching operator in [`crate::join`] picks a kernel per
//! call from a density heuristic, overridable for A/B measurement via
//! the `RPQ_RELALG_KERNEL` environment variable (read once) or
//! [`set_kernel_mode`] (the CLI's `--kernel` flag):
//!
//! * `bits` — always use the blocked-bitset kernel (when the universe
//!   fits the memory guard);
//! * `pairs` — always use the sorted-pair/hash kernel;
//! * `auto` — the default density-based choice.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel family executes a relational operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Sorted `Vec<(NodeId, NodeId)>` + hash joins (the seed kernel).
    Pairs,
    /// CSR adjacency + blocked `u64` bitset rows.
    Bits,
}

/// Kernel override mode, settable per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelMode {
    /// Density-based per-operator choice (default).
    Auto,
    /// Force the pair kernel everywhere.
    ForcePairs,
    /// Force the bit kernel wherever the memory guard allows.
    ForceBits,
}

impl KernelMode {
    /// Parse a mode name (`auto` / `pairs` / `bits`), as accepted by
    /// both the env var and the CLI flag.
    pub fn from_name(name: &str) -> Option<KernelMode> {
        match name {
            "auto" => Some(KernelMode::Auto),
            "pairs" => Some(KernelMode::ForcePairs),
            "bits" => Some(KernelMode::ForceBits),
            _ => None,
        }
    }

    /// The canonical name (inverse of [`KernelMode::from_name`]).
    pub fn name(self) -> &'static str {
        match self {
            KernelMode::Auto => "auto",
            KernelMode::ForcePairs => "pairs",
            KernelMode::ForceBits => "bits",
        }
    }

    /// Validate a raw `RPQ_RELALG_KERNEL` environment value.
    ///
    /// Unset is handled by the caller; an empty (or all-whitespace)
    /// value means "no preference" and resolves to `auto`. Anything
    /// else must be a recognized mode name — unrecognized values
    /// return an error naming the valid choices instead of being
    /// silently coerced (the env reader warns and falls back to
    /// `auto`; CLIs can surface the message as a hard error).
    pub fn from_env_value(raw: &str) -> Result<KernelMode, String> {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Ok(KernelMode::Auto);
        }
        KernelMode::from_name(trimmed).ok_or_else(|| {
            format!(
                "unrecognized RPQ_RELALG_KERNEL value {trimmed:?}: \
                 valid values are auto, bits, pairs"
            )
        })
    }
}

/// Universes larger than this never use the bit kernel: three `n × n/64`
/// matrices (seen, delta, base) at `n = 2¹⁶` would already cost 1.5 GiB.
pub const MAX_BITS_NODES: usize = 1 << 14;

/// Modeled cost of one hashed pair operation (insert/probe) relative to
/// one `u64` word operation — hashing, branching and cache misses make
/// a pair touch an order of magnitude dearer than a word OR.
pub const HASH_OP_COST: f64 = 12.0;

/// Modeled cost of touching one `u64` word in the bit kernel.
pub const WORD_OP_COST: f64 = 1.0;

const MODE_UNSET: u8 = 0;
const MODE_AUTO: u8 = 1;
const MODE_PAIRS: u8 = 2;
const MODE_BITS: u8 = 3;

/// Process-wide mode: runtime override wins, else the env var, else auto.
static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn mode_from_env() -> KernelMode {
    match std::env::var("RPQ_RELALG_KERNEL") {
        Err(_) => KernelMode::Auto,
        Ok(raw) => KernelMode::from_env_value(&raw).unwrap_or_else(|message| {
            // The first kernel dispatch is a poor place to abort the
            // process, so warn once (the mode is cached after this
            // read) and run with the default dispatch.
            eprintln!("warning: {message}; falling back to `auto`");
            KernelMode::Auto
        }),
    }
}

/// The kernel mode in force for this process.
pub fn kernel_mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        MODE_AUTO => KernelMode::Auto,
        MODE_PAIRS => KernelMode::ForcePairs,
        MODE_BITS => KernelMode::ForceBits,
        _ => {
            let mode = mode_from_env();
            set_kernel_mode(mode);
            mode
        }
    }
}

/// Override the kernel mode (the CLI `--kernel` flag; also used by the
/// A/B bench harness).
pub fn set_kernel_mode(mode: KernelMode) {
    let raw = match mode {
        KernelMode::Auto => MODE_AUTO,
        KernelMode::ForcePairs => MODE_PAIRS,
        KernelMode::ForceBits => MODE_BITS,
    };
    MODE.store(raw, Ordering::Relaxed);
}

/// Can the bit kernel represent an `n_nodes` universe at all?
#[inline]
pub fn bits_representable(n_nodes: usize) -> bool {
    n_nodes > 0 && n_nodes <= MAX_BITS_NODES
}

fn resolve(auto_choice: Kernel, n_nodes: usize) -> Kernel {
    if !bits_representable(n_nodes) {
        return Kernel::Pairs;
    }
    match kernel_mode() {
        KernelMode::Auto => auto_choice,
        KernelMode::ForcePairs => Kernel::Pairs,
        KernelMode::ForceBits => Kernel::Bits,
    }
}

/// Kernel choice for a composition `A ∘ B` over `n_nodes` nodes.
///
/// Bit cost: every pair of `A` ORs one row (`⌈n/64⌉` words) plus the
/// pair↔bit conversions (≈ 3 row-scans). Pair cost: hash-index `B`,
/// probe per pair of `A`, materialize and sort the estimated output
/// `|A|·|B|/n`. The crossover makes tiny sparse joins stay on pairs
/// while anything dense enough to matter runs word-parallel.
pub fn choose_compose(n_nodes: usize, a_len: usize, b_len: usize) -> Kernel {
    let n = n_nodes as f64;
    let wpr = (n_nodes.div_ceil(64)) as f64;
    let est_out = if n_nodes == 0 {
        0.0
    } else {
        (a_len as f64) * (b_len as f64) / n
    };
    let bits_cost = WORD_OP_COST * wpr * (a_len as f64 + 3.0 * n);
    let pairs_cost =
        HASH_OP_COST * (a_len as f64 + b_len as f64 + est_out) + est_out * est_out.max(2.0).log2();
    let auto = if bits_cost < pairs_cost {
        Kernel::Bits
    } else {
        Kernel::Pairs
    };
    resolve(auto, n_nodes)
}

/// Kernel choice for a transitive closure over `n_nodes` nodes.
///
/// Each closure pair costs one hashed insert (plus successor pushes) in
/// the pair kernel versus one `⌈n/64⌉`-word row OR in the bit kernel —
/// but the bit kernel's ORs discover up to 64 pairs at once and never
/// re-sort, so whenever the closure is big enough to amortize the
/// `n × ⌈n/64⌉` matrix allocations the bit kernel wins (measured well
/// below 512 nodes on non-trivial bases; see `BENCH_relalg.json`).
/// The guard below keeps near-empty closures on huge universes — where
/// the pair fixpoint finishes in microseconds — off the dense path.
pub fn choose_closure(n_nodes: usize, base_len: usize) -> Kernel {
    // Closure-size estimate matching `rpq-core`'s cost model: √n
    // expansion, capped at all pairs.
    let n = n_nodes as f64;
    let est_closure = ((base_len as f64) * n.max(1.0).sqrt()).min(n * n);
    let auto = if base_len >= 2 && est_closure * 4.0 >= n {
        Kernel::Bits
    } else {
        // 0/1-pair bases terminate immediately, and closures expected
        // to stay below ~n/4 pairs never amortize the matrix zeroing.
        Kernel::Pairs
    };
    resolve(auto, n_nodes)
}

/// Kernel choice for an endpoint selection `R ↾ l1 × l2` over
/// `n_nodes` nodes.
///
/// Pair cost: one merge over the relation plus a binary-search target
/// probe per source-matched pair. Bit cost: convert the relation to
/// blocked rows (`n·⌈n/64⌉` words zeroed + one set per pair), build the
/// target mask, then AND `⌈n/64⌉` words per selected source. The bit
/// path only amortizes its matrix when the relation is dense and the
/// source list broad — exactly the `all_pairs` finale over a closure.
pub fn choose_select(n_nodes: usize, rel_len: usize, n_sources: usize, n_targets: usize) -> Kernel {
    let n = n_nodes as f64;
    let wpr = (n_nodes.div_ceil(64)) as f64;
    // Source-matched pairs ≈ rel_len · |l1|/n, each paying a log|l2|
    // probe; hashing-free, but branchy and cache-hostile.
    let matched = if n_nodes == 0 {
        0.0
    } else {
        (rel_len as f64) * (n_sources as f64).min(n) / n
    };
    let pairs_cost =
        HASH_OP_COST * 0.5 * (rel_len as f64 + matched * (n_targets.max(2) as f64).log2());
    let bits_cost = WORD_OP_COST * ((n + n_sources as f64) * wpr + rel_len as f64);
    let auto = if bits_cost < pairs_cost {
        Kernel::Bits
    } else {
        Kernel::Pairs
    };
    resolve(auto, n_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for mode in [
            KernelMode::Auto,
            KernelMode::ForcePairs,
            KernelMode::ForceBits,
        ] {
            assert_eq!(KernelMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(KernelMode::from_name("fastest"), None);
    }

    #[test]
    fn env_values_are_validated() {
        // Valid names (whitespace-tolerant) parse to their mode.
        assert_eq!(
            KernelMode::from_env_value("bits"),
            Ok(KernelMode::ForceBits)
        );
        assert_eq!(
            KernelMode::from_env_value("  pairs\n"),
            Ok(KernelMode::ForcePairs)
        );
        assert_eq!(KernelMode::from_env_value("auto"), Ok(KernelMode::Auto));
        // Empty / whitespace means "no preference".
        assert_eq!(KernelMode::from_env_value(""), Ok(KernelMode::Auto));
        assert_eq!(KernelMode::from_env_value("   "), Ok(KernelMode::Auto));
        // Anything else is an explicit error naming the valid values —
        // never a silent coercion.
        for bad in ["quantum", "BITS", "bits,pairs", "1"] {
            let err = KernelMode::from_env_value(bad).unwrap_err();
            assert!(err.contains("RPQ_RELALG_KERNEL"), "{err}");
            assert!(
                err.contains("auto") && err.contains("bits") && err.contains("pairs"),
                "error must name the valid values: {err}"
            );
            assert!(err.contains(bad.trim()), "{err}");
        }
    }

    #[test]
    fn overrides_and_guards() {
        // Single test mutating the process-wide mode (avoids races with
        // parallel tests in this binary).
        let before = kernel_mode();

        set_kernel_mode(KernelMode::ForcePairs);
        assert_eq!(choose_closure(1024, 5000), Kernel::Pairs);
        assert_eq!(choose_compose(1024, 5000, 5000), Kernel::Pairs);

        set_kernel_mode(KernelMode::ForceBits);
        assert_eq!(choose_closure(1024, 5000), Kernel::Bits);
        assert_eq!(choose_compose(1024, 2, 2), Kernel::Bits);
        // The memory guard beats the override.
        assert_eq!(choose_closure(MAX_BITS_NODES + 1, 5000), Kernel::Pairs);

        set_kernel_mode(KernelMode::Auto);
        // Dense closures go word-parallel; trivial bases stay on pairs,
        // as do near-empty closures on huge universes (the matrix
        // allocation would dominate).
        assert_eq!(choose_closure(1024, 5000), Kernel::Bits);
        assert_eq!(choose_closure(1024, 1), Kernel::Pairs);
        assert_eq!(choose_closure(10_000, 2), Kernel::Pairs);
        assert_eq!(choose_closure(10_000, 5000), Kernel::Bits);
        // Tiny sparse joins on big universes stay on pairs; dense ones
        // flip to bits.
        assert_eq!(choose_compose(10_000, 3, 3), Kernel::Pairs);
        assert_eq!(choose_compose(512, 4000, 4000), Kernel::Bits);
        // Selections: a dense closure selected over broad lists goes
        // word-parallel; a sparse relation or narrow lists stay on
        // pairs (the matrix conversion would dominate).
        assert_eq!(choose_select(512, 100_000, 512, 512), Kernel::Bits);
        assert_eq!(choose_select(512, 40, 512, 512), Kernel::Pairs);
        assert_eq!(choose_select(10_000, 500, 2, 2), Kernel::Pairs);

        set_kernel_mode(before);
    }
}
