//! Kernel selection: pair-based vs bit-parallel operators.
//!
//! Every dispatching operator in [`crate::join`] picks a kernel per
//! call from a density heuristic, overridable for A/B measurement via
//! the `RPQ_RELALG_KERNEL` environment variable (read once) or
//! [`set_kernel_mode`] (the CLI's `--kernel` flag):
//!
//! * `bits` — always use the blocked-bitset kernel (when the universe
//!   fits the memory guard);
//! * `pairs` — always use the sorted-pair/hash kernel;
//! * `scc` — force the condensation closure (Tarjan + one
//!   reverse-topological bit pass, [`crate::scc`]) for every transitive
//!   closure; non-closure operators keep the density choice (SCC is a
//!   closure strategy, not a join kernel);
//! * `auto` — the default density-based choice.
//!
//! Every *dispatched* transitive closure also bumps a pair of
//! closure-algorithm counters — process-wide totals for service stats
//! and a thread-local view the session snapshots into `EvalMeta` — so
//! A/B runs can see which algorithm actually executed, not just which
//! mode was requested.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Which kernel family executes a relational operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Sorted `Vec<(NodeId, NodeId)>` + hash joins (the seed kernel).
    Pairs,
    /// CSR adjacency + blocked `u64` bitset rows.
    Bits,
    /// Tarjan condensation + reverse-topological bit pass — closure
    /// operators only (see [`crate::scc`]).
    Scc,
}

/// Kernel override mode, settable per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelMode {
    /// Density-based per-operator choice (default).
    Auto,
    /// Force the pair kernel everywhere.
    ForcePairs,
    /// Force the bit kernel wherever the memory guard allows.
    ForceBits,
    /// Force the condensation closure wherever the memory guard allows;
    /// joins and selections keep the density-based choice.
    ForceScc,
}

impl KernelMode {
    /// Parse a mode name (`auto` / `pairs` / `bits` / `scc`), as
    /// accepted by both the env var and the CLI flag.
    pub fn from_name(name: &str) -> Option<KernelMode> {
        match name {
            "auto" => Some(KernelMode::Auto),
            "pairs" => Some(KernelMode::ForcePairs),
            "bits" => Some(KernelMode::ForceBits),
            "scc" => Some(KernelMode::ForceScc),
            _ => None,
        }
    }

    /// The canonical name (inverse of [`KernelMode::from_name`]).
    pub fn name(self) -> &'static str {
        match self {
            KernelMode::Auto => "auto",
            KernelMode::ForcePairs => "pairs",
            KernelMode::ForceBits => "bits",
            KernelMode::ForceScc => "scc",
        }
    }

    /// Validate a raw `RPQ_RELALG_KERNEL` environment value.
    ///
    /// Unset is handled by the caller; an empty (or all-whitespace)
    /// value means "no preference" and resolves to `auto`. Anything
    /// else must be a recognized mode name — unrecognized values
    /// return an error naming the valid choices instead of being
    /// silently coerced (the env reader warns and falls back to
    /// `auto`; CLIs can surface the message as a hard error).
    pub fn from_env_value(raw: &str) -> Result<KernelMode, String> {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Ok(KernelMode::Auto);
        }
        KernelMode::from_name(trimmed).ok_or_else(|| {
            format!(
                "unrecognized RPQ_RELALG_KERNEL value {trimmed:?}: \
                 valid values are auto, bits, pairs, scc"
            )
        })
    }
}

/// Universes larger than this never use the bit kernel: three `n × n/64`
/// matrices (seen, delta, base) at `n = 2¹⁶` would already cost 1.5 GiB.
pub const MAX_BITS_NODES: usize = 1 << 14;

/// Modeled cost of one hashed pair operation (insert/probe) relative to
/// one `u64` word operation — hashing, branching and cache misses make
/// a pair touch an order of magnitude dearer than a word OR.
pub const HASH_OP_COST: f64 = 12.0;

/// Modeled cost of touching one `u64` word in the bit kernel.
pub const WORD_OP_COST: f64 = 1.0;

const MODE_UNSET: u8 = 0;
const MODE_AUTO: u8 = 1;
const MODE_PAIRS: u8 = 2;
const MODE_BITS: u8 = 3;
const MODE_SCC: u8 = 4;

/// Process-wide mode: runtime override wins, else the env var, else auto.
static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn mode_from_env() -> KernelMode {
    match std::env::var("RPQ_RELALG_KERNEL") {
        Err(_) => KernelMode::Auto,
        Ok(raw) => KernelMode::from_env_value(&raw).unwrap_or_else(|message| {
            warn_config_fallback(&message, "auto");
            KernelMode::Auto
        }),
    }
}

// Configuration warnings (currently: rejected RPQ_RELALG_KERNEL
// values). A counter plus the most recent message, queryable by the
// service stats path so misconfiguration is visible in a scrape, not
// just in a long-gone stderr line.
static CONFIG_WARNINGS: AtomicU64 = AtomicU64::new(0);
static LAST_CONFIG_WARNING: Mutex<Option<String>> = Mutex::new(None);

/// Record one rejected configuration value: bump the process-wide
/// warning counter and remember the message for stats/metrics
/// snapshots. Public because other crates with env-tunable knobs
/// (`RPQ_EVAL_STRATEGY` in `rpq-core`) funnel their fallback warnings
/// through the same counter, so one `config_warnings` figure covers
/// every knob.
pub fn record_config_warning(message: &str) {
    CONFIG_WARNINGS.fetch_add(1, Ordering::Relaxed);
    *LAST_CONFIG_WARNING.lock().expect("warning slot poisoned") = Some(message.to_owned());
}

/// The one warn-and-fallback path for every env-tunable knob
/// (`RPQ_RELALG_KERNEL`, `RPQ_RELALG_ROWOPS`, `RPQ_EVAL_STRATEGY`):
/// record the rejected value for stats/metrics snapshots *and* print
/// the transient stderr line. The first dispatch that reads a knob is
/// a poor place to abort the process, so callers fall back to
/// `fallback` after this — stderr scrolls away, but the counter and
/// last-warning text stay queryable in a scrape.
pub fn warn_config_fallback(message: &str, fallback: &str) {
    record_config_warning(message);
    eprintln!("warning: {message}; falling back to `{fallback}`");
}

/// How many configuration warnings this process has emitted
/// (monotonic).
pub fn config_warnings() -> u64 {
    CONFIG_WARNINGS.load(Ordering::Relaxed)
}

/// The most recent configuration warning message, if any.
pub fn last_config_warning() -> Option<String> {
    LAST_CONFIG_WARNING
        .lock()
        .expect("warning slot poisoned")
        .clone()
}

/// The kernel mode in force for this process.
pub fn kernel_mode() -> KernelMode {
    match MODE.load(Ordering::Relaxed) {
        MODE_AUTO => KernelMode::Auto,
        MODE_PAIRS => KernelMode::ForcePairs,
        MODE_BITS => KernelMode::ForceBits,
        MODE_SCC => KernelMode::ForceScc,
        _ => {
            let mode = mode_from_env();
            set_kernel_mode(mode);
            mode
        }
    }
}

/// Override the kernel mode (the CLI `--kernel` flag; also used by the
/// A/B bench harness).
pub fn set_kernel_mode(mode: KernelMode) {
    let raw = match mode {
        KernelMode::Auto => MODE_AUTO,
        KernelMode::ForcePairs => MODE_PAIRS,
        KernelMode::ForceBits => MODE_BITS,
        KernelMode::ForceScc => MODE_SCC,
    };
    MODE.store(raw, Ordering::Relaxed);
}

/// Can the bit kernel represent an `n_nodes` universe at all?
#[inline]
pub fn bits_representable(n_nodes: usize) -> bool {
    n_nodes > 0 && n_nodes <= MAX_BITS_NODES
}

/// How many dispatched transitive closures each algorithm executed —
/// requested modes are intent, these are fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ClosureCounts {
    /// Closures run by the hashed semi-naive pair fixpoint.
    pub pairs: u64,
    /// Closures run by the blocked-bitset semi-naive fixpoint.
    pub bits: u64,
    /// Closures run by the Tarjan condensation pass.
    pub scc: u64,
}

impl ClosureCounts {
    /// The movement since an `earlier` snapshot.
    pub fn since(self, earlier: ClosureCounts) -> ClosureCounts {
        ClosureCounts {
            pairs: self.pairs - earlier.pairs,
            bits: self.bits - earlier.bits,
            scc: self.scc - earlier.scc,
        }
    }

    /// Total dispatched closures.
    pub fn total(self) -> u64 {
        self.pairs + self.bits + self.scc
    }

    /// Compact `pairs:1 bits:0 scc:2`-style rendering for CLIs and
    /// stats lines.
    pub fn summary(self) -> String {
        format!("pairs:{} bits:{} scc:{}", self.pairs, self.bits, self.scc)
    }
}

// Process-wide closure totals (service stats) and a thread-local view
// (per-evaluation deltas in `EvalMeta` — an evaluation runs on one
// thread, so the thread-local delta is exact even under concurrency).
static CLOSURES_PAIRS: AtomicU64 = AtomicU64::new(0);
static CLOSURES_BITS: AtomicU64 = AtomicU64::new(0);
static CLOSURES_SCC: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_CLOSURES: Cell<ClosureCounts> = const { Cell::new(ClosureCounts {
        pairs: 0,
        bits: 0,
        scc: 0,
    }) };
}

/// Record one dispatched transitive closure (called by the `join`
/// entry points, not by direct kernel calls — referees and benches
/// timing a specific kernel don't pollute the counters).
pub(crate) fn record_closure(kernel: Kernel) {
    match kernel {
        Kernel::Pairs => &CLOSURES_PAIRS,
        Kernel::Bits => &CLOSURES_BITS,
        Kernel::Scc => &CLOSURES_SCC,
    }
    .fetch_add(1, Ordering::Relaxed);
    THREAD_CLOSURES.with(|c| {
        let mut counts = c.get();
        match kernel {
            Kernel::Pairs => counts.pairs += 1,
            Kernel::Bits => counts.bits += 1,
            Kernel::Scc => counts.scc += 1,
        }
        c.set(counts);
    });
}

/// Process-wide closure-algorithm totals (monotonic).
pub fn closure_counts() -> ClosureCounts {
    ClosureCounts {
        pairs: CLOSURES_PAIRS.load(Ordering::Relaxed),
        bits: CLOSURES_BITS.load(Ordering::Relaxed),
        scc: CLOSURES_SCC.load(Ordering::Relaxed),
    }
}

/// This thread's closure-algorithm totals (monotonic); snapshot before
/// and after an evaluation for an exact per-evaluation delta.
pub fn thread_closure_counts() -> ClosureCounts {
    THREAD_CLOSURES.with(Cell::get)
}

/// How many SCC-kernel closures ran a fresh Tarjan walk versus reused
/// an already-computed component DAG (see
/// [`crate::scc::CondensationCache`]) — the ROADMAP's "condense once
/// per evaluation, not once per closure operator" ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CondensationCounts {
    /// Condensations computed by a fresh Tarjan walk.
    pub computed: u64,
    /// Closures that reused a cached condensation instead.
    pub reused: u64,
}

impl CondensationCounts {
    /// The movement since an `earlier` snapshot.
    pub fn since(self, earlier: CondensationCounts) -> CondensationCounts {
        CondensationCounts {
            computed: self.computed - earlier.computed,
            reused: self.reused - earlier.reused,
        }
    }

    /// Total cache interactions (computed + reused).
    pub fn total(self) -> u64 {
        self.computed + self.reused
    }
}

static CONDENSATIONS_COMPUTED: AtomicU64 = AtomicU64::new(0);
static CONDENSATIONS_REUSED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_CONDENSATIONS: Cell<CondensationCounts> = const {
        Cell::new(CondensationCounts {
            computed: 0,
            reused: 0,
        })
    };
}

/// Record one condensation-cache interaction (called by
/// [`crate::scc::CondensationCache`]; direct `Condensation::of` calls —
/// referees, benches timing Tarjan itself — don't pollute the ledger).
pub(crate) fn record_condensation(reused: bool) {
    if reused {
        &CONDENSATIONS_REUSED
    } else {
        &CONDENSATIONS_COMPUTED
    }
    .fetch_add(1, Ordering::Relaxed);
    THREAD_CONDENSATIONS.with(|c| {
        let mut counts = c.get();
        if reused {
            counts.reused += 1;
        } else {
            counts.computed += 1;
        }
        c.set(counts);
    });
}

/// Process-wide condensation-cache totals (monotonic).
pub fn condensation_counts() -> CondensationCounts {
    CondensationCounts {
        computed: CONDENSATIONS_COMPUTED.load(Ordering::Relaxed),
        reused: CONDENSATIONS_REUSED.load(Ordering::Relaxed),
    }
}

/// This thread's condensation-cache totals (monotonic); snapshot before
/// and after an evaluation for an exact per-evaluation delta.
pub fn thread_condensation_counts() -> CondensationCounts {
    THREAD_CONDENSATIONS.with(Cell::get)
}

fn resolve(auto_choice: Kernel, n_nodes: usize) -> Kernel {
    if !bits_representable(n_nodes) {
        return Kernel::Pairs;
    }
    match kernel_mode() {
        // SCC is a closure strategy only: joins and selections under
        // `scc` keep the density-based choice (closure dispatch handles
        // ForceScc before reaching here).
        KernelMode::Auto | KernelMode::ForceScc => auto_choice,
        KernelMode::ForcePairs => Kernel::Pairs,
        KernelMode::ForceBits => Kernel::Bits,
    }
}

/// Kernel choice for a composition `A ∘ B` over `n_nodes` nodes.
///
/// Bit cost: every pair of `A` ORs one row (`⌈n/64⌉` words) plus the
/// pair↔bit conversions (≈ 3 row-scans). Pair cost: hash-index `B`,
/// probe per pair of `A`, materialize and sort the estimated output
/// `|A|·|B|/n`. The crossover makes tiny sparse joins stay on pairs
/// while anything dense enough to matter runs word-parallel.
pub fn choose_compose(n_nodes: usize, a_len: usize, b_len: usize) -> Kernel {
    let n = n_nodes as f64;
    let wpr = (n_nodes.div_ceil(64)) as f64;
    let est_out = if n_nodes == 0 {
        0.0
    } else {
        (a_len as f64) * (b_len as f64) / n
    };
    let bits_cost = WORD_OP_COST * wpr * (a_len as f64 + 3.0 * n);
    let pairs_cost =
        HASH_OP_COST * (a_len as f64 + b_len as f64 + est_out) + est_out * est_out.max(2.0).log2();
    let auto = if bits_cost < pairs_cost {
        Kernel::Bits
    } else {
        Kernel::Pairs
    };
    resolve(auto, n_nodes)
}

/// Base relations at most this many times denser than their universe
/// (`|R| ≤ factor · n`) take the condensation closure under `auto`.
///
/// Measured on the `repro -- relalg` sweep (see `BENCH_relalg.json`):
/// the condensation pass does `O((E_cond + n) · n/64)` word work versus
/// the semi-naive kernel's `O(|TC| · n/64)`, and since distinct
/// condensation edges never exceed the base (`E_cond ≤ |E| ≤ |TC|`) it
/// won every measured shape — deep chains 2.3–16× over the bit kernel,
/// cyclic cores 2.7–15×, layered DAGs 1.2–2.7×, and still 1.4–2.2× on
/// dense *acyclic* DAGs (fanout 8–32) and ~1.5× on random graphs up to
/// 64 edges/node, where the giant SCC collapses to one row. The cutoff
/// guards only the unmeasured ultra-dense tail (beyond 64 edges/node),
/// where closure ≈ base and Tarjan's pointer-chasing could tip the
/// constant factors back toward the branch-free semi-naive loops.
pub const SCC_DENSITY_FACTOR: usize = 64;

/// Kernel choice for a transitive closure over `n_nodes` nodes.
///
/// Each closure pair costs one hashed insert (plus successor pushes) in
/// the pair kernel versus one `⌈n/64⌉`-word row OR in the bit kernel —
/// but the bit kernel's ORs discover up to 64 pairs at once and never
/// re-sort, so whenever the closure is big enough to amortize the
/// `n × ⌈n/64⌉` matrix allocations the dense kernels win (measured well
/// below 512 nodes on non-trivial bases; see `BENCH_relalg.json`).
/// The guard below keeps near-empty closures on huge universes — where
/// the pair fixpoint finishes in microseconds — off the dense path.
/// Among the dense kernels, sparse-or-deep bases (at most
/// [`SCC_DENSITY_FACTOR`] edges per node) take the condensation pass,
/// whose word work scales with the *base* rather than the closure.
pub fn choose_closure(n_nodes: usize, base_len: usize) -> Kernel {
    if kernel_mode() == KernelMode::ForceScc && bits_representable(n_nodes) && base_len >= 2 {
        return Kernel::Scc;
    }
    // Closure-size estimate matching `rpq-core`'s cost model: √n
    // expansion, capped at all pairs.
    let n = n_nodes as f64;
    let est_closure = ((base_len as f64) * n.max(1.0).sqrt()).min(n * n);
    let auto = if base_len >= 2 && est_closure * 4.0 >= n {
        if base_len <= SCC_DENSITY_FACTOR * n_nodes {
            Kernel::Scc
        } else {
            Kernel::Bits
        }
    } else {
        // 0/1-pair bases terminate immediately, and closures expected
        // to stay below ~n/4 pairs never amortize the matrix zeroing.
        Kernel::Pairs
    };
    resolve(auto, n_nodes)
}

/// Kernel choice for an endpoint selection `R ↾ l1 × l2` over
/// `n_nodes` nodes.
///
/// Pair cost: one merge over the relation plus a binary-search target
/// probe per source-matched pair. Bit cost: convert the relation to
/// blocked rows (`n·⌈n/64⌉` words zeroed + one set per pair), build the
/// target mask, then AND `⌈n/64⌉` words per selected source. The bit
/// path only amortizes its matrix when the relation is dense and the
/// source list broad — exactly the `all_pairs` finale over a closure.
pub fn choose_select(n_nodes: usize, rel_len: usize, n_sources: usize, n_targets: usize) -> Kernel {
    let n = n_nodes as f64;
    let wpr = (n_nodes.div_ceil(64)) as f64;
    // Source-matched pairs ≈ rel_len · |l1|/n, each paying a log|l2|
    // probe; hashing-free, but branchy and cache-hostile.
    let matched = if n_nodes == 0 {
        0.0
    } else {
        (rel_len as f64) * (n_sources as f64).min(n) / n
    };
    let pairs_cost =
        HASH_OP_COST * 0.5 * (rel_len as f64 + matched * (n_targets.max(2) as f64).log2());
    let bits_cost = WORD_OP_COST * ((n + n_sources as f64) * wpr + rel_len as f64);
    let auto = if bits_cost < pairs_cost {
        Kernel::Bits
    } else {
        Kernel::Pairs
    };
    resolve(auto, n_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for mode in [
            KernelMode::Auto,
            KernelMode::ForcePairs,
            KernelMode::ForceBits,
            KernelMode::ForceScc,
        ] {
            assert_eq!(KernelMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(KernelMode::from_name("fastest"), None);
    }

    #[test]
    fn closure_counters_accumulate_per_thread_and_globally() {
        let thread_before = thread_closure_counts();
        let global_before = closure_counts();
        record_closure(Kernel::Scc);
        record_closure(Kernel::Scc);
        record_closure(Kernel::Pairs);
        let t = thread_closure_counts().since(thread_before);
        assert_eq!(
            t,
            ClosureCounts {
                pairs: 1,
                bits: 0,
                scc: 2
            }
        );
        assert_eq!(t.total(), 3);
        assert_eq!(t.summary(), "pairs:1 bits:0 scc:2");
        // Globals move at least as much (other test threads may add).
        let g = closure_counts().since(global_before);
        assert!(g.pairs >= 1 && g.scc >= 2, "{g:?}");
        // A fresh thread starts from zero.
        let spawned = std::thread::spawn(|| {
            let before = thread_closure_counts();
            assert_eq!(before, ClosureCounts::default());
            record_closure(Kernel::Bits);
            thread_closure_counts().since(before)
        })
        .join()
        .expect("thread");
        assert_eq!(spawned.bits, 1);
        // ... without touching this thread's view.
        assert_eq!(thread_closure_counts().since(thread_before), t);
    }

    #[test]
    fn config_warnings_are_counted_with_last_text() {
        let before = config_warnings();
        record_config_warning("first bad value");
        record_config_warning("second bad value");
        assert_eq!(config_warnings() - before, 2);
        assert_eq!(last_config_warning().as_deref(), Some("second bad value"));
    }

    #[test]
    fn env_values_are_validated() {
        // Valid names (whitespace-tolerant) parse to their mode.
        assert_eq!(
            KernelMode::from_env_value("bits"),
            Ok(KernelMode::ForceBits)
        );
        assert_eq!(
            KernelMode::from_env_value("  pairs\n"),
            Ok(KernelMode::ForcePairs)
        );
        assert_eq!(KernelMode::from_env_value("auto"), Ok(KernelMode::Auto));
        // Empty / whitespace means "no preference".
        assert_eq!(KernelMode::from_env_value(""), Ok(KernelMode::Auto));
        assert_eq!(KernelMode::from_env_value("   "), Ok(KernelMode::Auto));
        // Anything else is an explicit error naming the valid values —
        // never a silent coercion.
        assert_eq!(KernelMode::from_env_value("scc"), Ok(KernelMode::ForceScc));
        for bad in ["quantum", "BITS", "bits,pairs", "1"] {
            let err = KernelMode::from_env_value(bad).unwrap_err();
            assert!(err.contains("RPQ_RELALG_KERNEL"), "{err}");
            assert!(
                err.contains("auto")
                    && err.contains("bits")
                    && err.contains("pairs")
                    && err.contains("scc"),
                "error must name the valid values: {err}"
            );
            assert!(err.contains(bad.trim()), "{err}");
        }
    }

    #[test]
    fn overrides_and_guards() {
        // Single test mutating the process-wide mode (avoids races with
        // parallel tests in this binary).
        let before = kernel_mode();

        set_kernel_mode(KernelMode::ForcePairs);
        assert_eq!(choose_closure(1024, 5000), Kernel::Pairs);
        assert_eq!(choose_compose(1024, 5000, 5000), Kernel::Pairs);

        set_kernel_mode(KernelMode::ForceBits);
        assert_eq!(choose_closure(1024, 5000), Kernel::Bits);
        assert_eq!(choose_compose(1024, 2, 2), Kernel::Bits);
        // The memory guard beats the override.
        assert_eq!(choose_closure(MAX_BITS_NODES + 1, 5000), Kernel::Pairs);

        set_kernel_mode(KernelMode::ForceScc);
        assert_eq!(choose_closure(1024, 5000), Kernel::Scc);
        // ... even past the auto density cutoff.
        assert_eq!(
            choose_closure(1024, SCC_DENSITY_FACTOR * 1024 + 1),
            Kernel::Scc
        );
        // Trivial bases and over-guard universes still bail to pairs.
        assert_eq!(choose_closure(1024, 1), Kernel::Pairs);
        assert_eq!(choose_closure(MAX_BITS_NODES + 1, 5000), Kernel::Pairs);
        // Non-closure operators keep the density choice under `scc`.
        assert_eq!(choose_compose(10_000, 3, 3), Kernel::Pairs);
        assert_eq!(choose_compose(512, 4000, 4000), Kernel::Bits);

        set_kernel_mode(KernelMode::Auto);
        // Dense-enough closures leave the pair kernel; among the dense
        // strategies, sparse/deep bases condense and only very dense
        // bases stay semi-naive. Trivial bases stay on pairs, as do
        // near-empty closures on huge universes (the matrix allocation
        // would dominate).
        assert_eq!(choose_closure(1024, 5000), Kernel::Scc);
        assert_eq!(
            choose_closure(1024, SCC_DENSITY_FACTOR * 1024 + 1),
            Kernel::Bits
        );
        assert_eq!(choose_closure(1024, 1), Kernel::Pairs);
        assert_eq!(choose_closure(10_000, 2), Kernel::Pairs);
        assert_eq!(choose_closure(10_000, 5000), Kernel::Scc);
        // Tiny sparse joins on big universes stay on pairs; dense ones
        // flip to bits.
        assert_eq!(choose_compose(10_000, 3, 3), Kernel::Pairs);
        assert_eq!(choose_compose(512, 4000, 4000), Kernel::Bits);
        // Selections: a dense closure selected over broad lists goes
        // word-parallel; a sparse relation or narrow lists stay on
        // pairs (the matrix conversion would dominate).
        assert_eq!(choose_select(512, 100_000, 512, 512), Kernel::Bits);
        assert_eq!(choose_select(512, 40, 512, 512), Kernel::Pairs);
        assert_eq!(choose_select(10_000, 500, 2, 2), Kernel::Pairs);

        set_kernel_mode(before);
    }
}
