//! Per-tag inverted edge index (baseline G3's index; Section V-A).
//!
//! "For each run, an index maps an edge tag γ ∈ Γ to a list of node pairs
//! that are connected by an edge tagged γ." The index also serves the
//! rare-label selection of baseline G2 and the selectivity estimates of
//! the cost-model extension.

use crate::relation::NodePairSet;
use rpq_grammar::Tag;
use rpq_labeling::{NodeId, Run};
use serde::{Deserialize, Serialize};

/// Inverted index from edge tags to edge endpoint pairs.
///
/// Serializable so run stores can persist it next to the run it
/// indexes and reload it warm after a restart (`rpq-store`); the
/// pair-set invariants are re-established on deserialization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagIndex {
    /// `per_tag[t]`: sorted pairs connected by a `t`-tagged edge.
    per_tag: Vec<NodePairSet>,
    /// All edges regardless of tag, built once at construction (the
    /// wildcard relation used to repeat an `O(|Γ|)` sorted-union sweep
    /// per call).
    all: NodePairSet,
    /// Node count of the indexed run — the universe bound the kernel
    /// dispatch and the CSR/bitset builders need.
    n_nodes: usize,
}

impl TagIndex {
    /// Build the index for a run over a `n_tags`-tag alphabet.
    pub fn build(run: &Run, n_tags: usize) -> TagIndex {
        let mut buckets: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); n_tags];
        let mut all: Vec<(NodeId, NodeId)> = Vec::with_capacity(run.n_edges());
        for e in run.edges() {
            buckets[e.tag.index()].push((e.src, e.dst));
            all.push((e.src, e.dst));
        }
        TagIndex {
            per_tag: buckets.into_iter().map(NodePairSet::from_pairs).collect(),
            all: NodePairSet::from_pairs(all),
            n_nodes: run.n_nodes(),
        }
    }

    /// Merge a batch of appended edges into the index in place,
    /// growing the universe to `n_nodes`. Each touched tag's pair set
    /// (and the wildcard set) is extended by a sorted linear merge, so
    /// the result is *identical* to rebuilding from the grown run —
    /// both are pure functions of the pair sets — at the cost of the
    /// batch plus the touched tags, not the whole run. Returns the tags
    /// whose pair sets actually changed (the ones whose CSR mirrors
    /// must be refreshed); duplicate edges change nothing and report
    /// nothing.
    pub fn extend(&mut self, edges: &[(Tag, NodeId, NodeId)], n_nodes: usize) -> Vec<Tag> {
        assert!(n_nodes >= self.n_nodes, "a run can only grow");
        let mut by_tag: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); self.per_tag.len()];
        let mut all_new: Vec<(NodeId, NodeId)> = Vec::with_capacity(edges.len());
        for &(t, u, v) in edges {
            debug_assert!(u.index() < n_nodes && v.index() < n_nodes);
            by_tag[t.index()].push((u, v));
            all_new.push((u, v));
        }
        let mut touched = Vec::new();
        for (t, new_pairs) in by_tag.into_iter().enumerate() {
            if new_pairs.is_empty() {
                continue;
            }
            let merged = self.per_tag[t].union(&NodePairSet::from_pairs(new_pairs));
            if merged.len() != self.per_tag[t].len() {
                touched.push(Tag(t as u32));
            }
            self.per_tag[t] = merged;
        }
        self.all = self.all.union(&NodePairSet::from_pairs(all_new));
        self.n_nodes = n_nodes;
        touched
    }

    /// Edges tagged `tag`.
    pub fn edges(&self, tag: Tag) -> &NodePairSet {
        &self.per_tag[tag.index()]
    }

    /// Number of edges tagged `tag` (selectivity statistic).
    pub fn count(&self, tag: Tag) -> usize {
        self.per_tag[tag.index()].len()
    }

    /// All edges regardless of tag (the wildcard relation), cached at
    /// build time — one pass over the run instead of `O(|Γ|)` sorted
    /// unions per call.
    pub fn all_edges(&self) -> &NodePairSet {
        &self.all
    }

    /// Node count of the indexed run.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The tag with the fewest (but non-zero) matching edges among
    /// `candidates` — G2's "rare label". Returns `None` when every
    /// candidate has zero matches (the query is trivially empty on this
    /// run).
    pub fn rarest(&self, candidates: &[Tag]) -> Option<Tag> {
        candidates
            .iter()
            .copied()
            .filter(|&t| self.count(t) > 0)
            .min_by_key(|&t| self.count(t))
    }

    /// Number of tags.
    pub fn n_tags(&self) -> usize {
        self.per_tag.len()
    }

    /// Shape checks for deserialized indexes: the tag alphabet matches,
    /// every endpoint is inside the declared universe, and the cached
    /// wildcard relation is at least as large as the largest per-tag
    /// relation (sortedness is already re-established on decode).
    /// Linear in the number of indexed pairs.
    pub fn is_well_formed(&self, n_tags: usize) -> bool {
        let in_universe = |s: &NodePairSet| {
            s.iter()
                .all(|(u, v)| u.index() < self.n_nodes && v.index() < self.n_nodes)
        };
        self.per_tag.len() == n_tags
            && in_universe(&self.all)
            && self.per_tag.iter().all(in_universe)
            && self.per_tag.iter().map(NodePairSet::len).sum::<usize>() >= self.all.len()
            && self.per_tag.iter().all(|s| s.len() <= self.all.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_grammar::SpecificationBuilder;
    use rpq_labeling::RunBuilder;

    #[test]
    fn index_counts_match_run_edges() {
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("t");
            let s = w.node("S");
            let y = w.node("t");
            w.edge_named(x, s, "fwd");
            w.edge_named(s, y, "bwd");
        });
        b.production("S", |w| {
            let x = w.node("t");
            let y = w.node("t");
            w.edge_named(x, y, "base");
        });
        b.start("S");
        let spec = b.build().unwrap();
        let run = RunBuilder::new(&spec)
            .seed(1)
            .target_edges(50)
            .build()
            .unwrap();
        let idx = TagIndex::build(&run, spec.n_tags());

        let total: usize = (0..spec.n_tags()).map(|t| idx.count(Tag(t as u32))).sum();
        assert_eq!(total, run.n_edges());
        assert_eq!(idx.all_edges().len(), run.n_edges());
        assert_eq!(idx.n_nodes(), run.n_nodes());

        // The cached wildcard relation equals the per-tag union referee.
        let mut referee = NodePairSet::new();
        for t in 0..spec.n_tags() {
            referee = referee.union(idx.edges(Tag(t as u32)));
        }
        assert_eq!(idx.all_edges(), &referee);

        // "base" appears exactly once (one base-case firing).
        let base = spec.tag_by_name("base").unwrap();
        assert_eq!(idx.count(base), 1);

        // The rarest among {fwd, base} is base.
        let fwd = spec.tag_by_name("fwd").unwrap();
        assert_eq!(idx.rarest(&[fwd, base]), Some(base));
    }

    #[test]
    fn serde_round_trip_preserves_the_index() {
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("t");
            let s = w.node("S");
            let y = w.node("t");
            w.edge_named(x, s, "fwd");
            w.edge_named(s, y, "bwd");
        });
        b.production("S", |w| {
            let x = w.node("t");
            let y = w.node("t");
            w.edge_named(x, y, "base");
        });
        b.start("S");
        let spec = b.build().unwrap();
        let run = RunBuilder::new(&spec)
            .seed(9)
            .target_edges(60)
            .build()
            .unwrap();
        let idx = TagIndex::build(&run, spec.n_tags());
        let back = <TagIndex as serde::Deserialize>::from_value(&serde::Serialize::to_value(&idx))
            .unwrap();
        assert_eq!(back, idx);
        assert!(back.is_well_formed(spec.n_tags()));
        assert!(!back.is_well_formed(spec.n_tags() + 1));
    }

    #[test]
    fn extend_merges_new_edges_and_reports_touched_tags() {
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        b.composite("S");
        b.production("S", |w| {
            let x = w.node("t");
            let s = w.node("S");
            let y = w.node("t");
            w.edge_named(x, s, "fwd");
            w.edge_named(s, y, "bwd");
        });
        b.production("S", |w| {
            let x = w.node("t");
            let y = w.node("t");
            w.edge_named(x, y, "base");
        });
        b.start("S");
        let spec = b.build().unwrap();
        let run = RunBuilder::new(&spec)
            .seed(4)
            .target_edges(40)
            .build()
            .unwrap();
        let mut idx = TagIndex::build(&run, spec.n_tags());
        let before = idx.clone();
        let fwd = spec.tag_by_name("fwd").unwrap();
        let base = spec.tag_by_name("base").unwrap();
        let n = run.n_nodes();

        // Two genuinely new edges (one to a brand-new node) plus a
        // duplicate of an existing pair.
        let existing = idx.edges(fwd).iter().next().unwrap();
        let new_edges = vec![
            (fwd, NodeId(0), NodeId(n as u32)),
            (base, NodeId(n as u32), NodeId(0)),
            (fwd, existing.0, existing.1),
        ];
        let touched = idx.extend(&new_edges, n + 1);
        assert_eq!(touched, vec![fwd, base]);
        assert_eq!(idx.n_nodes(), n + 1);
        assert_eq!(idx.edges(fwd).len(), before.edges(fwd).len() + 1);
        assert!(idx.edges(fwd).contains(NodeId(0), NodeId(n as u32)));
        assert!(idx.edges(base).contains(NodeId(n as u32), NodeId(0)));
        assert_eq!(idx.all_edges().len(), before.all_edges().len() + 2);
        assert!(idx.is_well_formed(spec.n_tags()));

        // The CSR mirror refreshed via extend() equals a full rebuild.
        let mut csr = crate::csr::CsrIndex::build(&before);
        csr.extend(&idx, &touched);
        assert_eq!(csr, crate::csr::CsrIndex::build(&idx));
        assert!(csr.is_well_formed(spec.n_tags()));

        // Re-applying only duplicates touches nothing and changes
        // nothing.
        let snapshot = idx.clone();
        assert!(idx.extend(&new_edges[2..], n + 1).is_empty());
        assert_eq!(idx, snapshot);
    }

    #[test]
    fn rarest_skips_absent_tags() {
        let mut b = SpecificationBuilder::new();
        b.atomic("t");
        b.composite("S");
        b.declare_tag("phantom");
        b.production("S", |w| {
            let x = w.node("t");
            let y = w.node("t");
            w.edge_named(x, y, "real");
        });
        b.start("S");
        let spec = b.build().unwrap();
        let run = RunBuilder::new(&spec).build().unwrap();
        let idx = TagIndex::build(&run, spec.n_tags());
        let phantom = spec.tag_by_name("phantom").unwrap();
        let real = spec.tag_by_name("real").unwrap();
        assert_eq!(idx.rarest(&[phantom]), None);
        assert_eq!(idx.rarest(&[phantom, real]), Some(real));
    }
}
