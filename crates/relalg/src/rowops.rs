//! Blocked (4×u64) row primitives: the innermost loops of the bit
//! kernel, manually unrolled.
//!
//! Every word loop in [`crate::bits`] — row ORs in compose, the
//! `new = next & !seen` writeback of the semi-naive fixpoint, the
//! accelerated `base | closure` gather of delta maintenance — funnels
//! through this module. Each primitive exists in two spellings:
//!
//! * **blocked** — the vectorization-friendly spelling: an explicit
//!   4-words-at-a-time unroll (`chunks_exact(4)` + scalar remainder)
//!   for the pure OR/AND loops, giving the backend an unambiguous
//!   256-bit unit; the fixpoint writebacks ([`claim_new`] /
//!   [`claim_new_accum`]) instead keep the straight-line zip shape and
//!   hoist the loop-carried `changed`/`grew` accumulator into one
//!   OR-reduced word (a manual unroll measurably pessimizes the
//!   backend's own, wider unroll there). No unstable features, no
//!   intrinsics.
//! * **scalar** — the straightforward one-word-at-a-time loop, kept as
//!   the differential referee (proptests pin blocked == scalar) and as
//!   an A/B baseline for the criterion sweep.
//!
//! The dispatching wrappers pick per process via `RPQ_RELALG_ROWOPS`
//! (`auto` | `blocked` | `scalar`, read once) or [`set_row_ops_mode`];
//! `auto` resolves to blocked. The mode is a measurement knob like
//! `RPQ_RELALG_KERNEL`, not a correctness switch — both paths compute
//! identical results.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which row-op implementation the bit kernel's word loops run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOpsMode {
    /// Pick for speed (currently: blocked).
    Auto,
    /// Force the 4×u64 unrolled loops.
    Blocked,
    /// Force the one-word-at-a-time referee loops.
    Scalar,
}

impl RowOpsMode {
    /// Parse a mode name (`auto` / `blocked` / `scalar`), as accepted
    /// by both the env var and the CLI flag.
    pub fn from_name(name: &str) -> Option<RowOpsMode> {
        match name {
            "auto" => Some(RowOpsMode::Auto),
            "blocked" => Some(RowOpsMode::Blocked),
            "scalar" => Some(RowOpsMode::Scalar),
            _ => None,
        }
    }

    /// The canonical name (inverse of [`RowOpsMode::from_name`]).
    pub fn name(self) -> &'static str {
        match self {
            RowOpsMode::Auto => "auto",
            RowOpsMode::Blocked => "blocked",
            RowOpsMode::Scalar => "scalar",
        }
    }

    /// Validate a raw `RPQ_RELALG_ROWOPS` environment value; same
    /// contract as `KernelMode::from_env_value` (empty means "no
    /// preference", anything unrecognized is an error naming the valid
    /// choices).
    pub fn from_env_value(raw: &str) -> Result<RowOpsMode, String> {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Ok(RowOpsMode::Auto);
        }
        RowOpsMode::from_name(trimmed).ok_or_else(|| {
            format!(
                "unrecognized RPQ_RELALG_ROWOPS value {trimmed:?}: \
                 valid values are auto, blocked, scalar"
            )
        })
    }
}

const MODE_UNSET: u8 = 0;
const MODE_AUTO: u8 = 1;
const MODE_BLOCKED: u8 = 2;
const MODE_SCALAR: u8 = 3;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn mode_from_env() -> RowOpsMode {
    match std::env::var("RPQ_RELALG_ROWOPS") {
        Err(_) => RowOpsMode::Auto,
        Ok(raw) => RowOpsMode::from_env_value(&raw).unwrap_or_else(|message| {
            crate::kernel::warn_config_fallback(&message, "auto");
            RowOpsMode::Auto
        }),
    }
}

/// The row-ops mode in force for this process.
pub fn row_ops_mode() -> RowOpsMode {
    match MODE.load(Ordering::Relaxed) {
        MODE_AUTO => RowOpsMode::Auto,
        MODE_BLOCKED => RowOpsMode::Blocked,
        MODE_SCALAR => RowOpsMode::Scalar,
        _ => {
            let mode = mode_from_env();
            set_row_ops_mode(mode);
            mode
        }
    }
}

/// Override the row-ops mode (A/B benches, the CI matrix legs).
pub fn set_row_ops_mode(mode: RowOpsMode) {
    let raw = match mode {
        RowOpsMode::Auto => MODE_AUTO,
        RowOpsMode::Blocked => MODE_BLOCKED,
        RowOpsMode::Scalar => MODE_SCALAR,
    };
    MODE.store(raw, Ordering::Relaxed);
}

#[inline]
fn blocked() -> bool {
    !matches!(row_ops_mode(), RowOpsMode::Scalar)
}

// ---------------------------------------------------------------------
// dst |= src
// ---------------------------------------------------------------------

/// `dst |= src`, word-wise. Slices must have equal length.
#[inline]
pub fn or_into(dst: &mut [u64], src: &[u64]) {
    if blocked() {
        or_into_blocked(dst, src)
    } else {
        or_into_scalar(dst, src)
    }
}

/// Scalar referee for [`or_into`].
pub fn or_into_scalar(dst: &mut [u64], src: &[u64]) {
    for (a, &b) in dst.iter_mut().zip(src) {
        *a |= b;
    }
}

/// 4×u64 blocked [`or_into`].
pub fn or_into_blocked(dst: &mut [u64], src: &[u64]) {
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (dc, sc) in (&mut d).zip(&mut s) {
        dc[0] |= sc[0];
        dc[1] |= sc[1];
        dc[2] |= sc[2];
        dc[3] |= sc[3];
    }
    for (a, &b) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *a |= b;
    }
}

// ---------------------------------------------------------------------
// dst |= src, reporting change
// ---------------------------------------------------------------------

/// `dst |= src`, returning whether any bit of `dst` flipped.
#[inline]
pub fn or_into_changed(dst: &mut [u64], src: &[u64]) -> bool {
    if blocked() {
        or_into_changed_blocked(dst, src)
    } else {
        or_into_changed_scalar(dst, src)
    }
}

/// Scalar referee for [`or_into_changed`].
pub fn or_into_changed_scalar(dst: &mut [u64], src: &[u64]) -> bool {
    let mut changed = false;
    for (a, &b) in dst.iter_mut().zip(src) {
        let next = *a | b;
        changed |= next != *a;
        *a = next;
    }
    changed
}

/// 4×u64 blocked [`or_into_changed`]. The change accumulator is a
/// single OR-reduced word, checked once at the end — no per-word branch.
pub fn or_into_changed_blocked(dst: &mut [u64], src: &[u64]) -> bool {
    let mut diff = 0u64;
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let n0 = dc[0] | sc[0];
        let n1 = dc[1] | sc[1];
        let n2 = dc[2] | sc[2];
        let n3 = dc[3] | sc[3];
        diff |= (n0 ^ dc[0]) | (n1 ^ dc[1]) | (n2 ^ dc[2]) | (n3 ^ dc[3]);
        dc[0] = n0;
        dc[1] = n1;
        dc[2] = n2;
        dc[3] = n3;
    }
    for (a, &b) in d.into_remainder().iter_mut().zip(s.remainder()) {
        let next = *a | b;
        diff |= next ^ *a;
        *a = next;
    }
    diff != 0
}

// ---------------------------------------------------------------------
// dst &= !src
// ---------------------------------------------------------------------

/// `dst &= !src`, word-wise (set difference on rows).
#[inline]
pub fn andnot_into(dst: &mut [u64], src: &[u64]) {
    if blocked() {
        andnot_into_blocked(dst, src)
    } else {
        andnot_into_scalar(dst, src)
    }
}

/// Scalar referee for [`andnot_into`].
pub fn andnot_into_scalar(dst: &mut [u64], src: &[u64]) {
    for (a, &b) in dst.iter_mut().zip(src) {
        *a &= !b;
    }
}

/// 4×u64 blocked [`andnot_into`].
pub fn andnot_into_blocked(dst: &mut [u64], src: &[u64]) {
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (dc, sc) in (&mut d).zip(&mut s) {
        dc[0] &= !sc[0];
        dc[1] &= !sc[1];
        dc[2] &= !sc[2];
        dc[3] &= !sc[3];
    }
    for (a, &b) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *a &= !b;
    }
}

// ---------------------------------------------------------------------
// dst |= a | b
// ---------------------------------------------------------------------

/// `dst |= a | b` — the accelerated gather of delta maintenance
/// (`base[w] | closure_old[w]` in one pass). All three slices must have
/// equal length.
#[inline]
pub fn or2_into(dst: &mut [u64], a: &[u64], b: &[u64]) {
    if blocked() {
        or2_into_blocked(dst, a, b)
    } else {
        or2_into_scalar(dst, a, b)
    }
}

/// Scalar referee for [`or2_into`].
pub fn or2_into_scalar(dst: &mut [u64], a: &[u64], b: &[u64]) {
    for (d, (&x, &y)) in dst.iter_mut().zip(a.iter().zip(b)) {
        *d |= x | y;
    }
}

/// 4×u64 blocked [`or2_into`].
pub fn or2_into_blocked(dst: &mut [u64], a: &[u64], b: &[u64]) {
    let mut d = dst.chunks_exact_mut(4);
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for ((dc, xs), ys) in (&mut d).zip(&mut ac).zip(&mut bc) {
        dc[0] |= xs[0] | ys[0];
        dc[1] |= xs[1] | ys[1];
        dc[2] |= xs[2] | ys[2];
        dc[3] |= xs[3] | ys[3];
    }
    for ((d, &x), &y) in d
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *d |= x | y;
    }
}

// ---------------------------------------------------------------------
// dst |= src₀ | src₁ | …  (row gather)
// ---------------------------------------------------------------------

/// OR every `src` row into `dst` (the compose/closure gather:
/// many source rows accumulated into one destination). Blocked mode
/// consumes the sources in *pairs* through [`or2_into_blocked`] — one
/// read+write pass over `dst` per two gathered rows, the row-level
/// blocking that halves destination traffic and per-row dispatch.
/// Scalar mode is the historical one-row-at-a-time referee. Both
/// spellings compute the same union (pinned by the mode-equality
/// proptests). All rows must share `dst`'s length.
pub fn or_gather_into<'a, I>(dst: &mut [u64], srcs: I)
where
    I: IntoIterator<Item = &'a [u64]>,
{
    let mut srcs = srcs.into_iter();
    if blocked() {
        while let Some(first) = srcs.next() {
            match srcs.next() {
                Some(second) => or2_into_blocked(dst, first, second),
                None => {
                    or_into_blocked(dst, first);
                    break;
                }
            }
        }
    } else {
        for src in srcs {
            or_into_scalar(dst, src);
        }
    }
}

// ---------------------------------------------------------------------
// new = next & !seen; seen |= new; delta = new  (semi-naive writeback)
// ---------------------------------------------------------------------

/// The semi-naive writeback: per word, `new = next & !seen`,
/// `seen |= new`, `delta = new` (overwriting the consumed delta row).
/// Returns whether any new bit was claimed.
#[inline]
pub fn claim_new(next: &[u64], seen: &mut [u64], delta: &mut [u64]) -> bool {
    if blocked() {
        claim_new_blocked(next, seen, delta)
    } else {
        claim_new_scalar(next, seen, delta)
    }
}

/// Scalar referee for [`claim_new`].
pub fn claim_new_scalar(next: &[u64], seen: &mut [u64], delta: &mut [u64]) -> bool {
    let mut grew = false;
    for (k, &nx) in next.iter().enumerate() {
        let new = nx & !seen[k];
        seen[k] |= new;
        delta[k] = new;
        grew |= new != 0;
    }
    grew
}

/// Blocked [`claim_new`]. Unlike the two-slice primitives, the fastest
/// spelling here is *not* a manual 4-wide unroll: three zipped streams
/// already vectorize cleanly, and hand-unrolling them pessimizes the
/// backend's own (wider) unroll. What the blocked spelling contributes
/// is the `grew` accumulator as one OR-reduced word — the scalar
/// referee's per-word `new != 0` compare is the loop-carried dependency
/// that keeps it from vectorizing.
pub fn claim_new_blocked(next: &[u64], seen: &mut [u64], delta: &mut [u64]) -> bool {
    let mut grew = 0u64;
    for ((&nx, sw), dw) in next.iter().zip(seen.iter_mut()).zip(delta.iter_mut()) {
        let new = nx & !*sw;
        *sw |= new;
        *dw = new;
        grew |= new;
    }
    grew != 0
}

// ---------------------------------------------------------------------
// new = step & !seen; seen |= new; delta |= new  (seed accumulation)
// ---------------------------------------------------------------------

/// The seeding writeback of delta maintenance: like [`claim_new`] but
/// the delta row *accumulates* (`delta |= new`) — one source row can be
/// seeded by several Δ groups before the propagation rounds consume it.
#[inline]
pub fn claim_new_accum(step: &[u64], seen: &mut [u64], delta: &mut [u64]) -> bool {
    if blocked() {
        claim_new_accum_blocked(step, seen, delta)
    } else {
        claim_new_accum_scalar(step, seen, delta)
    }
}

/// Scalar referee for [`claim_new_accum`].
pub fn claim_new_accum_scalar(step: &[u64], seen: &mut [u64], delta: &mut [u64]) -> bool {
    let mut grew = false;
    for (k, &sw) in step.iter().enumerate() {
        let new = sw & !seen[k];
        seen[k] |= new;
        delta[k] |= new;
        grew |= new != 0;
    }
    grew
}

/// Blocked [`claim_new_accum`] — same shape as [`claim_new_blocked`]:
/// straight-line triple zip, `grew` as one OR-reduced word.
pub fn claim_new_accum_blocked(step: &[u64], seen: &mut [u64], delta: &mut [u64]) -> bool {
    let mut grew = 0u64;
    for ((&sw, se), dw) in step.iter().zip(seen.iter_mut()).zip(delta.iter_mut()) {
        let new = sw & !*se;
        *se |= new;
        *dw |= new;
        grew |= new;
    }
    grew != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64, len: usize) -> Vec<u64> {
        // Deterministic splitmix64 stream — enough entropy to exercise
        // every lane of the 4-wide blocks and the remainders.
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn mode_names_round_trip() {
        for mode in [RowOpsMode::Auto, RowOpsMode::Blocked, RowOpsMode::Scalar] {
            assert_eq!(RowOpsMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(RowOpsMode::from_name("simd"), None);
        assert_eq!(RowOpsMode::from_env_value(""), Ok(RowOpsMode::Auto));
        assert_eq!(
            RowOpsMode::from_env_value(" blocked "),
            Ok(RowOpsMode::Blocked)
        );
        let err = RowOpsMode::from_env_value("avx512").unwrap_err();
        assert!(err.contains("RPQ_RELALG_ROWOPS"), "{err}");
        assert!(
            err.contains("auto") && err.contains("blocked") && err.contains("scalar"),
            "{err}"
        );
    }

    #[test]
    fn blocked_matches_scalar_on_every_length() {
        // Lengths 0..=17 cover empty, sub-block, exact-block and
        // remainder shapes.
        for len in 0..=17usize {
            let next = words(1, len);
            let src = words(2, len);
            let b2 = words(3, len);

            let mut d1 = words(4, len);
            let mut d2 = d1.clone();
            or_into_blocked(&mut d1, &src);
            or_into_scalar(&mut d2, &src);
            assert_eq!(d1, d2, "or_into len={len}");

            let mut d1 = words(5, len);
            let mut d2 = d1.clone();
            let c1 = or_into_changed_blocked(&mut d1, &src);
            let c2 = or_into_changed_scalar(&mut d2, &src);
            // Idempotent re-OR reports no change.
            let mut d3 = d2.clone();
            assert!(!or_into_changed_blocked(&mut d3, &src));
            assert_eq!((d1, c1), (d2, c2), "or_into_changed len={len}");

            let mut d1 = words(6, len);
            let mut d2 = d1.clone();
            andnot_into_blocked(&mut d1, &src);
            andnot_into_scalar(&mut d2, &src);
            assert_eq!(d1, d2, "andnot_into len={len}");

            let mut d1 = words(7, len);
            let mut d2 = d1.clone();
            or2_into_blocked(&mut d1, &src, &b2);
            or2_into_scalar(&mut d2, &src, &b2);
            assert_eq!(d1, d2, "or2_into len={len}");

            let mut seen1 = words(8, len);
            let mut seen2 = seen1.clone();
            let mut delta1 = words(9, len);
            let mut delta2 = delta1.clone();
            let g1 = claim_new_blocked(&next, &mut seen1, &mut delta1);
            let g2 = claim_new_scalar(&next, &mut seen2, &mut delta2);
            assert_eq!(
                (seen1, delta1, g1),
                (seen2, delta2, g2),
                "claim_new len={len}"
            );

            let mut seen1 = words(10, len);
            let mut seen2 = seen1.clone();
            let mut delta1 = words(11, len);
            let mut delta2 = delta1.clone();
            let g1 = claim_new_accum_blocked(&next, &mut seen1, &mut delta1);
            let g2 = claim_new_accum_scalar(&next, &mut seen2, &mut delta2);
            assert_eq!(
                (seen1, delta1, g1),
                (seen2, delta2, g2),
                "claim_new_accum len={len}"
            );
        }
    }

    #[test]
    fn claim_new_claims_exactly_the_unseen_bits() {
        let next = vec![0b1111u64; 5];
        let mut seen = vec![0b0101u64; 5];
        let mut delta = vec![u64::MAX; 5];
        assert!(claim_new(&next, &mut seen, &mut delta));
        assert_eq!(seen, vec![0b1111u64; 5]);
        // Overwrites the consumed delta row.
        assert_eq!(delta, vec![0b1010u64; 5]);
        // Nothing left to claim: delta must end all-zero.
        let mut delta2 = vec![u64::MAX; 5];
        assert!(!claim_new(&next, &mut seen, &mut delta2));
        assert_eq!(delta2, vec![0u64; 5]);
    }
}
