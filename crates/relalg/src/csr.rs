//! CSR adjacency arenas: flat, cache-friendly neighbor lists.
//!
//! A [`CsrRelation`] stores a node-pair relation as two flat arrays
//! (`offsets` + `targets`), forward and transposed — the arena layout
//! used by rustfst-style libraries for dense-id graphs. Built once per
//! `(run, tag)` and cached in the session (see [`CsrIndex`]), it feeds
//! the bit-parallel kernel of [`crate::bits`]: sparse neighbor
//! iteration on one side of a join, blocked bitset rows on the other.

use crate::index::TagIndex;
use crate::relation::{pack_u32s, unpack_u32s, NodePairSet};
use rpq_grammar::Tag;
use rpq_labeling::NodeId;
use serde::{Deserialize, Serialize};

/// A relation in compressed-sparse-row form, forward and transposed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrRelation {
    n_nodes: u32,
    /// `targets[offsets[u]..offsets[u+1]]`: successors of `u`, sorted.
    offsets: Vec<u32>,
    targets: Vec<u32>,
    /// Transpose: `rev_targets[rev_offsets[v]..rev_offsets[v+1]]` are
    /// the predecessors of `v`, sorted.
    rev_offsets: Vec<u32>,
    rev_targets: Vec<u32>,
}

impl CsrRelation {
    /// Build from a sorted, deduplicated pair set over `n_nodes` nodes.
    /// One counting pass per direction — no hashing, no re-sorting.
    pub fn from_pairs(pairs: &NodePairSet, n_nodes: usize) -> CsrRelation {
        let n = n_nodes as u32;
        debug_assert!(pairs.iter().all(|(u, v)| u.0 < n && v.0 < n));
        let m = pairs.len();

        // Forward: pairs are sorted by source, so targets is one copy.
        let mut offsets = vec![0u32; n_nodes + 1];
        let mut targets = Vec::with_capacity(m);
        for (u, v) in pairs.iter() {
            offsets[u.index() + 1] += 1;
            targets.push(v.0);
        }
        for i in 0..n_nodes {
            offsets[i + 1] += offsets[i];
        }

        // Transpose: counting sort by target keeps each predecessor
        // list sorted (pairs arrive in source order).
        let mut rev_offsets = vec![0u32; n_nodes + 1];
        for (_, v) in pairs.iter() {
            rev_offsets[v.index() + 1] += 1;
        }
        for i in 0..n_nodes {
            rev_offsets[i + 1] += rev_offsets[i];
        }
        let mut cursor = rev_offsets.clone();
        let mut rev_targets = vec![0u32; m];
        for (u, v) in pairs.iter() {
            let slot = cursor[v.index()];
            rev_targets[slot as usize] = u.0;
            cursor[v.index()] += 1;
        }

        CsrRelation {
            n_nodes: n,
            offsets,
            targets,
            rev_offsets,
            rev_targets,
        }
    }

    /// Number of nodes in the universe.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes as usize
    }

    /// Number of pairs.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.targets.len()
    }

    /// Is the relation empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Successors of `u` as raw dense ids, sorted.
    #[inline]
    pub fn neighbors_raw(&self, u: u32) -> &[u32] {
        &self.targets[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// Predecessors of `v` as raw dense ids, sorted.
    #[inline]
    pub fn predecessors_raw(&self, v: u32) -> &[u32] {
        &self.rev_targets
            [self.rev_offsets[v as usize] as usize..self.rev_offsets[v as usize + 1] as usize]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.neighbors_raw(u.0).len()
    }

    /// Membership test (binary search in the successor list).
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        u.0 < self.n_nodes && self.neighbors_raw(u.0).binary_search(&v.0).is_ok()
    }

    /// Structural invariants hold: offset arrays are monotonic,
    /// cover exactly the target arrays, every id is in-universe, and
    /// each adjacency row is sorted and duplicate-free. `from_pairs`
    /// guarantees all of this; deserialized arenas (whose bytes bypass
    /// the constructor) must be checked before the kernels index into
    /// them. Linear in nodes + edges.
    pub fn is_well_formed(&self) -> bool {
        let n = self.n_nodes as usize;
        let dir_ok = |offsets: &[u32], targets: &[u32]| {
            offsets.len() == n + 1
                && offsets[0] == 0
                && *offsets.last().expect("n + 1 > 0") as usize == targets.len()
                && offsets.windows(2).all(|w| w[0] <= w[1])
                && targets.iter().all(|&t| t < self.n_nodes)
                && (0..n).all(|u| {
                    let row = &targets[offsets[u] as usize..offsets[u + 1] as usize];
                    row.windows(2).all(|w| w[0] < w[1])
                })
        };
        dir_ok(&self.offsets, &self.targets)
            && dir_ok(&self.rev_offsets, &self.rev_targets)
            && self.targets.len() == self.rev_targets.len()
    }

    /// Grow the universe to `n_nodes` without touching the pairs: the
    /// new trailing nodes have no edges, so both offset arrays extend
    /// by repeating their final cumulative count — exactly what
    /// [`CsrRelation::from_pairs`] would build for the same pair set
    /// over the larger universe, so incrementally grown arenas stay
    /// byte-identical to rebuilt ones.
    pub(crate) fn pad_to(&mut self, n_nodes: usize) {
        debug_assert!(n_nodes >= self.n_nodes());
        let last = *self.offsets.last().expect("offsets are never empty");
        self.offsets.resize(n_nodes + 1, last);
        let rev_last = *self.rev_offsets.last().expect("offsets are never empty");
        self.rev_offsets.resize(n_nodes + 1, rev_last);
        self.n_nodes = n_nodes as u32;
    }

    /// Materialize back into the boundary pair-set type (sorted by
    /// construction).
    pub fn to_pairs(&self) -> NodePairSet {
        let mut out = Vec::with_capacity(self.n_edges());
        for u in 0..self.n_nodes {
            for &v in self.neighbors_raw(u) {
                out.push((NodeId(u), NodeId(v)));
            }
        }
        NodePairSet::from_sorted_unique(out)
    }
}

// Persistence: the four index arrays are packed byte buffers, so a
// run store decodes an arena at memcpy speed instead of paying an
// enum construction per integer (which measured *slower* than
// rebuilding the arena from its run). Deserialized arenas bypass
// `from_pairs`, so loaders must gate on [`CsrRelation::is_well_formed`]
// before any kernel indexes into them.
impl Serialize for CsrRelation {
    fn to_value(&self) -> serde::Value {
        let arr = |v: &[u32]| pack_u32s(v.len(), v.iter().copied());
        serde::Value::Map(vec![
            (
                "n_nodes".to_owned(),
                serde::Value::UInt(self.n_nodes.into()),
            ),
            ("offsets".to_owned(), arr(&self.offsets)),
            ("targets".to_owned(), arr(&self.targets)),
            ("rev_offsets".to_owned(), arr(&self.rev_offsets)),
            ("rev_targets".to_owned(), arr(&self.rev_targets)),
        ])
    }
}

impl Deserialize for CsrRelation {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let field = |name: &str| {
            value
                .get_field(name)
                .ok_or_else(|| serde::DeError::missing("CsrRelation", name))
        };
        Ok(CsrRelation {
            n_nodes: u32::from_value(field("n_nodes")?)?,
            offsets: unpack_u32s(field("offsets")?)?,
            targets: unpack_u32s(field("targets")?)?,
            rev_offsets: unpack_u32s(field("rev_offsets")?)?,
            rev_targets: unpack_u32s(field("rev_targets")?)?,
        })
    }
}

/// The per-run CSR arena: one [`CsrRelation`] per edge tag plus the
/// wildcard relation, mirroring [`TagIndex`] in CSR form. Sessions
/// cache one per run beside the tag index so repeated composite
/// evaluations never rebuild adjacency (see `rpq-core`'s `Session`).
///
/// Serializable for the same reason as [`TagIndex`]: run stores
/// persist the arena beside the run so a restarted process evaluates
/// off warm adjacency instead of rebuilding it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrIndex {
    n_nodes: usize,
    per_tag: Vec<CsrRelation>,
    all: CsrRelation,
}

impl CsrIndex {
    /// Build from a tag index (which already holds the sorted per-tag
    /// pair lists and the one-pass wildcard relation).
    pub fn build(index: &TagIndex) -> CsrIndex {
        let n_nodes = index.n_nodes();
        CsrIndex {
            n_nodes,
            per_tag: (0..index.n_tags())
                .map(|t| CsrRelation::from_pairs(index.edges(Tag(t as u32)), n_nodes))
                .collect(),
            all: CsrRelation::from_pairs(index.all_edges(), n_nodes),
        }
    }

    /// Refresh the arena after its [`TagIndex`] absorbed an append:
    /// `touched` tags (as reported by `TagIndex::extend`) are rebuilt
    /// from their merged pair lists — a counting pass over that tag's
    /// edges only — while untouched tags merely pad their offset arrays
    /// to the grown universe. The wildcard relation is rebuilt whenever
    /// anything changed. Equal to `CsrIndex::build(index)` by
    /// construction (both are pure functions of the pair sets).
    pub fn extend(&mut self, index: &TagIndex, touched: &[Tag]) {
        let n_nodes = index.n_nodes();
        if n_nodes != self.n_nodes {
            for rel in self.per_tag.iter_mut() {
                rel.pad_to(n_nodes);
            }
            self.all.pad_to(n_nodes);
            self.n_nodes = n_nodes;
        }
        for &t in touched {
            self.per_tag[t.index()] = CsrRelation::from_pairs(index.edges(t), n_nodes);
        }
        if !touched.is_empty() {
            self.all = CsrRelation::from_pairs(index.all_edges(), n_nodes);
        }
    }

    /// Number of nodes in the run.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The CSR adjacency of one tag's edges.
    pub fn csr(&self, tag: Tag) -> &CsrRelation {
        &self.per_tag[tag.index()]
    }

    /// The CSR adjacency of all edges (the wildcard relation).
    pub fn all(&self) -> &CsrRelation {
        &self.all
    }

    /// Every contained relation is well-formed for a `n_tags`-tag
    /// alphabet over this universe (see [`CsrRelation::is_well_formed`]
    /// — the load-time guard for deserialized arenas).
    pub fn is_well_formed(&self, n_tags: usize) -> bool {
        self.per_tag.len() == n_tags
            && self
                .per_tag
                .iter()
                .chain(std::iter::once(&self.all))
                .all(|r| r.n_nodes() == self.n_nodes && r.is_well_formed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn pairs(ps: &[(u32, u32)]) -> NodePairSet {
        NodePairSet::from_pairs(ps.iter().map(|&(a, b)| (n(a), n(b))).collect())
    }

    #[test]
    fn empty_relation() {
        let csr = CsrRelation::from_pairs(&NodePairSet::new(), 5);
        assert_eq!(csr.n_nodes(), 5);
        assert_eq!(csr.n_edges(), 0);
        assert!(csr.is_empty());
        assert!(csr.neighbors_raw(3).is_empty());
        assert!(csr.predecessors_raw(0).is_empty());
        assert!(csr.to_pairs().is_empty());
    }

    #[test]
    fn self_loops_round_trip() {
        let p = pairs(&[(0, 0), (2, 2), (2, 3)]);
        let csr = CsrRelation::from_pairs(&p, 4);
        assert_eq!(csr.neighbors_raw(2), &[2, 3]);
        assert_eq!(csr.predecessors_raw(2), &[2]);
        assert!(csr.contains(n(0), n(0)));
        assert!(!csr.contains(n(0), n(1)));
        assert_eq!(csr.to_pairs(), p);
    }

    #[test]
    fn multi_edges_collapse_via_pair_set_dedup() {
        // Runs can carry parallel same-tag edges; the pair-set boundary
        // dedups them, so CSR rows hold each target once.
        let p = pairs(&[(1, 2), (1, 2), (1, 0)]);
        let csr = CsrRelation::from_pairs(&p, 3);
        assert_eq!(csr.n_edges(), 2);
        assert_eq!(csr.neighbors_raw(1), &[0, 2]);
        assert_eq!(csr.predecessors_raw(2), &[1]);
    }

    #[test]
    fn serde_round_trip_and_well_formedness() {
        let p = pairs(&[(0, 3), (1, 3), (2, 0), (3, 1), (3, 2)]);
        let csr = CsrRelation::from_pairs(&p, 4);
        assert!(csr.is_well_formed());
        let back =
            <CsrRelation as serde::Deserialize>::from_value(&serde::Serialize::to_value(&csr))
                .unwrap();
        assert_eq!(back, csr);
        assert!(back.is_well_formed());

        // A tampered arena (out-of-universe target) is rejected by the
        // load-time guard instead of panicking inside a kernel.
        let mut bad = csr.clone();
        bad.targets[0] = 99;
        assert!(!bad.is_well_formed());
        let mut bad = csr.clone();
        bad.offsets[2] = 7;
        assert!(!bad.is_well_formed());
    }

    #[test]
    fn pad_to_matches_from_pairs_over_the_larger_universe() {
        let p = pairs(&[(0, 3), (3, 1), (2, 2)]);
        let mut padded = CsrRelation::from_pairs(&p, 4);
        padded.pad_to(9);
        assert_eq!(padded, CsrRelation::from_pairs(&p, 9));
        assert!(padded.is_well_formed());
        assert!(padded.neighbors_raw(8).is_empty());
        // Padding to the current size is a no-op.
        let mut same = CsrRelation::from_pairs(&p, 4);
        same.pad_to(4);
        assert_eq!(same, CsrRelation::from_pairs(&p, 4));
    }

    #[test]
    fn forward_and_transpose_agree() {
        let p = pairs(&[(0, 3), (1, 3), (2, 0), (3, 1), (3, 2)]);
        let csr = CsrRelation::from_pairs(&p, 4);
        for (u, v) in p.iter() {
            assert!(csr.neighbors_raw(u.0).contains(&v.0));
            assert!(csr.predecessors_raw(v.0).contains(&u.0));
        }
        assert_eq!(csr.out_degree(n(3)), 2);
        assert_eq!(csr.to_pairs(), p);
    }
}
