#![warn(missing_docs)]

//! Relational substrate for RPQ evaluation over provenance runs.
//!
//! The baselines (G1's bottom-up parse-tree evaluation in particular) and
//! the composition step of the paper's general-query algorithm all
//! manipulate *node-pair relations*: sets of `(u, v)` pairs meaning
//! "some path whose tag string matches the subexpression leads from `u`
//! to `v`". This crate provides:
//!
//! * [`NodePairSet`] — a sorted, deduplicated pair set, the public
//!   boundary type;
//! * [`Relation`] — a pair set plus a symbolic identity flag, so `ε` and
//!   `e*` never materialize the quadratic identity relation;
//! * composition ([`compose`]), union, and the Kleene fixpoint
//!   ([`transitive_closure`]) — joins in **two kernels** (the original
//!   sorted-pair/hash implementation and a bit-parallel one built from
//!   [`CsrRelation`] adjacency arenas and [`BitRelation`] blocked-bitset
//!   rows) and transitive closure in **three** (those two plus the
//!   condensation pass of [`scc`]: iterative Tarjan SCC + one
//!   reverse-topological bit sweep), dispatched per operator on density
//!   (override with `RPQ_RELALG_KERNEL={auto,bits,pairs,scc}` or
//!   [`set_kernel_mode`]);
//! * [`TagIndex`] — the per-edge-tag inverted index the paper stores on
//!   disk for baseline G3 ("an index maps an edge tag γ ∈ Γ to a list of
//!   node pairs that are connected by an edge tagged γ"), plus
//!   [`CsrIndex`], its CSR mirror cached per run by `rpq-core` sessions.

pub mod bits;
pub mod csr;
pub mod index;
pub mod join;
pub mod kernel;
pub mod relation;
pub mod rowops;
pub mod scc;

pub use bits::BitRelation;
pub use csr::{CsrIndex, CsrRelation};
pub use index::TagIndex;
pub use join::{
    compose, compose_in, compose_pairs, compose_pairs_bits, compose_pairs_in, compose_pairs_kernel,
    select_pairs_bits, select_pairs_in, select_pairs_kernel, star, star_in, transitive_closure,
    transitive_closure_bitrel, transitive_closure_bits, transitive_closure_csr,
    transitive_closure_csr_shared, transitive_closure_in, transitive_closure_pairs,
    transitive_closure_scc, transitive_closure_scc_csr,
};
pub use kernel::{
    closure_counts, condensation_counts, config_warnings, kernel_mode, last_config_warning,
    record_config_warning, set_kernel_mode, thread_closure_counts, thread_condensation_counts,
    warn_config_fallback, ClosureCounts, CondensationCounts, Kernel, KernelMode,
};
pub use relation::{NodePairSet, Relation};
pub use rowops::{row_ops_mode, set_row_ops_mode, RowOpsMode};
pub use scc::{Condensation, CondensationCache};
