#![warn(missing_docs)]

//! Relational substrate for RPQ evaluation over provenance runs.
//!
//! The baselines (G1's bottom-up parse-tree evaluation in particular) and
//! the composition step of the paper's general-query algorithm all
//! manipulate *node-pair relations*: sets of `(u, v)` pairs meaning
//! "some path whose tag string matches the subexpression leads from `u`
//! to `v`". This crate provides:
//!
//! * [`NodePairSet`] — a sorted, deduplicated pair set;
//! * [`Relation`] — a pair set plus a symbolic identity flag, so `ε` and
//!   `e*` never materialize the quadratic identity relation;
//! * composition ([`compose`]), union, and the semi-naive Kleene fixpoint
//!   ([`transitive_closure`]);
//! * [`TagIndex`] — the per-edge-tag inverted index the paper stores on
//!   disk for baseline G3 ("an index maps an edge tag γ ∈ Γ to a list of
//!   node pairs that are connected by an edge tagged γ").

pub mod index;
pub mod join;
pub mod relation;

pub use index::TagIndex;
pub use join::{compose, compose_pairs, transitive_closure};
pub use relation::{NodePairSet, Relation};
