//! Composition joins and the semi-naive Kleene fixpoint.
//!
//! These are the operators baseline G1 (Li & Moon's parse-tree
//! evaluation, the paper's Option G1) is built from; the paper's own
//! approach uses them only for the *unsafe remainder* of a decomposed
//! query — which is exactly why it wins on queries whose safe parts are
//! lowly selective.
//!
//! Every operator exists in two kernels (see [`crate::kernel`]): the
//! original sorted-pair/hash implementation (`*_pairs`, kept as the
//! referee and the sparse fast path) and the blocked-bitset kernel of
//! [`crate::bits`]. The `*_in` entry points take the universe size and
//! dispatch per call on density; the parameterless wrappers infer the
//! universe from the operand ids for callers without a run at hand.

use crate::bits::BitRelation;
use crate::csr::CsrRelation;
use crate::kernel::{choose_closure, choose_compose, choose_select, record_closure, Kernel};
use crate::relation::{NodePairSet, Relation};
use rpq_labeling::NodeId;
use std::collections::HashMap;

/// Composition of pair sets with the **pair kernel**: `{(u, w) |
/// (u, v) ∈ a, (v, w) ∈ b}` as a hash join on the shared middle node.
/// Kept verbatim as the referee the bit kernel is property-tested
/// against, and as the dispatch target for sparse operands.
pub fn compose_pairs_kernel(a: &NodePairSet, b: &NodePairSet) -> NodePairSet {
    // Index b by source.
    let mut by_src: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for (v, w) in b.iter() {
        by_src.entry(v).or_default().push(w);
    }
    let mut out = Vec::new();
    for (u, v) in a.iter() {
        if let Some(ws) = by_src.get(&v) {
            out.extend(ws.iter().map(|&w| (u, w)));
        }
    }
    NodePairSet::from_pairs(out)
}

/// Composition of pair sets with the **bit kernel**: the left operand
/// iterates as CSR adjacency, the right as blocked bitset rows, and
/// every `(u, v)` of `a` contributes one word-wise row OR.
pub fn compose_pairs_bits(a: &NodePairSet, b: &NodePairSet, n_nodes: usize) -> NodePairSet {
    let csr = CsrRelation::from_pairs(a, n_nodes);
    let bits = BitRelation::from_pairs(b, n_nodes);
    BitRelation::compose_csr(&csr, &bits).to_pairs()
}

/// Composition of pair sets over an `n_nodes` universe, dispatching on
/// density (or the `RPQ_RELALG_KERNEL` override).
pub fn compose_pairs_in(a: &NodePairSet, b: &NodePairSet, n_nodes: usize) -> NodePairSet {
    if a.is_empty() || b.is_empty() {
        return NodePairSet::new();
    }
    match choose_compose(n_nodes, a.len(), b.len()) {
        // SCC is closure-only; the chooser never returns it, but keep
        // the match total on the word-parallel side.
        Kernel::Bits | Kernel::Scc => compose_pairs_bits(a, b, n_nodes),
        Kernel::Pairs => compose_pairs_kernel(a, b),
    }
}

/// Composition of pair sets (kernel-dispatched; universe inferred from
/// the operand ids). Prefer [`compose_pairs_in`] when the run size is
/// at hand.
pub fn compose_pairs(a: &NodePairSet, b: &NodePairSet) -> NodePairSet {
    compose_pairs_in(a, b, a.universe_bound().max(b.universe_bound()))
}

/// Composition of relations over an `n_nodes` universe, respecting
/// symbolic identity: `(a ∪ id?) ∘ (b ∪ id?)`.
pub fn compose_in(a: &Relation, b: &Relation, n_nodes: usize) -> Relation {
    let mut pairs = compose_pairs_in(&a.pairs, &b.pairs, n_nodes);
    if a.identity {
        pairs = pairs.union(&b.pairs);
    }
    if b.identity {
        pairs = pairs.union(&a.pairs);
    }
    Relation {
        pairs,
        identity: a.identity && b.identity,
    }
}

/// Composition of relations (universe inferred from the operand ids).
pub fn compose(a: &Relation, b: &Relation) -> Relation {
    compose_in(a, b, a.pairs.universe_bound().max(b.pairs.universe_bound()))
}

/// Transitive closure (Kleene plus) with the **pair kernel**, computed
/// semi-naively: `Δ₀ = R; Δᵢ₊₁ = (Δᵢ ∘ R) ∖ total`. This is the
/// fixpoint loop whose unknown round count makes Kleene-star queries
/// expensive for the baselines (Section V-A: "Since it is unknown how
/// many rounds it takes to reach a fixpoint, the performance can be
/// very bad"). Kept verbatim as the referee for the bit kernel.
pub fn transitive_closure_pairs(r: &NodePairSet) -> NodePairSet {
    // Successor index of the base relation.
    let mut succ: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for (u, v) in r.iter() {
        succ.entry(u).or_default().push(v);
    }
    // Hash membership + a flat accumulator: per-round work is then
    // proportional to the newly discovered pairs only (a per-round
    // sorted union would add an O(total) term per round, quadratic on
    // long chains).
    let mut seen: std::collections::HashSet<(NodeId, NodeId)> = r.iter().collect();
    let mut acc: Vec<(NodeId, NodeId)> = r.iter().collect();
    let mut delta: Vec<(NodeId, NodeId)> = r.iter().collect();
    while !delta.is_empty() {
        let mut next = Vec::new();
        for &(u, v) in &delta {
            if let Some(ws) = succ.get(&v) {
                for &w in ws {
                    if seen.insert((u, w)) {
                        next.push((u, w));
                    }
                }
            }
        }
        acc.extend_from_slice(&next);
        delta = next;
    }
    NodePairSet::from_pairs(acc)
}

/// Transitive closure with the **bit kernel**: word-wise semi-naive
/// rounds over blocked bitset rows (see
/// [`BitRelation::transitive_closure`]).
pub fn transitive_closure_bits(r: &NodePairSet, n_nodes: usize) -> NodePairSet {
    BitRelation::from_pairs(r, n_nodes)
        .transitive_closure()
        .to_pairs()
}

/// Transitive closure with the **condensation kernel**: iterative
/// Tarjan SCC, then one reverse-topological pass ORing component
/// closure rows (see [`crate::scc`]). Cycles collapse to shared
/// component rows instead of per-round delta unions, so word work
/// scales with the *base* graph rather than the closure.
pub fn transitive_closure_scc(r: &NodePairSet, n_nodes: usize) -> NodePairSet {
    crate::scc::transitive_closure_scc(&CsrRelation::from_pairs(r, n_nodes)).to_pairs()
}

/// [`transitive_closure_scc`] straight off a CSR arena (no pair→CSR
/// conversion — the Tarjan walk consumes the adjacency as-is).
pub fn transitive_closure_scc_csr(base: &CsrRelation) -> NodePairSet {
    crate::scc::transitive_closure_scc(base).to_pairs()
}

/// Transitive closure over an `n_nodes` universe, dispatching on
/// density (or the `RPQ_RELALG_KERNEL` override).
pub fn transitive_closure_in(r: &NodePairSet, n_nodes: usize) -> NodePairSet {
    // A 0/1-pair base is its own closure; don't let a forced bits
    // mode allocate n×⌈n/64⌉ matrices for it.
    if r.len() < 2 {
        return r.clone();
    }
    let kernel = choose_closure(n_nodes, r.len());
    record_closure(kernel);
    match kernel {
        Kernel::Scc => transitive_closure_scc(r, n_nodes),
        Kernel::Bits => transitive_closure_bits(r, n_nodes),
        Kernel::Pairs => transitive_closure_pairs(r),
    }
}

/// Transitive closure (kernel-dispatched; universe inferred from the
/// operand ids). Prefer [`transitive_closure_in`] when the run size is
/// at hand.
pub fn transitive_closure(r: &NodePairSet) -> NodePairSet {
    transitive_closure_in(r, r.universe_bound())
}

/// Transitive closure straight off a cached CSR arena (the session's
/// per-`(run, tag)` adjacency): skips the pair→CSR conversion the
/// other entry points pay.
pub fn transitive_closure_csr(base: &CsrRelation) -> NodePairSet {
    if base.n_edges() < 2 {
        return base.to_pairs();
    }
    let kernel = choose_closure(base.n_nodes(), base.n_edges());
    record_closure(kernel);
    match kernel {
        Kernel::Scc => transitive_closure_scc_csr(base),
        Kernel::Bits => BitRelation::from_csr(base).transitive_closure().to_pairs(),
        Kernel::Pairs => transitive_closure_pairs(&base.to_pairs()),
    }
}

/// [`transitive_closure_csr`] with a shared, evaluation-scoped
/// condensation: when the dispatch picks the SCC kernel, the Tarjan
/// walk runs at most once per `cache` — over `whole`, the run's full
/// adjacency (a super-graph of every per-tag `base`) — and the closure
/// is scheduled off the cached component DAG
/// ([`crate::scc::transitive_closure_scc_with`]). The non-SCC kernels
/// are untouched, so a forced-`bits`/`pairs` A/B run never pays the
/// condensation.
pub fn transitive_closure_csr_shared(
    base: &CsrRelation,
    whole: &CsrRelation,
    cache: &crate::scc::CondensationCache,
) -> NodePairSet {
    if base.n_edges() < 2 {
        return base.to_pairs();
    }
    let kernel = choose_closure(base.n_nodes(), base.n_edges());
    record_closure(kernel);
    match kernel {
        Kernel::Scc => {
            crate::scc::transitive_closure_scc_with(cache.condensation(whole), base).to_pairs()
        }
        Kernel::Bits => BitRelation::from_csr(base).transitive_closure().to_pairs(),
        Kernel::Pairs => transitive_closure_pairs(&base.to_pairs()),
    }
}

/// Kernel-dispatched transitive closure materialized as a
/// [`BitRelation`] — the shape live delta maintenance keeps warm
/// ([`BitRelation::extend_closure`] seeds its delta rounds off it).
/// Dispatches through [`choose_closure`] like every other closure
/// entry point, so an auto-eligible sparse graph condenses instead of
/// paying the semi-naive fixpoint. A `Pairs` verdict still runs the
/// bit fixpoint (the caller's maintained structure is bit-shaped by
/// definition) and is counted as the bits closure it actually is.
pub fn transitive_closure_bitrel(r: &NodePairSet, n_nodes: usize) -> BitRelation {
    let bits = BitRelation::from_pairs(r, n_nodes);
    // A 0/1-pair base is its own closure; mirror the other entry
    // points and skip dispatch (and its accounting) entirely.
    if r.len() < 2 {
        return bits;
    }
    match choose_closure(n_nodes, r.len()) {
        Kernel::Scc => {
            record_closure(Kernel::Scc);
            crate::scc::transitive_closure_scc(&CsrRelation::from_pairs(r, n_nodes))
        }
        Kernel::Bits | Kernel::Pairs => {
            record_closure(Kernel::Bits);
            bits.transitive_closure()
        }
    }
}

/// Endpoint selection `r ↾ l1 × l2` with the **pair kernel**: one
/// sorted merge over the pairs for the source restriction, then a
/// binary-search probe per matched pair for the target restriction.
/// Kept as the referee the bit-parallel selection is property-tested
/// against. Lists may arrive unsorted and with duplicates.
pub fn select_pairs_kernel(r: &NodePairSet, l1: &[NodeId], l2: &[NodeId]) -> NodePairSet {
    let mut l1s = l1.to_vec();
    l1s.sort_unstable();
    l1s.dedup();
    let mut l2s = l2.to_vec();
    l2s.sort_unstable();
    l2s.dedup();
    let mut matched = Vec::new();
    r.retain_sources_into(&l1s, &mut matched);
    matched.retain(|(_, v)| l2s.binary_search(v).is_ok());
    NodePairSet::from_sorted_unique(matched)
}

/// Endpoint selection with the **bit kernel**: the relation becomes
/// blocked bitset rows and the target list one blocked mask ANDed into
/// each selected source row before any pair materializes (see
/// [`BitRelation::select_pairs`]).
pub fn select_pairs_bits(
    r: &NodePairSet,
    l1: &[NodeId],
    l2: &[NodeId],
    n_nodes: usize,
) -> NodePairSet {
    BitRelation::from_pairs(r, n_nodes).select_pairs(l1, l2)
}

/// Endpoint selection over an `n_nodes` universe, dispatching on
/// density (or the `RPQ_RELALG_KERNEL` override). As with the other
/// `_in` entry points, `n_nodes` must bound every node id of `r`;
/// list entries at or past it simply never match.
pub fn select_pairs_in(
    r: &NodePairSet,
    l1: &[NodeId],
    l2: &[NodeId],
    n_nodes: usize,
) -> NodePairSet {
    if r.is_empty() || l1.is_empty() || l2.is_empty() {
        return NodePairSet::new();
    }
    match choose_select(n_nodes, r.len(), l1.len(), l2.len()) {
        // As in `compose_pairs_in`: the chooser never returns Scc.
        Kernel::Bits | Kernel::Scc => select_pairs_bits(r, l1, l2, n_nodes),
        Kernel::Pairs => select_pairs_kernel(r, l1, l2),
    }
}

/// Kleene star as a relation over an `n_nodes` universe:
/// `r* = r⁺ ∪ id`.
pub fn star_in(r: &NodePairSet, n_nodes: usize) -> Relation {
    Relation {
        pairs: transitive_closure_in(r, n_nodes),
        identity: true,
    }
}

/// Kleene star (universe inferred from the operand ids).
pub fn star(r: &NodePairSet) -> Relation {
    Relation {
        pairs: transitive_closure(r),
        identity: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn pairs(ps: &[(u32, u32)]) -> NodePairSet {
        NodePairSet::from_pairs(ps.iter().map(|&(a, b)| (n(a), n(b))).collect())
    }

    #[test]
    fn compose_pairs_basic() {
        let a = pairs(&[(0, 1), (1, 2)]);
        let b = pairs(&[(1, 5), (2, 6)]);
        let c = compose_pairs(&a, &b);
        assert_eq!(c, pairs(&[(0, 5), (1, 6)]));
        // Both kernels agree.
        assert_eq!(compose_pairs_kernel(&a, &b), c);
        assert_eq!(compose_pairs_bits(&a, &b, 7), c);
    }

    #[test]
    fn compose_with_identity() {
        let a = Relation::from_pairs(pairs(&[(0, 1)]));
        let eps = Relation::epsilon();
        assert_eq!(compose(&a, &eps), a);
        assert_eq!(compose(&eps, &a), a);
        let opt = a.union(&eps); // a?
        let twice = compose(&opt, &opt); // matches "", "a", "aa"
        assert!(twice.identity);
        assert!(twice.contains(n(0), n(1)));
    }

    #[test]
    fn closure_of_chain() {
        let chain = pairs(&[(0, 1), (1, 2), (2, 3)]);
        let expected = pairs(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(transitive_closure(&chain), expected);
        assert_eq!(transitive_closure_pairs(&chain), expected);
        assert_eq!(transitive_closure_bits(&chain, 4), expected);
        assert_eq!(transitive_closure_scc(&chain, 4), expected);
        assert_eq!(
            transitive_closure_csr(&CsrRelation::from_pairs(&chain, 4)),
            expected
        );
        assert_eq!(
            transitive_closure_scc_csr(&CsrRelation::from_pairs(&chain, 4)),
            expected
        );
    }

    #[test]
    fn closure_of_diamond() {
        let d = pairs(&[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let tc = transitive_closure(&d);
        assert!(tc.contains(n(0), n(3)));
        assert!(!tc.contains(n(1), n(2)));
        assert_eq!(tc.len(), 5);
    }

    #[test]
    fn closure_of_empty_is_empty() {
        assert!(transitive_closure(&NodePairSet::new()).is_empty());
        assert!(transitive_closure_bits(&NodePairSet::new(), 8).is_empty());
    }

    #[test]
    fn star_includes_identity() {
        let s = star(&pairs(&[(0, 1)]));
        assert!(s.contains(n(4), n(4)));
        assert!(s.contains(n(0), n(1)));
    }

    #[test]
    fn closure_handles_cycles_in_relation_graphs() {
        // Relations produced by sub-queries can cycle even on DAG runs
        // (e.g. different path endpoints); the fixpoint must still stop.
        let cyc = pairs(&[(0, 1), (1, 0)]);
        let expected = pairs(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert_eq!(transitive_closure_pairs(&cyc), expected);
        assert_eq!(transitive_closure_bits(&cyc, 2), expected);
        assert_eq!(transitive_closure_scc(&cyc, 2), expected);
    }
}
