//! Composition joins and the semi-naive Kleene fixpoint.
//!
//! These are the operators baseline G1 (Li & Moon's parse-tree
//! evaluation, the paper's Option G1) is built from; the paper's own
//! approach uses them only for the *unsafe remainder* of a decomposed
//! query — which is exactly why it wins on queries whose safe parts are
//! lowly selective.

use crate::relation::{NodePairSet, Relation};
use rpq_labeling::NodeId;
use std::collections::HashMap;

/// Composition of pair sets: `{(u, w) | (u, v) ∈ a, (v, w) ∈ b}`
/// (hash join on the shared middle node).
pub fn compose_pairs(a: &NodePairSet, b: &NodePairSet) -> NodePairSet {
    // Index b by source.
    let mut by_src: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for (v, w) in b.iter() {
        by_src.entry(v).or_default().push(w);
    }
    let mut out = Vec::new();
    for (u, v) in a.iter() {
        if let Some(ws) = by_src.get(&v) {
            out.extend(ws.iter().map(|&w| (u, w)));
        }
    }
    NodePairSet::from_pairs(out)
}

/// Composition of relations, respecting symbolic identity:
/// `(a ∪ id?) ∘ (b ∪ id?)`.
pub fn compose(a: &Relation, b: &Relation) -> Relation {
    let mut pairs = compose_pairs(&a.pairs, &b.pairs);
    if a.identity {
        pairs = pairs.union(&b.pairs);
    }
    if b.identity {
        pairs = pairs.union(&a.pairs);
    }
    Relation {
        pairs,
        identity: a.identity && b.identity,
    }
}

/// Transitive closure (Kleene plus) of a pair set, computed semi-naively:
/// `Δ₀ = R; Δᵢ₊₁ = (Δᵢ ∘ R) ∖ total`. This is the fixpoint loop whose
/// unknown round count makes Kleene-star queries expensive for the
/// baselines (Section V-A: "Since it is unknown how many rounds it takes
/// to reach a fixpoint, the performance can be very bad").
pub fn transitive_closure(r: &NodePairSet) -> NodePairSet {
    // Successor index of the base relation.
    let mut succ: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for (u, v) in r.iter() {
        succ.entry(u).or_default().push(v);
    }
    // Hash membership + a flat accumulator: per-round work is then
    // proportional to the newly discovered pairs only (a per-round
    // sorted union would add an O(total) term per round, quadratic on
    // long chains).
    let mut seen: std::collections::HashSet<(NodeId, NodeId)> = r.iter().collect();
    let mut acc: Vec<(NodeId, NodeId)> = r.iter().collect();
    let mut delta: Vec<(NodeId, NodeId)> = r.iter().collect();
    while !delta.is_empty() {
        let mut next = Vec::new();
        for &(u, v) in &delta {
            if let Some(ws) = succ.get(&v) {
                for &w in ws {
                    if seen.insert((u, w)) {
                        next.push((u, w));
                    }
                }
            }
        }
        acc.extend_from_slice(&next);
        delta = next;
    }
    NodePairSet::from_pairs(acc)
}

/// Kleene star as a relation: `r* = r⁺ ∪ id`.
pub fn star(r: &NodePairSet) -> Relation {
    Relation {
        pairs: transitive_closure(r),
        identity: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn pairs(ps: &[(u32, u32)]) -> NodePairSet {
        NodePairSet::from_pairs(ps.iter().map(|&(a, b)| (n(a), n(b))).collect())
    }

    #[test]
    fn compose_pairs_basic() {
        let a = pairs(&[(0, 1), (1, 2)]);
        let b = pairs(&[(1, 5), (2, 6)]);
        let c = compose_pairs(&a, &b);
        assert_eq!(c, pairs(&[(0, 5), (1, 6)]));
    }

    #[test]
    fn compose_with_identity() {
        let a = Relation::from_pairs(pairs(&[(0, 1)]));
        let eps = Relation::epsilon();
        assert_eq!(compose(&a, &eps), a);
        assert_eq!(compose(&eps, &a), a);
        let opt = a.union(&eps); // a?
        let twice = compose(&opt, &opt); // matches "", "a", "aa"
        assert!(twice.identity);
        assert!(twice.contains(n(0), n(1)));
    }

    #[test]
    fn closure_of_chain() {
        let chain = pairs(&[(0, 1), (1, 2), (2, 3)]);
        let tc = transitive_closure(&chain);
        assert_eq!(tc, pairs(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]));
    }

    #[test]
    fn closure_of_diamond() {
        let d = pairs(&[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let tc = transitive_closure(&d);
        assert!(tc.contains(n(0), n(3)));
        assert!(!tc.contains(n(1), n(2)));
        assert_eq!(tc.len(), 5);
    }

    #[test]
    fn closure_of_empty_is_empty() {
        assert!(transitive_closure(&NodePairSet::new()).is_empty());
    }

    #[test]
    fn star_includes_identity() {
        let s = star(&pairs(&[(0, 1)]));
        assert!(s.contains(n(4), n(4)));
        assert!(s.contains(n(0), n(1)));
    }

    #[test]
    fn closure_handles_cycles_in_relation_graphs() {
        // Relations produced by sub-queries can cycle even on DAG runs
        // (e.g. different path endpoints); the fixpoint must still stop.
        let cyc = pairs(&[(0, 1), (1, 0)]);
        let tc = transitive_closure(&cyc);
        assert_eq!(tc, pairs(&[(0, 0), (0, 1), (1, 0), (1, 1)]));
    }
}
