//! Condensation-based transitive closure: Tarjan SCC + one
//! reverse-topological bit pass.
//!
//! The semi-naive closure of [`crate::bits`] pays one `⌈n/64⌉`-word row
//! OR *per closure pair* — `O(|TC| · n/64)` words — and rediscovers the
//! same row unions round after round on deep DAGs. Workflow provenance
//! runs are overwhelmingly DAG-shaped with small cyclic cores (and
//! Grahne & Thomo's RPQ-provenance construction factors closure through
//! the condensed graph the same way), which is exactly the regime where
//! condensation wins:
//!
//! 1. [`Condensation::of`] runs an **iterative** (non-recursive,
//!    stack-safe on 10⁴-deep chains) Tarjan SCC over the CSR adjacency,
//!    collapsing every cycle into one component. Tarjan emits
//!    components in *reverse topological order* of the condensation —
//!    when a component is popped, everything reachable from it has
//!    already been popped — so component ids double as a topological
//!    schedule with no extra sort.
//! 2. [`transitive_closure_scc`] then makes **one pass** over the
//!    components in id order (sinks first): each component's closure
//!    row is the OR of its successor components' rows — blocked
//!    [`BitRelation`]-style `u64` words in node space — plus the
//!    successors' own members; cyclic components OR in their member set
//!    once instead of discovering `k²` intra-cycle pairs pair by pair.
//!    Every member of a component shares the finished row verbatim.
//!
//! Total work is `O((E_cond + n) · n/64)` words plus the linear Tarjan
//! walk, where `E_cond ≤ |E|` counts *distinct* condensation edges —
//! versus the semi-naive kernel's `O(|TC| · n/64)`. A 4096-node chain
//! has `|TC| ≈ 8.4M` but `E_cond ≈ 4095`.

use crate::bits::BitRelation;
use crate::csr::CsrRelation;
use crate::rowops;
use rpq_labeling::NodeId;
use std::cell::OnceCell;

/// The strongly-connected-component decomposition of a relation,
/// with components numbered in reverse topological order of the
/// condensation DAG: every edge `(u, v)` with `comp_of(u) ≠ comp_of(v)`
/// satisfies `comp_of(v) < comp_of(u)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condensation {
    n_nodes: usize,
    /// Node → component id.
    comp_of: Vec<u32>,
    /// `members[offsets[c]..offsets[c+1]]`: the nodes of component `c`.
    offsets: Vec<u32>,
    members: Vec<u32>,
}

const UNVISITED: u32 = u32::MAX;

impl Condensation {
    /// Decompose `g` with an explicit-stack Tarjan walk (no recursion:
    /// a path-shaped run must not overflow the thread stack).
    pub fn of(g: &CsrRelation) -> Condensation {
        let n = g.n_nodes();
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut comp_of = vec![UNVISITED; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index: u32 = 0;
        let mut n_comps: u32 = 0;
        let mut members: Vec<u32> = Vec::with_capacity(n);
        let mut offsets: Vec<u32> = vec![0];
        // The explicit DFS frame: (node, position in its neighbor list).
        let mut call: Vec<(u32, u32)> = Vec::new();

        for root in 0..n as u32 {
            if index[root as usize] != UNVISITED {
                continue;
            }
            index[root as usize] = next_index;
            lowlink[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;
            call.push((root, 0));

            while let Some(frame) = call.last_mut() {
                let (v, pos) = (frame.0, frame.1);
                let neighbors = g.neighbors_raw(v);
                if let Some(&w) = neighbors.get(pos as usize) {
                    frame.1 += 1;
                    if index[w as usize] == UNVISITED {
                        index[w as usize] = next_index;
                        lowlink[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        call.push((w, 0));
                    } else if on_stack[w as usize] {
                        lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                    }
                    continue;
                }
                // v's neighbors are exhausted: retreat.
                call.pop();
                if let Some(parent) = call.last() {
                    let p = parent.0 as usize;
                    lowlink[p] = lowlink[p].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v roots a component: pop it off the Tarjan stack.
                    loop {
                        let w = stack.pop().expect("v is on the stack");
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = n_comps;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    offsets.push(members.len() as u32);
                    n_comps += 1;
                }
            }
        }

        Condensation {
            n_nodes: n,
            comp_of,
            offsets,
            members,
        }
    }

    /// Number of nodes in the underlying universe.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of strongly connected components.
    #[inline]
    pub fn n_comps(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The component of `node` (nodes are dense ids below
    /// [`Condensation::n_nodes`]).
    #[inline]
    pub fn comp_of(&self, node: NodeId) -> usize {
        self.comp_of[node.index()] as usize
    }

    /// The member nodes of component `c` (raw dense ids).
    #[inline]
    pub fn members(&self, c: usize) -> &[u32] {
        &self.members[self.offsets[c] as usize..self.offsets[c + 1] as usize]
    }

    /// Does every cross-component edge of `g` point from a higher to a
    /// lower component id? This is the reverse-topological invariant
    /// the closure pass relies on; exposed for the property tests.
    pub fn is_reverse_topological(&self, g: &CsrRelation) -> bool {
        (0..self.n_nodes as u32).all(|u| {
            g.neighbors_raw(u).iter().all(|&v| {
                let (cu, cv) = (self.comp_of[u as usize], self.comp_of[v as usize]);
                cu == cv || cv < cu
            })
        })
    }
}

/// Transitive closure (Kleene plus) of `base` by condensation: Tarjan
/// SCC, then one reverse-topological pass ORing each component's
/// closure row out of its successors' rows. Returns the closure in
/// blocked-bitset form (the caller materializes pairs if needed).
pub fn transitive_closure_scc(base: &CsrRelation) -> BitRelation {
    let n = base.n_nodes();
    let mut out = BitRelation::new(n);
    if n == 0 || base.is_empty() {
        return out;
    }
    let cond = Condensation::of(base);
    let n_comps = cond.n_comps();
    let wpr = out.words_per_row();

    // Per component: `members(c) ∪ reach(c)` as one node-space row —
    // exactly what a predecessor component must OR in (any node of a
    // successor is reachable in ≥ 1 step). At most one row per
    // component, so the matrix is `n_comps × ⌈n/64⌉ ≤ n × ⌈n/64⌉`.
    let mut reach_incl = vec![0u64; n_comps * wpr];
    // Last component id that ORed each target component into the
    // current row: dedups parallel condensation edges without sorting.
    let mut stamp = vec![UNVISITED; n_comps];
    let mut row = vec![0u64; wpr];

    for c in 0..n_comps {
        let members = cond.members(c);
        row.fill(0);
        // Singleton components are cyclic only via a self-loop, which
        // surfaces below as an intra-component edge.
        let mut cyclic = members.len() > 1;
        for &u in members {
            for &v in base.neighbors_raw(u) {
                let s = cond.comp_of[v as usize] as usize;
                if s == c {
                    cyclic = true;
                } else if stamp[s] != c as u32 {
                    stamp[s] = c as u32;
                    rowops::or_into(&mut row, &reach_incl[s * wpr..(s + 1) * wpr]);
                }
            }
        }
        if cyclic {
            // Every member reaches every member (itself included).
            for &u in members {
                row[(u >> 6) as usize] |= 1 << (u & 63);
            }
        }
        // All members share the finished closure row.
        for &u in members {
            out.row_mut(u as usize).copy_from_slice(&row);
        }
        let incl = &mut reach_incl[c * wpr..(c + 1) * wpr];
        incl.copy_from_slice(&row);
        for &u in members {
            incl[(u >> 6) as usize] |= 1 << (u & 63);
        }
    }
    out
}

/// Transitive closure of `base` scheduled by an *already-computed*
/// condensation of a super-graph `G ⊇ base` over the same universe —
/// the "condense once per evaluation" reuse path: a plan evaluating k
/// tag closures over one run condenses the run's full adjacency once
/// and schedules every per-tag closure off that component DAG.
///
/// Soundness: every edge of `base` is an edge of `G`, so it either
/// stays inside one `cond` component or points to a *lower* component
/// id (the reverse-topological invariant). Sweeping components sinks
/// first therefore sees every cross-component successor row finished.
/// Unlike [`transitive_closure_scc`], a multi-member component of `G`
/// need not be strongly connected in `base`, so member rows are
/// gathered node-wise (`row(u) = ⋃_{v ∈ N(u)} {v} ∪ row(v)`) and
/// multi-member components run a small local fixpoint restricted to
/// their members instead of the one-shot member-set OR.
pub fn transitive_closure_scc_with(cond: &Condensation, base: &CsrRelation) -> BitRelation {
    let n = base.n_nodes();
    assert_eq!(
        cond.n_nodes(),
        n,
        "condensation universe ({}) does not match the base relation ({n})",
        cond.n_nodes()
    );
    let mut out = BitRelation::new(n);
    if n == 0 || base.is_empty() {
        return out;
    }
    let wpr = out.words_per_row();
    let mut row = vec![0u64; wpr];
    for c in 0..cond.n_comps() {
        let members = cond.members(c);
        if members.len() == 1 {
            let u = members[0];
            if base.neighbors_raw(u).is_empty() {
                // Source-less rows stay all-zero: per-tag sub-relations
                // are sparse in the run universe, and skipping the
                // gather + copy here is what makes the reused sweep
                // scale with the base instead of the node count.
                continue;
            }
            row.fill(0);
            for &v in base.neighbors_raw(u) {
                row[(v >> 6) as usize] |= 1 << (v & 63);
                rowops::or_into(&mut row, out.row(v as usize));
            }
            out.row_mut(u as usize).copy_from_slice(&row);
        } else {
            if members.iter().all(|&u| base.neighbors_raw(u).is_empty()) {
                continue;
            }
            // Members may depend on each other in either direction
            // (the super-graph cycle need not survive in `base`):
            // iterate to a local fixpoint. External rows are final, so
            // rounds are bounded by the longest base path inside the
            // component.
            loop {
                let mut changed = false;
                for &u in members {
                    if base.neighbors_raw(u).is_empty() {
                        continue;
                    }
                    row.fill(0);
                    for &v in base.neighbors_raw(u) {
                        row[(v >> 6) as usize] |= 1 << (v & 63);
                        rowops::or_into(&mut row, out.row(v as usize));
                    }
                    changed |= rowops::or_into_changed(out.row_mut(u as usize), &row);
                }
                if !changed {
                    break;
                }
            }
        }
    }
    out
}

/// An evaluation-scoped, lazily-computed condensation: the first
/// SCC-kernel closure of an evaluation runs Tarjan over the run's full
/// adjacency, every later closure in the same evaluation reuses the
/// component DAG via [`transitive_closure_scc_with`]. Both outcomes
/// are counted ([`crate::condensation_counts`] /
/// [`crate::thread_condensation_counts`]), so `EvalMeta` can report
/// reuse as fact. One cache serves exactly one graph — callers create
/// it per (evaluation, run) pair.
#[derive(Debug, Default)]
pub struct CondensationCache {
    cond: OnceCell<Condensation>,
}

impl CondensationCache {
    /// An empty cache (nothing condensed yet).
    pub fn new() -> CondensationCache {
        CondensationCache {
            cond: OnceCell::new(),
        }
    }

    /// The cached condensation, computing it from `g` on first use.
    /// Every call records into the computed/reused ledger.
    pub fn condensation(&self, g: &CsrRelation) -> &Condensation {
        let mut computed = false;
        let cond = self.cond.get_or_init(|| {
            computed = true;
            Condensation::of(g)
        });
        crate::kernel::record_condensation(!computed);
        cond
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::NodePairSet;

    fn csr(ps: &[(u32, u32)], n: usize) -> CsrRelation {
        let pairs =
            NodePairSet::from_pairs(ps.iter().map(|&(a, b)| (NodeId(a), NodeId(b))).collect());
        CsrRelation::from_pairs(&pairs, n)
    }

    fn closure_pairs(ps: &[(u32, u32)], n: usize) -> Vec<(u32, u32)> {
        transitive_closure_scc(&csr(ps, n))
            .iter()
            .map(|(u, v)| (u.0, v.0))
            .collect()
    }

    #[test]
    fn chain_condenses_to_singletons() {
        let g = csr(&[(0, 1), (1, 2), (2, 3)], 4);
        let cond = Condensation::of(&g);
        assert_eq!(cond.n_comps(), 4);
        assert!(cond.is_reverse_topological(&g));
        assert_eq!(
            closure_pairs(&[(0, 1), (1, 2), (2, 3)], 4),
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        );
    }

    #[test]
    fn cycle_collapses_to_one_component() {
        let g = csr(&[(0, 1), (1, 2), (2, 0)], 3);
        let cond = Condensation::of(&g);
        assert_eq!(cond.n_comps(), 1);
        assert_eq!(cond.members(0).len(), 3);
        // A cycle's closure is the complete relation.
        assert_eq!(closure_pairs(&[(0, 1), (1, 2), (2, 0)], 3).len(), 9);
    }

    #[test]
    fn self_loop_makes_a_singleton_cyclic() {
        assert_eq!(closure_pairs(&[(1, 1)], 3), vec![(1, 1)]);
        // A self-loop mid-chain keeps the node in its own closure row.
        assert_eq!(
            closure_pairs(&[(0, 1), (1, 1), (1, 2)], 3),
            vec![(0, 1), (0, 2), (1, 1), (1, 2)]
        );
    }

    #[test]
    fn cyclic_core_feeds_downstream_dag() {
        // 0 → {1,2 cycle} → 3: the core reaches itself and 3; 0 reaches
        // everything downstream but not itself.
        let pairs = closure_pairs(&[(0, 1), (1, 2), (2, 1), (2, 3)], 4);
        assert_eq!(
            pairs,
            vec![
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 1),
                (1, 2),
                (1, 3),
                (2, 1),
                (2, 2),
                (2, 3)
            ]
        );
    }

    #[test]
    fn disconnected_components_stay_disjoint() {
        let pairs = closure_pairs(&[(0, 1), (3, 4)], 6);
        assert_eq!(pairs, vec![(0, 1), (3, 4)]);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        assert!(closure_pairs(&[], 0).is_empty());
        assert!(closure_pairs(&[], 8).is_empty());
        let cond = Condensation::of(&csr(&[], 5));
        assert_eq!(cond.n_comps(), 5);
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        // 20k nodes in one path: a recursive Tarjan would blow the
        // default thread stack; the explicit-frame walk must not.
        let n = 20_000;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = csr(&edges, n as usize);
        let cond = Condensation::of(&g);
        assert_eq!(cond.n_comps(), n as usize);
        assert!(cond.is_reverse_topological(&g));
    }
}
