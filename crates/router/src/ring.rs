//! The consistent-hash ring that places run fingerprints on backends.
//!
//! Each backend contributes [`VNODES`] points to the ring (a hash of
//! `(backend, vnode)`), so ownership fragments into many small arcs and
//! adding or removing one backend moves only ~`1/n` of the keys — the
//! classic consistent-hashing argument. A run's replica set is the
//! first `r` *distinct* backends found walking clockwise from the
//! run's own hash point.
//!
//! The hash is the splitmix64 finalizer — the same mixer the retry
//! policy's jitter uses — chosen for determinism across processes: the
//! router must agree with itself after a restart, and every router in
//! front of the same fleet must agree with every other, without any
//! coordination beyond the ordered backend list.

/// Virtual nodes per backend: enough that the largest arc owned by one
/// backend stays close to the mean (the standard 2^6 choice — see e.g.
/// the Dynamo paper's load-spread measurements).
pub const VNODES: usize = 64;

/// splitmix64's finalizer: a fast, well-mixed 64-bit permutation.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The point a run fingerprint hashes to on the ring.
fn key_point(fp_hi: u64, fp_lo: u64) -> u64 {
    mix(fp_hi ^ mix(fp_lo))
}

/// A fixed consistent-hash ring over `backends` members.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, backend)` sorted by point.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl HashRing {
    /// Build the ring for backends `0..backends`.
    pub fn new(backends: usize) -> HashRing {
        let mut points = Vec::with_capacity(backends * VNODES);
        for backend in 0..backends {
            for vnode in 0..VNODES {
                // Mix the (backend, vnode) pair into one seed; the
                // shift keeps the two coordinates in disjoint bit
                // ranges so no two pairs collide pre-mix.
                let seed = ((backend as u64) << 32) | vnode as u64;
                points.push((mix(seed), backend));
            }
        }
        points.sort_unstable();
        HashRing { points, backends }
    }

    /// Number of backends on the ring.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The `min(r, backends)` distinct backends that hold a run, in
    /// preference order: the clockwise walk from the fingerprint's
    /// point, skipping repeats. Deterministic — every router instance
    /// derives the same replica set from the same backend count.
    pub fn replicas_for(&self, fp_hi: u64, fp_lo: u64, r: usize) -> Vec<usize> {
        let want = r.min(self.backends);
        let mut replicas = Vec::with_capacity(want);
        if want == 0 {
            return replicas;
        }
        let point = key_point(fp_hi, fp_lo);
        let start = self.points.partition_point(|&(p, _)| p < point);
        for i in 0..self.points.len() {
            let (_, backend) = self.points[(start + i) % self.points.len()];
            if !replicas.contains(&backend) {
                replicas.push(backend);
                if replicas.len() == want {
                    break;
                }
            }
        }
        replicas
    }

    /// The primary owner of a fingerprint (first replica).
    pub fn primary(&self, fp_hi: u64, fp_lo: u64) -> Option<usize> {
        self.replicas_for(fp_hi, fp_lo, 1).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A spread of pseudo-random fingerprints.
    fn fingerprints(n: usize) -> Vec<(u64, u64)> {
        (0..n as u64)
            .map(|i| (mix(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)), mix(!i)))
            .collect()
    }

    #[test]
    fn replica_sets_are_distinct_deterministic_and_bounded() {
        let ring = HashRing::new(5);
        for &(hi, lo) in &fingerprints(200) {
            let replicas = ring.replicas_for(hi, lo, 3);
            assert_eq!(replicas.len(), 3);
            let mut dedup = replicas.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "replicas must be distinct backends");
            assert_eq!(replicas, ring.replicas_for(hi, lo, 3), "must be stable");
        }
        // Asking for more replicas than backends caps at the fleet.
        assert_eq!(ring.replicas_for(7, 9, 99).len(), 5);
        assert_eq!(HashRing::new(0).replicas_for(1, 2, 3), Vec::<usize>::new());
    }

    #[test]
    fn load_spreads_across_backends() {
        let ring = HashRing::new(4);
        let mut owned = [0usize; 4];
        let keys = fingerprints(4000);
        for &(hi, lo) in &keys {
            owned[ring.primary(hi, lo).unwrap()] += 1;
        }
        // With 64 vnodes each backend should own a reasonable share —
        // the bound is loose (the point is no backend is starved or
        // doubled), not a statistical assertion.
        for (backend, &count) in owned.iter().enumerate() {
            assert!(
                count > keys.len() / 10 && count < keys.len() / 2,
                "backend {backend} owns {count} of {} keys",
                keys.len()
            );
        }
    }

    #[test]
    fn growing_the_fleet_moves_only_a_fraction_of_keys() {
        let before = HashRing::new(4);
        let after = HashRing::new(5);
        let keys = fingerprints(2000);
        let moved = keys
            .iter()
            .filter(|&&(hi, lo)| before.primary(hi, lo) != after.primary(hi, lo))
            .count();
        // Consistent hashing's contract: ~1/5 of keys move to the new
        // backend; far fewer than the ~4/5 a modulo placement would
        // reshuffle. Allow generous slack over the expectation.
        assert!(
            moved < keys.len() * 2 / 5,
            "{moved} of {} keys moved when adding one backend",
            keys.len()
        );
    }
}
