#![warn(missing_docs)]

//! A fault-tolerant routing tier in front of a fleet of `rpq-serve`
//! backends.
//!
//! One [`Router`] speaks the same wire protocol as the backends
//! ([`rpq_serve::protocol`]) on its front side, and acts as a client
//! on its back side. It places every run fingerprint on the fleet with
//! a consistent-hash [`ring`](ring::HashRing) (R-way replication),
//! health-checks the backends (ping probes, consecutive-failure
//! ejection, half-open recovery — [`health`]), and on a backend
//! failure transparently retries the next replica under the shared
//! [`RetryPolicy`], so a single dead backend costs one failover, not a
//! failed query. When *no* replica answers, the client receives a
//! graceful [`WireResponse::Unavailable`] frame instead of a hang.
//!
//! A background sync loop keeps replication flowing: it watches each
//! backend's catalog epoch (re-reading inventories only when the epoch
//! moves) and copies any run missing from one of its ring-assigned
//! replicas backend-to-backend with the protocol's
//! [`FetchRun`](WireRequest::FetchRun) / [`PushRun`](WireRequest::PushRun)
//! verbs. Runs are immutable, deduplicated by structural fingerprint,
//! so the copy is idempotent and safe to race with queries.
//!
//! The router serves **query traffic** — `Query`, `ListRuns` (the
//! merged fleet inventory), `Stats` (summed fleet counters), `Metrics`
//! (the fleet-wide observability scrape: router registry merged with
//! every reachable backend's snapshot), `Ping`, `Shutdown`. The
//! live-ingestion verbs (`Append`, `Subscribe`) and
//! the replication verbs are refused with a pointer to the backends:
//! they are stateful per-connection or per-store, and a transparent
//! proxy for them would have to forward growth signals it cannot
//! fan out correctly.
//!
//! Stand up two backends and a router, then query through it:
//!
//! ```
//! use rpq_router::{Router, RouterConfig};
//! use rpq_serve::{protocol::*, ServeClient, ServeConfig, Server};
//! use rpq_store::RunStore;
//! use std::sync::Arc;
//!
//! let spec = Arc::new(rpq_workloads::paper_examples::fig2_spec());
//! let run = rpq_labeling::RunBuilder::new(&spec)
//!     .seed(1)
//!     .target_edges(60)
//!     .build()
//!     .unwrap();
//! let mut backends = Vec::new();
//! let mut handles = Vec::new();
//! let mut joins = Vec::new();
//! let mut dirs = Vec::new();
//! for i in 0..2 {
//!     let dir = std::env::temp_dir().join(format!("rpq_router_doc_{}_{i}", std::process::id()));
//!     let _ = std::fs::remove_dir_all(&dir);
//!     let store = RunStore::create(&dir, Arc::clone(&spec)).unwrap();
//!     store.ingest(&run).unwrap();
//!     let server = Server::bind(store, &ServeConfig::default()).unwrap();
//!     backends.push(server.local_addr().unwrap());
//!     handles.push(server.shutdown_handle());
//!     joins.push(std::thread::spawn(move || server.run(None)));
//!     dirs.push(dir);
//! }
//!
//! let config = RouterConfig {
//!     backends,
//!     ..RouterConfig::default()
//! };
//! let router = Router::bind(&config).unwrap();
//! let addr = router.local_addr().unwrap();
//! let handle = router.shutdown_handle();
//! let routing = std::thread::spawn(move || router.run(None));
//!
//! // The router speaks the backend protocol: the ordinary client works.
//! let mut client = ServeClient::connect(addr).unwrap();
//! let outcome = client
//!     .query(QuerySpec {
//!         query: "_*".to_owned(),
//!         policy: String::new(),
//!         strategy: String::new(),
//!         run: RunAddr::Index(0),
//!         stages: false,
//!         mode: WireMode::EntryExit,
//!     })
//!     .unwrap();
//! assert_eq!(outcome.result, WireResult::Bool(true));
//!
//! handle.shutdown();
//! routing.join().unwrap();
//! for h in handles {
//!     h.shutdown();
//! }
//! for j in joins {
//!     j.join().unwrap();
//! }
//! # for dir in dirs { let _ = std::fs::remove_dir_all(&dir); }
//! ```

pub mod health;
pub mod ring;

use health::{Availability, HealthTable};
use ring::HashRing;
use rpq_core::RpqError;
use rpq_obs::{Counter, Registry};
use rpq_serve::protocol::{
    self, error_kind, QuerySpec, RunAddr, WireMetricsReply, WireRequest, WireResponse, WireResult,
    WireRunInfo, WireStatsReply,
};
use rpq_serve::{RetryPolicy, ServeClient, WireOutcome};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Front-side read-timeout tick (shutdown poll cadence).
const READ_TICK: Duration = Duration::from_millis(50);

/// Router configuration (the CLI's `rpq router` flags).
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address for the front side; port 0 picks an ephemeral port.
    pub addr: String,
    /// The backend fleet, in ring order. The order is part of the
    /// placement: every router in front of the same fleet must list
    /// the backends identically.
    pub backends: Vec<SocketAddr>,
    /// Replication factor R: how many backends hold (and may answer
    /// for) each run. Capped at the fleet size.
    pub replication: usize,
    /// Worker threads on the front side; 0 means one per CPU.
    pub workers: usize,
    /// Waiting-connection bound; connections past `workers + queue`
    /// receive [`WireResponse::Overloaded`].
    pub queue: usize,
    /// Per-attempt deadline on the back side: connect, send and read
    /// against one backend are each bounded by it, so a black-holed
    /// backend costs one deadline, not a hang.
    pub deadline: Duration,
    /// Backoff between replica failovers (and the pacing the backends'
    /// own clients share).
    pub retry: RetryPolicy,
    /// Consecutive failures before a backend is ejected.
    pub eject_after: u32,
    /// How long an ejected backend cools before a half-open trial.
    pub cooldown: Duration,
    /// Cadence of the background ping probe over the fleet.
    pub probe_interval: Duration,
    /// Cadence of the replication sync loop; `None` disables
    /// replication (the router still fails over between whatever
    /// replicas already hold each run).
    pub sync_interval: Option<Duration>,
    /// Result entries per streamed chunk on the front side, mirroring
    /// [`rpq_serve::ServeConfig::chunk_entries`].
    pub chunk_entries: usize,
    /// Idle keep-alive bound for front-side connections.
    pub idle_timeout: Duration,
    /// Optional plain-text metrics listener, mirroring
    /// [`rpq_serve::ServeConfig::metrics_addr`]: every connection gets
    /// the *fleet-wide* text exposition (router registry merged with
    /// every reachable backend's snapshot) and a close.
    pub metrics_addr: Option<String>,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".to_owned(),
            backends: Vec::new(),
            replication: 2,
            workers: 0,
            queue: 64,
            deadline: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            eject_after: 3,
            cooldown: Duration::from_millis(500),
            probe_interval: Duration::from_millis(250),
            sync_interval: Some(Duration::from_millis(500)),
            chunk_entries: 65_536,
            idle_timeout: Duration::from_secs(60),
            metrics_addr: None,
        }
    }
}

/// What the router did over its lifetime, returned by [`Router::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterReport {
    /// Front-side connections accepted.
    pub accepted: u64,
    /// Requests served (all verbs).
    pub requests: u64,
    /// Connections refused by admission control.
    pub overloaded: u64,
    /// Attempts that failed over to another replica (backend down,
    /// overloaded, or missing the run).
    pub failovers: u64,
    /// Requests answered [`WireResponse::Unavailable`] — every replica
    /// was down.
    pub unavailable: u64,
    /// Runs copied between backends by the replication sync loop.
    pub synced_runs: u64,
    /// Backoff pauses taken between replica failover attempts.
    pub retries: u64,
}

/// The router's registry handles, resolved once at bind time; the
/// registry itself is the source of truth for the metrics verb and the
/// text exposition.
struct Counters {
    accepted: &'static Counter,
    requests: &'static Counter,
    overloaded: &'static Counter,
    failovers: &'static Counter,
    retries: &'static Counter,
    unavailable: &'static Counter,
    synced_runs: &'static Counter,
    /// Back-side connection pool traffic: a hit reuses a warm
    /// connection, a miss opens a fresh one, a discard drops a pooled
    /// connection that failed mid-use (stale or backend down).
    pool_hits: &'static Counter,
    pool_misses: &'static Counter,
    pool_discards: &'static Counter,
    /// Front-side dispatch latency, µs (includes the back-side trip).
    request_micros: &'static rpq_obs::Histogram,
}

impl Counters {
    fn new(registry: &Registry) -> Counters {
        Counters {
            accepted: registry.counter("rpq_router_connections_accepted_total"),
            requests: registry.counter("rpq_router_requests_total"),
            overloaded: registry.counter("rpq_router_overloaded_total"),
            failovers: registry.counter("rpq_router_failovers_total"),
            retries: registry.counter("rpq_router_retries_total"),
            unavailable: registry.counter("rpq_router_unavailable_total"),
            synced_runs: registry.counter("rpq_router_synced_runs_total"),
            pool_hits: registry.counter("rpq_router_pool_hits_total"),
            pool_misses: registry.counter("rpq_router_pool_misses_total"),
            pool_discards: registry.counter("rpq_router_pool_discards_total"),
            request_micros: registry.histogram("rpq_router_request_micros"),
        }
    }
}

/// A clonable handle that stops a running router from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Ask the router to stop accepting and drain.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has shutdown been requested?
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The dispatch queue between the accept loop and the workers.
struct ConnQueue {
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            capacity,
        }
    }

    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.state.lock().expect("conn queue lock");
        if state.0.len() >= self.capacity {
            return Err(stream);
        }
        state.0.push_back(stream);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut state = self.state.lock().expect("conn queue lock");
        loop {
            if let Some(stream) = state.0.pop_front() {
                return Some(stream);
            }
            if state.1 {
                return None;
            }
            state = self.ready.wait(state).expect("conn queue wait");
        }
    }

    fn close(&self) {
        self.state.lock().expect("conn queue lock").1 = true;
        self.ready.notify_all();
    }
}

/// Result of one patient front-side read.
enum ReadOutcome {
    Filled,
    Done,
}

/// A bound routing tier over a fleet of backends.
pub struct Router {
    listener: TcpListener,
    backends: Vec<SocketAddr>,
    ring: HashRing,
    health: HealthTable,
    replication: usize,
    workers: usize,
    queue_cap: usize,
    deadline: Duration,
    retry: RetryPolicy,
    probe_interval: Duration,
    sync_interval: Option<Duration>,
    chunk_entries: usize,
    idle_timeout: Duration,
    shutdown: Arc<AtomicBool>,
    registry: Arc<Registry>,
    counters: Counters,
    metrics_listener: Option<TcpListener>,
    /// Warm back-side connections, one stack per backend: probes,
    /// inventory scans and failover attempts reuse a connected
    /// [`ServeClient`] instead of paying a TCP connect each time.
    pools: Vec<Mutex<Vec<ServeClient>>>,
}

/// Warm connections retained per backend; extras close on check-in.
const POOL_CAP: usize = 8;

impl Router {
    /// Bind the front listener and assemble the ring and health table.
    pub fn bind(config: &RouterConfig) -> Result<Router, RpqError> {
        if config.backends.is_empty() {
            return Err(RpqError::invalid(
                "a router needs at least one backend (--backend ADDR)".to_owned(),
            ));
        }
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| RpqError::io(format!("cannot bind {}", config.addr), e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| RpqError::io("cannot set the listener non-blocking", e))?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)
                    .map_err(|e| RpqError::io(format!("cannot bind metrics address {addr}"), e))?;
                l.set_nonblocking(true)
                    .map_err(|e| RpqError::io("cannot set the metrics listener non-blocking", e))?;
                Some(l)
            }
            None => None,
        };
        let registry = Arc::new(Registry::new());
        let counters = Counters::new(&registry);
        let pools = (0..config.backends.len())
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        Ok(Router {
            pools,
            listener,
            ring: HashRing::new(config.backends.len()),
            health: HealthTable::new(config.backends.len(), config.eject_after, config.cooldown),
            backends: config.backends.clone(),
            replication: config.replication.clamp(1, config.backends.len()),
            workers,
            queue_cap: config.queue.max(1),
            deadline: config.deadline,
            retry: config.retry,
            probe_interval: config.probe_interval,
            sync_interval: config.sync_interval,
            chunk_entries: config.chunk_entries.max(1),
            idle_timeout: config.idle_timeout,
            shutdown: Arc::new(AtomicBool::new(false)),
            registry,
            counters,
            metrics_listener,
        })
    }

    /// The bound metrics-exposition address, when
    /// [`RouterConfig::metrics_addr`] was set.
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// The bound front address (read the ephemeral port here).
    pub fn local_addr(&self) -> Result<SocketAddr, RpqError> {
        self.listener
            .local_addr()
            .map_err(|e| RpqError::io("cannot read the bound address", e))
    }

    /// Worker threads the router will run.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A handle that stops this router from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
        }
    }

    /// Route until shutdown (handle, protocol verb, or the optional
    /// `external` flag — the CLI passes its SIGTERM/SIGINT flag here).
    /// Blocks the calling thread; workers, prober and syncer run
    /// scoped inside.
    pub fn run(self, external: Option<&AtomicBool>) -> RouterReport {
        let queue = ConnQueue::new(self.queue_cap);
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| {
                    while let Some(stream) = queue.pop() {
                        self.serve_connection(stream);
                    }
                });
            }
            scope.spawn(|| self.run_prober());
            if self.sync_interval.is_some() {
                scope.spawn(|| self.run_syncer());
            }
            if self.metrics_listener.is_some() {
                scope.spawn(|| self.serve_metrics_scrapes());
            }
            loop {
                if external.is_some_and(|f| f.load(Ordering::Relaxed)) {
                    self.shutdown.store(true, Ordering::Relaxed);
                }
                if self.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        self.counters.accepted.incr();
                        if let Err(rejected) = queue.push(stream) {
                            self.counters.overloaded.incr();
                            self.refuse(rejected);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
            queue.close();
        });
        RouterReport {
            accepted: self.counters.accepted.get(),
            requests: self.counters.requests.get(),
            overloaded: self.counters.overloaded.get(),
            failovers: self.counters.failovers.get(),
            unavailable: self.counters.unavailable.get(),
            synced_runs: self.counters.synced_runs.get(),
            retries: self.counters.retries.get(),
        }
    }

    /// The metrics-exposition loop: accept, dump the fleet-wide text
    /// exposition, close (mirrors the backend server's listener).
    fn serve_metrics_scrapes(&self) {
        let listener = self
            .metrics_listener
            .as_ref()
            .expect("metrics listener present when this loop runs");
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            match listener.accept() {
                Ok((mut stream, _)) => {
                    let text = self.fleet_metrics().to_snapshot().to_text();
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
                    let _ = stream.write_all(text.as_bytes());
                    let _ = stream.flush();
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::Interrupted =>
                {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    /// Graceful refusal: one Overloaded frame, then close (mirrors the
    /// backend server's refusal, RST-safe drain included).
    fn refuse(&self, mut stream: TcpStream) {
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
        if protocol::write_message(
            &mut stream,
            &WireResponse::Overloaded {
                queue: self.queue_cap as u64,
            },
        )
        .is_err()
        {
            return;
        }
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let mut sink = [0u8; 4096];
        for _ in 0..16 {
            match stream.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    // -----------------------------------------------------------------
    // Front side: one connection's request/response loop.
    // -----------------------------------------------------------------

    /// Serve requests on one front connection until the peer closes, a
    /// transport error occurs, or shutdown drains it.
    fn serve_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(READ_TICK));
        let _ = stream.set_write_timeout(Some(self.deadline));
        let _ = stream.set_nodelay(true);
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let request = match self.read_request(&mut stream) {
                Ok(Some(request)) => request,
                Ok(None) => return,
                Err(e) => {
                    let _ = protocol::write_message(
                        &mut stream,
                        &WireResponse::Error {
                            kind: error_kind(&e).to_owned(),
                            message: e.to_string(),
                        },
                    );
                    return;
                }
            };
            self.counters.requests.incr();
            let dispatched = Instant::now();
            let (response, stop) = self.dispatch(request);
            self.counters
                .request_micros
                .record(dispatched.elapsed().as_micros() as u64);
            match self.write_response(&mut stream, &response) {
                Ok(()) => {}
                Err(e @ RpqError::Invalid(_)) => {
                    let substitute = WireResponse::Error {
                        kind: error_kind(&e).to_owned(),
                        message: e.to_string(),
                    };
                    if protocol::write_message(&mut stream, &substitute).is_err() {
                        return;
                    }
                }
                Err(_) => return,
            }
            if stop {
                return;
            }
        }
    }

    /// Read one request, waking on the read timeout to poll the
    /// shutdown flag and the idle bound.
    fn read_request(&self, stream: &mut TcpStream) -> Result<Option<WireRequest>, RpqError> {
        let mut header = [0u8; 9];
        let mut in_frame = false;
        match self.read_patient(stream, &mut header, &mut in_frame)? {
            ReadOutcome::Done => return Ok(None),
            ReadOutcome::Filled => {}
        }
        let len = protocol::frame_len(&header)?;
        let mut payload = vec![0u8; len];
        match self.read_patient(stream, &mut payload, &mut in_frame)? {
            ReadOutcome::Done => Err(RpqError::invalid(
                "stream ended inside a frame payload".to_owned(),
            )),
            ReadOutcome::Filled => Ok(Some(protocol::decode_payload(&payload)?)),
        }
    }

    /// Fill `buf`, retrying read timeouts: idle between frames up to
    /// `idle_timeout`, stalls inside a frame up to `deadline`.
    fn read_patient(
        &self,
        stream: &mut TcpStream,
        buf: &mut [u8],
        in_frame: &mut bool,
    ) -> Result<ReadOutcome, RpqError> {
        let mut filled = 0;
        let mut stall_started: Option<Instant> = None;
        let mut idle_started: Option<Instant> = None;
        while filled < buf.len() {
            match stream.read(&mut buf[filled..]) {
                Ok(0) if !*in_frame && filled == 0 => return Ok(ReadOutcome::Done),
                Ok(0) => {
                    return Err(RpqError::invalid(
                        "stream ended inside a protocol frame".to_owned(),
                    ))
                }
                Ok(n) => {
                    filled += n;
                    *in_frame = true;
                    stall_started = None;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if !*in_frame && filled == 0 {
                        if self.shutdown.load(Ordering::Relaxed) {
                            return Ok(ReadOutcome::Done);
                        }
                        let t0 = *idle_started.get_or_insert_with(Instant::now);
                        if t0.elapsed() > self.idle_timeout {
                            return Ok(ReadOutcome::Done);
                        }
                        continue;
                    }
                    let t0 = *stall_started.get_or_insert_with(Instant::now);
                    if t0.elapsed() > self.deadline {
                        return Err(RpqError::invalid(format!(
                            "peer stalled mid-frame past the {:?} deadline",
                            self.deadline
                        )));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(RpqError::io("cannot read request frame", e)),
            }
        }
        Ok(ReadOutcome::Filled)
    }

    /// Write one response, chunking oversized outcomes like the
    /// backend server does — the router reassembles backend streams
    /// in full (so a mid-stream backend death can fail over to a clean
    /// retry) and re-chunks on the way out.
    fn write_response(
        &self,
        stream: &mut TcpStream,
        response: &WireResponse,
    ) -> Result<(), RpqError> {
        if let WireResponse::Outcome(outcome) = response {
            if outcome.result.len() > self.chunk_entries {
                return self.write_streamed(stream, outcome);
            }
        }
        protocol::write_message(stream, response)
    }

    /// The chunked response path (header + bounded `Chunk` frames).
    fn write_streamed(
        &self,
        stream: &mut TcpStream,
        outcome: &WireOutcome,
    ) -> Result<(), RpqError> {
        let header = WireOutcome {
            result: outcome.result.empty_like(),
            ..outcome.clone()
        };
        protocol::write_message(stream, &WireResponse::OutcomeStream(header))?;
        let emit = |stream: &mut TcpStream, last: bool, part: WireResult| {
            protocol::write_message(stream, &WireResponse::Chunk { last, part })
        };
        match &outcome.result {
            WireResult::Pairs(pairs) => {
                let slices = pairs.chunks(self.chunk_entries);
                let n = slices.len();
                for (i, slice) in slices.enumerate() {
                    emit(stream, i + 1 == n, WireResult::Pairs(slice.to_vec()))?;
                }
            }
            WireResult::Nodes(nodes) => {
                let slices = nodes.chunks(self.chunk_entries);
                let n = slices.len();
                for (i, slice) in slices.enumerate() {
                    emit(stream, i + 1 == n, WireResult::Nodes(slice.to_vec()))?;
                }
            }
            WireResult::Bool(_) => emit(stream, true, outcome.result.clone())?,
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Dispatch.
    // -----------------------------------------------------------------

    /// Dispatch one front request; the bool asks the loop to stop.
    fn dispatch(&self, request: WireRequest) -> (WireResponse, bool) {
        match request {
            // The router answers for its own liveness — a fleet whose
            // backends are all down still pings (and reports
            // Unavailable for real work).
            WireRequest::Ping => (WireResponse::Pong, false),
            WireRequest::Shutdown => {
                self.shutdown.store(true, Ordering::Relaxed);
                (WireResponse::ShuttingDown, true)
            }
            WireRequest::Stats => (self.fleet_stats(), false),
            WireRequest::Metrics => (WireResponse::Metrics(self.fleet_metrics()), false),
            WireRequest::ListRuns => match self.inventory() {
                Ok(merged) => (WireResponse::Runs(merged), false),
                Err(message) => {
                    self.counters.unavailable.incr();
                    (WireResponse::Unavailable { message }, false)
                }
            },
            WireRequest::Query(spec) => (self.route_query(spec), false),
            // Stateful verbs are refused with a pointer, not proxied:
            // appends and subscriptions bind to one backend's open-run
            // growth signal, and replication verbs are the sync loop's
            // internal traffic.
            WireRequest::Append { .. }
            | WireRequest::Subscribe(_)
            | WireRequest::Unsubscribe
            | WireRequest::FetchRun(_)
            | WireRequest::PushRun { .. } => (
                WireResponse::Error {
                    kind: "invalid".to_owned(),
                    message: "the router serves query traffic only \
                              (Query/ListRuns/Stats/Metrics/Ping/Shutdown); send \
                              live-ingestion and replication verbs directly to a backend"
                        .to_owned(),
                },
                false,
            ),
        }
    }

    /// A freshly connected client against one backend, every I/O
    /// bounded by the per-attempt deadline. Back-side traffic goes
    /// through [`Router::with_backend`], which fronts this with the
    /// warm pool.
    fn backend_client(&self, backend: usize) -> Result<ServeClient, RpqError> {
        let mut client = ServeClient::connect_deadline(self.backends[backend], self.deadline)?;
        client.set_io_timeout(Some(self.deadline))?;
        Ok(client)
    }

    /// Run one back-side interaction against a backend over a pooled
    /// connection. A warm connection that fails mid-use is discarded
    /// and the interaction retried once on a fresh connect — the
    /// backend may simply have idle-closed the pooled socket, and only
    /// the fresh attempt is an authoritative health signal. Successful
    /// connections go back to the pool (bounded at [`POOL_CAP`]).
    ///
    /// `f` must be effectively idempotent: it can run twice when the
    /// pooled attempt fails. Every routed verb is (queries are
    /// read-only, `PushRun` deduplicates by fingerprint).
    fn with_backend<T>(
        &self,
        backend: usize,
        mut f: impl FnMut(&mut ServeClient) -> Result<T, RpqError>,
    ) -> Result<T, RpqError> {
        if let Some(mut client) = self.pool_take(backend) {
            self.counters.pool_hits.incr();
            match f(&mut client) {
                Ok(value) => {
                    self.pool_put(backend, client);
                    return Ok(value);
                }
                Err(_) => self.counters.pool_discards.incr(),
            }
        } else {
            self.counters.pool_misses.incr();
        }
        let mut client = self.backend_client(backend)?;
        let value = f(&mut client)?;
        self.pool_put(backend, client);
        Ok(value)
    }

    fn pool_take(&self, backend: usize) -> Option<ServeClient> {
        self.pools[backend].lock().expect("pool lock").pop()
    }

    fn pool_put(&self, backend: usize, client: ServeClient) {
        let mut pool = self.pools[backend].lock().expect("pool lock");
        if pool.len() < POOL_CAP {
            pool.push(client);
        }
    }

    /// Route one query: resolve positional addressing against the
    /// merged inventory, then try the run's replicas in
    /// health-preferred ring order with backoff between failovers.
    fn route_query(&self, mut spec: QuerySpec) -> WireResponse {
        // Positional addresses are a router-local notion (each backend
        // numbers its catalog differently) — always rewrite to the
        // stable fingerprint before anything ships to a backend.
        let (fp_hi, fp_lo) = match spec.run {
            RunAddr::Fingerprint(hi, lo) => (hi, lo),
            RunAddr::Index(i) => match self.inventory() {
                Ok(merged) => match merged.get(i as usize) {
                    Some(info) => {
                        spec.run = RunAddr::Fingerprint(info.fp_hi, info.fp_lo);
                        (info.fp_hi, info.fp_lo)
                    }
                    None => {
                        return WireResponse::Error {
                            kind: "invalid".to_owned(),
                            message: format!(
                                "run #{i} out of range for a {}-run fleet",
                                merged.len()
                            ),
                        }
                    }
                },
                Err(message) => {
                    self.counters.unavailable.incr();
                    return WireResponse::Unavailable { message };
                }
            },
        };
        let mut order = self.ring.replicas_for(fp_hi, fp_lo, self.replication);
        // Health-preferred: healthy replicas first, half-open trials
        // next, ejected corpses last-resort. The sort is stable, so
        // ring preference breaks ties inside each class.
        order.sort_by_key(|&b| match self.health.availability(b) {
            Availability::Healthy => 0u8,
            Availability::HalfOpen => 1,
            Availability::Ejected => 2,
        });
        let request = WireRequest::Query(spec);
        let salt = fp_hi ^ fp_lo.rotate_left(17);
        for (attempt, &backend) in order.iter().enumerate() {
            if attempt > 0 {
                self.counters.retries.incr();
                self.retry.pause((attempt - 1) as u32, salt);
            }
            match self.with_backend(backend, |c| c.request(&request)) {
                Ok(response) => {
                    if stale_replica(&response) {
                        // The backend is alive but has not replicated
                        // this run yet — its answer would be a false
                        // "no such run". Count it healthy, fail over.
                        self.health.record_success(backend);
                        self.counters.failovers.incr();
                        continue;
                    }
                    if backpressure(&response) {
                        // Alive but refusing (overloaded / draining):
                        // not a health event, but another replica may
                        // have room.
                        self.counters.failovers.incr();
                        continue;
                    }
                    self.health.record_success(backend);
                    return response;
                }
                Err(_) => {
                    self.health.record_failure(backend);
                    self.counters.failovers.incr();
                }
            }
        }
        self.counters.unavailable.incr();
        WireResponse::Unavailable {
            message: format!(
                "no replica answered for run {fp_hi:016x}{fp_lo:016x} \
                 ({} tried); the fleet may be down or still replicating",
                order.len()
            ),
        }
    }

    /// The merged fleet inventory: the union of every reachable
    /// backend's runs, deduplicated by fingerprint and sorted by it,
    /// re-numbered with fleet-wide positional ids. `Err` carries the
    /// Unavailable message when *no* backend answered.
    fn inventory(&self) -> Result<Vec<WireRunInfo>, String> {
        let mut merged: BTreeMap<(u64, u64), WireRunInfo> = BTreeMap::new();
        let mut reached = 0;
        for backend in 0..self.backends.len() {
            if self.health.availability(backend) == Availability::Ejected {
                continue;
            }
            match self.with_backend(backend, |c| c.runs()) {
                Ok(runs) => {
                    self.health.record_success(backend);
                    reached += 1;
                    for info in runs {
                        merged.entry((info.fp_hi, info.fp_lo)).or_insert(info);
                    }
                }
                Err(_) => self.health.record_failure(backend),
            }
        }
        if reached == 0 {
            return Err("no backend answered the inventory scan; the fleet is down".to_owned());
        }
        Ok(merged
            .into_values()
            .enumerate()
            .map(|(i, mut info)| {
                info.id = i as u64;
                info
            })
            .collect())
    }

    /// Fleet-wide stats: every reachable backend's counters summed
    /// field-wise. (Per-backend numbers — epochs in particular — come
    /// from querying a backend directly.)
    fn fleet_stats(&self) -> WireResponse {
        let mut total = WireStatsReply::default();
        let mut reached = 0;
        for backend in 0..self.backends.len() {
            if self.health.availability(backend) == Availability::Ejected {
                continue;
            }
            match self.with_backend(backend, |c| c.stats()) {
                Ok(stats) => {
                    self.health.record_success(backend);
                    reached += 1;
                    add_stats(&mut total, &stats);
                }
                Err(_) => self.health.record_failure(backend),
            }
        }
        if reached == 0 {
            self.counters.unavailable.incr();
            return WireResponse::Unavailable {
                message: "no backend answered the stats scan; the fleet is down".to_owned(),
            };
        }
        // The router's own failover pauses ride along: a fleet client
        // asking for Stats sees retry pressure wherever it arises.
        total.retries += self.counters.retries.get();
        WireResponse::Stats(total)
    }

    /// One fleet-wide scrape: the router's own registry (request /
    /// failover / retry / sync counters, per-backend health gauges)
    /// merged name-wise with every reachable backend's metrics
    /// snapshot, slow-query rings concatenated. Unreachable backends
    /// simply contribute nothing — a scrape never fails outright.
    fn fleet_metrics(&self) -> WireMetricsReply {
        // Refresh the per-backend health gauges right before freezing.
        for (backend, addr) in self.backends.iter().enumerate() {
            let availability = self.health.availability(backend);
            self.registry
                .gauge(&format!("rpq_router_backend_healthy{{backend=\"{addr}\"}}"))
                .set(i64::from(availability == Availability::Healthy));
            self.registry
                .gauge(&format!("rpq_router_backend_ejected{{backend=\"{addr}\"}}"))
                .set(i64::from(availability == Availability::Ejected));
        }
        let mut snap = self.registry.snapshot();
        snap.merge(&rpq_obs::global().snapshot());
        let mut slow = Vec::new();
        for backend in 0..self.backends.len() {
            if self.health.availability(backend) == Availability::Ejected {
                continue;
            }
            match self.with_backend(backend, |c| c.metrics()) {
                Ok(reply) => {
                    self.health.record_success(backend);
                    snap.merge(&reply.to_snapshot());
                    slow.extend(reply.slow);
                }
                Err(_) => self.health.record_failure(backend),
            }
        }
        let mut reply = WireMetricsReply::from_snapshot(&snap, Vec::new());
        reply.slow = slow;
        reply
    }

    // -----------------------------------------------------------------
    // Background loops.
    // -----------------------------------------------------------------

    /// Sleep in shutdown-polling ticks; false once shutdown is up.
    fn pace(&self, total: Duration) -> bool {
        let started = Instant::now();
        while started.elapsed() < total {
            if self.shutdown.load(Ordering::Relaxed) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(25).min(total));
        }
        !self.shutdown.load(Ordering::Relaxed)
    }

    /// The prober: pings every backend that is not cooling off, so
    /// failures are noticed before traffic hits them and half-open
    /// backends get their recovery trial even when idle.
    fn run_prober(&self) {
        loop {
            for backend in 0..self.backends.len() {
                if self.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if self.health.availability(backend) == Availability::Ejected {
                    continue;
                }
                match self.with_backend(backend, |c| c.ping()) {
                    Ok(()) => self.health.record_success(backend),
                    Err(_) => self.health.record_failure(backend),
                }
            }
            if !self.pace(self.probe_interval) {
                return;
            }
        }
    }

    /// The replication syncer: watch each backend's catalog epoch,
    /// re-inventory only when it moves, and copy any run missing from
    /// one of its ring-assigned replicas (FetchRun from a holder →
    /// PushRun to the replica). Runs are immutable and fingerprint-
    /// deduplicated, so every copy is idempotent.
    fn run_syncer(&self) {
        let interval = self.sync_interval.expect("syncer spawned without interval");
        // Per-backend (epoch, inventory) cache — the epoch gate.
        let mut cache: Vec<Option<(u64, Vec<WireRunInfo>)>> = vec![None; self.backends.len()];
        loop {
            if !self.pace(interval) {
                return;
            }
            self.sync_once(&mut cache);
        }
    }

    /// One replication round.
    fn sync_once(&self, cache: &mut [Option<(u64, Vec<WireRunInfo>)>]) {
        // Phase 1: snapshot each reachable backend's inventory, gated
        // on its catalog epoch (unchanged epoch → cached inventory).
        let mut view: Vec<Option<Vec<WireRunInfo>>> = vec![None; self.backends.len()];
        for backend in 0..self.backends.len() {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            if self.health.availability(backend) == Availability::Ejected {
                continue;
            }
            let epoch = match self.with_backend(backend, |c| c.stats()) {
                Ok(stats) => {
                    self.health.record_success(backend);
                    stats.store_epoch
                }
                Err(_) => {
                    self.health.record_failure(backend);
                    continue;
                }
            };
            let inventory = match &cache[backend] {
                Some((cached_epoch, inventory)) if *cached_epoch == epoch => inventory.clone(),
                _ => match self.with_backend(backend, |c| c.runs()) {
                    Ok(inventory) => {
                        cache[backend] = Some((epoch, inventory.clone()));
                        inventory
                    }
                    Err(_) => {
                        self.health.record_failure(backend);
                        continue;
                    }
                },
            };
            view[backend] = Some(inventory);
        }
        // Phase 2: for every known run, every reachable ring-assigned
        // replica that lacks it gets a copy from a current holder.
        let mut holders: BTreeMap<(u64, u64), Vec<usize>> = BTreeMap::new();
        for (backend, inventory) in view.iter().enumerate() {
            if let Some(inventory) = inventory {
                for info in inventory {
                    holders
                        .entry((info.fp_hi, info.fp_lo))
                        .or_default()
                        .push(backend);
                }
            }
        }
        for (&(fp_hi, fp_lo), holding) in &holders {
            for &replica in &self.ring.replicas_for(fp_hi, fp_lo, self.replication) {
                if self.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if view[replica].is_none() || holding.contains(&replica) {
                    continue;
                }
                let Some(&donor) = holding.first() else {
                    continue;
                };
                let fetched =
                    self.with_backend(donor, |c| c.fetch_run(RunAddr::Fingerprint(fp_hi, fp_lo)));
                let Ok((_donor_epoch, run)) = fetched else {
                    continue;
                };
                // Cloned because a pooled attempt may retry the push
                // on a fresh connection (idempotent: fingerprint-
                // deduplicated server-side).
                if let Ok((_, deduplicated, _epoch)) =
                    self.with_backend(replica, |c| c.push_run(run.clone()))
                {
                    if !deduplicated {
                        self.counters.synced_runs.incr();
                    }
                    // The replica's epoch moved: drop its cache entry
                    // so the next round re-reads the inventory.
                    cache[replica] = None;
                }
            }
        }
    }
}

/// Is this response a live backend telling us it does not hold the
/// run? (The exact message `rpq-serve`'s resolver produces — a stale
/// replica mid-replication, or a ring disagreement; either way another
/// replica may hold it.)
fn stale_replica(response: &WireResponse) -> bool {
    matches!(
        response,
        WireResponse::Error { kind, message }
            if kind == "invalid" && message.contains("no stored run has fingerprint")
    )
}

/// Is this response a refusal worth failing over (the backend is
/// alive, just not serving right now)?
fn backpressure(response: &WireResponse) -> bool {
    matches!(
        response,
        WireResponse::Overloaded { .. }
            | WireResponse::ShuttingDown
            | WireResponse::Unavailable { .. }
    )
}

/// Sum two stats snapshots field-wise.
fn add_stats(total: &mut WireStatsReply, s: &WireStatsReply) {
    total.plan_hits += s.plan_hits;
    total.plan_misses += s.plan_misses;
    total.index_hits += s.index_hits;
    total.index_misses += s.index_misses;
    total.csr_hits += s.csr_hits;
    total.csr_misses += s.csr_misses;
    total.session_evictions += s.session_evictions;
    total.store_runs += s.store_runs;
    total.tag_reloads += s.tag_reloads;
    total.csr_reloads += s.csr_reloads;
    total.tag_rebuilds += s.tag_rebuilds;
    total.csr_rebuilds += s.csr_rebuilds;
    total.accepted += s.accepted;
    total.requests += s.requests;
    total.overloaded += s.overloaded;
    total.request_errors += s.request_errors;
    total.closures_pairs += s.closures_pairs;
    total.closures_bits += s.closures_bits;
    total.closures_scc += s.closures_scc;
    total.condensations_computed += s.condensations_computed;
    total.condensations_reused += s.condensations_reused;
    total.plan_reloads += s.plan_reloads;
    total.plan_rebuilds += s.plan_rebuilds;
    total.store_epoch += s.store_epoch;
    total.appends += s.appends;
    total.append_rebuilds += s.append_rebuilds;
    total.subscriptions += s.subscriptions;
    total.retries += s.retries;
    total.config_warnings += s.config_warnings;
    total.strategy_lazy += s.strategy_lazy;
    total.strategy_materialized += s.strategy_materialized;
    total.lazy_expansions += s.lazy_expansions;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_replica_detection_matches_the_server_wording() {
        assert!(stale_replica(&WireResponse::Error {
            kind: "invalid".to_owned(),
            message: "no stored run has fingerprint 00000000000000010000000000000002".to_owned(),
        }));
        assert!(!stale_replica(&WireResponse::Error {
            kind: "parse".to_owned(),
            message: "no stored run has fingerprint 0".to_owned(),
        }));
        assert!(!stale_replica(&WireResponse::Pong));
    }

    #[test]
    fn backpressure_covers_refusals_not_request_faults() {
        assert!(backpressure(&WireResponse::Overloaded { queue: 4 }));
        assert!(backpressure(&WireResponse::ShuttingDown));
        assert!(backpressure(&WireResponse::Unavailable {
            message: String::new()
        }));
        assert!(!backpressure(&WireResponse::Error {
            kind: "parse".to_owned(),
            message: "bad query".to_owned(),
        }));
        assert!(!backpressure(&WireResponse::Pong));
    }

    #[test]
    fn bind_refuses_an_empty_fleet() {
        let err = match Router::bind(&RouterConfig::default()) {
            Ok(_) => panic!("an empty fleet must not bind"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("at least one backend"));
    }
}
